"""Shim so that editable installs work without the `wheel` package.

`pip install -e . --no-build-isolation` on this machine lacks
`bdist_wheel`; `python setup.py develop` (or pip's legacy editable path
via this file) installs a .pth link instead.
"""

from setuptools import setup

setup()
