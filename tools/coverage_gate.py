"""CI coverage gate: compare a pytest-cov JSON report to the recorded
baseline floor.

CI runs the tier-1 suite under ``pytest --cov=repro --cov-report=json``
(pytest-cov is a CI-only dependency — the local environment does not
need it) and then::

    python tools/coverage_gate.py coverage.json

The gate fails when total line coverage drops below the floor in
``COVERAGE_baseline.json`` at the repo root.  The floor is deliberately
conservative; to ratchet it, raise ``floor_percent`` to just below the
``last_observed`` value a CI run printed and commit both numbers.
"""

import json
import pathlib
import sys

ROOT = pathlib.Path(__file__).resolve().parent.parent
BASELINE_FILE = ROOT / "COVERAGE_baseline.json"


def main(argv: list[str]) -> int:
    if len(argv) != 1:
        print("usage: coverage_gate.py <coverage.json>", file=sys.stderr)
        return 2
    report_path = pathlib.Path(argv[0])
    if not report_path.exists():
        print(f"coverage_gate: {report_path} missing — run pytest with "
              "--cov=repro --cov-report=json first", file=sys.stderr)
        return 2
    report = json.loads(report_path.read_text())
    percent = report["totals"]["percent_covered"]
    baseline = json.loads(BASELINE_FILE.read_text())
    floor = baseline["floor_percent"]

    worst = sorted(
        report.get("files", {}).items(),
        key=lambda item: item[1]["summary"]["percent_covered"],
    )[:5]
    print(f"coverage_gate: total {percent:.2f}% (floor {floor:.2f}%)")
    for path, data in worst:
        print(f"  lowest: {path} "
              f"{data['summary']['percent_covered']:.1f}%")
    if percent < floor:
        print(f"coverage_gate: FAIL total coverage {percent:.2f}% fell "
              f"below the recorded floor {floor:.2f}%", file=sys.stderr)
        return 1
    print(f"coverage_gate: ok (ratchet by setting floor_percent toward "
          f"{percent:.2f} in {BASELINE_FILE.name})")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
