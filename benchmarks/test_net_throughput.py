"""Multi-engine streaming throughput: 1 engine vs 4 (paper Section 11).

The paper reports line-card throughput with worker micro-engines pulling
packets from the receive rings; the compiled code's quality shows up as
how many engines' worth of service rate the stream sustains.  This
benchmark drives each allocated application (AES, Kasumi, NAT) through
``repro.ixp.net`` with a saturating backlog (RX ring sized to the whole
stream, so queueing — not drops — absorbs the burst) on 1 and on 4
engines and records cycles, throughput and latency percentiles to
``BENCH_net.json`` at the repo root.  ``benchmarks/net_smoke.py`` reads
that file in CI and fails on scaling/validation regressions.

Everything here is *simulated* time, so the numbers are deterministic
for a given allocation — the scaling ratio is a property of the code and
the memory-port model, not of the host machine.
"""

import json
import pathlib
import sys

from repro.ixp.net import NetConfig, run_stream, stream_app

from benchmarks.conftest import print_table

ROOT = pathlib.Path(__file__).resolve().parent.parent
BENCH_FILE = ROOT / "BENCH_net.json"

#: (fixture name, stream adapter name, payload-size distribution)
BENCHES = [
    ("AES", "aes", (16, 32, 64)),
    ("Kasumi", "kasumi", (8, 16, 32)),
    ("NAT", "nat", None),
]

PACKETS = 96
THREADS = 4
SEED = 7

#: the acceptance bar: 4 engines must deliver at least this much more
#: throughput than 1 on at least MIN_SCALING_APPS of the three apps.
MIN_SCALING = 2.5
MIN_SCALING_APPS = 2


def _run(name: str, comp, sizes, engines: int):
    config = NetConfig(
        engines=engines,
        threads=THREADS,
        rx_capacity=PACKETS + 4,  # whole backlog fits: no drops
        tx_capacity=32,
        packets=PACKETS,
        seed=SEED,
        arrival="backlog",
    )
    return run_stream(stream_app(name, comp, sizes), config)


def write_bench_file(results: dict) -> None:
    """Persist results; the baseline block is frozen once recorded."""
    data = {
        "meta": {
            "benchmark": "benchmarks/test_net_throughput.py",
            "units": {
                "cycles": "simulated cycles to drain the stream",
                "mbps": "payload Mbit/s at the 233 MHz IXP1200 clock",
            },
            "packets": PACKETS,
            "threads": THREADS,
            "seed": SEED,
            "python": sys.version.split()[0],
        },
        "results": results,
    }
    baseline = None
    if BENCH_FILE.exists():
        try:
            baseline = json.loads(BENCH_FILE.read_text()).get("baseline")
        except (OSError, ValueError):
            baseline = None
    data["baseline"] = baseline or {
        key: {"mbps_4e": row["mbps_4e"], "scaling": row["scaling"]}
        for key, row in results.items()
    }
    BENCH_FILE.write_text(json.dumps(data, indent=2, sort_keys=True) + "\n")


def test_net_throughput_table(compiled_apps):
    rows = []
    results = {}
    for fixture_name, stream_name, sizes in BENCHES:
        _, comp = compiled_apps[fixture_name]
        one = _run(stream_name, comp, sizes, engines=1)
        four = _run(stream_name, comp, sizes, engines=4)
        for result in (one, four):
            assert result.completed == result.generated == PACKETS
            assert result.dropped == 0, "backlog config must not drop"
            assert not result.mismatches, (
                f"{stream_name}: {len(result.mismatches)} packets diverged "
                f"from the reference implementation"
            )
        scaling = one.cycles / four.cycles
        results[stream_name] = {
            "cycles_1e": one.cycles,
            "cycles_4e": four.cycles,
            "mbps_1e": round(one.mbps, 3),
            "mbps_4e": round(four.mbps, 3),
            "scaling": round(scaling, 2),
            "completed": four.completed,
            "dropped": four.dropped,
            "mismatches": len(four.mismatches),
            "latency_p50_4e": four.percentile(50),
            "latency_p95_4e": four.percentile(95),
            "rx_high_water_4e": four.rx_high_water,
        }
        rows.append(
            [
                stream_name,
                one.cycles,
                four.cycles,
                f"{one.mbps:.1f}",
                f"{four.mbps:.1f}",
                f"{scaling:.2f}x",
                four.percentile(95),
            ]
        )
    print_table(
        f"Streaming throughput: 1 vs 4 engines ({PACKETS} packets, "
        f"{THREADS} threads/engine)",
        ["app", "cyc 1e", "cyc 4e", "mbps 1e", "mbps 4e", "scaling", "p95 4e"],
        rows,
    )
    write_bench_file(results)
    scaled = [k for k, row in results.items() if row["scaling"] >= MIN_SCALING]
    assert len(scaled) >= MIN_SCALING_APPS, (
        f"only {scaled} reached {MIN_SCALING}x scaling: "
        f"{ {k: row['scaling'] for k, row in results.items()} }"
    )
