"""Whole-chip streaming throughput: 1 vs 4 vs 6 engines (Section 11).

The paper reports line-card throughput on the full IXP1200 — six
micro-engines, four hardware threads each, workers pulling packets from
per-engine receive rings behind a flow-hash dispatch stage.  This
benchmark drives each allocated application (AES, Kasumi, NAT) through
``repro.ixp.net`` with a saturating backlog (per-engine RX rings sized
to the whole stream, so queueing — not drops — absorbs the burst) on 1,
4 and 6 engines and records cycles, throughput and latency percentiles
to ``BENCH_net.json`` at the repo root.  A second block re-runs the
full chip at the paper's own payload sizes (AES 16-byte blocks, Kasumi
8-byte blocks, NAT 40-byte headers) so EXPERIMENTS.md can put measured
whole-chip Mb/s directly against the paper's published numbers.
``benchmarks/net_smoke.py`` reads the file in CI and fails on
scaling/validation regressions.

Everything here is *simulated* time, so the numbers are deterministic
for a given allocation — the scaling ratio is a property of the code,
the steering and the memory-port model, not of the host machine.
"""

import json
import pathlib
import sys

from repro.ixp.net import NetConfig, run_stream, stream_app

from benchmarks.conftest import print_table

ROOT = pathlib.Path(__file__).resolve().parent.parent
BENCH_FILE = ROOT / "BENCH_net.json"

#: (fixture name, stream adapter name, payload-size distribution)
BENCHES = [
    ("AES", "aes", (16, 32, 64)),
    ("Kasumi", "kasumi", (8, 16, 32)),
    ("NAT", "nat", None),
]

#: the paper's Section 11 operating points (payload sizes and published
#: whole-chip Mb/s); NAT's table has no direct Mb/s figure.
PAPER = {
    "aes": {"payload_bytes": (16,), "paper_mbps": 270},
    "kasumi": {"payload_bytes": (8,), "paper_mbps": 320},
    "nat": {"payload_bytes": None, "paper_mbps": None},
}

PACKETS = 96
THREADS = 4
SEED = 7
ENGINE_COUNTS = (1, 4, 6)

#: the acceptance bar: 4 engines must deliver at least this much more
#: throughput than 1 on at least MIN_SCALING_APPS of the three apps,
#: and the full chip must scale strictly beyond the 4-engine run.
MIN_SCALING = 2.5
MIN_SCALING_APPS = 2


def _run(name: str, comp, sizes, engines: int):
    config = NetConfig(
        engines=engines,
        threads=THREADS,
        # every per-engine ring holds the whole backlog, so even a
        # worst-case flow-hash pileup on one engine cannot drop
        rx_capacity=PACKETS + 4,
        tx_capacity=32,
        packets=PACKETS,
        seed=SEED,
        arrival="backlog",
    )
    return run_stream(stream_app(name, comp, sizes), config)


def write_bench_file(results: dict, paper: dict) -> None:
    """Persist results; the baseline block is frozen once recorded.

    Baselines recorded before the whole-chip scale-out (no
    ``scaling_6e`` key) are discarded — the per-engine-ring topology
    changed every number's meaning, so they are not comparable.
    """
    data = {
        "meta": {
            "benchmark": "benchmarks/test_net_throughput.py",
            "units": {
                "cycles": "simulated cycles to drain the stream",
                "mbps": "payload Mbit/s at the 233 MHz IXP1200 clock",
            },
            "packets": PACKETS,
            "threads": THREADS,
            "seed": SEED,
            "engine_counts": list(ENGINE_COUNTS),
            "python": sys.version.split()[0],
        },
        "results": results,
        "paper": paper,
    }
    baseline = None
    if BENCH_FILE.exists():
        try:
            baseline = json.loads(BENCH_FILE.read_text()).get("baseline")
        except (OSError, ValueError):
            baseline = None
    if baseline and any(
        "scaling_6e" not in row for row in baseline.values()
    ):
        baseline = None  # pre-scale-out schema: not comparable
    data["baseline"] = baseline or {
        key: {
            "mbps_6e": row["mbps_6e"],
            "scaling_4e": row["scaling_4e"],
            "scaling_6e": row["scaling_6e"],
        }
        for key, row in results.items()
    }
    BENCH_FILE.write_text(json.dumps(data, indent=2, sort_keys=True) + "\n")


def test_net_throughput_table(compiled_apps):
    rows = []
    results = {}
    paper = {}
    for fixture_name, stream_name, sizes in BENCHES:
        _, comp = compiled_apps[fixture_name]
        runs = {}
        for engines in ENGINE_COUNTS:
            result = _run(stream_name, comp, sizes, engines)
            assert result.completed == result.generated == PACKETS
            assert result.dropped == 0, "backlog config must not drop"
            assert result.inflight == 0
            assert not result.mismatches, (
                f"{stream_name}/{engines}e: {len(result.mismatches)} packets "
                "diverged from the reference implementation"
            )
            runs[engines] = result
        one, four, six = (runs[n] for n in ENGINE_COUNTS)
        scaling_4e = one.cycles / four.cycles
        scaling_6e = one.cycles / six.cycles
        results[stream_name] = {
            "cycles_1e": one.cycles,
            "cycles_4e": four.cycles,
            "cycles_6e": six.cycles,
            "mbps_1e": round(one.mbps, 3),
            "mbps_4e": round(four.mbps, 3),
            "mbps_6e": round(six.mbps, 3),
            "scaling_4e": round(scaling_4e, 2),
            "scaling_6e": round(scaling_6e, 2),
            "completed": six.completed,
            "dropped": six.dropped,
            "mismatches": len(six.mismatches),
            "latency_p50_6e": six.percentile(50),
            "latency_p95_6e": six.percentile(95),
            "rx_high_water_6e": six.rx_high_water,
            "steered_6e": six.steered,
        }
        # The paper-comparison run: full chip at the paper's payload
        # sizes.  Measured whole-chip Mb/s lands next to the published
        # figure (EXPERIMENTS.md Section 11 table).
        published = PAPER[stream_name]
        chip = _run(
            stream_name, comp, published["payload_bytes"], engines=6
        )
        assert chip.completed == PACKETS and not chip.mismatches
        paper[stream_name] = {
            "payload_bytes": (
                list(published["payload_bytes"])
                if published["payload_bytes"]
                else [40]
            ),
            "paper_mbps": published["paper_mbps"],
            "ours_mbps_6e": round(chip.mbps, 3),
            "latency_p95": chip.percentile(95),
        }
        rows.append(
            [
                stream_name,
                one.cycles,
                four.cycles,
                six.cycles,
                f"{six.mbps:.1f}",
                f"{scaling_4e:.2f}x",
                f"{scaling_6e:.2f}x",
                six.percentile(95),
            ]
        )
    print_table(
        f"Streaming throughput: 1/4/6 engines ({PACKETS} packets, "
        f"{THREADS} threads/engine, flow steering)",
        ["app", "cyc 1e", "cyc 4e", "cyc 6e", "mbps 6e", "scale 4e",
         "scale 6e", "p95 6e"],
        rows,
    )
    paper_rows = [
        [
            name,
            "/".join(str(b) for b in row["payload_bytes"]),
            row["paper_mbps"] if row["paper_mbps"] is not None else "-",
            f"{row['ours_mbps_6e']:.1f}",
        ]
        for name, row in paper.items()
    ]
    print_table(
        "Whole-chip (6x4) vs the paper's published Mb/s",
        ["app", "payload B", "paper", "ours"],
        paper_rows,
    )
    write_bench_file(results, paper)
    scaled = [
        k for k, row in results.items() if row["scaling_4e"] >= MIN_SCALING
    ]
    assert len(scaled) >= MIN_SCALING_APPS, (
        f"only {scaled} reached {MIN_SCALING}x 4-engine scaling: "
        f"{ {k: row['scaling_4e'] for k, row in results.items()} }"
    )
    beyond = [
        k
        for k, row in results.items()
        if row["scaling_6e"] > row["scaling_4e"]
    ]
    assert len(beyond) >= MIN_SCALING_APPS, (
        f"the full chip must out-scale 4 engines on at least "
        f"{MIN_SCALING_APPS} apps; only {beyond} did: "
        f"{ {k: (row['scaling_4e'], row['scaling_6e']) for k, row in results.items()} }"
    )
