"""Section 7 ablation: the A-over-B bias.

"We also added a small bias towards using A registers over B registers
since we found that this speeds up the ILP solver."

The bias breaks the A/B symmetry: without it, every solution has a
mirror image with A and B swapped and branch-and-bound explores both.
Reproduced claims: the bias does not change the move/spill quality
(objective differs only by the 1% bias term), and solve times are
reported side by side.
"""

import time

from repro.alloc.ilpmodel import ModelOptions, build_model, extract_solution
from repro.ilp.solve import solve_model

from benchmarks.conftest import print_table


def _solve(graph, bias):
    am = build_model(graph, ModelOptions(a_bank_bias=bias))
    start = time.perf_counter()
    sol = solve_model(am.model)
    seconds = time.perf_counter() - start
    assert sol.status == "optimal"
    return extract_solution(am, sol), seconds


def test_bias_quality_unchanged(virtual_apps):
    rows = []
    for name in ("NAT", "Kasumi"):
        graph = virtual_apps[name][1].flowgraph
        with_bias, seconds_with = _solve(graph, 1.01)
        without, seconds_without = _solve(graph, 1.0)
        rows.append(
            [
                name,
                round(seconds_with, 2),
                with_bias.move_count,
                round(seconds_without, 2),
                without.move_count,
            ]
        )
        assert with_bias.spills == without.spills
        # The bias must not buy solver speed with extra moves.
        assert with_bias.move_count <= without.move_count + 1
    print_table(
        "Section 7: A-over-B bias ablation",
        ["program", "bias s", "bias moves", "no-bias s", "no-bias moves"],
        rows,
    )


def test_solve_speed_with_bias(benchmark, virtual_apps):
    graph = virtual_apps["NAT"][1].flowgraph
    benchmark.pedantic(lambda: _solve(graph, 1.01), rounds=1, iterations=1)


def test_solve_speed_without_bias(benchmark, virtual_apps):
    graph = virtual_apps["NAT"][1].flowgraph
    benchmark.pedantic(lambda: _solve(graph, 1.0), rounds=1, iterations=1)
