"""Section 11: the two-phase objective variant.

"We have experimented with another objective function that lets us
determine whether spills are required at all, and if so, where.  Once
this has been determined many of the variables and constraints involving
memory can be eliminated, resulting in a much smaller linear program.
...(which gave solve times of 9 seconds for AES and 19.2 seconds for
NAT)" — versus 35.9 s and 155.6 s for the one-shot model.

Reproduced claims: phase 1 finds zero spills for the applications, the
phase-2 model (no M bank) is substantially smaller than the one-shot
model, and the final allocation has the same moves/spills quality.
"""

import pytest

from benchmarks.conftest import APP_BUILDERS, print_table
from repro.compiler import CompileOptions, compile_nova


def _compile(name: str, two_phase: bool):
    app = APP_BUILDERS[name]()
    options = CompileOptions()
    options.alloc.two_phase = two_phase
    options.alloc.solve.time_limit = 900
    return compile_nova(app.source, options=options)


@pytest.fixture(scope="module")
def both_variants():
    out = {}
    for name in ("AES", "NAT"):
        out[name] = (_compile(name, False), _compile(name, True))
    return out


def test_two_phase_table(both_variants):
    rows = []
    for name, (one_shot, two_phase) in both_variants.items():
        rows.append(
            [
                name,
                one_shot.alloc.variables,
                round(one_shot.alloc.integer_seconds, 2),
                two_phase.alloc.variables,
                round(two_phase.alloc.integer_seconds, 2),
                round(two_phase.alloc.two_phase_seconds or 0, 2),
            ]
        )
    print_table(
        "Two-phase objective (paper: AES 35.9s -> 9s, NAT 155.6s -> 19.2s)",
        [
            "program",
            "one-shot vars",
            "one-shot int s",
            "phase-2 vars",
            "phase-2 int s",
            "phase-1 s",
        ],
        rows,
    )
    for name, (one_shot, two_phase) in both_variants.items():
        # Phase 1 found no spills, so phase 2 dropped the M bank: the
        # model must shrink substantially.
        assert two_phase.alloc.spills == 0
        assert two_phase.alloc.variables < 0.8 * one_shot.alloc.variables
        # Solution quality is unchanged.
        assert two_phase.alloc.spills == one_shot.alloc.spills
        assert two_phase.alloc.status == "optimal"


def test_two_phase_speed_aes(benchmark):
    benchmark.pedantic(
        lambda: _compile("AES", True), rounds=1, iterations=1
    )


def test_one_shot_speed_aes(benchmark):
    benchmark.pedantic(
        lambda: _compile("AES", False), rounds=1, iterations=1
    )
