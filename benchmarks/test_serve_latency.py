"""``novac serve`` latency and the solver-portfolio race.

Two claims from the daemon's design get measured and recorded to
``BENCH_serve.json`` at the repo root:

1. **Served warm hits are at least 10x faster than cold in-process
   compiles.**  The daemon's whole point is amortization — one process
   pays for imports, the cache, and the pool; every subsequent
   identical compile is a hot-LRU replay.  Measured over the example
   programs as client-observed round-trip latency (p50/p95 of
   ``WARM_REQUESTS`` requests) against a wall-clock in-process
   ``compile_nova``.

2. **The portfolio race costs at most 10% over the faster of its two
   engines.**  On the paper's Figure 5-7 applications (AES / Kasumi /
   NAT) the allocation ILP is solved under ``highs`` alone, ``bnb``
   alone (time-capped — on these models it typically cannot finish),
   cold ``portfolio``, and warm ``portfolio`` (hint recorded by the
   cold run).  Wall-clock, one round each, since a single solve is
   seconds.

``benchmarks/serve_smoke.py`` exercises the daemon lifecycle in CI;
this file is the locally-run measurement (like the Figure 7 table).
"""

import json
import pathlib
import sys
import time

import pytest

from repro.alloc.ilpmodel import ModelOptions, build_model
from repro.compiler import CompileOptions, compile_from_front, parse_front
from repro.ilp.solve import SolveOptions, solve_model
from repro.serve import hint_key_for

from benchmarks.conftest import APP_BUILDERS, print_table

ROOT = pathlib.Path(__file__).resolve().parent.parent
BENCH_FILE = ROOT / "BENCH_serve.json"

EXAMPLES = ["classify.nova", "ring_sum.nova", "ttl_decrement.nova"]

WARM_REQUESTS = 30

#: the tentpole's acceptance floor: served warm hit vs cold in-process.
MIN_WARM_SPEEDUP = 10.0

#: the race may cost at most this factor over its faster engine, plus a
#: constant slack absorbing thread spin-up on sub-second solves.
RACE_OVERHEAD_FACTOR = 1.10
RACE_OVERHEAD_SLACK_S = 0.5


def _percentile(sorted_values, pct):
    import math

    rank = max(1, math.ceil(pct / 100.0 * len(sorted_values)))
    return sorted_values[rank - 1]


# --------------------------------------------------------------------------
# Claim 1: served warm hits vs cold in-process compiles
# --------------------------------------------------------------------------


def _measure_serving(tmp_path):
    import threading
    import asyncio

    from repro.client import ServeClient, try_connect
    from repro.compiler import compile_nova
    from repro.serve import CompileServer, ServeConfig

    config = ServeConfig(
        socket=str(tmp_path / "bench.sock"),
        cache_dir=str(tmp_path / "cache"),
        jobs=2,
    )
    daemon = CompileServer(config)
    thread = threading.Thread(
        target=lambda: asyncio.run(daemon.run()), daemon=True
    )
    thread.start()
    client = None
    for _ in range(200):
        client = try_connect(config.socket, timeout=1.0)
        if client is not None:
            break
        time.sleep(0.05)
    assert client is not None, "daemon never came up"

    results = {}
    with client:
        for name in EXAMPLES:
            source = (ROOT / "examples" / name).read_text()
            start = time.perf_counter()
            compile_nova(source, name)
            cold_ms = (time.perf_counter() - start) * 1000

            client.compile_source(source, name)  # populate (pool compile)
            client.compile_source(source, name)  # promote to hot
            warm = []
            for _ in range(WARM_REQUESTS):
                start = time.perf_counter()
                body = client.compile_source(source, name)
                warm.append((time.perf_counter() - start) * 1000)
                assert body["cache"] == "hot"
            warm.sort()
            results[name] = {
                "cold_inprocess_ms": round(cold_ms, 3),
                "warm_p50_ms": round(_percentile(warm, 50), 3),
                "warm_p95_ms": round(_percentile(warm, 95), 3),
                "speedup_p50": round(cold_ms / _percentile(warm, 50), 1),
            }
        client.shutdown()
    thread.join(timeout=30)
    return results


# --------------------------------------------------------------------------
# Claim 2: the portfolio race on the Figure 5-7 applications
# --------------------------------------------------------------------------


def _build_alloc_model(name):
    """The allocation ILP for one paper app (allocator not yet run)."""
    app = APP_BUILDERS[name]()
    options = CompileOptions()
    options.run_allocator = False
    comp = compile_from_front(parse_front(app.source, name), options)
    return app, build_model(comp.flowgraph, ModelOptions())


def _timed_solve(model, solve_options):
    start = time.perf_counter()
    solution = solve_model(model, solve_options)
    return solution, time.perf_counter() - start


def _measure_portfolio(tmp_path):
    results = {}
    for name in APP_BUILDERS:
        app, am = _build_alloc_model(name)
        am.model.standard_form()  # pre-warm the memo for every engine

        _, highs_s = _timed_solve(am.model, SolveOptions(engine="highs"))
        # bnb alone rarely finishes on paper-scale models; cap it so the
        # row records "how far it got", not an unbounded wait.
        bnb_cap = max(10.0, 2.0 * highs_s)
        bnb_solution, bnb_s = _timed_solve(
            am.model, SolveOptions(engine="bnb", time_limit=bnb_cap)
        )

        hint_dir = tmp_path / "hints"
        opts = CompileOptions()
        key = hint_key_for(app.source, opts)
        cold_opts = SolveOptions(
            engine="portfolio", hint_dir=str(hint_dir), hint_key=key
        )
        cold_solution, cold_s = _timed_solve(am.model, cold_opts)
        warm_solution, warm_s = _timed_solve(am.model, cold_opts)

        assert cold_solution.status == "optimal"
        assert warm_solution.status == "optimal"
        results[name] = {
            "highs_s": round(highs_s, 3),
            "bnb_s": round(bnb_s, 3),
            "bnb_status": bnb_solution.status,
            "portfolio_cold_s": round(cold_s, 3),
            "portfolio_warm_s": round(warm_s, 3),
        }
    return results


# --------------------------------------------------------------------------
# The table + BENCH_serve.json
# --------------------------------------------------------------------------


def write_bench_file(serving, portfolio):
    """Persist results; the baseline block is frozen once recorded."""
    data = {
        "meta": {
            "benchmark": "benchmarks/test_serve_latency.py",
            "units": {
                "serving": "client round-trip ms vs in-process compile ms",
                "portfolio": "wall seconds per allocation ILP solve",
            },
            "timer": "time.perf_counter",
            "python": sys.version.split()[0],
        },
        "results": {"serving": serving, "portfolio": portfolio},
    }
    baseline = None
    if BENCH_FILE.exists():
        try:
            baseline = json.loads(BENCH_FILE.read_text()).get("baseline")
        except (OSError, ValueError):
            baseline = None
    data["baseline"] = baseline or {
        "serving": {
            name: {
                "warm_p50_ms": row["warm_p50_ms"],
                "speedup_p50": row["speedup_p50"],
            }
            for name, row in serving.items()
        },
        "portfolio": {
            name: {
                "highs_s": row["highs_s"],
                "portfolio_cold_s": row["portfolio_cold_s"],
                "portfolio_warm_s": row["portfolio_warm_s"],
            }
            for name, row in portfolio.items()
        },
    }
    BENCH_FILE.write_text(json.dumps(data, indent=2, sort_keys=True) + "\n")


def test_serve_latency_table(tmp_path):
    serving = _measure_serving(tmp_path)
    portfolio = _measure_portfolio(tmp_path)

    print_table(
        "novac serve: warm hit vs cold in-process compile",
        ["program", "cold ms", "warm p50 ms", "warm p95 ms", "speedup"],
        [
            [
                name,
                row["cold_inprocess_ms"],
                row["warm_p50_ms"],
                row["warm_p95_ms"],
                f'{row["speedup_p50"]}x',
            ]
            for name, row in serving.items()
        ],
    )
    print_table(
        "solver portfolio: race vs single engines (allocation ILP)",
        ["app", "highs s", "bnb s", "bnb status", "cold s", "warm s"],
        [
            [
                name,
                row["highs_s"],
                row["bnb_s"],
                row["bnb_status"],
                row["portfolio_cold_s"],
                row["portfolio_warm_s"],
            ]
            for name, row in portfolio.items()
        ],
    )
    write_bench_file(serving, portfolio)

    for name, row in serving.items():
        assert row["speedup_p50"] >= MIN_WARM_SPEEDUP, (
            f"{name}: warm hit only {row['speedup_p50']}x faster than a "
            f"cold in-process compile"
        )
    for name, row in portfolio.items():
        fastest = min(row["highs_s"], row["bnb_s"])
        budget = fastest * RACE_OVERHEAD_FACTOR + RACE_OVERHEAD_SLACK_S
        assert row["portfolio_cold_s"] <= budget, (
            f"{name}: portfolio took {row['portfolio_cold_s']}s, over the "
            f"{budget:.2f}s race budget (fastest engine {fastest}s)"
        )
