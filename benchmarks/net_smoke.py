"""CI net smoke: BENCH_net.json regressions + a live whole-chip run.

Run after ``pytest benchmarks/test_net_throughput.py`` has refreshed the
``results`` block::

    PYTHONPATH=src python benchmarks/net_smoke.py

Checks (all on *simulated* cycles, so they are machine-independent):

- every packet of every recorded run validated against the reference
  implementation (zero mismatches), none were dropped (the benchmark
  sizes every per-engine RX ring to the whole backlog) and none were
  left in flight;
- 4-engine throughput is at least MIN_SCALING x the 1-engine run on at
  least MIN_SCALING_APPS of the three applications (AES and Kasumi are
  SRAM-table-bound, so perfect 4x is not expected — the paper's own
  Section 11 contention point);
- the full chip (6 engines) out-scales the 4-engine run on at least
  MIN_SCALING_APPS applications — per-engine rings must keep buying
  throughput past 4 engines;
- no app's scaling collapsed below the recorded baseline by more than
  SCALING_SLACK (an absolute ratio drop, catching e.g. a ring or port
  model change that serializes the engines).  Baselines from before the
  whole-chip scale-out (no ``scaling_6e``) are ignored — the topology
  change redefined the numbers;
- a **live 6x4 whole-chip pump**: a fresh virtual NAT stream on the
  paper's full topology must complete with zero mismatches and packet
  conservation (``generated == completed + dropped + inflight``);
- a **net-fuzz spot check**: a ten-scenario ``repro.fuzz.netgen``
  campaign (random program x traffic x topology, all metamorphic
  invariants) plus the three config-validation regression probes must
  come back clean;
- a **corpus spot check**: ``repro.fuzz.inject.corpus_probe`` must
  show the coverage-guided mutation loop catching the broken-steering
  injection from a near-miss corpus entry (with a <= 10 event shrunk
  witness) while fresh sampling at the same budget stays blind.
"""

import json
import pathlib
import sys

BENCH_FILE = pathlib.Path(__file__).resolve().parent.parent / "BENCH_net.json"

MIN_SCALING = 2.5
MIN_SCALING_APPS = 2
SCALING_SLACK = 0.5


def live_chip_smoke(failures: list) -> None:
    """Stream a seeded NAT backlog through the paper's 6x4 topology."""
    from repro.compiler import CompileOptions, compile_nova
    from repro.ixp.net import NetConfig, run_stream, stream_app

    from repro.apps import build_nat_app

    options = CompileOptions()
    options.run_allocator = False  # virtual: fast, deterministic
    comp = compile_nova(build_nat_app().source, "nat.nova", options)
    config = NetConfig(
        engines=6, threads=4, packets=48, seed=11, arrival="backlog",
        rx_capacity=52, tx_capacity=16,
    )
    result = run_stream(stream_app("nat", comp), config)
    conserved = (
        result.generated
        == result.completed + result.dropped + result.inflight
    )
    print(
        f"live 6x4 pump: generated={result.generated} "
        f"completed={result.completed} dropped={result.dropped} "
        f"inflight={result.inflight} mismatches={len(result.mismatches)} "
        f"steered={result.steered}"
    )
    if result.mismatches:
        failures.append(
            f"live 6x4 pump: {len(result.mismatches)} reference mismatches"
        )
    if not conserved:
        failures.append("live 6x4 pump: packet conservation violated")
    if result.completed != result.generated:
        failures.append(
            f"live 6x4 pump: only {result.completed}/{result.generated} "
            "packets completed"
        )
    if sum(result.steered) != result.generated:
        failures.append("live 6x4 pump: steering lost packets")


def live_netfuzz_smoke(failures: list) -> None:
    """A tiny streaming-scenario fuzz campaign as a CI tripwire."""
    from repro.fuzz.netgen import run_net_campaign

    result = run_net_campaign(seed=0, count=10, shrink_findings=False)
    summary = result.summary()
    print(
        f"live netfuzz: {summary['ok']}/{summary['scenarios']} scenarios ok, "
        f"{summary['invalid']} invalid, {summary['probe_failures']} probe "
        f"failures in {summary['seconds']:.1f}s"
    )
    for failure in result.probe_failures:
        failures.append(f"netfuzz validation probe: {failure}")
    for unit in result.failed:
        failures.append(
            f"netfuzz seed {unit.seed}: "
            + (unit.invalid or "; ".join(unit.violations))
        )


def live_corpus_smoke(failures: list) -> None:
    """The corpus mutation loop must out-hunt fresh sampling."""
    from repro.fuzz.inject import corpus_probe

    outcome = corpus_probe()
    print(
        f"live corpus probe: corpus_found_in={outcome['corpus_found_in']} "
        f"fresh_found_in={outcome['fresh_found_in']} "
        f"mutation={outcome['mutation']} "
        f"witness_events={outcome['witness_events']}"
    )
    if outcome["corpus_found_in"] is None:
        failures.append(
            "corpus probe: mutation loop missed broken_steering"
        )
    elif outcome["witness_events"] > 10:
        failures.append(
            f"corpus probe: witness has {outcome['witness_events']} "
            "events (want <= 10)"
        )
    if outcome["fresh_found_in"] is not None:
        failures.append(
            "corpus probe: fresh window is no longer blind — repin "
            "fresh_start in repro.fuzz.inject.corpus_probe"
        )


def main() -> int:
    if not BENCH_FILE.exists():
        print(f"net_smoke: {BENCH_FILE} missing — run "
              "`pytest benchmarks/test_net_throughput.py` first",
              file=sys.stderr)
        return 2
    data = json.loads(BENCH_FILE.read_text())
    results = data.get("results", {})
    baseline = data.get("baseline", {})
    if not results:
        print("net_smoke: no results recorded", file=sys.stderr)
        return 2

    failures = []
    header = (f"{'app':<8} {'cyc 1e':>10} {'cyc 4e':>10} {'cyc 6e':>10} "
              f"{'mbps 6e':>10} {'scal 4e':>8} {'scal 6e':>8} {'mism':>5}")
    print(header)
    print("-" * len(header))
    scaled = 0
    chip_beyond = 0
    for app, row in sorted(results.items()):
        scaling_4e = row["scaling_4e"]
        scaling_6e = row["scaling_6e"]
        print(f"{app:<8} {row['cycles_1e']:>10,} {row['cycles_4e']:>10,} "
              f"{row['cycles_6e']:>10,} {row['mbps_6e']:>10,.1f} "
              f"{scaling_4e:>7.2f}x {scaling_6e:>7.2f}x "
              f"{row['mismatches']:>5}")
        if row["mismatches"]:
            failures.append(f"{app}: {row['mismatches']} reference mismatches")
        if row["dropped"]:
            failures.append(f"{app}: {row['dropped']} drops in no-drop config")
        if row.get("inflight"):
            failures.append(f"{app}: {row['inflight']} packets unaccounted")
        if scaling_4e >= MIN_SCALING:
            scaled += 1
        if scaling_6e > scaling_4e:
            chip_beyond += 1
        base = baseline.get(app, {})
        for key in ("scaling_4e", "scaling_6e"):
            recorded = base.get(key)
            if recorded is not None and row[key] < recorded - SCALING_SLACK:
                failures.append(
                    f"{app}: {key} {row[key]:.2f}x fell more than "
                    f"{SCALING_SLACK} below recorded baseline "
                    f"{recorded:.2f}x"
                )
    if scaled < MIN_SCALING_APPS:
        failures.append(
            f"only {scaled} app(s) reached {MIN_SCALING}x 4-engine scaling "
            f"(need {MIN_SCALING_APPS})"
        )
    if chip_beyond < MIN_SCALING_APPS:
        failures.append(
            f"only {chip_beyond} app(s) out-scaled 4 engines on the full "
            f"chip (need {MIN_SCALING_APPS})"
        )
    live_chip_smoke(failures)
    live_netfuzz_smoke(failures)
    live_corpus_smoke(failures)
    for failure in failures:
        print(f"net_smoke: FAIL {failure}", file=sys.stderr)
    if not failures:
        print("net_smoke: ok")
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
