"""CI net smoke: read BENCH_net.json and fail on streaming regressions.

Run after ``pytest benchmarks/test_net_throughput.py`` has refreshed the
``results`` block::

    PYTHONPATH=src python benchmarks/net_smoke.py

Checks (all on *simulated* cycles, so they are machine-independent):

- every packet of every recorded run validated against the reference
  implementation (zero mismatches) and none were dropped (the benchmark
  config sizes the RX ring to the whole backlog);
- 4-engine throughput is at least MIN_SCALING x the 1-engine run on at
  least MIN_SCALING_APPS of the three applications (AES and Kasumi are
  SRAM-table-bound, so perfect 4x is not expected — the paper's own
  Section 11 contention point);
- no app's scaling collapsed below the recorded baseline by more than
  SCALING_SLACK (an absolute ratio drop, catching e.g. a ring or port
  model change that serializes the engines).
"""

import json
import pathlib
import sys

BENCH_FILE = pathlib.Path(__file__).resolve().parent.parent / "BENCH_net.json"

MIN_SCALING = 2.5
MIN_SCALING_APPS = 2
SCALING_SLACK = 0.5


def main() -> int:
    if not BENCH_FILE.exists():
        print(f"net_smoke: {BENCH_FILE} missing — run "
              "`pytest benchmarks/test_net_throughput.py` first",
              file=sys.stderr)
        return 2
    data = json.loads(BENCH_FILE.read_text())
    results = data.get("results", {})
    baseline = data.get("baseline", {})
    if not results:
        print("net_smoke: no results recorded", file=sys.stderr)
        return 2

    failures = []
    header = (f"{'app':<8} {'cyc 1e':>10} {'cyc 4e':>10} {'mbps 4e':>10} "
              f"{'scaling':>8} {'mism':>5}")
    print(header)
    print("-" * len(header))
    scaled = 0
    for app, row in sorted(results.items()):
        scaling = row["scaling"]
        print(f"{app:<8} {row['cycles_1e']:>10,} {row['cycles_4e']:>10,} "
              f"{row['mbps_4e']:>10,.1f} {scaling:>7.2f}x "
              f"{row['mismatches']:>5}")
        if row["mismatches"]:
            failures.append(f"{app}: {row['mismatches']} reference mismatches")
        if row["dropped"]:
            failures.append(f"{app}: {row['dropped']} drops in no-drop config")
        if scaling >= MIN_SCALING:
            scaled += 1
        base = baseline.get(app, {}).get("scaling")
        if base is not None and scaling < base - SCALING_SLACK:
            failures.append(
                f"{app}: scaling {scaling:.2f}x fell more than "
                f"{SCALING_SLACK} below recorded baseline {base:.2f}x"
            )
    if scaled < MIN_SCALING_APPS:
        failures.append(
            f"only {scaled} app(s) reached {MIN_SCALING}x 4-engine scaling "
            f"(need {MIN_SCALING_APPS})"
        )
    for failure in failures:
        print(f"net_smoke: FAIL {failure}", file=sys.stderr)
    if not failures:
        print("net_smoke: ok")
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
