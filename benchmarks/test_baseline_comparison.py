"""ILP allocation vs the heuristic baseline.

The paper's motivation: bank assignment and aggregate placement have "no
good published heuristics", and the state of the art drains every loaded
value into GPRs.  This benchmark quantifies the gap on the three
applications: register-register moves (static and dynamic) and simulated
cycles per packet for ILP-allocated vs baseline-allocated code.
"""

import pytest

from repro.alloc.baseline import allocate_baseline
from repro.ixp import isa
from repro.ixp.machine import Machine

from benchmarks.conftest import print_table


def _static_moves(graph) -> int:
    return sum(
        1
        for _, _, instr in graph.instructions()
        if isinstance(instr, isa.Move)
    )


def test_ilp_beats_baseline_on_moves(compiled_apps):
    rows = []
    for name, (_, comp) in compiled_apps.items():
        baseline = allocate_baseline(comp.flowgraph)
        ilp_static = _static_moves(comp.physical)
        rows.append(
            [
                name,
                comp.alloc.moves,
                ilp_static,
                baseline.moves,
                baseline.spills,
                comp.alloc.spills,
            ]
        )
    print_table(
        "ILP vs baseline (drain/stage heuristic)",
        [
            "program",
            "ILP moves (model)",
            "ILP moves (static)",
            "baseline moves",
            "baseline spills",
            "ILP spills",
        ],
        rows,
    )
    for row in rows:
        name, ilp_model_moves, ilp_static, base_moves = row[0], row[1], row[2], row[3]
        assert base_moves > ilp_static, (
            f"{name}: the ILP should need fewer moves than drain/stage"
        )


def test_baseline_code_is_correct_when_colorable(compiled_apps):
    """When the baseline manages to color, its code must still work."""
    from repro.apps.driver import run_physical_threads

    name = "Kasumi"
    app, comp = compiled_apps[name]
    baseline = allocate_baseline(comp.flowgraph)
    if baseline.physical is None:
        pytest.skip("baseline spilled; no runnable code")
    # Execute one packet on both and compare the ciphertext.
    from repro.ixp.memory import MemorySystem

    results = []
    for graph, locations in (
        (comp.physical, comp.alloc.decoded.input_locations),
        (baseline.physical, _baseline_locations(comp, baseline)),
    ):
        memory = MemorySystem.create()
        for space, chunks in app.memory_image.items():
            for addr, words in chunks:
                memory[space].load_words(addr, words)
        raw = comp.make_inputs(**app.inputs)
        physical_inputs = {}
        for temp, value in raw.items():
            loc = locations.get(temp)
            if loc is None:
                continue
            kind, where = loc
            physical_inputs[(where.bank, where.index)] = value

        def provider(tid, iteration, inputs=physical_inputs):
            return dict(inputs) if iteration == 0 else None

        machine = Machine(
            graph, memory=memory, physical=True, input_provider=provider
        )
        run = machine.run()
        results.append(
            (run.results, memory["sdram"].dump_words(app.payload_base, 2))
        )
    assert results[0] == results[1]


def _baseline_locations(comp, baseline):
    from repro.alloc.baseline import baseline_input_locations

    return baseline_input_locations(comp.flowgraph, baseline)


def test_ilp_beats_baseline_on_cycles(compiled_apps):
    """Dynamic comparison: cycles per packet, when both runnable."""
    from repro.ixp.memory import MemorySystem

    rows = []
    for name, (app, comp) in compiled_apps.items():
        baseline = allocate_baseline(comp.flowgraph)
        if baseline.physical is None:
            continue

        def run(graph, locations):
            memory = MemorySystem.create()
            for space, chunks in app.memory_image.items():
                for addr, words in chunks:
                    memory[space].load_words(addr, words)
            raw = comp.make_inputs(**app.inputs)
            inputs = {}
            for temp, value in raw.items():
                loc = locations.get(temp)
                if loc is not None:
                    inputs[(loc[1].bank, loc[1].index)] = value

            def provider(tid, iteration):
                return dict(inputs) if iteration == 0 else None

            machine = Machine(
                graph, memory=memory, physical=True, input_provider=provider
            )
            return machine.run().cycles

        ilp_cycles = run(comp.physical, comp.alloc.decoded.input_locations)
        base_cycles = run(
            baseline.physical, _baseline_locations(comp, baseline)
        )
        rows.append([name, ilp_cycles, base_cycles,
                     round(base_cycles / ilp_cycles, 2)])
    print_table(
        "Cycles per packet: ILP vs baseline",
        ["program", "ILP cycles", "baseline cycles", "ratio"],
        rows,
    )
    assert rows, "at least one app should be baseline-colorable"
    for row in rows:
        assert row[2] >= row[1], f"{row[0]}: baseline should not be faster"


def test_baseline_speed(benchmark, compiled_apps):
    graph = compiled_apps["AES"][1].flowgraph
    benchmark(lambda: allocate_baseline(graph))
