"""Figure 7: solver statistics — the paper's headline table.

Paper's values (CPLEX on an 800 MHz dual Pentium-III, 2 GB):

            Root(s)  Integer(s)  Vars(k)  Cons(k)  ObjTerms(k)  Moves  Spills
  AES        30.4      35.9       108      102       37          25      0
  Kasumi     48.2      59.2       138      131       50          20      0
  NAT        69.2     155.6       208      203       72          60      0

Ours use scipy's HiGHS instead of CPLEX and today's hardware, so the
absolute times differ; the claims that must reproduce are:

- the models stay *practical* (10^4-10^5 variables, solved to optimality
  in seconds-to-minutes, "compile times short enough to accommodate an
  edit-compile-debug cycle"),
- **zero spills** for all three applications,
- inter-bank moves in the tens at most,
- NAT's model largest relative to its program (pack-heavy).

The benchmark times the full ILP solve per application (one round —
each solve takes seconds).
"""

import pytest

from benchmarks.conftest import compile_app, print_table, span_counters

PAPER_FIG7 = {
    "AES": (30.4, 35.9, 108, 102, 37, 25, 0),
    "Kasumi": (48.2, 59.2, 138, 131, 50, 20, 0),
    "NAT": (69.2, 155.6, 208, 203, 72, 60, 0),
}


def test_fig7_table(compiled_apps):
    # Figure 7 is assembled from the tracer's spans: model sizes from the
    # ``model`` span, solver timings/nodes from ``solve``, and the
    # decoded moves/spills from the ``allocate`` summary span.
    rows = []
    for name, (_, comp) in compiled_apps.items():
        model = span_counters(comp, "model")
        solve = span_counters(comp, "solve")
        alloc = span_counters(comp, "allocate")
        assert solve["nodes"] >= 0  # solver node count is always recorded
        rows.append(
            [
                name,
                round(solve["root_relaxation_seconds"], 2),
                round(solve["integer_seconds"], 2),
                round(model["variables"] / 1000, 1),
                round(model["constraints"] / 1000, 1),
                round(model["objective_terms"] / 1000, 1),
                alloc["moves"],
                alloc["spills"],
                alloc["status"],
            ]
        )
    print_table(
        "Figure 7: solver statistics (this reproduction, HiGHS)",
        ["program", "root s", "int s", "vars k", "cons k", "obj k", "moves", "spills", "status"],
        rows,
    )
    print_table(
        "Figure 7: paper's values (CPLEX, 800 MHz P-III)",
        ["program", "root s", "int s", "vars k", "cons k", "obj k", "moves", "spills"],
        [[k, *v] for k, v in PAPER_FIG7.items()],
    )
    by_name = {row[0]: row for row in rows}
    for name in ("AES", "Kasumi", "NAT"):
        assert by_name[name][8] == "optimal"
        assert by_name[name][7] == 0, f"{name} must not spill (paper Fig 7)"
        assert by_name[name][6] <= 80, "moves should stay in the tens"
        # Model size in the practical 10^4..10^5 band.
        assert 1 <= by_name[name][3] <= 500


@pytest.mark.parametrize("name", ["AES", "Kasumi", "NAT"])
def test_ilp_solve_speed(benchmark, name):
    def solve():
        _, comp = compile_app(name)
        assert comp.alloc.status == "optimal"
        return comp

    benchmark.pedantic(solve, rounds=1, iterations=1)
