"""Sections 9-10 ablation: SSA/SSU make the coloring solvable.

The paper's write-side example (Section 9): assuming a transfer bank of
size four, without static single use form there would be no solution for

    sram(...) <- (X, a, b, c);
    sram(...) <- (a, b, c, X);

because point-independent colors would demand X at positions 0 and 3 at
once.  With our 8-register banks the same conflict arises for any two
positions of one variable.  Reproduced claims:

- with the SSU transform disabled, the model builder detects the
  conflicting aggregate positions and fails;
- with SSU on, clones make the same program allocate fine, and the
  decode drops the clones that stayed coalesced.
"""

import pytest

from repro.alloc.ilpmodel import ModelOptions, build_model
from repro.compiler import CompileOptions, compile_nova
from repro.errors import AllocError

from benchmarks.conftest import print_table

CONFLICT = """
fun main (addr, x, a, b, c) {
  sram(addr) <- (x, a, b, c);
  sram(addr + 8) <- (a, b, c, x);
  0
}
"""


def _compile(run_ssu: bool, run_allocator: bool = False):
    options = CompileOptions()
    options.run_ssu = run_ssu
    options.run_allocator = run_allocator
    return compile_nova(CONFLICT, options=options)


def test_without_ssu_coloring_is_unsolvable():
    comp = _compile(run_ssu=False)
    with pytest.raises(AllocError, match="conflicting aggregate positions"):
        build_model(comp.flowgraph, ModelOptions())


def test_with_ssu_program_allocates():
    comp = _compile(run_ssu=True, run_allocator=True)
    assert comp.alloc is not None
    assert comp.alloc.status == "optimal"
    assert comp.alloc.spills == 0
    assert comp.ssu_stats.clones_inserted >= 3  # x, a, b, c write copies
    print_table(
        "Sections 9-10: SSU ablation (conflicting write positions)",
        ["variant", "outcome", "clones", "moves"],
        [
            ["without SSU", "no feasible coloring", 0, "-"],
            [
                "with SSU",
                "optimal",
                comp.ssu_stats.clones_inserted,
                comp.alloc.moves,
            ],
        ],
    )


def test_ssu_cost_is_low(benchmark):
    """SSU itself is a cheap transform."""
    from repro.cps.ssu import to_ssu

    comp = _compile(run_ssu=False)
    benchmark(lambda: to_ssu(comp.ssu))
