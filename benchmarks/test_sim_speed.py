"""Simulator speed: pre-decoded closure path vs reference interpreter.

Runs the two Section 11 cipher benchmarks (AES at 16-byte payloads,
Kasumi at 8-byte payloads) on the allocated code under both execution
paths and records instructions/sec and simulated cycles/sec to
``BENCH_sim.json`` at the repo root.  ``benchmarks/perf_smoke.py`` reads
that file in CI and fails on pathological regressions.

Methodology: one small warmup run per path (populates the decode cache
and the interpreter's hot code), then one timed run of 40 packets per
thread on 4 threads.  Instructions executed are identical across paths
(the decode stage is observationally invisible — see
``tests/test_decode_parity.py``), so instructions/sec ratios are wall
-clock ratios.
"""

import json
import pathlib
import sys
import time

from repro.apps.driver import run_physical_threads

from benchmarks.conftest import print_table

ROOT = pathlib.Path(__file__).resolve().parent.parent
BENCH_FILE = ROOT / "BENCH_sim.json"

#: (app name, payload bytes, cipher block bytes)
BENCHES = [("AES", 16, 16), ("Kasumi", 8, 8)]

#: conservative floor for the decoded-path speedup asserted here (the
#: recorded numbers land well above; the floor only guards against the
#: decode path silently falling back to the interpreter)
MIN_SPEEDUP = 3.0


def _payload_words(payload_bytes: int) -> list[int]:
    data = bytes((i * 37 + 11) & 0xFF for i in range(payload_bytes))
    return [
        int.from_bytes(data[i : i + 4], "big") for i in range(0, len(data), 4)
    ]


def _measure(compiled_apps, name, payload_bytes, block, decode, packets=40):
    app, comp = compiled_apps[name]
    words = _payload_words(payload_bytes)
    kwargs = dict(
        threads=4,
        input_overrides={"nblocks": payload_bytes // block},
        decode=decode,
    )
    run_physical_threads(comp, app, words, packets_per_thread=2, **kwargs)
    start = time.perf_counter()
    result = run_physical_threads(
        comp, app, words, packets_per_thread=packets, **kwargs
    )
    seconds = time.perf_counter() - start
    run = result.run
    return run.instructions / seconds, run.cycles / seconds


def write_bench_file(results: dict) -> None:
    """Persist results; the baseline block is frozen once recorded."""
    data = {
        "meta": {
            "benchmark": "benchmarks/test_sim_speed.py",
            "units": {"ips": "simulated instructions/sec", "cps": "simulated cycles/sec"},
            "python": sys.version.split()[0],
        },
        "results": results,
    }
    baseline = None
    if BENCH_FILE.exists():
        try:
            baseline = json.loads(BENCH_FILE.read_text()).get("baseline")
        except (OSError, ValueError):
            baseline = None
    data["baseline"] = baseline or {
        key: {"ips_decoded": row["ips_decoded"], "ips_interp": row["ips_interp"]}
        for key, row in results.items()
    }
    BENCH_FILE.write_text(json.dumps(data, indent=2, sort_keys=True) + "\n")


def test_sim_speed_table(compiled_apps):
    rows = []
    results = {}
    for name, payload_bytes, block in BENCHES:
        key = f"{name}-{payload_bytes}"
        ips_dec, cps_dec = _measure(
            compiled_apps, name, payload_bytes, block, decode=True
        )
        ips_int, cps_int = _measure(
            compiled_apps, name, payload_bytes, block, decode=False
        )
        speedup = ips_dec / ips_int
        results[key] = {
            "ips_decoded": round(ips_dec),
            "ips_interp": round(ips_int),
            "cps_decoded": round(cps_dec),
            "cps_interp": round(cps_int),
            "speedup": round(speedup, 2),
        }
        rows.append(
            [
                key,
                f"{ips_dec / 1e6:.2f}M",
                f"{ips_int / 1e6:.2f}M",
                f"{cps_dec / 1e6:.2f}M",
                f"{speedup:.1f}x",
            ]
        )
    print_table(
        "Simulator speed: decoded vs interpreter (4 threads)",
        ["bench", "ips decoded", "ips interp", "cycles/s decoded", "speedup"],
        rows,
    )
    write_bench_file(results)
    for key, row in results.items():
        assert row["speedup"] >= MIN_SPEEDUP, (
            f"{key}: decoded path only {row['speedup']}x over the "
            f"interpreter (floor {MIN_SPEEDUP}x)"
        )
