"""Simulator speed: interpreter vs decoded closures vs compiled codegen.

Runs the two Section 11 cipher benchmarks (AES at 16-byte payloads,
Kasumi at 8-byte payloads) on the allocated code under all three
execution tiers and records instructions/sec and simulated cycles/sec to
``BENCH_sim.json`` at the repo root.  ``benchmarks/perf_smoke.py`` reads
that file in CI and fails on pathological regressions.

Methodology: ten short warmup runs per tier (populates the decode and
codegen caches *and* lets CPython 3.11 specialize the generated code —
code objects quicken only after ~8 calls, and the compiled tier's
whole-run loop is called once per run), then interleaved timed runs of
40 packets per thread on 4 threads, best of ``TIMED_REPS`` per tier.
Timing uses ``time.process_time`` so CPU steal on shared hosts cannot
distort the ratios.  Instructions executed are identical across tiers
(the decode and codegen stages are observationally invisible — see
``tests/test_decode_parity.py``), so instructions/sec ratios are
CPU-time ratios.
"""

import json
import pathlib
import sys
import time

from repro.apps.driver import run_physical_threads

from benchmarks.conftest import print_table

ROOT = pathlib.Path(__file__).resolve().parent.parent
BENCH_FILE = ROOT / "BENCH_sim.json"

#: (app name, payload bytes, cipher block bytes)
BENCHES = [("AES", 16, 16), ("Kasumi", 8, 8)]

MODES = ("interp", "decoded", "compiled")

WARMUP_RUNS = 10
TIMED_REPS = 5

#: conservative floor for the decoded-tier speedup asserted here (the
#: recorded numbers land well above; the floor only guards against the
#: decode path silently falling back to the interpreter)
MIN_SPEEDUP = 3.0

#: same idea one tier up: the codegen tier must beat the decoded tier
#: by a clear margin or it has silently fallen back / regressed (the
#: recorded ratio sits above 3x; the floor absorbs runner noise)
MIN_COMPILED_SPEEDUP = 2.5


def _payload_words(payload_bytes: int) -> list[int]:
    data = bytes((i * 37 + 11) & 0xFF for i in range(payload_bytes))
    return [
        int.from_bytes(data[i : i + 4], "big") for i in range(0, len(data), 4)
    ]


def _one_run(compiled_apps, name, payload_bytes, block, sim_mode, packets):
    app, comp = compiled_apps[name]
    words = _payload_words(payload_bytes)
    start = time.process_time()
    result = run_physical_threads(
        comp,
        app,
        words,
        packets_per_thread=packets,
        threads=4,
        input_overrides={"nblocks": payload_bytes // block},
        sim_mode=sim_mode,
    )
    seconds = time.process_time() - start
    run = result.run
    return run.instructions / seconds, run.cycles / seconds


def _measure(compiled_apps, name, payload_bytes, block):
    """Best-of ips/cps per tier, warmed and interleaved."""
    for mode in MODES:
        for _ in range(WARMUP_RUNS):
            _one_run(compiled_apps, name, payload_bytes, block, mode, 2)
    best = {mode: (0.0, 0.0) for mode in MODES}
    for _ in range(TIMED_REPS):
        for mode in MODES:
            ips, cps = _one_run(
                compiled_apps, name, payload_bytes, block, mode, 40
            )
            if ips > best[mode][0]:
                best[mode] = (ips, cps)
    return best


def write_bench_file(results: dict) -> None:
    """Persist results; the baseline block is frozen once recorded."""
    data = {
        "meta": {
            "benchmark": "benchmarks/test_sim_speed.py",
            "units": {"ips": "simulated instructions/sec", "cps": "simulated cycles/sec"},
            "timer": "time.process_time",
            "python": sys.version.split()[0],
        },
        "results": results,
    }
    baseline = None
    if BENCH_FILE.exists():
        try:
            baseline = json.loads(BENCH_FILE.read_text()).get("baseline")
        except (OSError, ValueError):
            baseline = None
    if baseline is not None and any(
        "ips_compiled" not in row for row in baseline.values()
    ):
        baseline = None  # re-freeze once: the old block predates the tier
    data["baseline"] = baseline or {
        key: {
            "ips_decoded": row["ips_decoded"],
            "ips_interp": row["ips_interp"],
            "ips_compiled": row["ips_compiled"],
        }
        for key, row in results.items()
    }
    BENCH_FILE.write_text(json.dumps(data, indent=2, sort_keys=True) + "\n")


def test_sim_speed_table(compiled_apps):
    rows = []
    results = {}
    for name, payload_bytes, block in BENCHES:
        key = f"{name}-{payload_bytes}"
        best = _measure(compiled_apps, name, payload_bytes, block)
        ips_int, cps_int = best["interp"]
        ips_dec, cps_dec = best["decoded"]
        ips_com, cps_com = best["compiled"]
        speedup = ips_dec / ips_int
        speedup_compiled = ips_com / ips_dec
        results[key] = {
            "ips_interp": round(ips_int),
            "ips_decoded": round(ips_dec),
            "ips_compiled": round(ips_com),
            "cps_interp": round(cps_int),
            "cps_decoded": round(cps_dec),
            "cps_compiled": round(cps_com),
            "speedup": round(speedup, 2),
            "speedup_compiled": round(speedup_compiled, 2),
        }
        rows.append(
            [
                key,
                f"{ips_int / 1e6:.2f}M",
                f"{ips_dec / 1e6:.2f}M",
                f"{ips_com / 1e6:.2f}M",
                f"{speedup:.1f}x",
                f"{speedup_compiled:.1f}x",
            ]
        )
    print_table(
        "Simulator speed: interp vs decoded vs compiled (4 threads)",
        [
            "bench",
            "ips interp",
            "ips decoded",
            "ips compiled",
            "dec/int",
            "com/dec",
        ],
        rows,
    )
    write_bench_file(results)
    for key, row in results.items():
        assert row["speedup"] >= MIN_SPEEDUP, (
            f"{key}: decoded tier only {row['speedup']}x over the "
            f"interpreter (floor {MIN_SPEEDUP}x)"
        )
        assert row["speedup_compiled"] >= MIN_COMPILED_SPEEDUP, (
            f"{key}: compiled tier only {row['speedup_compiled']}x over "
            f"the decoded tier (floor {MIN_COMPILED_SPEEDUP}x)"
        )
