"""Section 9 ablations: redundant constraints and model tightenings.

- "We found that adding a redundant set of constraints that immediately
  rules out a number of impossible allocations for an aggregate speeds
  up the solver" (aggregate position constraints).
- "We found that the second constraint (which is not necessary for
  correctness) improves solve times by tightening the model somewhat"
  (the upper bound on needsSpill).

Reproduced claims: with and without each, the optimum is identical; the
variants' solve times are reported side by side.
"""

import time

from repro.alloc.ilpmodel import ModelOptions, build_model, extract_solution
from repro.ilp.solve import solve_model

from benchmarks.conftest import print_table


def _solve(graph, **options):
    am = build_model(graph, ModelOptions(**options))
    start = time.perf_counter()
    sol = solve_model(am.model)
    seconds = time.perf_counter() - start
    assert sol.status == "optimal"
    decoded = extract_solution(am, sol)
    return sol, decoded, seconds, am.model.stats()


def test_redundant_position_constraints(virtual_apps):
    graph = virtual_apps["Kasumi"][1].flowgraph
    rows = []
    outcomes = {}
    for flag in (True, False):
        sol, decoded, seconds, stats = _solve(
            graph, redundant_position_constraints=flag
        )
        outcomes[flag] = (round(sol.objective, 6), decoded.spills)
        rows.append(
            [
                "with" if flag else "without",
                stats["constraints"],
                round(seconds, 2),
                round(sol.objective, 3),
                decoded.move_count,
            ]
        )
    print_table(
        "Section 9: redundant aggregate-position constraints (Kasumi)",
        ["variant", "constraints", "solve s", "objective", "moves"],
        rows,
    )
    assert outcomes[True] == outcomes[False], "optimum must not change"


def test_needs_spill_tightening(virtual_apps):
    graph = virtual_apps["AES"][1].flowgraph
    rows = []
    outcomes = {}
    for flag in (True, False):
        sol, decoded, seconds, stats = _solve(graph, tighten_needs_spill=flag)
        outcomes[flag] = (round(sol.objective, 6), decoded.spills)
        rows.append(
            [
                "with" if flag else "without",
                stats["constraints"],
                round(seconds, 2),
                round(sol.objective, 3),
            ]
        )
    print_table(
        "Section 9: needsSpill upper-bound tightening (AES)",
        ["variant", "constraints", "solve s", "objective"],
        rows,
    )
    assert outcomes[True] == outcomes[False]


def test_solve_speed_with_redundant(benchmark, virtual_apps):
    graph = virtual_apps["Kasumi"][1].flowgraph
    benchmark.pedantic(
        lambda: _solve(graph, redundant_position_constraints=True),
        rounds=1,
        iterations=1,
    )


def test_solve_speed_without_redundant(benchmark, virtual_apps):
    graph = virtual_apps["Kasumi"][1].flowgraph
    benchmark.pedantic(
        lambda: _solve(graph, redundant_position_constraints=False),
        rounds=1,
        iterations=1,
    )
