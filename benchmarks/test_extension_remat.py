"""Section 12 extension: constant rematerialization through bank C.

The paper describes (as future work, with the AMPL model written but
the compiler side unfinished): "We treat every individual constant as a
temporary and invent a virtual register bank C... A move from C
represents the load operation of the corresponding constant; its cost
depends on the value."

This repository completes the loop; the benchmark shows the payoff on a
loop-heavy kernel and on KASUMI: constant loads migrate to cold code,
cutting dynamic instructions, while semantics stay bit-exact.
"""

from repro.compiler import CompileOptions, compile_nova
from repro.ixp.machine import Machine

from benchmarks.conftest import APP_BUILDERS, print_table
from tests.helpers import make_memory

KERNEL = """
fun main (b, n) {
  let i = 0;
  let acc = 0;
  while (i < n) {
    let x = sram(b + i);
    acc := (acc + (x & 0x12345)) & 0xffff;
    acc := acc ^ ((x >> 3) & 0x7f00);
    i := i + 1;
  };
  acc
}
"""


def _compile(source, remat):
    options = CompileOptions()
    options.alloc.model.remat_constants = remat
    options.alloc.solve.time_limit = 900
    return compile_nova(source, options=options)


def _run(comp, image, **inputs):
    memory = make_memory(image)
    raw = comp.make_inputs(**inputs)
    locations = comp.alloc.decoded.input_locations
    pinned = {}
    for temp, value in raw.items():
        loc = locations.get(temp)
        if loc is not None:
            pinned[(loc[1].bank, loc[1].index)] = value
    machine = Machine(
        comp.physical,
        memory=memory,
        physical=True,
        input_provider=lambda tid, it: pinned if it == 0 else None,
    )
    return machine.run()


def test_remat_on_loop_kernel():
    image = {"sram": [(0, list(range(50, 90)))]}
    rows = []
    runs = {}
    for remat in (False, True):
        comp = _compile(KERNEL, remat)
        run = _run(comp, image, b=0, n=40)
        runs[remat] = run
        rows.append(
            [
                "with C bank" if remat else "without",
                run.instructions,
                run.cycles,
                comp.alloc.moves,
            ]
        )
    print_table(
        "Section 12 rematerialization (40-iteration masking kernel)",
        ["variant", "dyn instrs", "cycles", "ILP moves"],
        rows,
    )
    assert runs[True].results == runs[False].results
    assert runs[True].instructions < runs[False].instructions
    assert runs[True].cycles < runs[False].cycles


def test_remat_on_kasumi():
    """KASUMI's table bases are wide constants used every FI call."""
    app = APP_BUILDERS["Kasumi"]()
    rows = []
    results = {}
    for remat in (False, True):
        comp = _compile(app.source, remat)
        run = _run(comp, app.memory_image, **app.inputs)
        results[remat] = run.results
        rows.append(
            [
                "with C bank" if remat else "without",
                run.instructions,
                run.cycles,
                comp.alloc.status,
            ]
        )
    print_table(
        "Section 12 rematerialization (KASUMI, one block)",
        ["variant", "dyn instrs", "cycles", "status"],
        rows,
    )
    assert results[True] == results[False]
    # Rematerialization must never *hurt* the dynamic schedule by much
    # (the solver may keep the same placement).
    assert rows[1][1] <= rows[0][1] * 1.05


def test_remat_solve_speed(benchmark):
    benchmark.pedantic(
        lambda: _compile(KERNEL, True), rounds=1, iterations=1
    )
