"""Section 11 throughput numbers.

Paper (233 MHz IXP1200, hardware packet generator):

    AES Rijndael:  270 Mb/s at 16-byte payloads
    Kasumi:        320 / 210 / 60 Mb/s at 8 / 16 / 256-byte payloads

"None of these programs were written to be highly optimized for
bit-rate processing speeds."

The reproduction runs the *allocated* (physical-register) code on the
cycle-approximate simulator with four hardware threads — on ONE
micro-engine, where the paper's testbed ran the full chip (six
micro-engines); the table therefore also shows the 6x chip-scaled
figure.  Absolute Mb/s further depends on the latency model; the claims
that must hold:

- both ciphers sustain the paper's order of magnitude at small payloads
  (chip-scaled tens-to-hundreds of Mb/s at 233 MHz),
- Kasumi per-byte cost exceeds AES per-byte cost at 16-byte payloads
  (more, serialized table lookups per byte — the paper shows AES 270
  vs Kasumi 210 at 16 bytes),
- multithreading hides memory latency: 4 threads beat 1 thread.
"""

import pytest

from repro.apps.driver import run_physical_threads

from benchmarks.conftest import print_table

PAPER = [
    ["AES", 16, 270],
    ["Kasumi", 8, 320],
    ["Kasumi", 16, 210],
    ["Kasumi", 256, 60],
]


def _payload_words(payload_bytes: int) -> list[int]:
    data = bytes((i * 37 + 11) & 0xFF for i in range(payload_bytes))
    return [int.from_bytes(data[i : i + 4], "big") for i in range(0, len(data), 4)]


def _run(compiled_apps, name, payload_bytes, threads=4, packets=6):
    app, comp = compiled_apps[name]
    block = 16 if name == "AES" else 8
    words = _payload_words(payload_bytes)
    return run_physical_threads(
        comp,
        app,
        words,
        threads=threads,
        packets_per_thread=packets,
        input_overrides={"nblocks": payload_bytes // block},
    )


#: The paper ran the whole IXP1200 (six micro-engines); we simulate one.
MICRO_ENGINES = 6


def test_throughput_table(compiled_apps):
    rows = []
    measured = {}
    for name, payload in (("AES", 16), ("Kasumi", 8), ("Kasumi", 16), ("Kasumi", 256)):
        result = _run(compiled_apps, name, payload)
        measured[(name, payload)] = result.mbps
        rows.append(
            [
                name,
                payload,
                round(result.mbps, 1),
                round(result.mbps * MICRO_ENGINES, 1),
                round(result.cycles_per_packet, 0),
            ]
        )
    print_table(
        "Section 11 throughput (this reproduction, 4 threads, 233 MHz)",
        ["program", "payload B", "Mb/s (1 ME)", "Mb/s (x6 MEs)", "cycles/packet"],
        rows,
    )
    print_table(
        "Section 11 throughput (paper, full chip = 6 MEs)",
        ["program", "payload B", "Mb/s"],
        PAPER,
    )
    # Order-of-magnitude claims (chip-scaled vs paper, within 8x).
    paper = {("AES", 16): 270, ("Kasumi", 8): 320, ("Kasumi", 16): 210}
    for key, reported in paper.items():
        scaled = measured[key] * MICRO_ENGINES
        assert reported / 8 <= scaled <= reported * 8, (
            f"{key}: {scaled:.0f} Mb/s vs paper {reported}"
        )
    # AES beats Kasumi per byte at 16-byte payloads (paper: 270 vs 210).
    assert measured[("AES", 16)] > measured[("Kasumi", 16)]


def test_multithreading_hides_latency(compiled_apps):
    single = _run(compiled_apps, "AES", 16, threads=1, packets=8)
    quad = _run(compiled_apps, "AES", 16, threads=4, packets=2)
    # Same total packets; four threads should be clearly faster.
    assert quad.run.cycles < single.run.cycles
    print(
        f"\nAES 8 packets: 1 thread = {single.run.cycles} cycles, "
        f"4 threads = {quad.run.cycles} cycles "
        f"({single.run.cycles / quad.run.cycles:.2f}x)"
    )


@pytest.mark.parametrize(
    "name,payload", [("AES", 16), ("Kasumi", 8), ("Kasumi", 256)]
)
def test_throughput_speed(benchmark, compiled_apps, name, payload):
    benchmark.pedantic(
        lambda: _run(compiled_apps, name, payload, packets=2),
        rounds=1,
        iterations=1,
    )


# --------------------------------------------------------------------------
# Compiler throughput: batch compilation, cache, process pool
# --------------------------------------------------------------------------
#
# The paper compiles one program per multi-second ILP solve (Figure 7:
# 35.9 s for AES one-shot).  A compiler *service* amortizes that with a
# content-addressed artifact cache and a process pool; these tests
# measure both over the full suite — every examples/*.nova source plus
# the three Section 11 applications.

from pathlib import Path

from repro.batch import compile_many
from repro.compiler import CompileOptions

from benchmarks.conftest import APP_BUILDERS

EXAMPLES_DIR = Path(__file__).resolve().parent.parent / "examples"


def _suite_sources():
    sources = [
        (path.name, path.read_text())
        for path in sorted(EXAMPLES_DIR.glob("*.nova"))
    ]
    for name in sorted(APP_BUILDERS):
        sources.append((f"{name}.nova", APP_BUILDERS[name]().source))
    return sources


def _batch_options() -> CompileOptions:
    options = CompileOptions()
    options.alloc.solve.time_limit = 900
    return options


def test_batch_compile_cold_vs_warm_cache(tmp_path):
    sources = _suite_sources()
    assert len(sources) >= 6  # 3 examples + AES, Kasumi, NAT
    cache_dir = tmp_path / "cache"
    cold = compile_many(
        sources, jobs=2, options=_batch_options(), cache_dir=cache_dir
    )
    warm = compile_many(
        sources, jobs=2, options=_batch_options(), cache_dir=cache_dir
    )
    assert not cold.failed and not warm.failed
    assert cold.cache_misses == len(sources) and cold.cache_hits == 0
    assert warm.cache_hits == len(sources) and warm.cache_misses == 0
    print_table(
        "Batch compile, cold vs warm artifact cache (jobs=2)",
        ["variant", "units", "cache", "seconds"],
        [
            ["cold", len(sources), "6 misses", round(cold.seconds, 2)],
            ["warm", len(sources), "6 hits", round(warm.seconds, 2)],
        ],
    )
    speedup = cold.seconds / max(warm.seconds, 1e-9)
    assert speedup >= 5, (
        f"warm cache {warm.seconds:.2f}s vs cold {cold.seconds:.2f}s "
        f"is only {speedup:.1f}x"
    )


def test_batch_compile_serial_vs_parallel():
    # The examples alone keep this comparison cheap; the pool must not
    # cost more than it saves even on sub-second compiles.
    sources = [
        (path.name, path.read_text())
        for path in sorted(EXAMPLES_DIR.glob("*.nova"))
    ] * 2
    serial = compile_many(sources, jobs=1, options=_batch_options())
    parallel = compile_many(sources, jobs=4, options=_batch_options())
    assert not serial.failed and not parallel.failed
    print_table(
        "Batch compile, serial vs process pool (examples x2)",
        ["variant", "units", "seconds"],
        [
            ["jobs=1", len(sources), round(serial.seconds, 2)],
            ["jobs=4", len(sources), round(parallel.seconds, 2)],
        ],
    )
    # Machine-load dependent: only guard against pathological overhead.
    assert parallel.seconds <= serial.seconds * 3
