"""CI smoke test: the compile daemon's full lifecycle, end to end.

Boots ``novac serve`` as a real subprocess on a temp Unix socket,
compiles the same example twice (miss, then hot/hit with a lower
server-side latency), checks the stats surface, then drain-shuts the
daemon and verifies a clean exit with no orphaned pool workers.

Run from the repo root::

    PYTHONPATH=src python benchmarks/serve_smoke.py

Exit status 0 on success (used as a CI gate, like ``perf_smoke.py``).
"""

import os
import pathlib
import subprocess
import sys
import tempfile
import time

ROOT = pathlib.Path(__file__).resolve().parent.parent
sys.path.insert(0, str(ROOT / "src"))

from repro.client import ServeClient, try_connect  # noqa: E402


def fail(message: str) -> None:
    print(f"serve_smoke: FAIL: {message}")
    sys.exit(1)


def main() -> None:
    source = (ROOT / "examples" / "classify.nova").read_text()
    with tempfile.TemporaryDirectory(prefix="serve-smoke-") as tmp:
        socket_path = os.path.join(tmp, "d.sock")
        daemon = subprocess.Popen(
            [
                sys.executable, "-m", "repro.cli", "serve",
                "--socket", socket_path,
                "--cache-dir", os.path.join(tmp, "cache"),
                "--jobs", "2",
            ],
            stdout=subprocess.PIPE,
            stderr=subprocess.STDOUT,
            text=True,
            env={**os.environ, "PYTHONPATH": str(ROOT / "src")},
            cwd=str(ROOT),
        )
        try:
            banner = daemon.stdout.readline().strip()
            if "listening on" not in banner:
                fail(f"unexpected daemon banner: {banner!r}")
            print(f"serve_smoke: {banner}")

            client = None
            for _ in range(100):
                client = try_connect(socket_path, timeout=1.0)
                if client is not None:
                    break
                time.sleep(0.1)
            if client is None:
                fail("daemon never accepted a connection")

            with client:
                first = client.compile_source(source, "classify.nova")
                second = client.compile_source(source, "classify.nova")
                if first["cache"] != "miss":
                    fail(f"first compile was {first['cache']}, expected miss")
                if second["cache"] not in ("hot", "hit"):
                    fail(f"second compile was {second['cache']}, not a hit")
                first_ms = first["server"]["ms"]
                second_ms = second["server"]["ms"]
                if second_ms >= first_ms:
                    fail(
                        f"hit latency {second_ms}ms not below miss "
                        f"latency {first_ms}ms"
                    )
                print(
                    f"serve_smoke: miss {first_ms}ms -> "
                    f"{second['cache']} {second_ms}ms"
                )

                stats = client.stats()
                if stats["clients"]["hits"] < 1:
                    fail(f"stats recorded no hits: {stats['clients']}")
                workers = stats["workers"]
                if not workers:
                    fail("stats reported no pool workers")

                response = client.shutdown()
                if not response.get("drained"):
                    fail(f"shutdown did not drain: {response}")

            code = daemon.wait(timeout=30)
            if code != 0:
                fail(f"daemon exited {code}")
            # Pool workers must die with the daemon — no orphans.
            deadline = time.time() + 10
            alive = list(workers)
            while alive and time.time() < deadline:
                alive = [pid for pid in alive if _is_alive(pid)]
                if alive:
                    time.sleep(0.1)
            if alive:
                fail(f"orphaned pool workers: {alive}")
            print(
                f"serve_smoke: OK (drained exit 0, {len(workers)} workers "
                f"reaped)"
            )
        finally:
            if daemon.poll() is None:
                daemon.kill()
                daemon.wait(timeout=10)


def _is_alive(pid: int) -> bool:
    try:
        os.kill(pid, 0)
    except ProcessLookupError:
        return False
    except PermissionError:
        return True
    return True


if __name__ == "__main__":
    main()
