"""CI perf smoke: read BENCH_sim.json and fail on pathological regressions.

Run after ``pytest benchmarks/test_sim_speed.py`` has refreshed the
``results`` block::

    PYTHONPATH=src python benchmarks/perf_smoke.py

Two checks, both deliberately loose so machine-speed differences between
the recording host and CI runners never flake:

- the decoded and compiled paths must stay within 5x of the recorded
  baseline instructions/sec (a >5x drop means a tier regressed
  pathologically, e.g. silently fell back to a slower tier);
- the decoded/interpreter speedup must stay >= 2x and the
  compiled/decoded speedup >= 2x (*ratios*, so machine-independent).
"""

import json
import pathlib
import sys

BENCH_FILE = pathlib.Path(__file__).resolve().parent.parent / "BENCH_sim.json"

MAX_REGRESSION = 5.0
MIN_SPEEDUP = 2.0
MIN_COMPILED_SPEEDUP = 2.0


def main() -> int:
    if not BENCH_FILE.exists():
        print(f"perf_smoke: {BENCH_FILE} missing — run "
              "`pytest benchmarks/test_sim_speed.py` first", file=sys.stderr)
        return 2
    data = json.loads(BENCH_FILE.read_text())
    results = data.get("results", {})
    baseline = data.get("baseline", {})
    if not results:
        print("perf_smoke: no results recorded", file=sys.stderr)
        return 2

    failures = []
    header = (
        f"{'bench':<12} {'ips decoded':>12} {'ips compiled':>13} "
        f"{'dec/int':>8} {'com/dec':>8}"
    )
    print(header)
    print("-" * len(header))
    for key, row in sorted(results.items()):
        ips = row["ips_decoded"]
        ips_com = row.get("ips_compiled", 0)
        base = baseline.get(key, {}).get("ips_decoded", ips)
        base_com = baseline.get(key, {}).get("ips_compiled", ips_com)
        speedup = row["speedup"]
        speedup_com = row.get("speedup_compiled", 0.0)
        print(
            f"{key:<12} {ips:>12,} {ips_com:>13,} "
            f"{speedup:>7.1f}x {speedup_com:>7.1f}x"
        )
        if ips * MAX_REGRESSION < base:
            failures.append(
                f"{key}: decoded ips {ips:,} is >{MAX_REGRESSION:.0f}x below "
                f"baseline {base:,}"
            )
        if ips_com * MAX_REGRESSION < base_com:
            failures.append(
                f"{key}: compiled ips {ips_com:,} is >{MAX_REGRESSION:.0f}x "
                f"below baseline {base_com:,}"
            )
        if speedup < MIN_SPEEDUP:
            failures.append(
                f"{key}: decoded/interpreter speedup {speedup:.1f}x "
                f"< {MIN_SPEEDUP:.0f}x"
            )
        if speedup_com < MIN_COMPILED_SPEEDUP:
            failures.append(
                f"{key}: compiled/decoded speedup {speedup_com:.1f}x "
                f"< {MIN_COMPILED_SPEEDUP:.0f}x"
            )
    for failure in failures:
        print(f"perf_smoke: FAIL {failure}", file=sys.stderr)
    if not failures:
        print("perf_smoke: ok")
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
