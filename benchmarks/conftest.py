"""Shared fixtures for the benchmark harness.

Compiling an application through the ILP takes seconds; every figure
needs the same three compilations, so they are cached per session.
"""

from __future__ import annotations

import pytest

from repro.apps import build_aes_app, build_kasumi_app, build_nat_app
from repro.compiler import CompileOptions, compile_nova
from repro.trace import Tracer

APP_BUILDERS = {
    "AES": build_aes_app,
    "Kasumi": build_kasumi_app,
    "NAT": build_nat_app,
}


@pytest.fixture(autouse=True)
def _benchmark_aware(benchmark):
    """Make every test in benchmarks/ run under ``--benchmark-only``.

    pytest-benchmark skips tests that do not have its fixture in their
    closure; the table tests ARE the paper's figures, so declare the
    dependency for every test in this directory (tests that measure use
    the fixture explicitly; the rest just render their table).
    """
    yield


def compile_app(name: str, **compile_kwargs):
    """Compile one paper application with tracing enabled.

    Every compile in the benchmark harness runs under a live
    :class:`repro.trace.Tracer`: the Figure 5-7 tables read the recorded
    spans (``comp.trace``) instead of re-deriving the statistics per
    test.
    """
    app = APP_BUILDERS[name]()
    options = CompileOptions()
    options.alloc.solve.time_limit = 900
    for key, value in compile_kwargs.items():
        setattr(options, key, value)
    return app, compile_nova(app.source, options=options, tracer=Tracer())


@pytest.fixture(scope="session")
def compiled_apps():
    """name → (AppBundle, Compilation with ILP allocation)."""
    return {name: compile_app(name) for name in APP_BUILDERS}


@pytest.fixture(scope="session")
def virtual_apps():
    """name → (AppBundle, Compilation without allocation) — fast."""
    out = {}
    for name, build in APP_BUILDERS.items():
        app = build()
        options = CompileOptions()
        options.run_allocator = False
        out[name] = (
            app,
            compile_nova(app.source, options=options, tracer=Tracer()),
        )
    return out


def span_counters(comp, name: str) -> dict:
    """Counters of the *last* span called ``name`` in a traced compile.

    "Last" matters for two-phase allocation, where ``model``/``solve``
    spans occur once per phase and the final pair is the one Figure 7
    tabulates.
    """
    assert comp.trace is not None, "compilation was not traced"
    span = comp.trace.last(name)
    assert span is not None, f"no '{name}' span recorded"
    return span.counters


#: Tables rendered during the session, replayed in the terminal summary
#: (so they survive pytest's output capture without needing ``-s``).
_RENDERED_TABLES: list[str] = []


def print_table(title: str, headers: list[str], rows: list[list]) -> None:
    """Render one of the paper's tables to the benchmark output."""
    widths = [
        max(len(str(headers[i])), *(len(str(r[i])) for r in rows))
        for i in range(len(headers))
    ]
    lines = [f"\n== {title} =="]
    lines.append("  ".join(str(h).ljust(w) for h, w in zip(headers, widths)))
    for row in rows:
        lines.append("  ".join(str(c).ljust(w) for c, w in zip(row, widths)))
    text = "\n".join(lines)
    print(text)
    _RENDERED_TABLES.append(text)


def pytest_terminal_summary(terminalreporter):
    if not _RENDERED_TABLES:
        return
    terminalreporter.section("paper tables (reproduction)")
    for text in _RENDERED_TABLES:
        terminalreporter.write_line(text)
