"""Figure 5: static benchmark program statistics.

Paper reports, per application: Nova line count, number of layout
specifications, packs, unpacks, raises and handles.

Paper's values (line count / layouts / pack / unpack / raise / handle):
  AES    541 / 7 / 8 / 5 / 3 / 1
  Kasumi 587 / 7 / 7 / 4 / 2 / 2
  NAT    839 / - (older Nova without layouts)

Our programs are smaller (the paper's include receive/transmit scheduler
glue we model inside the simulator driver), but the same feature mix is
exercised: layouts with overlays and concatenation, pack/unpack,
exceptions.  The benchmark measures front-end time (parse + typecheck),
which is what "compile times short enough for an edit-compile-debug
cycle" is about for these phases.
"""

from repro.nova.parser import parse_program
from repro.nova.typecheck import typecheck_program

from benchmarks.conftest import APP_BUILDERS, print_table, span_counters

PAPER_FIG5 = {
    "AES": dict(lines=541, layouts=7, packs=8, unpacks=5, raises=3, handles=1),
    "Kasumi": dict(lines=587, layouts=7, packs=7, unpacks=4, raises=2, handles=2),
    "NAT": dict(lines=839),
}


def test_fig5_table(virtual_apps):
    # The static statistics are the counters the tracer records on the
    # ``parse`` span — the same numbers ``novac --trace`` prints.
    rows = []
    for name, (_, comp) in virtual_apps.items():
        c = span_counters(comp, "parse")
        rows.append(
            [
                name,
                c["lines"],
                c["layouts"],
                c["packs"],
                c["unpacks"],
                c["raises"],
                c["handles"],
            ]
        )
    print_table(
        "Figure 5: static program statistics (this reproduction)",
        ["program", "lines", "layouts", "pack", "unpack", "raise", "handle"],
        rows,
    )
    print_table(
        "Figure 5: paper's values",
        ["program", "lines", "layouts", "pack", "unpack", "raise", "handle"],
        [
            ["AES", 541, 7, 8, 5, 3, 1],
            ["Kasumi", 587, 7, 7, 4, 2, 2],
            ["NAT", 839, "-", "-", "-", "-", "-"],
        ],
    )
    # Shape assertions: the same feature mix is present.
    by_name = {row[0]: row for row in rows}
    assert by_name["AES"][2] >= 1  # layouts
    assert by_name["AES"][4] >= 1  # unpacks
    assert by_name["NAT"][3] >= 1  # packs
    assert by_name["NAT"][5] >= 1  # raises
    assert by_name["NAT"][6] >= 2  # handles


def test_frontend_speed_aes(benchmark):
    app = APP_BUILDERS["AES"]()
    benchmark(lambda: typecheck_program(parse_program(app.source)))


def test_frontend_speed_kasumi(benchmark):
    app = APP_BUILDERS["Kasumi"]()
    benchmark(lambda: typecheck_program(parse_program(app.source)))


def test_frontend_speed_nat(benchmark):
    app = APP_BUILDERS["NAT"]()
    benchmark(lambda: typecheck_program(parse_program(app.source)))
