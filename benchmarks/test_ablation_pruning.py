"""Section 8 ablation: "A million variables".

Without the static candidate-bank analysis, every live temporary gets
7x7 Move variables at every point — the paper extrapolates about a
million Move variables for a full instruction store.  With the analysis,
temporaries that are loaded and never stored are ruled out of S/SD/LD
and so on, and "spilling will move the temporary either from {L,A,B}
directly to M" — "dramatically smaller optimization problems".

Reproduced claims: the pruned model is several times smaller than the
unpruned one on the real applications, and on a program solved both
ways the optimum is unchanged (the ruled-out banks were useless).
"""

from repro.alloc.ilpmodel import ModelOptions, build_model, extract_solution
from repro.ilp.solve import solve_model

from benchmarks.conftest import print_table
from tests.helpers import compile_virtual
from tests.programs import case

SMALL = """
fun main (b) {
  let (p, q, r, s) = sram(b);
  let x = p + q;
  let y = r ^ s;
  sram(b + 8) <- (y, x);
  x + y
}
"""


def test_pruning_shrinks_app_models(virtual_apps):
    rows = []
    for name, (_, comp) in virtual_apps.items():
        pruned = build_model(comp.flowgraph, ModelOptions(prune_banks=True))
        unpruned = build_model(comp.flowgraph, ModelOptions(prune_banks=False))
        rows.append(
            [
                name,
                pruned.model.num_vars,
                unpruned.model.num_vars,
                round(unpruned.model.num_vars / pruned.model.num_vars, 2),
                len(pruned.model.constraints),
                len(unpruned.model.constraints),
            ]
        )
    print_table(
        "Section 8 pruning ablation (model sizes)",
        [
            "program",
            "vars pruned",
            "vars unpruned",
            "ratio",
            "cons pruned",
            "cons unpruned",
        ],
        rows,
    )
    for row in rows:
        assert row[3] > 1.5, f"{row[0]}: pruning should shrink the model"


def test_pruning_preserves_optimum():
    comp = compile_virtual(SMALL)
    results = {}
    for prune in (True, False):
        am = build_model(comp.flowgraph, ModelOptions(prune_banks=prune))
        sol = solve_model(am.model)
        assert sol.status == "optimal"
        decoded = extract_solution(am, sol)
        results[prune] = (round(sol.objective, 6), decoded.spills)
    assert results[True] == results[False]


def test_pruning_preserves_optimum_on_corpus_case():
    comp = compile_virtual(case("memory_roundtrip").source)
    objectives = {}
    for prune in (True, False):
        am = build_model(comp.flowgraph, ModelOptions(prune_banks=prune))
        sol = solve_model(am.model)
        assert sol.status == "optimal"
        objectives[prune] = round(sol.objective, 6)
    assert objectives[True] == objectives[False]


def test_model_build_speed_pruned(benchmark, virtual_apps):
    graph = virtual_apps["Kasumi"][1].flowgraph
    benchmark.pedantic(
        lambda: build_model(graph, ModelOptions(prune_banks=True)),
        rounds=2,
        iterations=1,
    )


def test_model_build_speed_unpruned(benchmark, virtual_apps):
    graph = virtual_apps["Kasumi"][1].flowgraph
    benchmark.pedantic(
        lambda: build_model(graph, ModelOptions(prune_banks=False)),
        rounds=2,
        iterations=1,
    )
