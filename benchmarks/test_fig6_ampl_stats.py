"""Figure 6: AMPL statistics — temporaries participating in coloring.

Paper reports, per application, the number of variables in the DefLi /
DefLDj sets (read aggregates) and UseSi / UseSDj sets (write
aggregates):

            DefLi  DefLDj  total   UseSi  UseSDj  total
  AES        68     16      84       4     10      14
  Kasumi     44     14      58       4     14      18
  NAT        43     22      65       8     60      64(*)

The benchmark measures building the model *data* (liveness + the
instruction sets) from the flowgraph.
"""

from repro.alloc.ilpmodel import build_instr_sets

from benchmarks.conftest import print_table, span_counters

PAPER_FIG6 = {
    "AES": (68, 16, 4, 10),
    "Kasumi": (44, 14, 4, 14),
    "NAT": (43, 22, 8, 60),
}


def test_fig6_table(compiled_apps):
    # The coloring-participation sets are counters on the tracer's
    # ``model`` span (recorded while the allocation ILP is built).
    rows = []
    for name, (_, comp) in compiled_apps.items():
        c = span_counters(comp, "model")
        rows.append(
            [
                name,
                c["DefLi"],
                c["DefLDj"],
                c["DefLi"] + c["DefLDj"],
                c["UseSi"],
                c["UseSDj"],
                c["UseSi"] + c["UseSDj"],
            ]
        )
    print_table(
        "Figure 6: coloring participation (this reproduction)",
        ["program", "DefLi", "DefLDj", "def total", "UseSi", "UseSDj", "use total"],
        rows,
    )
    print_table(
        "Figure 6: paper's values",
        ["program", "DefLi", "DefLDj", "def total", "UseSi", "UseSDj", "use total"],
        [[k, v[0], v[1], v[0] + v[1], v[2], v[3], v[2] + v[3]] for k, v in PAPER_FIG6.items()],
    )
    by_name = {row[0]: row for row in rows}
    # Shape: every program has a substantial coloring problem; crypto
    # apps are read-dominated (tables), exactly as in the paper.
    for name in ("AES", "Kasumi", "NAT"):
        assert by_name[name][3] > 0 and by_name[name][6] > 0
    assert by_name["AES"][1] > by_name["AES"][4]  # DefLi >> UseSi
    assert by_name["Kasumi"][1] > by_name["Kasumi"][4]


def test_model_data_speed_aes(benchmark, virtual_apps):
    graph = virtual_apps["AES"][1].flowgraph
    benchmark(lambda: build_instr_sets(graph, graph.points()))


def test_model_data_speed_kasumi(benchmark, virtual_apps):
    graph = virtual_apps["Kasumi"][1].flowgraph
    benchmark(lambda: build_instr_sets(graph, graph.points()))
