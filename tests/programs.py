"""A corpus of small Nova programs with expected behaviours.

Each entry gives source text, inputs (by source parameter name), a
memory image, and the expected halt values / memory effects.  The corpus
is shared between the CPS-semantics tests (virtual machine) and the
allocator tests (physical machine must agree with virtual).
"""

from __future__ import annotations

from dataclasses import dataclass, field

M = 0xFFFFFFFF


@dataclass
class Case:
    name: str
    source: str
    inputs: dict = field(default_factory=dict)
    memory: dict = field(default_factory=dict)
    expect_results: list | None = None
    expect_memory: dict = field(default_factory=dict)  # space -> {addr: val}


CASES: list[Case] = [
    Case(
        name="arith",
        source="fun main (x, y) { (x + y) * 4 - (x ^ y) }",
        inputs={"x": 7, "y": 9},
        expect_results=[((7 + 9) * 4 - (7 ^ 9),)],
    ),
    Case(
        name="shifts_and_masks",
        source="fun main (x) { ((x << 5) | (x >> 27)) & 0xffff00ff }",
        inputs={"x": 0xDEADBEEF},
        expect_results=[
            ((((0xDEADBEEF << 5) | (0xDEADBEEF >> 27)) & M) & 0xFFFF00FF,)
        ],
    ),
    Case(
        name="unary_ops",
        source="fun main (x) { ~x + -x }",
        inputs={"x": 5},
        expect_results=[(((~5 & M) + (-5 & M)) & M,)],
    ),
    Case(
        name="branch",
        source="fun main (x) { if (x < 10) x * 2 else x - 10 }",
        inputs={"x": 3},
        expect_results=[(6,)],
    ),
    Case(
        name="bool_materialization",
        source="fun main (x, y) { let b = x < y && y < 100; if (b) 1 else 0 }",
        inputs={"x": 5, "y": 50},
        expect_results=[(1,)],
    ),
    Case(
        name="while_sum",
        source="""
        fun main (n) {
          let i = 0; let s = 0;
          while (i < n) { s := s + i; i := i + 1; };
          s
        }
        """,
        inputs={"n": 10},
        expect_results=[(45,)],
    ),
    Case(
        name="nested_loops",
        source="""
        fun main (n) {
          let i = 0; let total = 0;
          while (i < n) {
            let j = 0;
            while (j < i) { total := total + 1; j := j + 1; };
            i := i + 1;
          };
          total
        }
        """,
        inputs={"n": 6},
        expect_results=[(15,)],
    ),
    Case(
        name="tail_recursion",
        source="""
        fun gcd (a, b) : word { if (b == 0) a else gcd(b, a % 2) }
        fun main (x, y) { gcd(x, y) }
        """,
        inputs={"x": 12, "y": 8},
        expect_results=[(8,)],  # gcd(12,8) -> gcd(8,0) -> 8
    ),
    Case(
        name="call_inlining",
        source="""
        fun double_plus (x) : word { let y = x << 1; y + 3 }
        fun main (a, b) { double_plus(a) + double_plus(b) }
        """,
        inputs={"a": 3, "b": 4},
        expect_results=[(3 * 2 + 3 + 4 * 2 + 3,)],
    ),
    Case(
        name="memory_roundtrip",
        source="""
        fun main (base) {
          let (a, b, c, d) = sram(base);
          sram(base + 16) <- (d, c, b, a);
          a + d
        }
        """,
        inputs={"base": 32},
        memory={"sram": [(32, [10, 20, 30, 40])]},
        expect_results=[(50,)],
        expect_memory={"sram": {48: 40, 49: 30, 50: 20, 51: 10}},
    ),
    Case(
        name="sdram_pairs",
        source="""
        fun main (base) {
          let (a, b) = sdram(base);
          sdram(base + 2) <- (b, a);
          a ^ b
        }
        """,
        inputs={"base": 100},
        memory={"sdram": [(100, [0x11, 0x22])]},
        expect_results=[(0x33,)],
        expect_memory={"sdram": {102: 0x22, 103: 0x11}},
    ),
    Case(
        name="scratch_memory",
        source="""
        fun main (base) {
          let x = scratch(base);
          scratch(base + 1) <- (x + 1);
          x
        }
        """,
        inputs={"base": 5},
        memory={"scratch": [(5, [99])]},
        expect_results=[(99,)],
        expect_memory={"scratch": {6: 100}},
    ),
    Case(
        name="unpack_header",
        source="""
        layout hdr = { ver : 4, ihl : 4, tos : 8, length : 16, rest : 32 };
        fun main (w0 : word, w1 : word) {
          let u = unpack[hdr]((w0, w1));
          u.ver * 4 + u.length
        }
        """,
        inputs={"w0": 0x45001234, "w1": 0},
        expect_results=[(4 * 4 + 0x1234,)],
    ),
    Case(
        name="pack_header",
        source="""
        layout h = { a : 8, b : 8, c : 16 };
        fun main (x) {
          let p = pack[h] [a = x, b = x + 1, c = 0xBEEF];
          p
        }
        """,
        inputs={"x": 0xAB},
        expect_results=[((0xAB << 24) | (0xAC << 16) | 0xBEEF,)],
    ),
    Case(
        name="pack_overlay",
        source="""
        layout h = { v : overlay { whole : 8 | parts : { hi : 4, lo : 4 } },
                     rest : 24 };
        fun main (x) {
          let a = pack[h] [v = [whole = 0x60], rest = 1];
          let b = pack[h] [v = [parts = [hi = 6, lo = 0]], rest = 1];
          if (a == b) 1 else 0
        }
        """,
        inputs={"x": 0},
        expect_results=[(1,)],
    ),
    Case(
        name="straddling_field",
        source="""
        layout h = { a : 24, mid : 16, z : 24 };
        fun main (w0, w1) {
          let u = unpack[h]((w0, w1));
          u.mid
        }
        """,
        inputs={"w0": 0x00000012, "w1": 0x34000000},
        expect_results=[(0x1234,)],
    ),
    Case(
        name="alignment_views",
        source="""
        layout lyt = { x : 16, y : 8 };
        fun main (sel, w0, w1) {
          let v =
            if (sel == 0) { let u = unpack[lyt ## {40}]((w0, w1)); u.x }
            else if (sel == 1) { let u = unpack[{16} ## lyt ## {24}]((w0, w1)); u.x }
            else { let u = unpack[{24} ## lyt ## {16}]((w0, w1)); u.x };
          v
        }
        """,
        inputs={"sel": 1, "w0": 0x0000ABCD, "w1": 0x12000000},
        expect_results=[(0xABCD,)],
    ),
    Case(
        name="exceptions_fast_path",
        source="""
        fun main (x) {
          try {
            if (x > 100) raise TooBig (x) else x + 1
          } handle TooBig (v) { v - 100 }
        }
        """,
        inputs={"x": 5},
        expect_results=[(6,)],
    ),
    Case(
        name="exceptions_raised",
        source="""
        fun main (x) {
          try {
            if (x > 100) raise TooBig (x) else x + 1
          } handle TooBig (v) { v - 100 }
        }
        """,
        inputs={"x": 150},
        expect_results=[(50,)],
    ),
    Case(
        name="exception_through_function",
        source="""
        fun check [err : exn(word), v : word] : word {
          if (v % 2 == 1) raise err (v) else v / 2
        }
        fun main (x) {
          try {
            check[err = Odd, v = x] + check[err = Odd, v = x * 2]
          } handle Odd (bad) { bad }
        }
        """,
        inputs={"x": 6},
        expect_results=[(3 + 6,)],
    ),
    Case(
        name="exception_through_function_raised",
        source="""
        fun check [err : exn(word), v : word] : word {
          if (v % 2 == 1) raise err (v) else v / 2
        }
        fun main (x) {
          try {
            check[err = Odd, v = x] + check[err = Odd, v = x + 1]
          } handle Odd (bad) { bad }
        }
        """,
        inputs={"x": 6},
        expect_results=[(7,)],
    ),
    Case(
        name="records_flattened",
        source="""
        fun main (x, y) {
          let pt = [a = x, b = [c = y, d = x + y]];
          let [a, b = [c, d]] = pt;
          a + c + d + pt.b.d
        }
        """,
        inputs={"x": 1, "y": 2},
        expect_results=[(1 + 2 + 3 + 3,)],
    ),
    Case(
        name="hash_unit",
        source="fun main (x) { hash(x) }",
        inputs={"x": 1234},
        expect_results=None,  # value checked against hash48 in the test
    ),
    Case(
        name="csr_roundtrip",
        source="fun main (x) { csr(7) <- x + 1; csr(7) }",
        inputs={"x": 41},
        expect_results=[(42,)],
    ),
    Case(
        name="clone_heavy",
        source="""
        fun main (base) {
          let (a, b) = sram(base);
          let x = a + b;
          sram(base + 8) <- (x, b, x);
          sram(base + 16) <- (a, x);
          x
        }
        """,
        inputs={"base": 0},
        memory={"sram": [(0, [3, 4])]},
        expect_results=[(7,)],
        expect_memory={
            "sram": {8: 7, 9: 4, 10: 7, 16: 3, 17: 7}
        },
    ),
    Case(
        name="dead_fields_trimmed",
        source="""
        layout p = { a : 16, b : 32, c : 16 };
        fun main (w0, w1) {
          let u1 = unpack[p]((w0, w1));
          let u2 = unpack[p]((w1, w0));
          (if (u1.c > 10) u1 else u2).b
        }
        """,
        inputs={"w0": 0x00010000, "w1": 0x00020020},
        expect_results=[(0x00000002,)],  # u1.c = 0x2002>>? see test
    ),
]


def case(name: str) -> Case:
    for c in CASES:
        if c.name == name:
            return c
    raise KeyError(name)
