"""FIFO access and inter-thread locking (paper Section 3.3)."""

import pytest

from repro.errors import SimulatorError, TypeError_
from repro.ixp import isa
from repro.ixp.banks import Bank
from repro.ixp.flowgraph import Block, FlowGraph
from repro.ixp.machine import Machine
from repro.nova.parser import parse_program
from repro.nova.typecheck import typecheck_program

from tests.helpers import compile_full, compile_virtual, run_main, run_physical


def T(name):
    return isa.Temp(name)


class TestFifoLanguage:
    def test_rfifo_read(self):
        comp = compile_virtual(
            "fun main (e) { let (a, b) = rfifo(e); a + b }"
        )
        results, _ = run_main(
            comp, {"rfifo": [(16, [7, 8])]}, e=16
        )
        assert results == [(15,)]

    def test_tfifo_write(self):
        comp = compile_virtual(
            "fun main (e, x) { tfifo(e) <- (x, x + 1); 0 }"
        )
        _, memory = run_main(comp, e=32, x=5)
        assert memory["tfifo"].dump_words(32, 2) == [5, 6]

    def test_rfifo_is_read_only(self):
        with pytest.raises(TypeError_, match="read-only"):
            compile_virtual("fun main (e) { rfifo(e) <- (1, 2); 0 }")

    def test_tfifo_is_write_only(self):
        with pytest.raises(TypeError_, match="write-only"):
            compile_virtual("fun main (e) { let x = tfifo(e); x }")

    def test_fifo_through_full_allocation(self):
        """FIFO transfers use L/S aggregates like SRAM: the ILP colors
        them and the physical code must agree with the virtual one."""
        comp = compile_full(
            """
            fun main (e) {
              let (a, b, c, d) = rfifo(e);
              tfifo(e) <- (d, c, b, a);
              a ^ d
            }
            """
        )
        image = {"rfifo": [(0, [1, 2, 3, 4])]}
        rv, mv = run_main(comp, image, e=0)
        rp, mp = run_physical(comp, image, e=0)
        assert rv == rp == [(5,)]
        assert mv["tfifo"].dump_words(0, 4) == [4, 3, 2, 1]
        assert mp["tfifo"].dump_words(0, 4) == [4, 3, 2, 1]
        # The aggregate landed in L / left from S.
        mem_ops = [
            i
            for _, _, i in comp.physical.instructions()
            if isinstance(i, isa.MemOp)
        ]
        read, write = mem_ops
        assert all(r.bank is Bank.L for r in read.regs)
        assert all(r.bank is Bank.S for r in write.regs)


class TestLockLanguage:
    def test_lock_unlock_roundtrip(self):
        comp = compile_virtual(
            "fun main (x) { lock(3); unlock(3); x }"
        )
        assert run_main(comp, x=9)[0] == [(9,)]

    def test_lock_number_range_checked(self):
        with pytest.raises(TypeError_, match="0..15"):
            compile_virtual("fun main () { lock(16); 0 }")

    def test_unlock_without_lock_traps(self):
        comp = compile_virtual("fun main (x) { unlock(2); x }")
        with pytest.raises(SimulatorError, match="unlocking"):
            run_main(comp, x=1)

    def test_relock_traps(self):
        comp = compile_virtual("fun main (x) { lock(1); lock(1); x }")
        with pytest.raises(SimulatorError, match="re-acquiring"):
            run_main(comp, x=1)


class TestLockContention:
    def make_critical_section_graph(self):
        """Each thread: lock 0; read counter; add 1; write back; unlock."""
        instrs = [
            isa.LockInstr("lock", 0),
            isa.Immed(T("addr"), 100),
            isa.MemOp("scratch", "read", T("addr"), (T("v"),)),
            isa.Alu(T("v2"), "add", T("v"), isa.Imm(1)),
            isa.MemOp("scratch", "write", T("addr"), (T("v2"),)),
            isa.LockInstr("unlock", 0),
            isa.HaltInstr(()),
        ]
        return FlowGraph("entry", {"entry": Block("entry", instrs)})

    def test_counter_with_lock_is_exact(self):
        graph = self.make_critical_section_graph()
        machine = Machine(
            graph,
            threads=4,
            physical=False,
            input_provider=lambda tid, it: {} if it < 5 else None,
        )
        run = machine.run()
        assert machine.memory["scratch"].dump_words(100, 1) == [20]
        assert len(run.results) == 20

    def test_counter_without_lock_races(self):
        """Dropping the lock loses increments (read-modify-write race
        across the memory latency) — evidence the lock actually
        serializes."""
        graph = self.make_critical_section_graph()
        for block in graph.blocks.values():
            block.instrs = [
                i for i in block.instrs if not isinstance(i, isa.LockInstr)
            ]
        machine = Machine(
            graph,
            threads=4,
            physical=False,
            input_provider=lambda tid, it: {} if it < 5 else None,
        )
        machine.run()
        assert machine.memory["scratch"].dump_words(100, 1) != [20]

    def test_lock_holder_blocks_others(self):
        graph = self.make_critical_section_graph()
        machine = Machine(
            graph,
            threads=2,
            physical=False,
            input_provider=lambda tid, it: {} if it < 1 else None,
        )
        run = machine.run()
        # Both critical sections executed, strictly serialized.
        assert machine.memory["scratch"].dump_words(100, 1) == [2]
        assert run.cycles > 30  # two serialized scratch round-trips


class TestParsing:
    def test_lock_parses(self):
        program = parse_program("fun main () { lock(5); unlock(5); 0 }")
        typecheck_program(program)

    def test_fifo_spaces_parse(self):
        program = parse_program(
            "fun main (e) { let (a, b) = rfifo(e); tfifo(e) <- (a, b); 0 }"
        )
        typecheck_program(program)
