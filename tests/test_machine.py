"""Simulator tests: semantics, cycle model, threads, datapath checks."""

import pytest

from repro.errors import SimulatorError
from repro.ixp import isa
from repro.ixp.banks import Bank
from repro.ixp.flowgraph import Block, FlowGraph
from repro.ixp.machine import Machine, hash48, run_virtual
from repro.ixp.memory import LATENCY, MemorySystem


def graph_of(instrs, inputs=()):
    block = Block("entry", list(instrs))
    return FlowGraph("entry", {"entry": block}, tuple(inputs))


def T(name):
    return isa.Temp(name)


def P(bank, index):
    return isa.PhysReg(bank, index)


class TestVirtualExecution:
    def test_alu_ops(self):
        graph = graph_of(
            [
                isa.Immed(T("a"), 12),
                isa.Alu(T("b"), "add", T("a"), isa.Imm(30)),
                isa.Alu(T("c"), "shl", T("b"), isa.Imm(2)),
                isa.Alu(T("d"), "not", T("c")),
                isa.HaltInstr((T("b"), T("c"), T("d"))),
            ]
        )
        result = run_virtual(graph)
        assert result.results == [(0, (42, 168, ~168 & 0xFFFFFFFF))]

    def test_wraparound(self):
        graph = graph_of(
            [
                isa.Immed(T("a"), 0xFFFFFFFF),
                isa.Alu(T("b"), "add", T("a"), isa.Imm(2)),
                isa.Alu(T("c"), "neg", T("b")),
                isa.HaltInstr((T("b"), T("c"))),
            ]
        )
        assert run_virtual(graph).results == [(0, (1, 0xFFFFFFFF))]

    def test_read_undefined_register_traps(self):
        graph = graph_of([isa.HaltInstr((T("nope"),))])
        with pytest.raises(SimulatorError, match="undefined"):
            run_virtual(graph)

    def test_branching(self):
        blocks = {
            "entry": Block(
                "entry",
                [
                    isa.Immed(T("x"), 5),
                    isa.BrCmp("lt", T("x"), isa.Imm(10), "small", "big"),
                ],
            ),
            "small": Block(
                "small", [isa.Immed(T("r"), 1), isa.HaltInstr((T("r"),))]
            ),
            "big": Block(
                "big", [isa.Immed(T("r"), 2), isa.HaltInstr((T("r"),))]
            ),
        }
        graph = FlowGraph("entry", blocks)
        assert run_virtual(graph).results == [(0, (1,))]

    def test_memory_read_write(self):
        memory = MemorySystem.create()
        memory["sram"].load_words(10, [7, 8])
        graph = graph_of(
            [
                isa.Immed(T("addr"), 10),
                isa.MemOp("sram", "read", T("addr"), (T("a"), T("b"))),
                isa.Alu(T("c"), "add", T("a"), T("b")),
                isa.Immed(T("addr2"), 20),
                isa.MemOp("sram", "write", T("addr2"), (T("c"),)),
                isa.HaltInstr((T("c"),)),
            ]
        )
        result = run_virtual(graph, memory=memory)
        assert result.results == [(0, (15,))]
        assert memory["sram"].dump_words(20, 1) == [15]

    def test_hash_deterministic(self):
        graph = graph_of(
            [
                isa.Immed(T("x"), 99),
                isa.HashInstr(T("h"), T("x")),
                isa.HaltInstr((T("h"),)),
            ]
        )
        assert run_virtual(graph).results == [(0, (hash48(99),))]

    def test_csr(self):
        graph = graph_of(
            [
                isa.Immed(T("x"), 5),
                isa.CsrWr(3, T("x")),
                isa.CsrRd(T("y"), 3),
                isa.HaltInstr((T("y"),)),
            ]
        )
        assert run_virtual(graph).results == [(0, (5,))]


class TestCycleModel:
    def test_alu_one_cycle_each(self):
        graph = graph_of(
            [
                isa.Immed(T("a"), 1),
                isa.Alu(T("b"), "add", T("a"), isa.Imm(1)),
                isa.Alu(T("c"), "add", T("b"), isa.Imm(1)),
                isa.HaltInstr(()),
            ]
        )
        result = run_virtual(graph)
        assert result.cycles == 4  # 3 single-cycle ops + halt

    def test_wide_immed_costs_two(self):
        graph = graph_of([isa.Immed(T("a"), 0x12345678), isa.HaltInstr(())])
        assert run_virtual(graph).cycles == 3

    def test_memory_latency_blocks_single_thread(self):
        graph = graph_of(
            [
                isa.Immed(T("a"), 0),
                isa.MemOp("sram", "read", T("a"), (T("x"),)),
                isa.HaltInstr(()),
            ]
        )
        result = run_virtual(graph)
        assert result.cycles >= LATENCY["sram"]

    def test_two_threads_hide_latency(self):
        """The core of the IXP design: thread swap hides memory latency."""
        instrs = [
            isa.Immed(T("a"), 0),
            isa.MemOp("sram", "read", T("a"), (T("x"),)),
            isa.MemOp("scratch", "read", T("a"), (T("y"),)),
            isa.HaltInstr(()),
        ]
        one = run_virtual(graph_of(instrs), iterations=2, threads=1)
        two = run_virtual(graph_of(instrs), iterations=1, threads=2)
        assert two.cycles < one.cycles

    def test_memory_contention_queues(self):
        """A memory unit accepts one request per OCCUPANCY window, so
        concurrent threads queue (the AES-table contention effect the
        paper mentions) — but requests overlap, unlike full
        serialization."""
        sram_heavy = [
            isa.Immed(T("a"), 0),
            isa.MemOp("sram", "read", T("a"), tuple(T(f"x{i}") for i in range(8))),
            isa.HaltInstr(()),
        ]
        one = run_virtual(graph_of(sram_heavy), iterations=1, threads=1)
        four = run_virtual(graph_of(sram_heavy), iterations=1, threads=4)
        # Queueing slows the 4-thread run down...
        assert four.cycles > one.cycles
        # ...but far less than 4x: the unit pipeline overlaps requests.
        assert four.cycles < one.cycles * 4


@pytest.fixture(params=[True, False], ids=["decoded", "interp"])
def decode(request):
    """Run datapath-check tests under both execution paths."""
    return request.param


class TestPhysicalChecks:
    def test_legal_alu(self, decode):
        graph = graph_of(
            [
                isa.Immed(P(Bank.A, 0), 1),
                isa.Immed(P(Bank.B, 0), 2),
                isa.Alu(P(Bank.A, 1), "add", P(Bank.A, 0), P(Bank.B, 0)),
                isa.HaltInstr((P(Bank.A, 1),)),
            ]
        )
        machine = Machine(graph, physical=True, decode=decode)
        assert machine.run().results == [(0, (3,))]

    def test_two_operands_same_bank_trap(self, decode):
        graph = graph_of(
            [
                isa.Immed(P(Bank.A, 0), 1),
                isa.Immed(P(Bank.A, 1), 2),
                isa.Alu(P(Bank.A, 2), "add", P(Bank.A, 0), P(Bank.A, 1)),
                isa.HaltInstr(()),
            ]
        )
        with pytest.raises(SimulatorError, match="two operands from bank A"):
            Machine(graph, physical=True, decode=decode).run()

    def test_two_transfer_operands_trap(self, decode):
        graph = graph_of(
            [
                isa.Immed(P(Bank.A, 0), 0),
                isa.MemOp("sram", "read", P(Bank.A, 0), (P(Bank.L, 0),)),
                isa.MemOp("sdram", "read", P(Bank.A, 0), (P(Bank.LD, 0), P(Bank.LD, 1))),
                isa.Alu(P(Bank.A, 1), "add", P(Bank.L, 0), P(Bank.LD, 0)),
                isa.HaltInstr(()),
            ]
        )
        with pytest.raises(SimulatorError, match="transfer banks"):
            Machine(graph, physical=True, decode=decode).run()

    def test_alu_result_to_read_bank_traps(self, decode):
        graph = graph_of(
            [
                isa.Immed(P(Bank.A, 0), 1),
                isa.Alu(P(Bank.L, 0), "add", P(Bank.A, 0), isa.Imm(1)),
                isa.HaltInstr(()),
            ]
        )
        with pytest.raises(SimulatorError, match="cannot go to bank"):
            Machine(graph, physical=True, decode=decode).run()

    def test_move_within_transfer_bank_traps(self, decode):
        graph = graph_of(
            [
                isa.Immed(P(Bank.A, 0), 0),
                isa.MemOp("sram", "read", P(Bank.A, 0), (P(Bank.L, 0),)),
                isa.Move(P(Bank.L, 1), P(Bank.L, 0)),
                isa.HaltInstr(()),
            ]
        )
        with pytest.raises(SimulatorError, match="cannot go to bank"):
            Machine(graph, physical=True, decode=decode).run()

    def test_aggregate_must_be_adjacent(self, decode):
        graph = graph_of(
            [
                isa.Immed(P(Bank.A, 0), 0),
                isa.MemOp(
                    "sram", "read", P(Bank.A, 0), (P(Bank.L, 0), P(Bank.L, 2))
                ),
                isa.HaltInstr(()),
            ]
        )
        with pytest.raises(SimulatorError, match="adjacent"):
            Machine(graph, physical=True, decode=decode).run()

    def test_aggregate_wrong_bank_traps(self, decode):
        graph = graph_of(
            [
                isa.Immed(P(Bank.A, 0), 0),
                isa.MemOp("sram", "read", P(Bank.A, 0), (P(Bank.LD, 0),)),
                isa.HaltInstr(()),
            ]
        )
        with pytest.raises(SimulatorError, match="not in bank"):
            Machine(graph, physical=True, decode=decode).run()

    def test_address_from_transfer_bank_traps(self, decode):
        graph = graph_of(
            [
                isa.Immed(P(Bank.A, 0), 0),
                isa.MemOp("sram", "read", P(Bank.A, 0), (P(Bank.L, 0),)),
                isa.MemOp("sram", "read", P(Bank.L, 0), (P(Bank.L, 1),)),
                isa.HaltInstr(()),
            ]
        )
        with pytest.raises(SimulatorError, match="address"):
            Machine(graph, physical=True, decode=decode).run()

    def test_hash_same_register_number_enforced(self, decode):
        graph = graph_of(
            [
                isa.Immed(P(Bank.S, 2), 1),
                isa.HashInstr(P(Bank.L, 3), P(Bank.S, 2)),
                isa.HaltInstr(()),
            ]
        )
        with pytest.raises(SimulatorError, match="SameReg"):
            Machine(graph, physical=True, decode=decode).run()

    def test_register_index_bounds(self, decode):
        graph = graph_of([isa.Immed(P(Bank.A, 16), 1), isa.HaltInstr(())])
        with pytest.raises(SimulatorError, match="out of range"):
            Machine(graph, physical=True, decode=decode).run()

    def test_clone_must_not_survive_allocation(self, decode):
        graph = graph_of(
            [
                isa.Immed(P(Bank.A, 0), 1),
                isa.Clone(P(Bank.A, 1), P(Bank.A, 0)),
                isa.HaltInstr(()),
            ]
        )
        with pytest.raises(SimulatorError, match="clone"):
            Machine(graph, physical=True, decode=decode).run()


class TestMemorySystem:
    def test_sdram_alignment(self):
        memory = MemorySystem.create()
        with pytest.raises(SimulatorError, match="alignment"):
            memory["sdram"].read(1, 2)
        with pytest.raises(SimulatorError, match="alignment"):
            memory["sdram"].read(0, 3)

    def test_bounds(self):
        memory = MemorySystem.create({"scratch": 16})
        with pytest.raises(SimulatorError, match="out of range"):
            memory["scratch"].read(15, 2)

    def test_unknown_space(self):
        memory = MemorySystem.create()
        with pytest.raises(SimulatorError, match="unknown memory space"):
            memory["tcam"]

    def test_uninitialized_reads_zero(self):
        memory = MemorySystem.create()
        assert memory["sram"].read(5, 2) == [0, 0]


class TestFlowgraphStructure:
    def test_validate_rejects_missing_terminator(self):
        graph = FlowGraph(
            "entry", {"entry": Block("entry", [isa.Immed(T("a"), 1)])}
        )
        with pytest.raises(ValueError, match="terminator"):
            graph.validate()

    def test_validate_rejects_unknown_target(self):
        graph = FlowGraph("entry", {"entry": Block("entry", [isa.Br("gone")])})
        with pytest.raises(ValueError, match="unknown block"):
            graph.validate()

    def test_points_numbering(self):
        graph = graph_of(
            [isa.Immed(T("a"), 1), isa.Immed(T("b"), 2), isa.HaltInstr(())]
        )
        pm = graph.points()
        assert pm.count == 4
        assert pm.before("entry", 0) == 0
        assert pm.after("entry", 0) == pm.before("entry", 1)
        assert pm.after("entry", 2) == pm.exit("entry")
