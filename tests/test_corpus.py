"""The coverage-guided record/replay corpus (``repro.fuzz.corpus``).

Three things have to hold for a persistent corpus to be trustworthy:
the coverage signature must be a *stable* function of a run (identical
runs agree, topology changes disagree, and the exact feature strings
are pinned so stored corpora survive refactors); stored entries must
replay packet-for-packet identical to the run that was recorded (the
PR 7 trace-replay fidelity oracle, now across a store round-trip and a
topology swap); and the retention/minimization logic must keep exactly
the entries that pay for themselves in coverage.
"""

import json
import random

import pytest

from repro.fuzz.corpus import (
    CorpusEntry,
    CorpusStore,
    entry_from_scenario,
    entry_id_for,
    mutate_topology,
    verify_entry,
)
from repro.fuzz.netgen import (
    NetScenario,
    build_scenario_app,
    check_scenario,
    gen_scenario,
    run_net_campaign,
)
from repro.ixp.net import config_to_dict, coverage_signature, run_stream
from repro.fuzz.netgen import _fingerprints


@pytest.fixture(scope="module")
def recorded1():
    """Seed 1's scenario with its captured trace and signature."""
    scenario = gen_scenario(1)
    app = build_scenario_app(scenario)
    report = check_scenario(scenario, app=app)
    assert report.ok and report.trace
    return scenario, app, report


# -- coverage signature ----------------------------------------------------


def test_signature_deterministic_across_identical_runs():
    scenario = gen_scenario(0)
    app = build_scenario_app(scenario)
    first = coverage_signature(run_stream(app, scenario.config))
    second = coverage_signature(run_stream(app, scenario.config))
    assert first == second
    assert first == tuple(sorted(first))  # canonical order


def test_signature_sensitive_to_topology():
    from dataclasses import replace

    scenario = gen_scenario(0)
    app = build_scenario_app(scenario)
    base = coverage_signature(run_stream(app, scenario.config))
    more_engines = coverage_signature(
        run_stream(app, replace(scenario.config, engines=4))
    )
    tighter_rx = coverage_signature(
        run_stream(app, replace(scenario.config, rx_capacity=2))
    )
    assert more_engines != base
    assert tighter_rx != base


def test_signature_pinned_regression():
    """The exact feature strings for seed 0 — stored corpora depend on
    the signature staying byte-stable, so a change here is a breaking
    format change, not a refactor."""
    scenario = gen_scenario(0)
    app = build_scenario_app(scenario)
    assert coverage_signature(run_stream(app, scenario.config)) == (
        "lat<=1024x1",
        "lat<=128x1",
        "lat<=256x4",
        "lat<=512x16",
        "rx0.hwm<=8",
        "rx0.steered<=16",
        "rx1.hwm<=8",
        "rx1.steered<=16",
        "topo:e2xt1:rx48:tx4:rr:d16",
        "tx.hwm<=2",
    )


# -- store round-trip fidelity ---------------------------------------------


def test_store_roundtrip_replays_packet_for_packet(tmp_path, recorded1):
    scenario, app, report = recorded1
    seeded = run_stream(app, scenario.config)
    entry = entry_from_scenario(scenario, report.trace, report.signature)
    CorpusStore(tmp_path).add(entry)

    reloaded = CorpusStore(tmp_path)  # fresh load from disk
    assert len(reloaded) == 1
    loaded = reloaded.entries[entry.entry_id]
    assert loaded == entry
    assert verify_entry(loaded) == []
    replay = loaded.scenario()
    result = run_stream(build_scenario_app(replay), replay.config)
    assert _fingerprints(result) == _fingerprints(seeded)


def test_store_roundtrip_across_topology_swap(tmp_path, recorded1):
    """Capture the stored trace's run on a *swapped* topology, store
    that as a new entry, and the reloaded entry must still replay
    byte-identically (trace and signature both)."""
    from dataclasses import replace

    from repro.ixp.net import capture_trace

    scenario, app, report = recorded1
    rng = random.Random("topo-swap")
    swapped = mutate_topology(rng, scenario.config)
    assert swapped != scenario.config
    result = run_stream(app, replace(swapped, trace=report.trace))
    trace = capture_trace(result)
    swapped_scenario = NetScenario(
        seed=scenario.seed,
        program=scenario.program,
        config=swapped,
        flows=scenario.flows,
    )
    entry = entry_from_scenario(
        swapped_scenario, trace, coverage_signature(result)
    )
    assert entry.topology == config_to_dict(swapped)
    CorpusStore(tmp_path).add(entry)
    reloaded = CorpusStore(tmp_path).entries[entry.entry_id]
    assert verify_entry(reloaded) == []


def test_entry_ids_are_content_addressed(recorded1):
    scenario, _app, report = recorded1
    a = entry_from_scenario(scenario, report.trace, report.signature)
    b = entry_from_scenario(scenario, report.trace, report.signature)
    assert a.entry_id == b.entry_id
    assert a.entry_id == entry_id_for(
        scenario.program.source, report.trace, a.topology
    )
    shorter = entry_from_scenario(
        scenario, report.trace[:-1], report.signature
    )
    assert shorter.entry_id != a.entry_id


# -- retention and minimization --------------------------------------------


def _synthetic(tag: str, signature: tuple) -> CorpusEntry:
    return CorpusEntry(
        entry_id=f"fake-{tag}",
        seed=0,
        source=f"fn main(x) {{ halt {tag}; }}",
        params=("x",),
        flows=(1,),
        trace=(),
        topology={"engines": 1},
        signature=signature,
    )


def test_consider_retains_only_coverage_novel_entries(tmp_path):
    store = CorpusStore(tmp_path)
    assert store.consider(_synthetic("a", ("f1", "f2"))) == ("f1", "f2")
    assert store.consider(_synthetic("b", ("f2",))) == ()  # subsumed
    assert store.consider(_synthetic("c", ("f2", "f3"))) == ("f3",)
    assert sorted(store.entries) == ["fake-a", "fake-c"]
    assert store.covered == {"f1", "f2", "f3"}
    assert store.entries["fake-c"].new_features == ("f3",)
    # idempotent across a reload
    assert CorpusStore(tmp_path).consider(_synthetic("a", ("f1",))) == ()


def test_minimize_drops_subsumed_entries(tmp_path):
    store = CorpusStore(tmp_path)
    store.add(_synthetic("wide", ("f1", "f2", "f3")))
    store.add(_synthetic("narrow", ("f2",)))
    store.add(_synthetic("edge", ("f3", "f4")))
    removed = store.minimize()
    assert removed == ["fake-narrow"]
    assert sorted(store.entries) == ["fake-edge", "fake-wide"]
    assert store.covered == {"f1", "f2", "f3", "f4"}
    assert not (tmp_path / "entry-fake-narrow.json").exists()
    assert (tmp_path / "entry-fake-wide.json").exists()


def test_pick_is_deterministic(tmp_path):
    store = CorpusStore(tmp_path)
    with pytest.raises(ValueError):
        store.pick(random.Random(0))
    store.add(_synthetic("a", ("f1",)))
    store.add(_synthetic("b", ("f2",)))
    assert (
        store.pick(random.Random(7)).entry_id
        == store.pick(random.Random(7)).entry_id
    )


def test_entries_persist_as_stable_json(tmp_path, recorded1):
    scenario, _app, report = recorded1
    entry = entry_from_scenario(scenario, report.trace, report.signature)
    store = CorpusStore(tmp_path)
    store.add(entry)
    path = tmp_path / f"entry-{entry.entry_id}.json"
    payload = json.loads(path.read_text())
    assert payload["program"] == scenario.program.source
    assert payload["topology"]["engines"] == scenario.config.engines
    assert "trace" not in payload["topology"]
    assert payload["signature"] == list(report.signature)


# -- end-to-end campaign acceptance ----------------------------------------


def test_campaign_with_corpus_retains_and_replays(tmp_path):
    """Acceptance: a seeded campaign with ``corpus_dir`` retains at
    least one coverage-novel entry, every retained entry replays
    byte-identically, and a follow-up all-mutant campaign actually
    schedules mutants from the store."""
    corpus = tmp_path / "corpus"
    first = run_net_campaign(
        seed=0,
        count=4,
        artifact_dir=str(tmp_path / "art"),
        shrink_findings=False,
        corpus_dir=str(corpus),
    )
    assert first.corpus is not None
    assert first.corpus["retained"] >= 1
    store = CorpusStore(corpus)
    assert len(store) >= 1
    assert store.verify() == []

    second = run_net_campaign(
        seed=50,
        count=4,
        artifact_dir=str(tmp_path / "art"),
        shrink_findings=False,
        corpus_dir=str(corpus),
        mutate_ratio=1.0,
    )
    mutants = [u for u in second.units if u.origin.startswith("mutant:")]
    assert mutants, "mutate_ratio=1.0 scheduled no mutants"
    assert all(u.parent in store.entries or u.parent for u in mutants)
    assert second.summary()["mutants"] == len(mutants)
    assert CorpusStore(corpus).verify() == []


def test_campaign_without_corpus_dir_unchanged(tmp_path):
    result = run_net_campaign(
        seed=0, count=2, artifact_dir=str(tmp_path), shrink_findings=False
    )
    assert result.corpus is None
    assert "corpus" not in result.summary()
    assert all(u.origin == "fresh" for u in result.units)
