"""Tests for the type-layer utilities and compiler statistics."""

from repro.compiler import SourceStats, compile_nova, CompileOptions
from repro.errors import NovaError, SourcePos, SourceSpan
from repro.nova import types as ty
from repro.nova.layouts import BitField, Gap, Seq
from repro.nova.parser import parse_program
from repro.nova.types import (
    Record,
    Tuple,
    flatten_paths,
    packed_type,
    unpacked_type,
    word_tuple,
)


class TestTypeLayer:
    def test_flat_width(self):
        assert ty.WORD.flat_width() == 1
        assert ty.UNIT.flat_width() == 0
        assert Tuple((ty.WORD, ty.BOOL)).flat_width() == 2
        nested = Record((("a", ty.WORD), ("b", Tuple((ty.WORD, ty.WORD)))))
        assert nested.flat_width() == 3

    def test_exceptions_and_arrows_are_not_data(self):
        assert ty.Exn(ty.WORD).flat_width() == 0
        assert ty.Arrow(ty.WORD, ty.WORD).flat_width() == 0

    def test_word_tuple_normalization(self):
        assert word_tuple(0) == ty.UNIT
        assert word_tuple(1) == ty.WORD
        assert word_tuple(3) == Tuple((ty.WORD,) * 3)

    def test_packed_type(self):
        layout = Seq((("a", BitField(16)), ("b", BitField(20))))
        assert packed_type(layout) == Tuple((ty.WORD, ty.WORD))

    def test_unpacked_skips_gaps(self):
        layout = Seq((("a", BitField(8)), ("", Gap(8)), ("b", BitField(16))))
        record = unpacked_type(layout)
        assert [name for name, _ in record.fields] == ["a", "b"]

    def test_flatten_paths(self):
        nested = Record(
            (("a", ty.WORD), ("b", Record((("c", ty.WORD), ("d", ty.WORD)))))
        )
        paths = [p for p, _ in flatten_paths(nested)]
        assert paths == [("a",), ("b", "c"), ("b", "d")]

    def test_flatten_paths_tuple_indices(self):
        paths = [p for p, _ in flatten_paths(Tuple((ty.WORD, ty.WORD)))]
        assert paths == [("0",), ("1",)]

    def test_record_field_lookup(self):
        record = Record((("x", ty.WORD),))
        assert record.field("x") == ty.WORD
        assert record.field("nope") is None

    def test_type_rendering(self):
        assert str(ty.WORD) == "word"
        assert str(Tuple((ty.WORD, ty.BOOL))) == "(word, bool)"
        assert str(Record((("a", ty.WORD),))) == "[a: word]"
        assert str(ty.Exn(ty.UNIT)) == "exn(unit)"


class TestDiagnostics:
    def test_span_rendering(self):
        span = SourceSpan(SourcePos(3, 7), SourcePos(3, 9), "x.nova")
        assert str(span) == "x.nova:3:7"
        assert str(NovaError("boom", span)) == "x.nova:3:7: boom"

    def test_error_without_span(self):
        assert str(NovaError("boom")) == "boom"

    def test_unknown_span(self):
        assert SourceSpan.unknown().filename == "<unknown>"


class TestSourceStats:
    def test_counts_all_features(self):
        source = """
        layout a = { x : 8, y : 24 };
        layout b = { z : 32 };
        fun f (p : packed(a)) : word {
          let u = unpack[a](p);
          let q = pack[b] [z = u.x];
          try {
            if (u.y > 1) raise E (u.y) else raise F ();
            0
          } handle E (v) { v } handle F () { q }
        }
        fun main (p) { f(p) }
        """
        program = parse_program(source)
        stats = SourceStats.of(source, program)
        assert stats.layouts == 2
        assert stats.unpacks == 1
        assert stats.packs == 1
        assert stats.raises == 2
        assert stats.handles == 2
        assert stats.line_count == len(source.splitlines())

    def test_phase_timings_recorded(self):
        options = CompileOptions()
        options.run_allocator = False
        result = compile_nova("fun main (x) { x + 1 }", options=options)
        for phase in ("parse", "typecheck", "cps", "deproc", "optimize", "select"):
            assert phase in result.phase_seconds
            assert result.phase_seconds[phase] >= 0
