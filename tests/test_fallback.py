"""Allocator graceful degradation: highs → bnb → baseline coloring.

A solver timeout or crash must downgrade to a feasible allocation with
the downgrade recorded in the trace — never an unhandled exception —
while genuinely infeasible models keep raising :class:`AllocError`.
"""

import pytest

from repro.alloc.allocator import AllocOptions, allocate
from repro.compiler import CompileOptions, compile_nova
from repro.errors import AllocError
from repro.ilp import solve as solve_mod
from repro.ilp.solve import SolveOptions
from repro.trace import Tracer

SOURCE = """
layout h = { a : 8, b : 24 };
fun main (x) {
  let u = unpack[h](x);
  u.a + u.b
}
"""


def _options(engine="bnb", time_limit=0.0, **alloc_kwargs):
    options = CompileOptions()
    options.alloc.solve = SolveOptions(engine=engine, time_limit=time_limit)
    for key, value in alloc_kwargs.items():
        setattr(options.alloc, key, value)
    return options


def test_forced_timeout_degrades_to_baseline():
    tracer = Tracer()
    result = compile_nova(SOURCE, options=_options(), tracer=tracer)
    alloc = result.alloc
    assert alloc.fallback == "baseline"
    assert alloc.status == "baseline"
    assert alloc.spills == 0
    result.physical.validate()
    spans = tracer.all("fallback")
    assert [s.counters["stage"] for s in spans] == ["baseline"]
    assert "timeout" in spans[0].counters["reason"]


def test_baseline_fallback_runs_on_the_simulator():
    from repro.ixp.machine import Machine

    result = compile_nova(SOURCE, options=_options())
    locations = result.alloc.decoded.input_locations
    raw = result.make_inputs(x=0x45001234)
    inputs = {}
    for temp, value in raw.items():
        loc = locations.get(temp)
        if loc is not None:
            inputs[(loc[1].bank, loc[1].index)] = value
    machine = Machine(
        result.physical,
        physical=True,
        input_provider=lambda tid, it: dict(inputs) if it == 0 else None,
    )
    run = machine.run()
    # a=0x45, b=0x001234 -> 0x1279, same as the ILP-allocated program.
    assert run.results[0][1] == (0x1279,)


def test_fallback_disabled_raises():
    with pytest.raises(AllocError, match="solver failed"):
        compile_nova(SOURCE, options=_options(fallback=False))


def test_highs_crash_falls_back_to_bnb(monkeypatch):
    calls = []

    def exploding_milp(*args, **kwargs):
        calls.append(1)
        raise RuntimeError("synthetic HiGHS failure")

    monkeypatch.setattr(solve_mod.optimize, "milp", exploding_milp)
    tracer = Tracer()
    options = CompileOptions()
    options.alloc.solve = SolveOptions(engine="highs")
    result = compile_nova(SOURCE, options=options, tracer=tracer)
    assert calls, "the primary engine was attempted"
    alloc = result.alloc
    assert alloc.fallback == "bnb"
    assert alloc.status == "optimal"  # bnb finished the job properly
    assert alloc.spills == 0
    spans = tracer.all("fallback")
    assert [s.counters["stage"] for s in spans] == ["bnb"]
    assert "RuntimeError" in spans[0].counters["reason"]
    result.physical.validate()


def test_two_phase_timeout_degrades_to_baseline():
    tracer = Tracer()
    result = compile_nova(
        SOURCE, options=_options(two_phase=True), tracer=tracer
    )
    assert result.alloc.fallback == "baseline"
    assert tracer.all("fallback")


def test_infeasible_diagnosis_still_raises():
    # SSU disabled: conflicting aggregate positions have no feasible
    # coloring (paper Sections 9-10); that is a diagnosis, not a reason
    # to hand back a heuristic allocation.
    source = """
    fun main (addr, x, a, b, c) {
      sram(addr) <- (x, a, b, c);
      sram(addr + 8) <- (a, b, c, x);
      0
    }
    """
    options = CompileOptions()
    options.run_ssu = False
    with pytest.raises(AllocError, match="conflicting aggregate positions"):
        compile_nova(source, options=options)


def test_solver_infeasibility_raises_through_the_chain():
    from repro.alloc.allocator import _solve_chain
    from repro.ilp.model import Model
    from repro.trace import NULL

    m = Model("infeasible")
    x = m.family("x")
    m.add({x[(0,)]: 1.0, x[(1,)]: 1.0}, ">=", 3)  # two 0-1 vars can't reach 3
    m.minimize({x[(0,)]: 1.0})
    with pytest.raises(AllocError, match="infeasible"):
        _solve_chain(m, AllocOptions(), NULL)


def test_direct_allocate_fallback():
    comp = compile_nova(SOURCE, options=CompileOptions(run_allocator=False))
    graph = comp.flowgraph
    options = AllocOptions()
    options.solve = SolveOptions(engine="bnb", time_limit=0.0)
    result = allocate(graph, options)
    assert result.fallback == "baseline"
    assert result.variables == 0 and result.model is None
