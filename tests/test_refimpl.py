"""Reference implementation tests (known vectors + properties)."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.apps.refimpl import aes, kasumi, nat


class TestAesReference:
    def test_fips197_vector(self):
        """FIPS-197 Appendix C.1: the canonical AES-128 test vector."""
        key = bytes(range(16))
        plaintext = bytes.fromhex("00112233445566778899aabbccddeeff")
        expected = bytes.fromhex("69c4e0d86a7b0430d8cdb78070b4c55a")
        assert aes.aes_encrypt_block(plaintext, key) == expected

    def test_fips197_appendix_b_vector(self):
        """FIPS-197 Appendix B worked example."""
        key = bytes.fromhex("2b7e151628aed2a6abf7158809cf4f3c")
        plaintext = bytes.fromhex("3243f6a8885a308d313198a2e0370734")
        expected = bytes.fromhex("3925841d02dc09fbdc118597196a0b32")
        assert aes.aes_encrypt_block(plaintext, key) == expected

    def test_key_expansion_head_and_tail(self):
        """FIPS-197 Appendix A.1 expansion of the 2b7e... key."""
        key = bytes.fromhex("2b7e151628aed2a6abf7158809cf4f3c")
        words = aes.expand_key(key)
        assert len(words) == 44
        assert words[0] == 0x2B7E1516
        assert words[4] == 0xA0FAFE17
        assert words[43] == 0xB6630CA6

    def test_t_tables_consistent_with_sbox(self):
        t0, t1, t2, t3 = aes.aes_t_tables()
        for byte in range(256):
            s = aes.AES_SBOX[byte]
            assert (t0[byte] >> 16) & 0xFF == s
            assert (t1[byte] >> 8) & 0xFF == s
            assert t2[byte] >> 24 in range(256)
            # Rotation relations between the tables.
            assert t1[byte] == ((t0[byte] >> 8) | (t0[byte] << 24)) & 0xFFFFFFFF
            assert t2[byte] == ((t1[byte] >> 8) | (t1[byte] << 24)) & 0xFFFFFFFF

    def test_sbox_is_permutation(self):
        assert sorted(aes.AES_SBOX) == list(range(256))

    def test_payload_ecb_blocks_independent(self):
        key = bytes(16)
        payload = bytes(range(32))
        out = aes.aes_encrypt_payload(payload, key)
        assert out[:16] == aes.aes_encrypt_block(payload[:16], key)
        assert out[16:] == aes.aes_encrypt_block(payload[16:], key)

    @given(st.binary(min_size=16, max_size=16), st.binary(min_size=16, max_size=16))
    @settings(max_examples=20, deadline=None)
    def test_encryption_is_injective_on_samples(self, block, key):
        """Changing the plaintext changes the ciphertext."""
        other = bytes([block[0] ^ 1]) + block[1:]
        assert aes.aes_encrypt_block(block, key) != aes.aes_encrypt_block(
            other, key
        )


class TestKasumiReference:
    KEY = bytes.fromhex("2bd6459f82c5b300952c49104881ff48")

    def test_sboxes_are_permutations(self):
        assert sorted(kasumi.S7) == list(range(128))
        assert sorted(kasumi.S9) == list(range(512))

    def test_subkey_schedule_shapes(self):
        rounds = kasumi.kasumi_subkeys(self.KEY)
        assert len(rounds) == 8
        for sub in rounds:
            assert len(sub["KL"]) == 2
            assert len(sub["KO"]) == 3
            assert len(sub["KI"]) == 3
            for value in sub["KL"] + sub["KO"] + sub["KI"]:
                assert 0 <= value <= 0xFFFF

    def test_fl_is_involution_free_but_invertible_structure(self):
        # FL with zero keys: right ^= rol1(left & 0) = right;
        # left ^= rol1(right | 0).
        out = kasumi.fl(0x00010001, (0, 0))
        assert out & 0xFFFF == 0x0001

    def test_fi_range(self):
        for data in (0, 1, 0x7FFF, 0xFFFF):
            assert 0 <= kasumi.fi(data, 0x1234) <= 0xFFFF

    def test_block_roundtrip_determinism(self):
        block = bytes.fromhex("ea024714ad5c4d84")
        a = kasumi.kasumi_encrypt_block(block, self.KEY)
        b = kasumi.kasumi_encrypt_block(block, self.KEY)
        assert a == b
        assert a != block

    def test_key_sensitivity(self):
        block = bytes(8)
        k2 = bytes([self.KEY[0] ^ 1]) + self.KEY[1:]
        assert kasumi.kasumi_encrypt_block(
            block, self.KEY
        ) != kasumi.kasumi_encrypt_block(block, k2)

    def test_packed_subkeys_layout(self):
        words = kasumi.packed_subkey_words(self.KEY)
        assert len(words) == 32
        rounds = kasumi.kasumi_subkeys(self.KEY)
        assert (words[0] >> 16) & 0xFFFF == rounds[0]["KL"][0]
        assert words[0] & 0xFFFF == rounds[0]["KL"][1]
        assert (words[2] >> 16) & 0xFFFF == rounds[0]["KO"][2]

    @given(st.integers(0, 2**32 - 1), st.integers(0, 2**32 - 1))
    @settings(max_examples=30, deadline=None)
    def test_feistel_structure_left_becomes_right(self, left, right):
        """After one round pair the Feistel wiring must hold: running
        the cipher twice with the same input is deterministic and the
        output differs from the input (with overwhelming probability for
        a permutation-based round function)."""
        out = kasumi.kasumi_encrypt_words(left, right, self.KEY)
        assert out == kasumi.kasumi_encrypt_words(left, right, self.KEY)


class TestNatReference:
    def make_ipv6(self, payload_length=100, hop=64, nxt=6):
        src = [0x20010DB8, 0, 0, 1]
        dst = [0x20010DB8, 0, 0, 2]
        w0 = (6 << 28) | (0x0A << 20) | 0x12345
        w1 = (payload_length << 16) | (nxt << 8) | hop
        return [w0, w1] + src + dst, src, dst

    def test_parse_fields(self):
        words, src, dst = self.make_ipv6()
        h = nat.parse_ipv6_header(words)
        assert h["version"] == 6
        assert h["traffic_class"] == 0x0A
        assert h["flow_label"] == 0x12345
        assert h["payload_length"] == 100
        assert h["next_header"] == 6
        assert h["hop_limit"] == 64
        assert h["src"] == src and h["dst"] == dst

    def test_checksum_known_values(self):
        # Halves summing to 0xffff checksum to zero.
        assert nat.internet_checksum([0xFFFF0000]) == 0
        # Checksum over zeros is 0xffff.
        assert nat.internet_checksum([0, 0]) == 0xFFFF
        # Carry folding: 0x8000 + 0x8001 = 0x10001 -> 0x0002 -> ~ = 0xfffd.
        assert nat.internet_checksum([0x80008001]) == 0xFFFD

    def test_checksum_verifies(self):
        """Inserting the checksum makes the total sum come out right."""
        words, _, _ = self.make_ipv6()
        table = nat.build_nat_table(
            {(0x20010DB8, 0, 0, 1): 0x0A000001, (0x20010DB8, 0, 0, 2): 0x0A000002}
        )
        header = nat.translate_ipv6_to_ipv4(words, table)
        total = 0
        for word in header:
            total += (word >> 16) & 0xFFFF
            total += word & 0xFFFF
        while total >> 16:
            total = (total & 0xFFFF) + (total >> 16)
        assert total == 0xFFFF

    def test_translation_fields(self):
        words, src, dst = self.make_ipv6(payload_length=80, hop=33, nxt=17)
        table = nat.build_nat_table(
            {tuple(src): 0xC0A80001, tuple(dst): 0xC0A80002}
        )
        header = nat.translate_ipv6_to_ipv4(words, table)
        assert len(header) == 5
        assert header[0] >> 28 == 4  # version
        assert (header[0] >> 24) & 0xF == 5  # ihl
        assert (header[0] >> 16) & 0xFF == 0x0A  # tos = traffic class
        assert header[0] & 0xFFFF == 100  # 80 + 20
        assert header[2] >> 24 == 33  # ttl
        assert (header[2] >> 16) & 0xFF == 17  # protocol
        assert header[3] == 0xC0A80001
        assert header[4] == 0xC0A80002

    def test_table_lookup_uses_hash(self):
        src = (0x20010DB8, 0, 0, 1)
        index = nat.nat_table_index(list(src))
        table = nat.build_nat_table({src: 0x7F000001})
        assert table[index] == 0x7F000001

    @given(
        st.lists(st.integers(0, 2**32 - 1), min_size=5, max_size=5)
    )
    @settings(max_examples=50, deadline=None)
    def test_checksum_self_verifying_property(self, words):
        """For any header, inserting its checksum yields sum 0xffff."""
        header = list(words)
        header[2] &= 0xFFFF0000  # clear checksum field
        checksum = nat.internet_checksum(header)
        header[2] |= checksum
        total = 0
        for word in header:
            total += (word >> 16) & 0xFFFF
            total += word & 0xFFFF
        while total >> 16:
            total = (total & 0xFFFF) + (total >> 16)
        assert total == 0xFFFF
