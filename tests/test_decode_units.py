"""Decoder-level tests: spill code, exit-point moves, input locations."""

import pytest

from repro.ixp import isa
from repro.ixp.banks import Bank

from tests.helpers import compile_full, run_main, run_physical


def find_instrs(graph, cls):
    return [i for _, _, i in graph.instructions() if isinstance(i, cls)]


@pytest.fixture(scope="module")
def spilled_compilation():
    """One shared solve of the high-pressure program (expensive)."""
    n = 33
    reads = "\n".join(f"  let x{i} = sram(b + {i});" for i in range(n))
    uses = " + ".join(f"x{i}" for i in range(n))
    return compile_full(
        f"fun main (b) {{\n{reads}\n  hash(b); {uses}\n}}",
        time_limit=90,
        gap=0.5,
    )


class TestSpillSequencesUnit:
    """Deterministic spill decoding: force a spill through the model by
    removing the GPR banks from one temp's candidates."""

    def force_spilled(self):
        from repro.alloc import abcolor, decode
        from repro.alloc.ilpmodel import extract_solution
        from repro.ilp.solve import solve_model
        from repro.ixp.banks import Bank
        from tests.helpers import compile_virtual

        # x may only live in L or M; the 8-word read needs the whole L
        # bank, so x must take a scratch round-trip (store + reload).
        comp = compile_virtual(
            """
            fun main (b) {
              let x = sram(b);
              let (a1, a2, a3, a4, a5, a6, a7, a8) = sram(b + 1, 8);
              a1 + a2 + a3 + a4 + a5 + a6 + a7 + a8 + x
            }
            """
        )
        am = build_model_with_candidates(comp.flowgraph, lambda sets: {
            sets.def_l[0][2][0]: (Bank.L, Bank.M)
        })
        sol = solve_model(am.model)
        assert sol.status == "optimal"
        decoded_sol = extract_solution(am, sol)
        ab = abcolor.assign_ab_registers(
            comp.flowgraph,
            decoded_sol.banks_before,
            decoded_sol.banks_after,
            am.clone_rep,
        )
        result = decode.decode(am, decoded_sol, ab)
        return comp, decoded_sol, result

    def test_forced_spill_roundtrips(self):
        from repro.ixp.machine import Machine
        from repro.ixp.memory import MemorySystem

        comp, sol, result = self.force_spilled()
        assert sol.spills >= 1
        assert result.stats.spill_stores >= 1
        assert result.stats.spill_reloads >= 1
        # Run the decoded code: semantics must hold despite the detour.
        memory = MemorySystem.create()
        memory["sram"].load_words(0, [100, 1, 2, 3, 4, 5, 6, 7, 8])
        locations = result.input_locations
        inputs = {}
        for temp, value in comp.make_inputs(b=0).items():
            loc = locations.get(temp)
            if loc is not None:
                inputs[(loc[1].bank, loc[1].index)] = value
        machine = Machine(
            result.graph,
            memory=memory,
            physical=True,
            input_provider=lambda tid, it: inputs if it == 0 else None,
        )
        run = machine.run()
        assert run.results == [(0, (136,))]


def build_model_with_candidates(graph, make_restrictions):
    """Like build_model, but with per-temp candidate-bank restrictions
    (``make_restrictions(sets)`` returns temp → banks)."""
    from repro.alloc import ilpmodel as m
    from repro.alloc import frequency, liveness, pruning
    from repro.ilp.model import Model

    options = m.ModelOptions()
    points = graph.points()
    live = liveness.analyze(graph)
    sets = m.build_instr_sets(graph, points)
    candidates = pruning.candidate_banks(graph, True)
    for temp, banks in make_restrictions(sets).items():
        candidates.banks[temp] = frozenset(banks)
    costs = pruning.build_move_costs()
    weights = frequency.point_weights(graph)
    reps = m.clone_groups(sets)
    am = m.AllocModel(
        Model("restricted"),
        graph,
        points,
        live,
        sets,
        candidates,
        costs,
        weights,
        options,
        reps,
    )
    m._build_location_vars(am)
    m._build_operand_constraints(am)
    m._build_k_constraints(am)
    m._build_color_constraints(am)
    m._build_clone_constraints(am)
    m._build_spare_register_constraints(am)
    m._build_objective(am)
    return am


class TestSpillCode:
    def test_spill_sequences_use_scratch(self, spilled_compilation):
        comp = spilled_compilation
        if comp.alloc.spills == 0:
            pytest.skip("solver fit everything without spills")
        scratch_ops = [
            i
            for i in find_instrs(comp.physical, isa.MemOp)
            if i.space == "scratch"
        ]
        stores = [i for i in scratch_ops if i.direction == "write"]
        loads = [i for i in scratch_ops if i.direction == "read"]
        assert stores and loads
        # Stores go out through S, loads come back through L.
        for op in stores:
            assert all(r.bank is Bank.S for r in op.regs)
        for op in loads:
            assert all(r.bank is Bank.L for r in op.regs)
        # Slot addressing uses the reserved A15.
        spare_immeds = [
            i
            for i in find_instrs(comp.physical, isa.Immed)
            if isinstance(i.dst, isa.PhysReg)
            and i.dst.bank is Bank.A
            and i.dst.index == 15
        ]
        assert spare_immeds

    def test_spill_slots_disjoint(self, spilled_compilation):
        slots = list(spilled_compilation.alloc.decoded.spill_slots.values())
        assert len(slots) == len(set(slots))

    def test_a15_never_allocated_to_temps(self, spilled_compilation):
        comp = spilled_compilation
        for (temp, bank), index in comp.alloc.ab.colors.items():
            if bank is Bank.A:
                assert index != 15


class TestMovePlacement:
    def test_exit_point_moves_precede_terminator(self):
        # A diamond whose join forces values into one location: any
        # decoded move must come before the block's terminator.
        comp = compile_full(
            """
            fun main (x, b) {
              let (p, q) = sram(b);
              let r = if (x < 5) p + q else p ^ q;
              sram(b + 4) <- (r, x);
              r
            }
            """
        )
        for block in comp.physical.blocks.values():
            for instr in block.instrs[:-1]:
                assert not isinstance(instr, isa.TERMINATORS)
        rv, _ = run_main(comp, {"sram": [(0, [3, 9])]}, x=1, b=0)
        rp, _ = run_physical(comp, {"sram": [(0, [3, 9])]}, x=1, b=0)
        assert rv == rp == [(12,)]

    def test_input_locations_cover_used_params(self):
        comp = compile_full("fun main (x, y) { x + y }")
        locations = comp.alloc.decoded.input_locations
        mapping = comp.inputs_by_name()
        for name in ("x", "y"):
            (temp,) = mapping[name]
            assert temp in locations
            kind, where = locations[temp]
            assert kind == "reg"
            assert where.bank in (Bank.A, Bank.B)

    def test_unused_input_has_no_location(self):
        comp = compile_full("fun main (x, unused) { x + 1 }")
        locations = comp.alloc.decoded.input_locations
        (unused_temp,) = comp.inputs_by_name()["unused"]
        assert unused_temp not in locations

    def test_clone_instructions_never_survive(self):
        from tests.programs import case

        comp = compile_full(case("clone_heavy").source)
        assert not find_instrs(comp.physical, isa.Clone)

    def test_decode_stats_consistent(self):
        from tests.programs import case

        comp = compile_full(case("clone_heavy").source)
        stats = comp.alloc.decoded.stats
        assert stats.clones_dropped == len(comp.alloc.model.sets.clones)
        assert stats.spill_stores == stats.spill_reloads == 0
