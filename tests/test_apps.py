"""Application tests: the Nova programs agree with the references.

These run at the *virtual* level (no ILP) so they are fast; the ILP
level is covered for the full apps by the benchmarks and by
``test_apps_allocated.py``.
"""

import pytest

from repro.apps import build_aes_app, build_kasumi_app, build_nat_app
from repro.apps.aes_nova import (
    aes_reference_checksum,
    aes_reference_ciphertext,
)
from repro.apps.kasumi_nova import (
    kasumi_reference_ciphertext,
    kasumi_reference_sum,
)
from repro.apps.nat_nova import nat_reference_output

from tests.helpers import compile_virtual, run_main


class TestAesNova:
    @pytest.mark.parametrize("blocks", [1, 2, 4])
    def test_ciphertext_matches_reference(self, blocks):
        payload = bytes(range(16 * blocks))
        app = build_aes_app(payload=payload)
        comp = compile_virtual(app.source)
        results, mem = run_main(comp, app.memory_image, **app.inputs)
        got = mem["sdram"].dump_words(app.payload_base, 4 * blocks)
        assert got == aes_reference_ciphertext(payload)
        assert results == [(aes_reference_checksum(payload),)]

    def test_misaligned_payload(self):
        """align=1: plaintext read quad-word misaligned through the
        second layout view; ciphertext still written aligned."""
        payload = bytes(range(16))
        app = build_aes_app(payload=payload, align=1)
        comp = compile_virtual(app.source)
        _, mem = run_main(comp, app.memory_image, **app.inputs)
        got = mem["sdram"].dump_words(app.payload_base, 4)
        assert got == aes_reference_ciphertext(payload)

    def test_key_variation(self):
        key = bytes.fromhex("2b7e151628aed2a6abf7158809cf4f3c")
        payload = bytes.fromhex("3243f6a8885a308d313198a2e0370734")
        app = build_aes_app(key=key, payload=payload)
        comp = compile_virtual(app.source)
        _, mem = run_main(comp, app.memory_image, **app.inputs)
        got = mem["sdram"].dump_words(app.payload_base, 4)
        # FIPS-197 Appendix B, via the Nova program on the simulator.
        assert got == [0x3925841D, 0x02DC09FB, 0xDC118597, 0x196A0B32]

    def test_program_statistics_shape(self):
        """Figure 5/6 sanity: AES exercises layouts and aggregates."""
        app = build_aes_app()
        comp = compile_virtual(app.source)
        stats = comp.source_stats
        assert stats.layouts == 2
        assert stats.unpacks == 2
        assert stats.packs == 1
        assert stats.raises == 2
        assert stats.handles == 2
        assert comp.flowgraph.num_instructions() > 150


class TestKasumiNova:
    @pytest.mark.parametrize("blocks", [1, 2, 3])
    def test_ciphertext_matches_reference(self, blocks):
        payload = bytes((7 * i + 3) & 0xFF for i in range(8 * blocks))
        app = build_kasumi_app(payload=payload)
        comp = compile_virtual(app.source)
        results, mem = run_main(comp, app.memory_image, **app.inputs)
        got = mem["sdram"].dump_words(app.payload_base, 2 * blocks)
        assert got == kasumi_reference_ciphertext(payload)
        assert results == [(kasumi_reference_sum(payload),)]

    def test_key_sensitivity(self):
        payload = bytes(8)
        key_a = bytes(range(16))
        key_b = bytes([1]) + bytes(range(1, 16))
        out = []
        for key in (key_a, key_b):
            app = build_kasumi_app(key=key, payload=payload)
            comp = compile_virtual(app.source)
            _, mem = run_main(comp, app.memory_image, **app.inputs)
            out.append(tuple(mem["sdram"].dump_words(app.payload_base, 2)))
        assert out[0] != out[1]

    def test_one_scratch_read_per_round(self):
        """Paper: the packed subkeys make each round fetch exactly one
        scratch aggregate (plus the two S7 lookups inside each FI)."""
        app = build_kasumi_app()
        comp = compile_virtual(app.source)
        from repro.ixp import isa

        reads = [
            instr
            for _, _, instr in comp.flowgraph.instructions()
            if isinstance(instr, isa.MemOp)
            and instr.direction == "read"
            and instr.space == "scratch"
        ]
        four_word = [r for r in reads if len(r.regs) == 4]
        assert len(four_word) == 1  # the single in-loop subkey fetch


class TestNatNova:
    def test_translation_matches_reference(self):
        app = build_nat_app()
        comp = compile_virtual(app.source)
        results, mem = run_main(comp, app.memory_image, **app.inputs)
        ipv6 = app.memory_image["sdram"][-1][1]
        mappings = {
            tuple(ipv6[2:6]): 0x0A000001,
            tuple(ipv6[6:10]): 0x0A000002,
        }
        header, checksum = nat_reference_output(ipv6, mappings)
        base = app.inputs["base"]
        assert mem["sdram"].dump_words(base + 5, 5) == header
        assert results == [(checksum,)]
        # The word before the new packet start is untouched.
        assert mem["sdram"].dump_words(base + 4, 1) == [ipv6[4]]

    def test_non_ipv6_takes_slow_path(self):
        ipv6 = [(4 << 28), (100 << 16) | (6 << 8) | 64] + [0] * 8
        app = build_nat_app(ipv6_words=ipv6, mappings={})
        comp = compile_virtual(app.source)
        results, _ = run_main(comp, app.memory_image, **app.inputs)
        assert results == [(0xFFFFFFFF,)]

    def test_missing_mapping_raises(self):
        src = (0x20010DB8, 0, 0, 0x99)
        dst = (0x20010DB8, 0, 0, 0x98)
        w0 = 6 << 28
        w1 = (40 << 16) | (17 << 8) | 1
        ipv6 = [w0, w1, *src, *dst]
        app = build_nat_app(ipv6_words=ipv6, mappings={src: 0x0A000001})
        comp = compile_virtual(app.source)
        results, _ = run_main(comp, app.memory_image, **app.inputs)
        assert results == [(0xFFFFFFFE,)]

    def test_checksum_self_verifies(self):
        app = build_nat_app()
        comp = compile_virtual(app.source)
        _, mem = run_main(comp, app.memory_image, **app.inputs)
        header = mem["sdram"].dump_words(app.inputs["base"] + 5, 5)
        total = 0
        for word in header:
            total += (word >> 16) + (word & 0xFFFF)
        while total >> 16:
            total = (total & 0xFFFF) + (total >> 16)
        assert total == 0xFFFF

    def test_uses_hash_unit(self):
        app = build_nat_app()
        comp = compile_virtual(app.source)
        from repro.ixp import isa

        hashes = [
            instr
            for _, _, instr in comp.flowgraph.instructions()
            if isinstance(instr, isa.HashInstr)
        ]
        assert len(hashes) == 2  # one per address mapping
