"""The random program generator: deterministic, well-typed, steerable."""

import pytest

from repro.compiler import CompileOptions, compile_nova
from repro.fuzz.gen import ALL_FEATURES, GenConfig, generate
from repro.fuzz.oracle import check_generated, default_configs


def _virtual():
    options = CompileOptions()
    options.run_allocator = False
    return options


def test_same_seed_same_program():
    a = generate(7)
    b = generate(7)
    assert a.source == b.source
    assert a.vectors == b.vectors
    assert a.memory_image == b.memory_image


def test_distinct_seeds_differ():
    sources = {generate(seed).source for seed in range(12)}
    assert len(sources) >= 10


@pytest.mark.parametrize("seed", range(0, 30))
def test_generated_programs_are_valid(seed):
    """Every program compiles and its reference run succeeds."""
    program = generate(seed)
    report = check_generated(program, configs=default_configs([]))
    assert report.invalid is None, (
        f"seed {seed} generated an invalid program: {report.invalid}\n"
        f"{program.source}"
    )


def test_feature_knob_disables_memory():
    config = GenConfig(features=ALL_FEATURES - {"memory"})
    for seed in range(10):
        source = generate(seed, config).source
        assert "sram" not in source
        assert "sdram" not in source
        assert "scratch" not in source


def test_feature_knob_disables_tryraise():
    config = GenConfig(
        features=ALL_FEATURES - {"tryraise", "exnparams", "calls"}
    )
    for seed in range(10):
        source = generate(seed, config).source
        assert "raise" not in source
        assert "try" not in source


def test_size_knob_shrinks_programs():
    small = sum(
        len(generate(seed, GenConfig(max_stmts=2)).source) for seed in range(8)
    )
    large = sum(
        len(generate(seed, GenConfig(max_stmts=10)).source) for seed in range(8)
    )
    assert small < large


def test_vectors_cover_every_parameter():
    for seed in range(10):
        program = generate(seed)
        assert program.vectors
        for vector in program.vectors:
            assert set(vector) == set(program.params)


def test_memory_image_loads(tmp_path):
    """Programs that read memory carry a preloaded image that compiles
    into the oracle's memory system without alignment errors."""
    found = False
    for seed in range(30):
        program = generate(seed)
        if not program.memory_image:
            continue
        found = True
        comp = compile_nova(program.source, options=_virtual())
        assert comp is not None
    assert found, "no seed in 0..30 produced memory traffic"
