"""Instruction-selection unit tests: parallel copies, expansions,
graph cleanup."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cps import ir
from repro.cps.deproc import FirstOrderProgram
from repro.errors import SelectError
from repro.ixp import isa
from repro.ixp.select import _Selector

from tests.helpers import compile_virtual, run_main


def selector():
    prog = FirstOrderProgram((), ir.Halt(()), ir.Gensym("sel_"))
    return _Selector(prog)


def run_copy(dests, srcs, initial):
    """Execute an emitted parallel copy over a dict register file."""
    sel = selector()
    out = []
    sel.emit_parallel_copy(
        list(dests), [ir.Var(s) if isinstance(s, str) else ir.Const(s) for s in srcs], out
    )
    regs = dict(initial)
    for instr in out:
        if isinstance(instr, isa.Move):
            regs[instr.dst.name] = regs[instr.src.name]
        elif isinstance(instr, isa.Immed):
            regs[instr.dst.name] = instr.value
        else:  # pragma: no cover
            raise AssertionError(f"unexpected {instr}")
    return regs, out


class TestParallelCopy:
    def test_disjoint(self):
        regs, out = run_copy(["a", "b"], ["x", "y"], {"x": 1, "y": 2})
        assert regs["a"] == 1 and regs["b"] == 2
        assert len(out) == 2

    def test_self_move_elided(self):
        _, out = run_copy(["a"], ["a"], {"a": 1})
        assert out == []

    def test_chain_ordering(self):
        # b := a must run before a := x overwrites a... here: a->b, x->a.
        regs, _ = run_copy(["b", "a"], ["a", "x"], {"a": 7, "x": 9})
        assert regs["b"] == 7 and regs["a"] == 9

    def test_swap_uses_temp(self):
        regs, out = run_copy(["a", "b"], ["b", "a"], {"a": 1, "b": 2})
        assert regs["a"] == 2 and regs["b"] == 1
        assert len(out) == 3  # cycle broken with one temporary

    def test_three_cycle(self):
        regs, _ = run_copy(
            ["a", "b", "c"], ["c", "a", "b"], {"a": 1, "b": 2, "c": 3}
        )
        assert (regs["a"], regs["b"], regs["c"]) == (3, 1, 2)

    def test_constants_after_register_moves(self):
        regs, _ = run_copy(["a", "b"], ["b", 42], {"a": 0, "b": 7})
        assert regs["a"] == 7 and regs["b"] == 42

    @given(st.data())
    @settings(max_examples=80, deadline=None)
    def test_random_permutation_property(self, data):
        """Any assignment pattern (including cycles and fan-out) lands
        every destination on its source's original value."""
        n = data.draw(st.integers(1, 6))
        names = [f"r{i}" for i in range(n)]
        dests = data.draw(
            st.lists(
                st.sampled_from(names), min_size=1, max_size=n, unique=True
            )
        )
        srcs = [data.draw(st.sampled_from(names)) for _ in dests]
        initial = {name: i * 10 for i, name in enumerate(names)}
        regs, _ = run_copy(dests, srcs, initial)
        for dst, src in zip(dests, srcs):
            assert regs[dst] == initial[src], (dests, srcs)


class TestExpansions:
    def test_mul_power_of_two(self):
        comp = compile_virtual("fun main (x) { x * 8 }")
        assert run_main(comp, x=5)[0] == [(40,)]

    def test_mul_shift_add(self):
        comp = compile_virtual("fun main (x) { x * 10 }")
        assert run_main(comp, x=7)[0] == [(70,)]

    def test_mul_too_many_terms_rejected(self):
        with pytest.raises(SelectError, match="shift-adds"):
            compile_virtual("fun main (x) { x * 0xAAAA }")

    def test_mul_by_variable_rejected(self):
        with pytest.raises(SelectError, match="non-constant"):
            compile_virtual("fun main (x, y) { x * y }")

    def test_div_power_of_two(self):
        comp = compile_virtual("fun main (x) { x / 4 }")
        assert run_main(comp, x=22)[0] == [(5,)]

    def test_div_non_power_rejected(self):
        with pytest.raises(SelectError, match="power-of-two"):
            compile_virtual("fun main (x) { x / 3 }")

    def test_mod_power_of_two(self):
        comp = compile_virtual("fun main (x) { x % 8 }")
        assert run_main(comp, x=21)[0] == [(5,)]

    def test_large_constant_materialized(self):
        comp = compile_virtual("fun main (x) { x + 0x12345678 }")
        immeds = [
            i
            for _, _, i in comp.flowgraph.instructions()
            if isinstance(i, isa.Immed)
        ]
        assert any(i.value == 0x12345678 for i in immeds)

    def test_small_constant_stays_inline(self):
        comp = compile_virtual("fun main (x) { x + 200 }")
        for _, _, instr in comp.flowgraph.instructions():
            if isinstance(instr, isa.Alu):
                assert isinstance(instr.b, isa.Imm)


class TestGraphCleanup:
    def test_trivial_jump_threaded(self):
        comp = compile_virtual(
            "fun main (x) { if (x < 1) { 1 } else { 2 } }"
        )
        # No block should consist solely of a jump.
        for block in comp.flowgraph.blocks.values():
            if len(block.instrs) == 1:
                assert not isinstance(block.instrs[0], isa.Br)

    def test_straightline_merged(self):
        comp = compile_virtual(
            "fun main (x) { let a = x + 1; let b = a + 2; b }"
        )
        assert len(comp.flowgraph.blocks) == 1

    def test_all_blocks_reachable(self):
        comp = compile_virtual(
            """
            fun main (x) {
              let r = if (x < 10) x * 2
                      else if (x < 100) x * 4
                      else x;
              r + 1
            }
            """
        )
        graph = comp.flowgraph
        reachable = set()
        stack = [graph.entry]
        while stack:
            label = stack.pop()
            if label in reachable:
                continue
            reachable.add(label)
            stack.extend(graph.blocks[label].successors())
        assert reachable == set(graph.blocks)
