"""Tests for the independent verifiers (solution replay + equivalence)."""

import pytest

from repro.alloc.ilpmodel import AllocSolution
from repro.alloc.verify import check_equivalence, check_solution
from repro.ixp import isa
from repro.ixp.banks import Bank

from tests.helpers import compile_full
from tests.programs import case


@pytest.mark.parametrize(
    "name",
    [
        "memory_roundtrip",
        "clone_heavy",
        "while_sum",
        "hash_unit",
        "sdram_pairs",
    ],
)
def test_solutions_pass_replay(name):
    tc = case(name)
    comp = compile_full(tc.source)
    report = check_solution(comp.alloc.model, comp.alloc.alloc)
    assert report.ok, report.violations


def _tamper(solution: AllocSolution, **changes) -> AllocSolution:
    return AllocSolution(
        banks_before=changes.get("banks_before", solution.banks_before),
        banks_after=changes.get("banks_after", solution.banks_after),
        moves=solution.moves,
        colors=changes.get("colors", solution.colors),
        spills=solution.spills,
        move_count=solution.move_count,
    )


class TestReplayCatchesCorruption:
    def comp(self):
        return compile_full(case("memory_roundtrip").source)

    def test_detects_wrong_aggregate_bank(self):
        comp = self.comp()
        solution = comp.alloc.alloc
        # Force one read target's Before bank to A (illegal: must be L).
        (p1, p2, names) = comp.alloc.model.sets.def_l[0]
        banks_before = dict(solution.banks_before)
        banks_before[(p2, names[0])] = Bank.A
        report = check_solution(comp.alloc.model, _tamper(solution, banks_before=banks_before))
        assert not report.ok
        assert any("aggregate" in v or "DefL" in v for v in report.violations)

    def test_detects_nonadjacent_colors(self):
        comp = self.comp()
        solution = comp.alloc.alloc
        (p1, p2, names) = comp.alloc.model.sets.def_l[0]
        colors = dict(solution.colors)
        first = colors[(names[0], Bank.L)]
        colors[(names[1], Bank.L)] = (first + 3) % 8
        report = check_solution(
            comp.alloc.model, _tamper(solution, colors=colors)
        )
        assert not report.ok
        assert any("adjacent" in v for v in report.violations)

    def test_detects_broken_copy(self):
        comp = self.comp()
        solution = comp.alloc.alloc
        # Flip one live temp's After bank mid-range without a move.
        p1, p2, v = sorted(comp.alloc.model.live.copies)[0]
        banks_after = dict(solution.banks_after)
        current = banks_after.get((p1, v))
        if current is None:
            pytest.skip("no after entry on this copy edge")
        banks_after[(p1, v)] = Bank.B if current is not Bank.B else Bank.A
        report = check_solution(
            comp.alloc.model, _tamper(solution, banks_after=banks_after)
        )
        assert not report.ok

    def test_detects_same_bank_operands(self):
        comp = compile_full("fun main (x, y) { x + y }")
        solution = comp.alloc.alloc
        sets = comp.alloc.model.sets
        if not sets.arith:
            pytest.skip("no two-operand instruction")
        p1, p2, a, b = sets.arith[0]
        banks_after = dict(solution.banks_after)
        banks_after[(p1, a)] = banks_after[(p1, b)] = Bank.A
        report = check_solution(
            comp.alloc.model, _tamper(solution, banks_after=banks_after)
        )
        assert not report.ok
        assert any("both operands" in v for v in report.violations)


class TestReplayCatchesRegisterSharing:
    """Corruptions that make two live values share one register."""

    def test_detects_shared_transfer_register(self):
        comp = compile_full(case("sdram_pairs").source)
        solution = comp.alloc.alloc
        # Collapse an aggregate onto one transfer register: both members
        # get the same color, i.e. two live ranges in one register.
        found = None
        for p1, p2, names in (
            comp.alloc.model.sets.def_l + comp.alloc.model.sets.def_ld
        ):
            if len(names) >= 2:
                found = names
                break
        assert found is not None
        bank = comp.alloc.alloc.banks_before[
            (p2, found[0])
        ]  # the aggregate's bank
        colors = dict(solution.colors)
        colors[(found[1], bank)] = colors[(found[0], bank)]
        report = check_solution(
            comp.alloc.model, _tamper(solution, colors=colors)
        )
        assert not report.ok
        assert any("adjacent" in v for v in report.violations)

    def test_detects_missing_assignment(self):
        comp = compile_full(case("memory_roundtrip").source)
        solution = comp.alloc.alloc
        p, v = sorted(comp.alloc.model.live.exists)[0]
        banks_before = dict(solution.banks_before)
        del banks_before[(p, v)]
        report = check_solution(
            comp.alloc.model, _tamper(solution, banks_before=banks_before)
        )
        assert not report.ok
        assert any("no Before bank" in v for v in report.violations)

    def test_detects_hash_register_mismatch(self):
        comp = compile_full(case("hash_unit").source)
        solution = comp.alloc.alloc
        sets = comp.alloc.model.sets
        if not sets.same_reg:
            pytest.skip("no hash pair in this program")
        p1, p2, d, s = sets.same_reg[0]
        colors = dict(solution.colors)
        from repro.ixp.banks import Bank as B

        colors[(d, B.L)] = (colors.get((d, B.L), 0) + 1) % 8
        if colors[(d, B.L)] == colors.get((s, B.S)):
            colors[(d, B.L)] = (colors[(d, B.L)] + 1) % 8
        report = check_solution(
            comp.alloc.model, _tamper(solution, colors=colors)
        )
        assert not report.ok
        assert any("SameReg" in v for v in report.violations)


class TestEquivalenceChecker:
    def test_passes_on_correct_code(self):
        tc = case("memory_roundtrip")
        comp = compile_full(tc.source)
        report = check_equivalence(
            comp.flowgraph,
            comp.physical,
            comp.make_inputs(**tc.inputs),
            comp.alloc.decoded.input_locations,
            memory_image=tc.memory,
            spill_region=(960, 64),
        )
        assert report.ok

    def test_catches_sabotaged_code(self):
        tc = case("memory_roundtrip")
        comp = compile_full(tc.source)
        # Sabotage: flip an ALU op in the physical code.
        sabotaged = False
        for block in comp.physical.blocks.values():
            for i, instr in enumerate(block.instrs):
                if isinstance(instr, isa.Alu) and instr.op == "add":
                    block.instrs[i] = isa.Alu(instr.dst, "sub", instr.a, instr.b)
                    sabotaged = True
                    break
            if sabotaged:
                break
        assert sabotaged
        report = check_equivalence(
            comp.flowgraph,
            comp.physical,
            comp.make_inputs(**tc.inputs),
            comp.alloc.decoded.input_locations,
            memory_image=tc.memory,
            spill_region=(960, 64),
        )
        assert not report.ok

    def test_catches_register_aliasing(self):
        """Redirecting a result into another live register (two ranges
        aliased onto one register) must show up as a behaviour change."""
        tc = case("memory_roundtrip")
        comp = compile_full(tc.source)
        aliased = False
        for block in comp.physical.blocks.values():
            for i, instr in enumerate(block.instrs):
                if (
                    isinstance(instr, isa.Alu)
                    and isinstance(instr.dst, isa.PhysReg)
                    and instr.dst.bank in (Bank.A, Bank.B)
                ):
                    wrong = isa.PhysReg(instr.dst.bank, (instr.dst.index + 1) % 15)
                    if wrong != instr.dst:
                        block.instrs[i] = isa.Alu(wrong, instr.op, instr.a, instr.b)
                        aliased = True
                        break
            if aliased:
                break
        assert aliased
        report = check_equivalence(
            comp.flowgraph,
            comp.physical,
            comp.make_inputs(**tc.inputs),
            comp.alloc.decoded.input_locations,
            memory_image=tc.memory,
            spill_region=(960, 64),
        )
        assert not report.ok
