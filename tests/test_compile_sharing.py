"""Compilation sharing must be invisible: one front end, many back ends.

The fuzz oracle compiles every program under six option points.  PR 4
splits the pipeline so the option-independent prefix (parse → typecheck
→ CPS → deproc) runs once (`parse_front`), allocator-only option points
re-run just the allocator over a shared virtual flowgraph
(`allocate_compilation`), and solver-engine configs share one built
`AllocModel`.  Every shared artifact must be *identical* to what a
from-scratch `compile_nova` produces — these tests pin that down at the
listing level, where any drift in gensym numbering, optimization, or
allocation shows up textually.
"""

import dataclasses

from repro.alloc.allocator import allocate
from repro.cache import CompileCache, frontend_fingerprint
from repro.compiler import (
    CompileOptions,
    allocate_compilation,
    compile_from_front,
    compile_nova,
    parse_front,
)
from repro.fuzz.gen import GenConfig, generate
from repro.fuzz.oracle import check_generated, default_configs
from repro.ilp.model import LinExpr, Model
from repro.ilp.solve import SolveOptions

SOURCE = """
fun main (x, y) {
  let s = x + y;
  let t = s ^ (x << 2);
  if (t > y) t - y else t + 1
}
"""


def _virtual(**overrides) -> CompileOptions:
    options = CompileOptions(**overrides)
    options.run_allocator = False
    return options


def _listing(comp, physical=False) -> str:
    from repro.ixp.listing import render_listing

    return render_listing(comp.physical if physical else comp.flowgraph)


class TestFrontEndSharing:
    def test_shared_front_matches_fresh_compiles(self):
        front = parse_front(SOURCE)
        for options in (
            _virtual(),
            _virtual(optimizer_rounds=0),
            _virtual(run_ssu=False),
        ):
            shared = compile_from_front(front, options)
            fresh = compile_nova(SOURCE, options=options)
            assert _listing(shared) == _listing(fresh)

    def test_front_not_consumed_by_repeated_backends(self):
        front = parse_front(SOURCE)
        first = compile_from_front(front, _virtual())
        second = compile_from_front(front, _virtual())
        assert _listing(first) == _listing(second)

    def test_allocate_compilation_matches_full_compile(self):
        base = compile_nova(SOURCE, options=_virtual())
        options = CompileOptions()
        shared = allocate_compilation(base, options)
        fresh = compile_nova(SOURCE, options=options)
        assert _listing(shared, physical=True) == _listing(fresh, physical=True)

    def test_frontend_fingerprint_ignores_allocator_knobs(self):
        plain = CompileOptions()
        tweaked = CompileOptions()
        tweaked.run_allocator = False
        tweaked.alloc.solve = SolveOptions(engine="bnb", time_limit=0.0)
        assert frontend_fingerprint(plain) == frontend_fingerprint(tweaked)
        different = CompileOptions(optimizer_rounds=0)
        assert frontend_fingerprint(plain) != frontend_fingerprint(different)


class TestModelSharing:
    def test_prebuilt_model_gives_identical_allocation(self):
        base = compile_nova(SOURCE, options=_virtual())
        graph = base.flowgraph
        options = CompileOptions().alloc
        fresh = allocate(graph, options)
        shared = allocate(graph, options, prebuilt=fresh.model)
        assert fresh.moves == shared.moves
        assert fresh.spills == shared.spills
        assert fresh.status == shared.status
        from repro.ixp.listing import render_listing

        assert render_listing(fresh.physical) == render_listing(shared.physical)

    def test_standard_form_memoized_until_mutation(self):
        model = Model("memo")
        x = model.family("x")
        a, b = x[("a",)], x[("b",)]
        model.add(LinExpr({a: 1, b: 1}), "<=", 1)
        model.minimize({a: 1.0, b: 2.0})
        first = model.standard_form()
        assert model.standard_form() is first
        model.add(LinExpr({a: 1}), ">=", 0)
        second = model.standard_form()
        assert second is not first
        assert second[1].shape[0] == 2  # both constraints present

    def test_standard_form_invalidated_by_objective_rebind(self):
        # The two-phase allocator rebinds ``model.objective`` wholesale.
        model = Model("rebind")
        x = model.family("x")
        a = x[("a",)]
        model.add(LinExpr({a: 1}), "<=", 1)
        model.minimize({a: 3.0})
        first = model.standard_form()
        model.objective = {}
        model.minimize({a: 7.0})
        second = model.standard_form()
        assert second is not first
        assert second[0][a] == 7.0


class TestOracleCaching:
    def test_warm_cache_report_matches_cold(self, tmp_path):
        program = generate(3, GenConfig())
        cache = CompileCache(tmp_path / "cc")
        configs = default_configs(["no-opt", "alloc-highs", "alloc-baseline"])
        cold = check_generated(program, configs=configs, cache=cache)
        warm = check_generated(program, configs=configs, cache=cache)
        assert cold.cache_hits == 0 and cold.cache_misses > 0
        assert warm.cache_misses == 0
        assert warm.cache_hits == cold.cache_misses

        def strip(report):
            data = dataclasses.asdict(report)
            data.pop("cache_hits")
            data.pop("cache_misses")
            return data

        assert strip(cold) == strip(warm)

    def test_shared_path_matches_isolated_compiles(self, monkeypatch):
        """The whole report must match pre-PR one-compile-per-config."""
        import repro.fuzz.oracle as oracle_mod

        def isolated_compile(config, share, cache, tracer, report):
            return compile_nova(
                share.source, options=config.options, tracer=tracer
            )

        program = generate(5, GenConfig())
        shared = dataclasses.asdict(check_generated(program))
        monkeypatch.setattr(oracle_mod, "_compile_config", isolated_compile)
        isolated = dataclasses.asdict(check_generated(program))
        assert shared == isolated
