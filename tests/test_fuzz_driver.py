"""The campaign driver and the ``novac fuzz`` CLI."""

import json
import pathlib

from repro.cli import main
from repro.fuzz.driver import run_campaign
from repro.fuzz.gen import GenConfig
from repro.fuzz.inject import broken_constant_fold
from repro.trace import Tracer


def test_small_campaign_all_ok(tmp_path):
    result = run_campaign(
        seed=0,
        count=4,
        config_names=["no-opt"],
        artifact_dir=str(tmp_path),
    )
    assert len(result.units) == 4
    assert all(unit.ok for unit in result.units)
    assert result.artifacts == []
    summary = result.summary()
    assert summary["ok"] == 4
    assert summary["divergent"] == 0


def test_campaign_is_deterministic():
    a = run_campaign(seed=3, count=3, config_names=["no-opt"], shrink_findings=False)
    b = run_campaign(seed=3, count=3, config_names=["no-opt"], shrink_findings=False)
    assert [u.seed for u in a.units] == [u.seed for u in b.units]
    assert [u.ok for u in a.units] == [u.ok for u in b.units]


def test_campaign_traces_units():
    tracer = Tracer()
    run_campaign(
        seed=0, count=2, config_names=["no-opt"], tracer=tracer, shrink_findings=False
    )
    names = [span.name for span in tracer.spans]
    assert "fuzz" in names
    assert names.count("fuzz.unit") == 2
    assert "fuzz.config" in names


def test_injected_bug_produces_crash_artifact(tmp_path):
    """End-to-end: campaign finds the miscompile, shrinks it, persists it."""
    gen_config = GenConfig(max_stmts=5)
    # "and" folds often in generated programs (masking patterns); seeds 7
    # and 11 in this window are known to exercise it.
    with broken_constant_fold(op="and", delta=1):
        result = run_campaign(
            seed=0,
            count=12,
            config_names=["no-opt"],
            gen_config=gen_config,
            artifact_dir=str(tmp_path),
            shrink_budget=150,
        )
    divergent = [u for u in result.units if not u.ok and u.invalid is None]
    assert divergent, "no seed in 0..12 exercised constant folding"
    assert result.artifacts
    artifact = result.artifacts[0]
    directory = pathlib.Path(artifact.directory)
    assert (directory / "program.nova").exists()
    assert (directory / "minimized.nova").exists()
    payload = json.loads((directory / "report.json").read_text())
    assert payload["divergences"]
    minimized = (directory / "minimized.nova").read_text()
    assert len([l for l in minimized.splitlines() if l.strip()]) <= 15


def test_cli_fuzz_exit_codes(tmp_path, capsys):
    ok = main(
        [
            "fuzz",
            "--seed",
            "0",
            "--count",
            "2",
            "--configs",
            "no-opt",
            "--artifact-dir",
            str(tmp_path),
        ]
    )
    out = capsys.readouterr().out
    assert ok == 0
    assert "2/2 ok" in out


def test_cli_fuzz_rejects_unknown_config(capsys):
    code = main(["fuzz", "--count", "1", "--configs", "bogus"])
    assert code == 2
    assert "unknown" in capsys.readouterr().err


def test_cli_fuzz_rejects_unknown_feature(capsys):
    code = main(["fuzz", "--count", "1", "--features", "bogus"])
    assert code == 2
    assert "unknown features" in capsys.readouterr().err
