"""Batch compilation (`repro.batch`): fan-out, error records, tracing."""

import os
from concurrent.futures import ProcessPoolExecutor

import pytest

from repro.batch import BatchError, compile_many, scatter
from repro.compiler import CompileOptions
from repro.trace import Tracer

GOOD = """
layout h = { a : 8, b : 24 };
fun main (x) {
  let u = unpack[h](x);
  u.a + u.b
}
"""

GOOD2 = """
fun main (x, y) {
  x * 3 + y
}
"""

BAD_TYPE = "fun main (x) { y }"  # unbound variable
BAD_PARSE = "fun main (x) {\n  let = 3;\n}"


def test_serial_batch_collects_all_results():
    result = compile_many([("good.nova", GOOD), ("good2.nova", GOOD2)])
    assert [u.name for u in result.units] == ["good.nova", "good2.nova"]
    assert all(u.ok for u in result.units)
    for unit in result.units:
        assert unit.compilation is not None
        assert unit.compilation.alloc.status == "optimal"
    assert result.summary()["failed"] == 0


def test_failures_do_not_stop_the_batch():
    result = compile_many(
        [
            ("bad_type.nova", BAD_TYPE),
            ("good.nova", GOOD),
            ("bad_parse.nova", BAD_PARSE),
        ]
    )
    assert [u.ok for u in result.units] == [False, True, False]
    type_err = result.units[0].error
    assert isinstance(type_err, BatchError)
    assert "unbound" in type_err.message
    assert type_err.location and "bad_type.nova" in type_err.location
    parse_err = result.units[2].error
    assert parse_err.kind == "ParseError"
    assert "2:" in parse_err.location  # line carried through
    assert len(result.failed) == 2 and len(result.ok) == 1


def test_unreadable_path_is_a_structured_error(tmp_path):
    result = compile_many([str(tmp_path / "missing.nova"), ("ok.nova", GOOD)])
    assert not result.units[0].ok
    assert result.units[0].error.kind in ("FileNotFoundError", "OSError")
    assert result.units[1].ok


def test_parallel_matches_serial(tmp_path):
    sources = [
        ("good.nova", GOOD),
        ("bad.nova", BAD_TYPE),
        ("good2.nova", GOOD2),
    ]
    serial = compile_many(sources, jobs=1)
    parallel = compile_many(sources, jobs=2)
    assert [u.name for u in parallel.units] == [u.name for u in serial.units]
    assert [u.ok for u in parallel.units] == [u.ok for u in serial.units]
    # Identical artifacts come back across the process boundary.
    assert (
        parallel.units[0].compilation.physical.pretty()
        == serial.units[0].compilation.physical.pretty()
    )
    assert parallel.jobs == 2


def test_parallel_batch_uses_the_cache(tmp_path):
    sources = [("a.nova", GOOD), ("b.nova", GOOD2)]
    cold = compile_many(sources, jobs=2, cache_dir=tmp_path / "cache")
    warm = compile_many(sources, jobs=2, cache_dir=tmp_path / "cache")
    assert cold.cache_misses == 2 and cold.cache_hits == 0
    assert warm.cache_hits == 2 and warm.cache_misses == 0
    # The aggregate is the full worker-side CacheStats, and it surfaces
    # in the summary the CLI prints.
    assert warm.cache_stats == {
        "hits": 2, "misses": 0, "writes": 0, "invalidations": 0
    }
    assert cold.cache_stats["writes"] == 2
    assert warm.summary()["cache"] == warm.cache_stats
    assert all(u.ok for u in warm.units)


def test_same_source_text_hits_across_names(tmp_path):
    # The cache is content-addressed: the unit *name* is not in the key.
    result = compile_many(
        [("one.nova", GOOD), ("two.nova", GOOD)],
        cache_dir=tmp_path / "cache",
    )
    assert [u.cache for u in result.units] == ["miss", "hit"]


def _worker_pid(tag):
    # Busy long enough that two concurrent tasks land on two workers.
    import time

    time.sleep(0.15)
    return (tag, os.getpid())


def test_scatter_reuses_an_existing_pool():
    # pool= submits to the caller's executor instead of forking a fresh
    # one per call: the same worker processes answer both rounds.
    with ProcessPoolExecutor(max_workers=2) as pool:
        first = scatter(_worker_pid, [("a",), ("b",)], pool=pool)
        second = scatter(_worker_pid, [("c",), ("d",)], pool=pool)
        assert [tag for tag, _ in first] == ["a", "b"]
        assert {pid for _, pid in first} == {pid for _, pid in second}
        assert os.getpid() not in {pid for _, pid in first}
    # And the pool is left running between calls (shut down by us, not
    # by scatter): a third call after exit would raise, two inside did not.


def test_compile_many_accepts_a_shared_pool(tmp_path):
    sources = [("good.nova", GOOD), ("good2.nova", GOOD2)]
    with ProcessPoolExecutor(max_workers=2) as pool:
        cold = compile_many(
            sources, cache_dir=tmp_path / "cache", pool=pool
        )
        warm = compile_many(
            sources, cache_dir=tmp_path / "cache", pool=pool
        )
    assert all(u.ok for u in cold.units) and all(u.ok for u in warm.units)
    assert cold.cache_misses == 2 and warm.cache_hits == 2
    assert cold.jobs == 2  # reported from the pool, not the default


def test_keep_artifacts_false_drops_compilations():
    result = compile_many([("good.nova", GOOD)], keep_artifacts=False)
    assert result.units[0].ok
    assert result.units[0].compilation is None


@pytest.mark.parametrize("jobs", [1, 2])
def test_batch_tracing_adopts_unit_spans(jobs, tmp_path):
    tracer = Tracer()
    result = compile_many(
        [("good.nova", GOOD), ("bad.nova", BAD_TYPE)],
        jobs=jobs,
        cache_dir=tmp_path / "cache",
        tracer=tracer,
    )
    batch_span = tracer.get("batch")
    assert batch_span is not None
    assert batch_span.counters["ok"] == 1
    assert batch_span.counters["failed"] == 1
    assert batch_span.counters["cache_misses"] == 1
    units = tracer.all("unit")
    assert {s.counters["file"] for s in units} == {"good.nova", "bad.nova"}
    assert all(s.parent == "batch" for s in units)
    # Per-phase spans from inside the units (worker processes included).
    names = [s.name for s in tracer.spans]
    assert "parse" in names and "allocate" in names
    outcomes = {s.counters["file"]: s.counters["outcome"] for s in units}
    assert outcomes["good.nova"] == "ok"
    assert outcomes["bad.nova"].startswith("error:")
    assert result.summary()["units"] == 2
