"""Assembler-listing tests."""

from repro.ixp import isa
from repro.ixp.banks import Bank
from repro.ixp.listing import render_instr, render_listing

from tests.helpers import compile_full


def P(bank, index):
    return isa.PhysReg(bank, index)


class TestRenderInstr:
    def test_alu(self):
        text = render_instr(
            isa.Alu(P(Bank.A, 1), "add", P(Bank.A, 0), P(Bank.B, 2))
        )
        assert text == "alu[a1, a0, +, b2]"

    def test_shift_uses_alu_shf(self):
        text = render_instr(
            isa.Alu(P(Bank.B, 0), "shr", P(Bank.A, 3), isa.Imm(16))
        )
        assert text.startswith("alu_shf[b0")
        assert ">>16" in text

    def test_transfer_register_naming(self):
        text = render_instr(
            isa.MemOp("sram", "read", P(Bank.A, 0), (P(Bank.L, 2), P(Bank.L, 3)))
        )
        assert "$xfer2" in text
        assert "sram[read" in text
        assert text.endswith("ctx_swap")

    def test_sdram_double_dollar(self):
        text = render_instr(
            isa.MemOp("sdram", "read", P(Bank.B, 1), (P(Bank.LD, 0), P(Bank.LD, 1)))
        )
        assert "$$xfer0" in text

    def test_wide_immed_two_instructions(self):
        text = render_instr(isa.Immed(P(Bank.A, 0), 0x12345678))
        assert "immed_w0" in text and "immed_w1" in text

    def test_narrow_immed(self):
        assert render_instr(isa.Immed(P(Bank.A, 0), 42)) == "immed[a0, 0x2a]"

    def test_branch_pair(self):
        text = render_instr(
            isa.BrCmp("lt", P(Bank.A, 0), isa.Imm(4), "loop", "exit")
        )
        assert "br<0[loop#]" in text
        assert "br[exit#]" in text

    def test_hash(self):
        text = render_instr(isa.HashInstr(P(Bank.L, 3), P(Bank.S, 3)))
        assert text.startswith("hash1_48[$xfer3]")


class TestFullListing:
    def test_allocated_program_renders(self):
        comp = compile_full(
            """
            fun main (b) {
              let (x, y) = sram(b);
              sram(b + 8) <- (y, x);
              x + y
            }
            """
        )
        listing = render_listing(comp.physical, title="swap demo")
        assert listing.startswith("; swap demo")
        assert "entry#:" in listing
        assert "sram[read" in listing
        assert "sram[write" in listing
        # Every line is either a label, comment, or indented instruction.
        for line in listing.splitlines():
            assert (
                line.startswith(";")
                or line.endswith("#:")
                or line.startswith("    ")
                or not line
            )
