"""Golden-listing regression tests for the checked-in Nova examples.

Each ``examples/*.nova`` compiles to a *virtual* (pre-allocation)
listing that is compared byte-for-byte against a committed
``tests/goldens/<name>.golden`` file, so any drift in parsing, CPS
conversion, optimization, SSU or instruction selection shows up as a
readable diff.  Virtual listings are used deliberately: they are fully
deterministic across platforms, while ILP solver output can vary with
scipy/HiGHS versions.

To accept intentional codegen changes::

    PYTHONPATH=src python -m pytest tests/test_goldens.py --update-goldens
"""

import pathlib

import pytest

from repro.compiler import CompileOptions, compile_nova
from repro.ixp.listing import render_listing

EXAMPLES = pathlib.Path(__file__).resolve().parent.parent / "examples"
GOLDENS = pathlib.Path(__file__).resolve().parent / "goldens"

NOVA_EXAMPLES = sorted(p.name for p in EXAMPLES.glob("*.nova"))


def _virtual_listing(path: pathlib.Path) -> str:
    options = CompileOptions()
    options.run_allocator = False
    comp = compile_nova(path.read_text(), str(path.name), options)
    return render_listing(comp.flowgraph, title=path.name)


def test_examples_are_covered():
    assert NOVA_EXAMPLES, "no .nova files under examples/"


@pytest.mark.parametrize("name", NOVA_EXAMPLES)
def test_example_listing_matches_golden(name, update_goldens):
    listing = _virtual_listing(EXAMPLES / name)
    golden_path = GOLDENS / f"{pathlib.Path(name).stem}.golden"
    if update_goldens:
        golden_path.parent.mkdir(parents=True, exist_ok=True)
        golden_path.write_text(listing)
        pytest.skip(f"updated {golden_path.name}")
    assert golden_path.exists(), (
        f"missing golden for {name}; run pytest with --update-goldens"
    )
    expected = golden_path.read_text()
    assert listing == expected, (
        f"virtual listing for {name} drifted from {golden_path.name}; "
        "if the change is intentional, rerun with --update-goldens"
    )
