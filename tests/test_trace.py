"""The tracing/metrics layer (``repro.trace``) and its pipeline hooks."""

import json

from repro.compiler import CompileOptions, compile_nova
from repro.ixp.machine import Machine
from repro.trace import NULL, NullTracer, Tracer, ensure

SOURCE = """
layout h = { a : 8, b : 24 };
fun main (x) {
  let u = unpack[h](x);
  u.a + u.b
}
"""

PHASES = (
    "parse",
    "typecheck",
    "cps",
    "deproc",
    "optimize",
    "ssu",
    "select",
    "allocate",
)


class TestTracer:
    def test_spans_record_time_and_counters(self):
        t = Tracer()
        with t.span("outer", fixed=1) as sp:
            sp.add(extra=2)
            with t.span("inner") as inner:
                inner.tally("hits")
                inner.tally("hits", 2)
        assert [s.name for s in t.spans] == ["outer", "inner"]
        outer, inner = t.spans
        assert outer.seconds >= 0 and inner.seconds >= 0
        assert outer.counters == {"fixed": 1, "extra": 2}
        assert inner.counters == {"hits": 3}
        assert outer.parent is None and inner.parent == "outer"
        assert outer.depth == 0 and inner.depth == 1

    def test_post_exit_add(self):
        # A phase's summary counters are often computed from its result,
        # after the with-block has closed; the span must still accept them.
        t = Tracer()
        with t.span("phase") as sp:
            pass
        sp.add(late=42)
        assert t.get("phase").counters["late"] == 42

    def test_lookup_helpers(self):
        t = Tracer()
        with t.span("solve", phase=1):
            pass
        with t.span("solve", phase=2):
            pass
        assert t.get("solve").counters["phase"] == 1
        assert t.last("solve").counters["phase"] == 2
        assert len(t.all("solve")) == 2
        assert t.get("missing") is None and t.last("missing") is None

    def test_jsonl_round_trip(self):
        t = Tracer()
        with t.span("a", n=1):
            with t.span("b", inf=float("inf")):
                pass
        lines = t.to_jsonl().splitlines()
        assert len(lines) == 2
        records = [json.loads(line) for line in lines]
        assert records[0]["name"] == "a"
        assert records[1]["parent"] == "a"
        # Non-finite counters are nulled so every line is strict JSON.
        assert records[1]["counters"]["inf"] is None

    def test_table_renders_every_span(self):
        t = Tracer()
        with t.span("parse", lines=6):
            pass
        table = t.table()
        assert "parse" in table and "lines=6" in table

    def test_null_tracer_is_inert(self):
        handle = NULL.span("anything", n=1)
        assert not handle
        handle.add(n=2).tally("k")
        with handle:
            pass
        assert NULL.spans == ()
        assert NULL.get("anything") is None
        assert NULL.table() == "" and NULL.to_jsonl() == ""

    def test_ensure(self):
        t = Tracer()
        assert ensure(t) is t
        assert ensure(None) is NULL
        assert isinstance(ensure(None), NullTracer)


class TestPipelineSpans:
    def test_every_phase_records_a_span(self):
        t = Tracer()
        comp = compile_nova(SOURCE, tracer=t)
        names = [s.name for s in t.spans]
        for phase in PHASES:
            assert phase in names, f"missing span for {phase}"
        assert comp.trace is t

    def test_model_and_solve_spans_nested_under_allocate(self):
        t = Tracer()
        compile_nova(SOURCE, tracer=t)
        model = t.get("model")
        solve = t.get("solve")
        assert model.parent == "allocate" and solve.parent == "allocate"
        assert model.counters["variables"] > 0
        assert model.counters["constraints"] > 0
        assert model.counters["nonzeros"] >= model.counters["constraints"]
        # Section 8 pruning reduces candidate (temp, bank) slots.
        assert model.counters["candidate_slots_pruned"] > 0
        assert solve.counters["nodes"] >= 1
        assert solve.counters["status"] == "optimal"
        # With tracing on, the highs engine measures the root relaxation.
        assert solve.counters["root_relaxation_seconds"] > 0

    def test_ir_size_counters(self):
        t = Tracer()
        compile_nova(SOURCE, tracer=t)
        for phase in ("cps", "deproc", "optimize", "ssu"):
            assert t.get(phase).counters["term_nodes"] > 0
        select = t.get("select").counters
        assert select["instructions"] > 0 and select["blocks"] > 0

    def test_untraced_compile_records_nothing_but_keeps_times(self):
        comp = compile_nova(SOURCE)
        assert comp.trace is None
        for phase in PHASES:
            assert comp.phase_seconds[phase] >= 0

    def test_two_phase_traces_both_solves(self):
        t = Tracer()
        options = CompileOptions()
        options.alloc.two_phase = True
        compile_nova(SOURCE, options=options, tracer=t)
        assert len(t.all("model")) == 2
        assert len(t.all("solve")) == 2


class TestMachineSpans:
    def test_simulate_span_has_opcode_histogram(self):
        t = Tracer()
        comp = compile_nova(SOURCE)
        machine = Machine(
            comp.flowgraph,
            physical=False,
            input_provider=lambda tid, it: (
                comp.make_inputs(x=0x45001234) if it == 0 else None
            ),
            tracer=t,
        )
        run = machine.run()
        span = t.get("simulate")
        assert span is not None
        assert span.counters["cycles"] == run.cycles
        assert span.counters["instructions"] == run.instructions
        per_op = {
            k: v for k, v in span.counters.items() if k.startswith("count.")
        }
        assert per_op, "expected per-opcode counters"
        assert sum(per_op.values()) == run.instructions
        cycle_keys = [
            k for k in span.counters if k.startswith("cycles.")
        ]
        assert cycle_keys and all(span.counters[k] > 0 for k in cycle_keys)

    def test_untraced_machine_keeps_no_histogram(self):
        comp = compile_nova(SOURCE)
        machine = Machine(
            comp.flowgraph,
            physical=False,
            input_provider=lambda tid, it: (
                comp.make_inputs(x=1) if it == 0 else None
            ),
        )
        machine.run()
        assert machine._opcode_hist is None
