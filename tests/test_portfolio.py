"""Solver portfolio (`repro.ilp.portfolio`): the race and warm starts."""

import json

import pytest

from repro.cache import frontend_fingerprint
from repro.compiler import CompileOptions, compile_nova
from repro.ilp.model import Model
from repro.ilp.portfolio import (
    HINT_FORMAT,
    HintStore,
    hint_incumbent,
    solve_portfolio,
)
from repro.ilp.solve import SolveOptions, solve_model
from repro.trace import Tracer


def knapsack(values, weights, capacity):
    m = Model("knapsack")
    x = m.family("x")
    m.add({x[(i,)]: w for i, w in enumerate(weights)}, "<=", capacity)
    m.minimize({x[(i,)]: -v for i, v in enumerate(values)})
    return m


def assignment_model(n=4):
    """n×n one-to-one assignment; unique optimum on distinct costs."""
    m = Model("assign")
    x = m.family("x")
    for i in range(n):
        m.add_sum_eq([x[(i, j)] for j in range(n)], 1)
    for j in range(n):
        m.add_sum_eq([x[(i, j)] for i in range(n)], 1)
    m.minimize({x[(i, j)]: (i * n + j) % 7 + 1 for i in range(n) for j in range(n)})
    return m


class TestRace:
    def test_portfolio_matches_single_engine_objective(self):
        for build in (lambda: knapsack([6, 5, 4], [3, 2, 1], 4),
                      assignment_model):
            reference = solve_model(build(), SolveOptions(engine="highs"))
            raced = solve_model(build(), SolveOptions(engine="portfolio"))
            assert raced.status == "optimal"
            assert raced.objective == pytest.approx(reference.objective)

    def test_solve_span_records_the_winner(self):
        tracer = Tracer()
        solve_portfolio(assignment_model(), SolveOptions(), tracer)
        span = tracer.get("solve")
        assert span.counters["engine"] == "portfolio"
        assert span.counters["winner"] in ("highs", "bnb")
        assert span.counters["status"] == "optimal"
        race = tracer.get("portfolio.race")
        assert race is not None and race.counters["warm"] == 0
        # The winning engine reported a status and a time.
        winner = span.counters["winner"]
        assert race.counters[f"{winner}_status"] == "optimal"
        assert race.counters[f"{winner}_seconds"] >= 0

    @pytest.mark.parametrize("cores", [1, 8])
    def test_both_race_modes_reach_the_optimum(self, cores, monkeypatch):
        # The portfolio is core-adaptive: a concurrent thread race on
        # multi-core hosts, engines in sequence on a single CPU.  Both
        # paths must land on the same optimum.
        import repro.ilp.portfolio as portfolio_mod

        monkeypatch.setattr(portfolio_mod, "effective_cores", lambda: cores)
        reference = solve_model(assignment_model(), SolveOptions())
        tracer = Tracer()
        raced = solve_portfolio(assignment_model(), SolveOptions(), tracer)
        assert raced.status == "optimal"
        assert raced.objective == pytest.approx(reference.objective)
        race = tracer.get("portfolio.race")
        if cores == 1:
            assert race.counters["mode"] == "sequential"
            # A decisive first engine means the second never ran.
            assert "skipped" in race.counters.values() or all(
                race.counters.get(f"{e}_status") != "skipped"
                for e in ("highs", "bnb")
            )
        else:
            assert "mode" not in race.counters  # the concurrent race

    def test_infeasible_is_decisive(self):
        m = Model("infeasible")
        x = m.family("x")[(0,)]
        m.add({x: 1.0}, ">=", 2)  # binary var can't reach 2
        m.minimize({x: 1.0})
        solution = solve_portfolio(m, SolveOptions())
        assert solution.status == "infeasible"


class TestHints:
    def test_store_roundtrip_and_seeded_warm_start(self, tmp_path):
        build = assignment_model
        store_dir = tmp_path / "hints"
        cold_opts = SolveOptions(
            engine="portfolio", hint_dir=str(store_dir), hint_key="ab" * 32
        )
        tracer = Tracer()
        cold = solve_portfolio(build(), cold_opts, tracer)
        assert tracer.get("portfolio.warm_start").counters["outcome"] == "none"
        assert HintStore(store_dir).load("ab" * 32) is not None

        warm_tracer = Tracer()
        warm = solve_portfolio(build(), cold_opts, warm_tracer)
        ws = warm_tracer.get("portfolio.warm_start")
        assert ws.counters["outcome"] == "seeded"
        assert ws.counters["incumbent"] == pytest.approx(cold.objective)
        assert warm.objective == pytest.approx(cold.objective)
        assert warm_tracer.get("portfolio.race").counters["warm"] == 1

    def test_incumbent_maps_by_name_and_validates(self):
        m = assignment_model()
        reference = solve_model(m, SolveOptions(engine="highs"))
        store_hint = {
            "format": HINT_FORMAT,
            "objective": float(reference.objective),
            "status": "optimal",
            "ones": [
                m.name_of(v)
                for v in range(m.num_vars)
                if reference.values[v] > 0.5
            ],
        }
        warm = hint_incumbent(m, store_hint)
        assert warm is not None
        assert warm[0] == pytest.approx(reference.objective)
        # Unknown names are dropped; the truncated point then violates
        # the assignment rows and the hint is rejected, not mis-seeded.
        stale = dict(store_hint, ones=["x[99,99]"] + store_hint["ones"][1:])
        assert hint_incumbent(m, stale) is None

    def test_tampered_hint_file_reads_as_no_hint(self, tmp_path):
        store = HintStore(tmp_path)
        key = "cd" * 32
        path = store.path_for(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text("not json {")
        assert store.load(key) is None
        assert not path.exists()  # corrupt entry deleted
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(json.dumps({"format": HINT_FORMAT + 1, "ones": []}))
        assert store.load(key) is None  # wrong format version

    def test_bnb_accepts_a_seeded_incumbent(self):
        from repro.ilp.solve import _solve_bnb

        m = assignment_model()
        reference = solve_model(m, SolveOptions(engine="highs"))
        warm = hint_incumbent(
            m,
            {
                "format": HINT_FORMAT,
                "objective": float(reference.objective),
                "status": "optimal",
                "ones": [
                    m.name_of(v)
                    for v in range(m.num_vars)
                    if reference.values[v] > 0.5
                ],
            },
        )
        solution = _solve_bnb(m, SolveOptions(engine="bnb"), incumbent=warm)
        assert solution.status == "optimal"
        assert solution.objective == pytest.approx(reference.objective)


SOURCE = """
layout h = { a : 8, b : 24 };
fun main (x) {
  let u = unpack[h](x);
  u.a + u.b
}
"""


class TestEndToEnd:
    def test_compile_with_portfolio_engine(self, tmp_path):
        options = CompileOptions()
        options.alloc.solve.engine = "portfolio"
        options.alloc.solve.hint_dir = str(tmp_path / "hints")
        options.alloc.solve.hint_key = "ef" * 32
        comp = compile_nova(SOURCE, options=options)
        assert comp.alloc.status == "optimal"
        # A second compile under different allocator knobs still shares
        # the incumbent: the key is the *front-end* fingerprint.
        variant = CompileOptions()
        variant.alloc.solve.gap = 1e-3
        assert frontend_fingerprint(options) == frontend_fingerprint(variant)
