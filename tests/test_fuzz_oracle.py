"""The differential oracle: agreement, divergence detection, injection.

The injection tests are the oracle's own acceptance criteria: a
deliberately broken constant folder must make it fail (and the shrinker
must cut the witness down to a handful of lines), while a *benign*
compiler change — losing an optimization — must not.
"""

import pytest

from repro.fuzz.inject import (
    broken_codegen,
    broken_constant_fold,
    disabled_constant_fold,
)
from repro.fuzz.oracle import check_program, default_configs
from repro.fuzz.shrink import shrink

VIRTUAL = ["no-opt", "ssu-off"]

#: One folding site (`0x1234 ^ 0xff` is compile-time constant under the
#: optimizer, runtime work under no-opt) buried in unrelated statements.
FOLD_WITNESS = """\
fun helper (a, b) : word { (a & b) + 1 }
fun main (x0, x1) {
  let j0 = (x0 + 17);
  let j1 = (j0 | x1);
  let j2 = helper(j1, x0);
  let folded = (0x1234 ^ 0x00ff);
  let j3 = (j2 - x1);
  let j4 = (j3 << 3);
  let j5 = (j4 & 0xffff);
  let mixed = (folded + x0);
  let j6 = (j5 ^ j2);
  let j7 = (j6 + j1);
  mixed ^ j7
}
"""

VECTORS = [{"x0": 5, "x1": 3}, {"x0": 0xDEADBEEF, "x1": 0x1234}]


def test_agreeing_configs_report_ok():
    report = check_program(
        FOLD_WITNESS, VECTORS, configs=default_configs(VIRTUAL)
    )
    assert report.invalid is None
    assert report.ok, [str(d) for d in report.divergences]
    assert set(report.configs_run) == {"ref", "no-opt", "ssu-off"}


def test_runaway_program_is_invalid_not_divergent():
    source = "fun main (x) { let i = 0; while (i < 2) { i := i * 1; }; i }"
    report = check_program(
        source,
        [{"x": 1}],
        configs=default_configs(["no-opt"]),
        max_cycles=5_000,
    )
    assert report.invalid is not None
    assert not report.divergences


def test_unknown_config_name_rejected():
    with pytest.raises(ValueError, match="unknown fuzz config"):
        default_configs(["no-such-config"])


def test_ref_always_included():
    configs = default_configs(["alloc-bnb"])
    assert [c.name for c in configs] == ["ref", "alloc-bnb"]


def test_injected_miscompile_fails_the_oracle():
    with broken_constant_fold(op="xor", delta=1):
        report = check_program(
            FOLD_WITNESS, VECTORS, configs=default_configs(["no-opt"])
        )
    assert not report.ok
    kinds = {d.kind for d in report.divergences}
    assert "results" in kinds


def test_benign_injection_passes_the_oracle():
    """Disabling folding entirely loses an optimization, not meaning."""
    with disabled_constant_fold():
        report = check_program(
            FOLD_WITNESS, VECTORS, configs=default_configs(["no-opt"])
        )
    assert report.ok, [str(d) for d in report.divergences]


def test_sim_compiled_config_agrees_with_reference():
    """The codegen tier rides the matrix; a healthy simulator agrees."""
    report = check_program(
        FOLD_WITNESS, VECTORS, configs=default_configs(["sim-compiled"])
    )
    assert report.invalid is None
    assert report.ok, [str(d) for d in report.divergences]
    assert set(report.configs_run) == {"ref", "sim-compiled"}


def test_miscompiled_simulator_caught_by_sim_compiled_config():
    """A codegen-tier bug diverges sim-compiled from the decoded ref.

    FOLD_WITNESS carries runtime xors (``j5 ^ j2``, ``mixed ^ j7``), so
    the patched ALU template changes what the *generated* code computes
    while the decoded reference stays correct.
    """
    with broken_codegen(op="xor", delta=1):
        report = check_program(
            FOLD_WITNESS, VECTORS, configs=default_configs(["sim-compiled"])
        )
    assert not report.ok
    kinds = {d.kind for d in report.divergences}
    assert "results" in kinds


def test_miscompiled_simulator_invisible_to_decoded_only_configs():
    """Control: the same injection passes a matrix that never runs the
    compiled tier — the bug lives in the simulator backend, not in the
    compiled program, so decoded-vs-decoded comparisons can't see it."""
    with broken_codegen(op="xor", delta=1):
        report = check_program(
            FOLD_WITNESS, VECTORS, configs=default_configs(["no-opt"])
        )
    assert report.ok, [str(d) for d in report.divergences]


def test_shrinker_minimizes_injected_codegen_bug():
    """ddmin cuts the codegen-bug witness down to a runtime-xor core."""
    configs = default_configs(["sim-compiled"])

    def diverges(source):
        report = check_program(source, VECTORS, configs=configs)
        return report.invalid is None and bool(report.divergences)

    with broken_codegen(op="xor", delta=1):
        assert diverges(FOLD_WITNESS)
        minimized, stats = shrink(FOLD_WITNESS, diverges)
    lines = [l for l in minimized.splitlines() if l.strip()]
    assert len(lines) <= 15, minimized
    assert stats.lines_after < stats.lines_before
    # A runtime xor must survive minimization - it IS the bug.
    assert "^" in minimized


def test_shrinker_minimizes_injected_miscompile():
    """Acceptance: the witness shrinks to a reproducer of <= 15 lines."""
    configs = default_configs(["no-opt"])

    def diverges(source):
        report = check_program(source, VECTORS, configs=configs)
        return report.invalid is None and bool(report.divergences)

    with broken_constant_fold(op="xor", delta=1):
        assert diverges(FOLD_WITNESS)
        minimized, stats = shrink(FOLD_WITNESS, diverges)
    lines = [l for l in minimized.splitlines() if l.strip()]
    assert len(lines) <= 15, minimized
    assert stats.lines_after < stats.lines_before
    # The folding site must survive minimization - it IS the bug.
    assert "^" in minimized
