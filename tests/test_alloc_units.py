"""Unit tests for the allocator's components: liveness, frequency,
pruning, move costs, A/B coloring, baseline."""

import pytest

from repro.alloc import liveness
from repro.alloc.baseline import allocate_baseline
from repro.alloc.frequency import (
    block_frequencies,
    branch_probabilities,
    dempster_shafer,
    point_weights,
)
from repro.alloc.pruning import build_move_costs, candidate_banks
from repro.ixp import isa
from repro.ixp.banks import Bank
from repro.ixp.flowgraph import Block, FlowGraph
from repro.ixp.machine import Machine
from repro.ixp.memory import MemorySystem

from tests.helpers import compile_virtual


def T(name):
    return isa.Temp(name)


def straightline(instrs):
    return FlowGraph("entry", {"entry": Block("entry", list(instrs))})


class TestLiveness:
    def graph(self):
        return straightline(
            [
                isa.Immed(T("a"), 1),  # p0 -> p1
                isa.Immed(T("b"), 2),  # p1 -> p2
                isa.Alu(T("c"), "add", T("a"), T("b")),  # p2 -> p3
                isa.HaltInstr((T("c"),)),  # p3 -> p4
            ]
        )

    def test_live_ranges(self):
        info = liveness.analyze(self.graph())
        # a live from p1 (after def) to p2 (its use).
        assert "a" in info.live_at[1]
        assert "a" in info.live_at[2]
        assert "a" not in info.live_at[3]
        assert "c" in info.live_at[3]

    def test_exists_includes_dead_defs(self):
        graph = straightline(
            [
                isa.Immed(T("dead"), 1),  # result never used
                isa.HaltInstr(()),
            ]
        )
        info = liveness.analyze(graph)
        # (p1, dead) exists even though dead is nowhere live (paper 5.2).
        assert (1, "dead") in info.exists
        assert not any(
            "dead" in live for live in info.live_at.values()
        )

    def test_copy_set_within_block(self):
        info = liveness.analyze(self.graph())
        # a carried unchanged across instruction 1 (p1 -> p2).
        assert (1, 2, "a") in info.copies
        # a not copied across its own definition.
        assert (0, 1, "a") not in info.copies

    def test_copy_across_edges(self):
        blocks = {
            "entry": Block(
                "entry",
                [isa.Immed(T("x"), 1), isa.Br("next")],
            ),
            "next": Block("next", [isa.HaltInstr((T("x"),))]),
        }
        graph = FlowGraph("entry", blocks)
        info = liveness.analyze(graph)
        points = graph.points()
        edge = (points.exit("entry"), points.entry("next"), "x")
        assert edge in info.copies

    def test_interference_pairs_exclude_clones(self):
        graph = straightline(
            [
                isa.Immed(T("x"), 1),
                isa.Clone(T("y"), T("x")),
                isa.Alu(T("z"), "add", T("x"), isa.Imm(1)),
                isa.HaltInstr((T("y"), T("z"))),
            ]
        )
        info = liveness.analyze(graph)
        pairs = liveness.interference_pairs(info, {"x": "x", "y": "x"})
        assert ("x", "y") not in pairs and ("y", "x") not in pairs
        assert ("y", "z") in pairs or ("z", "y") in pairs


class TestFrequency:
    def test_dempster_shafer_combination(self):
        assert dempster_shafer(0.5, 0.8) == pytest.approx(0.8)
        assert dempster_shafer(0.8, 0.8) > 0.9
        assert dempster_shafer(0.8, 0.2) == pytest.approx(0.5)

    def loop_graph(self):
        blocks = {
            "entry": Block("entry", [isa.Immed(T("i"), 0), isa.Br("head")]),
            "head": Block(
                "head",
                [isa.BrCmp("lt", T("i"), isa.Imm(10), "body", "exit")],
            ),
            "body": Block(
                "body",
                [isa.Alu(T("i"), "add", T("i"), isa.Imm(1)), isa.Br("head")],
            ),
            "exit": Block("exit", [isa.HaltInstr(())]),
        }
        return FlowGraph("entry", blocks)

    def test_loop_branch_heuristic(self):
        probs = branch_probabilities(self.loop_graph())
        assert probs[("head", "body")] > 0.8
        assert probs[("head", "exit")] < 0.2

    def test_loop_blocks_hotter_than_entry(self):
        freq = block_frequencies(self.loop_graph())
        assert freq["body"] > 3 * freq["entry"]
        assert freq["exit"] == pytest.approx(freq["entry"], rel=0.05)

    def test_point_weights_follow_blocks(self):
        graph = self.loop_graph()
        weights = point_weights(graph)
        points = graph.points()
        hot = weights[points.before("body", 0)]
        cold = weights[points.before("entry", 0)]
        assert hot > cold

    def test_frequencies_converge_on_irreducible_graph(self):
        # Two-entry loop (irreducible): a -> b -> c -> b, a -> c.
        blocks = {
            "a": Block(
                "a", [isa.BrCmp("eq", T("x"), isa.Imm(0), "b", "c")]
            ),
            "b": Block(
                "b", [isa.BrCmp("eq", T("x"), isa.Imm(1), "c", "exit")]
            ),
            "c": Block(
                "c", [isa.BrCmp("eq", T("x"), isa.Imm(2), "b", "exit")]
            ),
            "exit": Block("exit", [isa.HaltInstr(())]),
        }
        graph = FlowGraph("a", blocks)
        graph.inputs = ("x",)
        freq = block_frequencies(graph)
        assert all(0 < f < 100 for f in freq.values())


class TestPruningAndCosts:
    def test_load_never_stored(self):
        comp = compile_virtual(
            "fun main (b) { let x = sram(b); x + 1 }"
        )
        cand = candidate_banks(comp.flowgraph)
        # Find the memory-read target.
        (read,) = [
            i
            for _, _, i in comp.flowgraph.instructions()
            if isinstance(i, isa.MemOp)
        ]
        banks = cand.of(read.regs[0].name)
        assert Bank.L in banks
        assert Bank.S not in banks
        assert Bank.SD not in banks
        assert Bank.LD not in banks

    def test_sdram_read_gets_ld(self):
        comp = compile_virtual(
            "fun main (b) { let (x, y) = sdram(b); x + y }"
        )
        cand = candidate_banks(comp.flowgraph)
        (read,) = [
            i
            for _, _, i in comp.flowgraph.instructions()
            if isinstance(i, isa.MemOp)
        ]
        assert Bank.LD in cand.of(read.regs[0].name)

    def test_disabled_pruning_gives_all_banks(self):
        comp = compile_virtual("fun main (x) { x + 1 }")
        cand = candidate_banks(comp.flowgraph, enabled=False)
        assert len(cand.of("anything")) == 7

    def test_move_costs_match_paper_section7(self):
        costs = build_move_costs(mv=1, ld=200, st=200)
        # Direct ALU pass.
        assert costs.cost(Bank.A, Bank.B) == 1
        assert costs.cost(Bank.L, Bank.S) == 1
        # Spill: move + store (paper: Move A->M = mvC + stC).
        assert costs.cost(Bank.A, Bank.M) == 201
        # Store-side spill from S is just the store.
        assert costs.cost(Bank.S, Bank.M) == 200
        # Reload lands in L directly.
        assert costs.cost(Bank.M, Bank.L) == 200
        # Reload + move (paper: M -> A).
        assert costs.cost(Bank.M, Bank.A) == 201
        # Round trip (paper: Move A->L = mvC + stC + ldC).
        assert costs.cost(Bank.A, Bank.L) == 401
        # LD is unreachable by moves.
        assert not costs.legal(Bank.A, Bank.LD)
        assert not costs.legal(Bank.M, Bank.LD)

    def test_identity_moves_free(self):
        costs = build_move_costs()
        for bank in Bank:
            assert costs.cost(bank, bank) == 0


class TestBaseline:
    def test_baseline_runs_simple_program(self):
        comp = compile_virtual(
            """
            fun main (b) {
              let (x, y) = sram(b);
              sram(b + 4) <- (y, x);
              x + y
            }
            """
        )
        result = allocate_baseline(comp.flowgraph)
        assert result.spills == 0
        assert result.physical is not None
        # Drains 2 reads + stages 2 writes = at least 4 moves.
        assert result.moves >= 4
        memory = MemorySystem.create()
        memory["sram"].load_words(0, [5, 6])
        from repro.alloc.baseline import baseline_input_locations

        locations = baseline_input_locations(comp.flowgraph, result)
        inputs = {}
        for temp, value in comp.make_inputs(b=0).items():
            loc = locations.get(temp)
            if loc is not None:
                inputs[(loc[1].bank, loc[1].index)] = value
        machine = Machine(
            result.physical,
            memory=memory,
            physical=True,
            input_provider=lambda tid, it: inputs if it == 0 else None,
        )
        run = machine.run()
        assert run.results == [(0, (11,))]
        assert memory["sram"].dump_words(4, 2) == [6, 5]

    def test_baseline_reports_spills_under_pressure(self):
        n = 35
        reads = "\n".join(f"  let x{i} = sram(b + {i});" for i in range(n))
        uses = " + ".join(f"x{i}" for i in range(n))
        comp = compile_virtual(f"fun main (b) {{\n{reads}\n  {uses}\n}}")
        result = allocate_baseline(comp.flowgraph)
        assert result.spills > 0
        assert result.physical is None
