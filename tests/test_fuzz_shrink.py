"""The delta-debugging minimizer, on synthetic predicates."""

from repro.fuzz.shrink import ShrinkStats, shrink, shrink_list, write_artifact


def test_ddmin_keeps_only_needed_lines():
    source = "\n".join(f"line{i}" for i in range(20)) + "\nNEEDLE\n"

    def interesting(text):
        return "NEEDLE" in text

    minimized, stats = shrink(source, interesting)
    assert minimized.strip() == "NEEDLE"
    assert stats.lines_before == 21
    assert stats.lines_after == 1


def test_ddmin_keeps_interacting_pair():
    lines = [f"l{i}" for i in range(16)]
    lines[3] = "ALPHA"
    lines[12] = "BETA"
    source = "\n".join(lines) + "\n"

    def interesting(text):
        return "ALPHA" in text and "BETA" in text

    minimized, _ = shrink(source, interesting)
    kept = [l for l in minimized.splitlines() if l.strip()]
    assert kept == ["ALPHA", "BETA"]


def test_non_interesting_input_returned_unchanged():
    source = "a\nb\nc\n"
    minimized, stats = shrink(source, lambda text: False)
    assert minimized == source
    assert stats.lines_after == stats.lines_before == 3


def test_budget_bounds_predicate_calls():
    source = "\n".join(f"line{i}" for i in range(40)) + "\n"
    calls = [0]

    def interesting(text):
        calls[0] += 1
        return True

    shrink(source, interesting, max_predicate_calls=25)
    assert calls[0] <= 25


def test_line_simplification_rewrites_lets():
    source = "let a = (x ^ y);\nlet b = (a + 1);\nKEEP\n"

    def interesting(text):
        return "KEEP" in text

    minimized, _ = shrink(source, interesting)
    assert minimized.strip() == "KEEP"


# -- ddmin over opaque item lists (the traffic-trace axis) -----------------


def test_shrink_list_keeps_only_needed_items():
    items = list(range(20))

    def interesting(candidate):
        return 13 in candidate

    minimized, stats = shrink_list(items, interesting)
    assert minimized == [13]
    assert stats.lines_before == 20
    assert stats.lines_after == 1


def test_shrink_list_keeps_interacting_pair():
    items = [f"ev{i}" for i in range(16)]

    def interesting(candidate):
        return "ev2" in candidate and "ev11" in candidate

    minimized, _ = shrink_list(items, interesting)
    assert minimized == ["ev2", "ev11"]


def test_shrink_list_non_interesting_input_unchanged():
    items = [1, 2, 3]
    minimized, stats = shrink_list(items, lambda candidate: False)
    assert minimized == items
    assert stats.lines_after == stats.lines_before == 3


def test_shrink_list_never_proposes_empty():
    calls = []

    def interesting(candidate):
        calls.append(list(candidate))
        return True

    minimized, _ = shrink_list([1, 2, 3, 4], interesting)
    assert len(minimized) == 1
    assert all(candidate for candidate in calls[1:])


def test_shrink_list_budget_bounds_predicate_calls():
    calls = [0]

    def interesting(candidate):
        calls[0] += 1
        return True

    shrink_list(list(range(40)), interesting, max_predicate_calls=20)
    assert calls[0] <= 20


def test_write_artifact_layout(tmp_path):
    from repro.fuzz.gen import generate
    from repro.fuzz.oracle import OracleReport

    program = generate(0)
    report = OracleReport(seed=0)
    artifact = write_artifact(
        tmp_path / "crash-seed0",
        program,
        report,
        minimized="fun main (x) { x }\n",
        stats=ShrinkStats(predicate_calls=3, lines_before=9, lines_after=1),
    )
    import json
    import pathlib

    directory = pathlib.Path(artifact.directory)
    assert (directory / "program.nova").read_text() == program.source
    assert (directory / "minimized.nova").read_text().startswith("fun main")
    payload = json.loads((directory / "report.json").read_text())
    assert payload["seed"] == 0
    assert payload["shrink"]["lines_after"] == 1
