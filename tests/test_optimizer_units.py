"""Pass-level optimizer tests (constant folding, eta, params, DCE)."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cps import ir
from repro.cps.ir import AppCont, Const, Halt, If, LetCont, LetPrim, Var
from repro.cps.optimize import (
    OptStats,
    _fold,
    _try_fold,
    eliminate_dead,
    eta_reduce_conts,
    optimize,
    simplify,
)


class TestFoldSemantics:
    """_fold must match the simulator's ALU semantics bit for bit."""

    @given(
        st.sampled_from(["add", "sub", "and", "or", "xor", "shl", "shr"]),
        st.integers(0, 2**32 - 1),
        st.integers(0, 2**32 - 1),
    )
    @settings(max_examples=200, deadline=None)
    def test_fold_matches_machine(self, op, a, b):
        from repro.ixp.machine import _alu_eval

        assert _fold(op, [a, b]) == _alu_eval(op, a, b)

    @given(st.integers(0, 2**32 - 1), st.integers(0, 2**32 - 1))
    @settings(max_examples=50, deadline=None)
    def test_mul_div_mod_fold(self, a, b):
        # mul/div/mod have no machine op (selection expands them); their
        # folds must match plain 32-bit arithmetic.
        assert _fold("mul", [a, b]) == (a * b) & 0xFFFFFFFF
        if b:
            assert _fold("div", [a, b]) == a // b
            assert _fold("mod", [a, b]) == a % b

    @given(st.integers(0, 2**32 - 1))
    @settings(max_examples=50, deadline=None)
    def test_unary_fold(self, a):
        from repro.ixp.machine import _alu_eval

        assert _fold("not", [a]) == _alu_eval("not", a, None)
        assert _fold("neg", [a]) == _alu_eval("neg", a, None)

    def test_division_by_zero_not_folded(self):
        assert _fold("div", [5, 0]) is None
        assert _fold("mod", [5, 0]) is None


class TestTryFold:
    def fold(self, op, a, b):
        return _try_fold(op, (a, b), OptStats())

    def test_additive_identity(self):
        assert self.fold("add", Var("x"), Const(0)) == Var("x")
        assert self.fold("add", Const(0), Var("x")) == Var("x")

    def test_multiplicative_absorption(self):
        assert self.fold("mul", Var("x"), Const(0)) == Const(0)
        assert self.fold("and", Var("x"), Const(0)) == Const(0)

    def test_full_mask_identity(self):
        assert self.fold("and", Var("x"), Const(0xFFFFFFFF)) == Var("x")

    def test_self_cancellation(self):
        assert self.fold("xor", Var("x"), Var("x")) == Const(0)
        assert self.fold("sub", Var("x"), Var("x")) == Const(0)
        assert self.fold("and", Var("x"), Var("x")) == Var("x")

    def test_no_fold_for_general_operands(self):
        assert self.fold("add", Var("x"), Var("y")) is None


class TestEtaReduction:
    def test_forward_reference_rewritten(self):
        """A jump that appears before the eta'd continuation's definition
        in tree order (loop-exit shape) must still be redirected."""
        term = LetCont(
            "loop",
            ("i",),
            If(
                "lt",
                Var("i"),
                Const(4),
                AppCont("loop", (Var("i"),)),
                AppCont("done", (Var("i"),)),
            ),
            LetCont(
                "done",
                ("r",),
                AppCont("ret", (Var("r"),)),
                AppCont("loop", (Const(0),)),
            ),
            recursive=True,
        )
        reduced = eta_reduce_conts(term)

        names = []

        def walk(t):
            if isinstance(t, AppCont):
                names.append(t.name)
            for child in ir.subterms(t):
                walk(child)

        walk(reduced)
        assert "done" not in names
        assert "ret" in names

    def test_eta_cycle_left_alone(self):
        term = LetCont(
            "a",
            ("x",),
            AppCont("b", (Var("x"),)),
            LetCont(
                "b",
                ("y",),
                AppCont("a", (Var("y"),)),
                Halt((Const(0),)),
            ),
        )
        reduced = eta_reduce_conts(term)  # must not loop forever
        assert isinstance(reduced, (LetCont, Halt))


class TestDce:
    def test_dead_chain_removed(self):
        term = LetPrim(
            "a",
            "add",
            (Const(1), Const(2)),
            LetPrim("b", "add", (Var("a"), Const(3)), Halt(())),
        )
        # The pass peels one dead layer per run (the driver iterates).
        out = eliminate_dead(term, OptStats())
        out = eliminate_dead(out, OptStats())
        assert isinstance(out, Halt)

    def test_live_chain_kept(self):
        term = LetPrim(
            "a", "add", (Const(1), Const(2)), Halt((Var("a"),))
        )
        out = eliminate_dead(term, OptStats())
        assert isinstance(out, LetPrim)

    def test_effectful_special_kept(self):
        term = ir.Special(None, "csr_wr", (Const(0), Const(1)), Halt(()))
        out = eliminate_dead(term, OptStats())
        assert isinstance(out, ir.Special)

    def test_dead_hash_removed(self):
        term = ir.Special("h", "hash", (Const(5),), Halt(()))
        out = eliminate_dead(term, OptStats())
        assert isinstance(out, Halt)


class TestSimplify:
    def test_cse_within_dominating_scope(self):
        term = LetPrim(
            "a",
            "add",
            (Var("x"), Const(1)),
            LetPrim(
                "b",
                "add",
                (Var("x"), Const(1)),
                Halt((Var("a"), Var("b"))),
            ),
        )
        stats = OptStats()
        out = simplify(term, stats)
        assert stats.cse_hits == 1
        # Both halt operands resolve to the same variable.
        assert isinstance(out, LetPrim)
        halt = out.body
        assert halt.atoms[0] == halt.atoms[1]

    def test_constant_branch_selects_arm(self):
        term = If("lt", Const(1), Const(2), Halt((Const(10),)), Halt((Const(20),)))
        stats = OptStats()
        out = simplify(term, stats)
        assert out == Halt((Const(10),))
        assert stats.branches_simplified == 1

    def test_optimize_is_idempotent(self):
        term = LetPrim(
            "a",
            "add",
            (Var("x"), Const(0)),
            LetPrim("b", "xor", (Var("a"), Var("a")), Halt((Var("b"),))),
        )
        once = optimize(term).term
        twice = optimize(once).term
        assert ir.pretty(once) == ir.pretty(twice)
        assert once == Halt((Const(0),))
