"""Flow-hash steering, dispatch/retirement correctness, and the
percentile / histogram fixes that rode along with the whole-chip
scale-out.

The scenario behind the retirement test: with a backlog arrival every
packet is generated at cycle 0 and ``source_done`` is set immediately,
but the dispatch stage only lands descriptors ``dispatch_cycles``
later.  Workers polling their empty RX rings at cycle 0 would — under
the old ``source_done && ring-empty → dormant`` rule — retire on the
spot and strand the entire stream.  Retirement must instead key on
"nothing steered to this engine can still arrive".
"""

import dataclasses

import pytest

from repro.fuzz.netmeta import check_result, check_steering
from repro.ixp.machine import hash48
from repro.ixp.memory import MemorySystem
from repro.errors import SimulatorError
from repro.ixp.net import (
    NetConfig,
    NetRuntime,
    chip_seed,
    run_sharded,
    run_stream,
    stream_app,
    nearest_rank,
)
from repro.trace import Tracer, log2_bound

from tests.helpers import compile_virtual


@pytest.fixture(scope="module")
def nat_stream():
    app = stream_app("nat", None)
    return dataclasses.replace(app, comp=compile_virtual(app.bundle.source))


@pytest.fixture(scope="module")
def kasumi_stream():
    app = stream_app("kasumi", None, (8,))
    return dataclasses.replace(app, comp=compile_virtual(app.bundle.source))


# -- the retirement race ---------------------------------------------------


def test_workers_survive_dispatch_latency(nat_stream):
    # Backlog + a dispatch delay: at cycle 0 the source is done and all
    # RX rings are empty (descriptors land at cycle 8).  A retirement
    # rule keyed on ring emptiness retires every worker at cycle 0 and
    # strands all 24 packets; the pending-based rule must drain them.
    config = NetConfig(
        engines=3, threads=2, packets=24, seed=4, arrival="backlog",
        rx_capacity=32, dispatch_cycles=8,
    )
    result = run_stream(nat_stream, config)
    assert result.completed == result.generated == 24
    assert result.inflight == 0 and result.dropped == 0
    assert result.mismatches == []


def test_zero_dispatch_latency_still_works(nat_stream):
    config = NetConfig(
        engines=2, threads=2, packets=12, seed=4, arrival="backlog",
        rx_capacity=16, dispatch_cycles=0,
    )
    result = run_stream(nat_stream, config)
    assert result.completed == 12 and result.mismatches == []


# -- steering invariants ---------------------------------------------------


def test_nat_steering_invariants_metamorphic(nat_stream):
    # Flow affinity, per-flow order, conservation and engine-count
    # independence over 1/2/6-engine topologies (see repro.fuzz.netmeta).
    assert check_steering(nat_stream, packets=32, seed=7) == []


def test_kasumi_default_flow_key_invariants(kasumi_stream):
    # No app flow_key: flows default to a hash of the sequence number.
    assert check_steering(kasumi_stream, packets=24, seed=3) == []


def test_same_flow_same_engine(nat_stream):
    config = NetConfig(engines=6, threads=2, packets=48, seed=9,
                       arrival="backlog", rx_capacity=56)
    result = run_stream(nat_stream, config)
    engine_of: dict[int, int] = {}
    for packet in result.packets:
        assert packet.engine == engine_of.setdefault(packet.flow, packet.engine)
    # NAT keys on the address pair, and 8 mappings give far fewer flows
    # than packets — steering must still spread them over >1 engine.
    assert len(set(engine_of.values())) > 1


def test_round_robin_steering(nat_stream):
    config = NetConfig(engines=4, threads=2, packets=16, seed=2,
                       arrival="backlog", rx_capacity=16, steer="rr")
    result = run_stream(nat_stream, config)
    assert result.completed == 16
    for packet in result.packets:
        assert packet.engine == packet.seq % 4
    assert result.steered == [4, 4, 4, 4]


def test_check_steering_round_robin(nat_stream):
    # Affinity is a steer="flow" property; under "rr" the oracle must
    # still enforce conservation, per-engine FIFO pull order and
    # engine-count independence — and report nothing for legal sprays.
    assert check_steering(nat_stream, packets=24, seed=3, steer="rr") == []


def test_check_result_allows_flow_spray_under_rr(nat_stream):
    # NAT has fewer flows than packets, so round-robin necessarily
    # splits flows across engines: legal under "rr", a violation that
    # check_result must not raise (it is gated on the steer mode).
    config = NetConfig(engines=4, threads=2, packets=16, seed=2,
                       arrival="backlog", rx_capacity=20, tx_capacity=20,
                       steer="rr")
    result = run_stream(nat_stream, config)
    engines_by_flow: dict[int, set] = {}
    for packet in result.packets:
        engines_by_flow.setdefault(packet.flow, set()).add(packet.engine)
    assert any(len(engines) > 1 for engines in engines_by_flow.values())
    assert check_result(result) == []


def test_check_result_flags_mismatched_packets(nat_stream):
    # Errored packets (status "mismatch") must surface as a violation
    # and still participate in the per-engine order check.
    def corrupt(rng, seq):
        packet = nat_stream.generate(rng, seq)
        packet.expected_results = tuple(
            (value ^ 1) & 0xFFFFFFFF for value in packet.expected_results
        )
        return packet

    bad_app = dataclasses.replace(nat_stream, generate=corrupt)
    config = NetConfig(engines=2, threads=2, packets=8, seed=3,
                       arrival="backlog", rx_capacity=12, tx_capacity=12)
    result = run_stream(bad_app, config)
    assert result.mismatches
    violations = check_result(result)
    assert any("mismatched the reference" in v for v in violations)
    # the corrupted expectations break validation, not scheduling
    assert not any("out of arrival order" in v for v in violations)


def test_unknown_steer_mode_rejected(nat_stream):
    with pytest.raises(ValueError, match="steering policy"):
        NetRuntime(nat_stream, NetConfig(steer="random"))
    with pytest.raises(ValueError, match="dispatch_cycles"):
        NetRuntime(nat_stream, NetConfig(dispatch_cycles=-1))


# -- per-engine ring groups ------------------------------------------------


def test_ring_group_members_and_accounting():
    memory = MemorySystem.create()
    group = memory.add_ring_group("q", 100, 4, 3)
    assert len(group) == 3
    assert [ring.name for ring in group] == ["q0", "q1", "q2"]
    # members are ordinary named rings in the same scratch image
    assert memory.ring("q1") is group[1]
    assert group[1].base == 100 + (2 + 4)
    group[0].try_enqueue(0, 11)
    group[2].try_enqueue(0, 22)
    group[2].try_enqueue(5, 33)
    assert group.enqueues == 3 and group.dequeues == 0
    assert group.high_waters() == [1, 0, 2]
    assert group.high_water == 2
    assert group.depths() == [1, 0, 2]
    with pytest.raises(SimulatorError, match="count must be > 0"):
        memory.add_ring_group("z", 200, 4, 0)


# -- percentile semantics --------------------------------------------------


def test_percentile_boundaries():
    data = list(range(10, 110, 10))  # 10..100
    assert nearest_rank(data, 0) == 10  # p=0 is the minimum by definition
    assert nearest_rank(data, 100) == 100
    assert nearest_rank(data, 50) == 50  # ceil(10 * 0.5) = rank 5
    assert nearest_rank(data, 51) == 60
    assert nearest_rank(data, 0.0001) == 10  # ceil of a sliver is rank 1
    assert nearest_rank([], 50) == -1


def test_percentile_rejects_out_of_range():
    with pytest.raises(ValueError, match="percentile"):
        nearest_rank([1, 2, 3], -1)
    with pytest.raises(ValueError, match="percentile"):
        nearest_rank([1, 2, 3], 100.5)


def test_percentile_float_rank_is_exact():
    data = list(range(1, 11))
    # 30.0 is exactly representable: rank must be exactly ceil(3) = 3,
    # immune to 10 * 30.0 / 100 = 2.9999... style drift.
    assert nearest_rank(data, 30.0) == 3
    # A non-terminating p lands strictly inside the next rank.
    assert nearest_rank(data, 100 / 3) == 4  # ceil(3.333...) = 4
    # One latency: every p in (0, 100] is that latency.
    assert nearest_rank([42], 100 / 7) == 42


# -- shared log2 bucketing -------------------------------------------------


def test_log2_bound_edges():
    assert log2_bound(0) == 1
    assert log2_bound(1) == 1
    assert log2_bound(2) == 2  # exact power of two is its own bound
    assert log2_bound(3) == 4
    assert log2_bound(1024) == 1024
    assert log2_bound(1025) == 2048


def test_histogram_and_span_buckets_agree(nat_stream):
    tracer = Tracer()
    result = run_stream(
        nat_stream,
        NetConfig(engines=2, threads=2, packets=12, seed=6,
                  arrival="backlog", rx_capacity=16),
        tracer,
    )
    hist = result.latency_histogram()
    span = tracer.get("net.run")
    buckets = {
        int(key.split("le_")[1]): count
        for key, count in span.counters.items()
        if key.startswith("latency.le_")
    }
    assert buckets == hist  # one bucketing function, one answer


# -- multi-chip sharding ---------------------------------------------------


def test_run_sharded_aggregates_chips():
    config = NetConfig(engines=2, threads=2, packets=10, seed=20,
                       arrival="backlog", rx_capacity=16)
    sharded = run_sharded("nat", config, chips=3, virtual=True, jobs=1)
    assert sharded.chips == 3 and len(sharded.results) == 3
    assert sharded.generated == 30
    assert sharded.completed == 30 and not sharded.mismatches
    # chips run in parallel: aggregate rate sums, makespan is the max
    assert sharded.mbps == pytest.approx(sum(r.mbps for r in sharded.results))
    assert sharded.cycles == max(r.cycles for r in sharded.results)
    # per-chip seeds differ, so chips see different traffic
    assert sharded.results[0].latencies != sharded.results[1].latencies
    assert sharded.percentile(50) in sharded.latencies
    summary = sharded.summary()
    assert summary["chips"] == 3 and summary["generated"] == 30


def test_run_sharded_rejects_zero_chips():
    with pytest.raises(ValueError, match="at least one chip"):
        run_sharded("nat", NetConfig(), chips=0)


def test_chip_seeds_do_not_alias_across_deployments():
    # The old scheme seeded chip i with ``config.seed + i``, so chip 1
    # of a seed-0 deployment replayed chip 0 of a seed-1 deployment
    # packet for packet.  chip_seed mixes (seed, chip) through hash48.
    assert chip_seed(0, 1) != chip_seed(1, 0)
    assert chip_seed(0, 0) != chip_seed(0, 1)
    pairs = {chip_seed(seed, chip) for seed in range(8) for chip in range(6)}
    assert len(pairs) == 48  # no collisions across a whole sweep
    assert chip_seed(3, 2) == hash48((3 * 0x9E3779B1 + 2) & 0xFFFFFFFF)


def test_sharded_chips_see_distinct_traffic_across_base_seeds():
    config = NetConfig(engines=2, threads=2, packets=10, seed=0,
                       arrival="backlog", rx_capacity=16)
    deploy0 = run_sharded("nat", config, chips=2, virtual=True, jobs=1)
    deploy1 = run_sharded(
        "nat", dataclasses.replace(config, seed=1), chips=2, virtual=True,
        jobs=1,
    )
    # the aliasing bug made these two latency series identical
    assert (
        deploy0.results[1].latencies != deploy1.results[0].latencies
    )
