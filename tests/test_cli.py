"""Command-line interface tests (``novac``)."""

import pytest

from repro.cli import main

SOURCE = """
layout h = { a : 8, b : 24 };
fun main (x) {
  let u = unpack[h](x);
  u.a + u.b
}
"""


@pytest.fixture
def program(tmp_path):
    path = tmp_path / "prog.nova"
    path.write_text(SOURCE)
    return str(path)


def test_compile_and_print(program, capsys):
    assert main([program]) == 0
    out = capsys.readouterr().out
    assert "entry:" in out
    assert "halt" in out
    # Physical registers appear (allocation ran).
    assert any(bank in out for bank in ("A0", "B0", "A1", "B1"))


def test_virtual_mode(program, capsys):
    assert main(["--virtual", program]) == 0
    out = capsys.readouterr().out
    assert "entry:" in out
    # Temps, not physical registers.
    assert "p." in out or "f." in out


def test_cps_dump(program, capsys):
    assert main(["--cps", program]) == 0
    out = capsys.readouterr().out
    assert "halt" in out


def test_stats(program, capsys):
    assert main(["--stats", program]) == 0
    out = capsys.readouterr().out
    assert "layouts: 1" in out
    assert "ILP:" in out
    assert "spills=0" in out


def test_two_phase_flag(program, capsys):
    assert main(["--two-phase", program]) == 0


def test_trace_table(program, capsys):
    assert main(["--trace", program]) == 0
    out = capsys.readouterr().out
    # The span table follows the normal assembly listing.
    assert "entry:" in out
    for phase in ("parse", "typecheck", "cps", "ssu", "select", "allocate"):
        assert phase in out
    assert "variables=" in out  # model span counters rendered inline


def test_trace_json(program, tmp_path, capsys):
    import json

    trace_path = tmp_path / "trace.jsonl"
    assert main(["--trace-json", str(trace_path), program]) == 0
    lines = trace_path.read_text().splitlines()
    records = [json.loads(line) for line in lines]
    names = [r["name"] for r in records]
    for phase in (
        "parse",
        "typecheck",
        "cps",
        "deproc",
        "optimize",
        "ssu",
        "select",
        "allocate",
        "model",
        "solve",
    ):
        assert phase in names, f"missing span {phase}"
    solve = next(r for r in records if r["name"] == "solve")
    assert solve["counters"]["rows"] > 0
    assert solve["counters"]["nodes"] >= 0
    assert solve["counters"]["root_relaxation_seconds"] > 0
    assert all(r["seconds"] >= 0 for r in records)


def test_missing_file(capsys):
    assert main(["/nonexistent.nova"]) == 1
    assert "novac:" in capsys.readouterr().err


def test_diagnostics_reported(tmp_path, capsys):
    path = tmp_path / "bad.nova"
    path.write_text("fun main (x) { y }")
    assert main([str(path)]) == 1
    err = capsys.readouterr().err
    assert "unbound" in err
    assert "bad.nova" in err  # source location carried through


def test_parse_error_position(tmp_path, capsys):
    path = tmp_path / "bad.nova"
    path.write_text("fun main (x) {\n  let = 3;\n}")
    assert main([str(path)]) == 1
    err = capsys.readouterr().err
    assert "2:" in err  # line number of the bad let


def test_run_flag(program, capsys):
    assert main(["--run", "x=0x45001234", program]) == 0
    out = capsys.readouterr().out
    # a=0x45, b=0x001234 -> sum 0x1279
    assert "thread 0: (0x1279)" in out
    assert "cycles" in out


def test_run_flag_virtual(program, capsys):
    assert main(["--virtual", "--run", "x=0", program]) == 0
    assert "thread 0: (0x0)" in capsys.readouterr().out


def test_run_flag_bad_inputs(program, capsys):
    assert main(["--run", "nope=1", program]) == 1
    assert "bad --run inputs" in capsys.readouterr().err
