"""Command-line interface tests (``novac``)."""

import pytest

from repro.cli import main

SOURCE = """
layout h = { a : 8, b : 24 };
fun main (x) {
  let u = unpack[h](x);
  u.a + u.b
}
"""


@pytest.fixture
def program(tmp_path):
    path = tmp_path / "prog.nova"
    path.write_text(SOURCE)
    return str(path)


def test_compile_and_print(program, capsys):
    assert main([program]) == 0
    out = capsys.readouterr().out
    assert "entry:" in out
    assert "halt" in out
    # Physical registers appear (allocation ran).
    assert any(bank in out for bank in ("A0", "B0", "A1", "B1"))


def test_virtual_mode(program, capsys):
    assert main(["--virtual", program]) == 0
    out = capsys.readouterr().out
    assert "entry:" in out
    # Temps, not physical registers.
    assert "p." in out or "f." in out


def test_cps_dump(program, capsys):
    assert main(["--cps", program]) == 0
    out = capsys.readouterr().out
    assert "halt" in out


def test_stats(program, capsys):
    assert main(["--stats", program]) == 0
    out = capsys.readouterr().out
    assert "layouts: 1" in out
    assert "ILP:" in out
    assert "spills=0" in out


def test_two_phase_flag(program, capsys):
    assert main(["--two-phase", program]) == 0


def test_trace_table(program, capsys):
    assert main(["--trace", program]) == 0
    out = capsys.readouterr().out
    # The span table follows the normal assembly listing.
    assert "entry:" in out
    for phase in ("parse", "typecheck", "cps", "ssu", "select", "allocate"):
        assert phase in out
    assert "variables=" in out  # model span counters rendered inline


def test_trace_json(program, tmp_path, capsys):
    import json

    trace_path = tmp_path / "trace.jsonl"
    assert main(["--trace-json", str(trace_path), program]) == 0
    lines = trace_path.read_text().splitlines()
    records = [json.loads(line) for line in lines]
    names = [r["name"] for r in records]
    for phase in (
        "parse",
        "typecheck",
        "cps",
        "deproc",
        "optimize",
        "ssu",
        "select",
        "allocate",
        "model",
        "solve",
    ):
        assert phase in names, f"missing span {phase}"
    solve = next(r for r in records if r["name"] == "solve")
    assert solve["counters"]["rows"] > 0
    assert solve["counters"]["nodes"] >= 0
    assert solve["counters"]["root_relaxation_seconds"] > 0
    assert all(r["seconds"] >= 0 for r in records)


def test_missing_file(capsys):
    assert main(["/nonexistent.nova"]) == 1
    assert "novac:" in capsys.readouterr().err


def test_diagnostics_reported(tmp_path, capsys):
    path = tmp_path / "bad.nova"
    path.write_text("fun main (x) { y }")
    assert main([str(path)]) == 1
    err = capsys.readouterr().err
    assert "unbound" in err
    assert "bad.nova" in err  # source location carried through


def test_parse_error_position(tmp_path, capsys):
    path = tmp_path / "bad.nova"
    path.write_text("fun main (x) {\n  let = 3;\n}")
    assert main([str(path)]) == 1
    err = capsys.readouterr().err
    assert "2:" in err  # line number of the bad let


def test_run_flag(program, capsys):
    assert main(["--run", "x=0x45001234", program]) == 0
    out = capsys.readouterr().out
    # a=0x45, b=0x001234 -> sum 0x1279
    assert "thread 0: (0x1279)" in out
    assert "cycles" in out


def test_run_flag_virtual(program, capsys):
    assert main(["--virtual", "--run", "x=0", program]) == 0
    assert "thread 0: (0x0)" in capsys.readouterr().out


def test_run_flag_bad_inputs(program, capsys):
    assert main(["--run", "nope=1", program]) == 1
    assert "bad --run inputs" in capsys.readouterr().err


def test_trace_json_flushes_on_failed_compile(tmp_path, capsys):
    """A NovaError mid-pipeline must not lose the spans already recorded."""
    import json

    path = tmp_path / "bad.nova"
    path.write_text("fun main (x) { y }")  # typechecker rejects
    trace_path = tmp_path / "trace.jsonl"
    assert main(["--trace-json", str(trace_path), str(path)]) == 1
    assert "unbound" in capsys.readouterr().err
    records = [json.loads(line) for line in trace_path.read_text().splitlines()]
    names = [r["name"] for r in records]
    assert "parse" in names  # the phases before the failure survived
    assert "typecheck" in names
    assert "allocate" not in names  # ...and nothing after it was invented


def test_trace_table_on_failed_compile(tmp_path, capsys):
    path = tmp_path / "bad.nova"
    path.write_text("fun main (x) { y }")
    assert main(["--trace", str(path)]) == 1
    captured = capsys.readouterr()
    assert "unbound" in captured.err
    assert "parse" in captured.out  # span table still printed


SECOND_SOURCE = """
fun main (x, y) {
  x * 3 + y
}
"""


@pytest.fixture
def programs(tmp_path):
    first = tmp_path / "first.nova"
    first.write_text(SOURCE)
    second = tmp_path / "second.nova"
    second.write_text(SECOND_SOURCE)
    return [str(first), str(second)]


def test_batch_mode(programs, capsys):
    assert main(["--jobs", "2"] + programs) == 0
    out = capsys.readouterr().out
    assert "first.nova: ok" in out
    assert "second.nova: ok" in out
    assert "batch: 2/2 ok" in out


def test_batch_mode_reports_failures(programs, tmp_path, capsys):
    bad = tmp_path / "bad.nova"
    bad.write_text("fun main (x) { y }")
    assert main(programs + [str(bad)]) == 1
    out = capsys.readouterr().out
    assert "bad.nova: error:" in out
    assert "unbound" in out
    assert "batch: 2/3 ok" in out


def test_batch_cache_cold_then_warm(programs, tmp_path, capsys):
    cache_dir = str(tmp_path / "cache")
    assert main(["--cache-dir", cache_dir] + programs) == 0
    cold = capsys.readouterr().out
    assert "cache miss" in cold and "cache 0 hits / 2 misses" in cold
    assert main(["--cache-dir", cache_dir] + programs) == 0
    warm = capsys.readouterr().out
    assert "cache hit" in warm and "cache 2 hits / 0 misses" in warm


def test_single_file_cache_dir(program, tmp_path, capsys):
    cache_dir = str(tmp_path / "cache")
    assert main(["--cache-dir", cache_dir, program]) == 0
    first = capsys.readouterr().out
    assert main(["--cache-dir", cache_dir, program]) == 0
    second = capsys.readouterr().out
    assert first == second  # the cached artifact renders identically
    assert "A0" in second or "B0" in second


def test_batch_rejects_single_source_modes(programs, capsys):
    assert main(["--run", "x=1"] + programs) == 2
    assert "--run requires a single source" in capsys.readouterr().err


def test_batch_trace_json(programs, tmp_path):
    import json

    trace_path = tmp_path / "trace.jsonl"
    assert main(["--trace-json", str(trace_path), "--jobs", "2"] + programs) == 0
    records = [json.loads(line) for line in trace_path.read_text().splitlines()]
    names = [r["name"] for r in records]
    assert "batch" in names
    assert names.count("unit") == 2
    assert names.count("parse") == 2  # worker spans adopted into the trace
