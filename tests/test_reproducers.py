"""Minimized reproducers from fuzz campaigns (regression suite).

Each ``tests/reproducers/*.nova`` file is a program the differential
fuzzer once flagged, shrunk by :mod:`repro.fuzz.shrink`, with the root
cause recorded in its header comment.  Every one must now pass the same
differential check that originally failed it.
"""

import pathlib

import pytest

from repro.fuzz.oracle import check_program, default_configs

REPRODUCERS = pathlib.Path(__file__).resolve().parent / "reproducers"

#: file -> (configs it diverged under, input vectors, memory image)
CASES = {
    "prune_chain.nova": (
        ["no-opt"],
        [{"x0": 21215132, "x1": 256}, {"x0": 4239086761, "x1": 99031304}],
        None,
    ),
    "baseline_dead_input.nova": (
        ["alloc-baseline", "alloc-highs", "alloc-bnb"],
        [{"x0": 2, "x1": 2147483647, "x2": 256}],
        None,
    ),
    "baseline_dead_drain.nova": (
        ["alloc-baseline", "alloc-highs", "alloc-bnb"],
        [{"x0": 5}],
        {"sdram": [[64, [111, 222]]]},
    ),
    "freq_degenerate_branch.nova": (
        ["alloc-highs", "alloc-bnb"],
        [{"acc14": 1694756940}, {"acc14": 0}],
        None,
    ),
}


def test_every_reproducer_has_a_case():
    files = {p.name for p in REPRODUCERS.glob("*.nova")}
    assert files == set(CASES), "keep CASES in sync with tests/reproducers/"


@pytest.mark.parametrize("name", sorted(CASES))
def test_reproducer_no_longer_diverges(name):
    configs, vectors, memory_image = CASES[name]
    source = (REPRODUCERS / name).read_text()
    report = check_program(
        source,
        vectors,
        memory_image=memory_image,
        configs=default_configs(configs),
    )
    assert report.invalid is None, report.invalid
    assert not report.divergences, [str(d) for d in report.divergences]
