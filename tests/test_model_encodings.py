"""ILP model encoding tests: equivalences and structure.

The compact ("aux") interference encoding must be exactly equivalent to
the paper-literal ("direct") quantification; the ModelOptions toggles
must never change the optimum (only the size/solve time).
"""

import pytest

from repro.alloc.ilpmodel import (
    ModelOptions,
    build_instr_sets,
    build_model,
    clone_groups,
    extract_solution,
)
from repro.ilp.solve import solve_model
from repro.ixp.banks import Bank

from tests.helpers import compile_virtual
from tests.programs import case

PROGRAMS = {
    "xfer_pressure": """
        fun main (b) {
          let (p, q, r, s) = sram(b);
          let (t, u) = sram(b + 8);
          sram(b + 16) <- (q + t, p ^ u);
          p + q + r + s + t + u
        }
    """,
    "clones": case("clone_heavy").source,
}


def _solve(source, **options):
    comp = compile_virtual(source)
    am = build_model(comp.flowgraph, ModelOptions(**options))
    sol = solve_model(am.model)
    assert sol.status == "optimal", sol.status
    return am, sol


@pytest.mark.parametrize("name", sorted(PROGRAMS))
def test_interference_encodings_equivalent(name):
    source = PROGRAMS[name]
    am_aux, sol_aux = _solve(source, interference_encoding="aux")
    am_direct, sol_direct = _solve(source, interference_encoding="direct")
    assert sol_aux.objective == pytest.approx(sol_direct.objective, abs=1e-6)
    # The direct form has many more constraints.
    assert len(am_direct.model.constraints) >= len(am_aux.model.constraints)


def test_direct_encoding_solution_decodes():
    comp = compile_virtual(PROGRAMS["xfer_pressure"])
    am = build_model(
        comp.flowgraph, ModelOptions(interference_encoding="direct")
    )
    sol = solve_model(am.model)
    decoded = extract_solution(am, sol)
    assert decoded.spills == 0
    from repro.alloc.verify import check_solution

    assert check_solution(am, decoded).ok


class TestInstrSets:
    def test_memory_aggregates_classified(self):
        comp = compile_virtual(PROGRAMS["xfer_pressure"])
        graph = comp.flowgraph
        sets = build_instr_sets(graph, graph.points())
        assert len(sets.def_l) == 2
        assert len(sets.use_s) == 1
        ((_, _, names),) = sets.use_s
        assert len(names) == 2

    def test_no_move_points_cover_branches(self):
        comp = compile_virtual(case("branch").source)
        graph = comp.flowgraph
        sets = build_instr_sets(graph, graph.points())
        points = graph.points()
        from repro.ixp import isa

        for label, block in graph.blocks.items():
            if isinstance(block.terminator, (isa.BrCmp, isa.HaltInstr)):
                assert points.exit(label) in sets.no_move_points

    def test_clone_groups_union(self):
        comp = compile_virtual(case("clone_heavy").source)
        graph = comp.flowgraph
        sets = build_instr_sets(graph, graph.points())
        groups = clone_groups(sets)
        # All clones of one source share one representative.
        reps = {}
        for _, _, d, s in sets.clones:
            reps.setdefault(groups[s], set()).update({d, s})
        for members in reps.values():
            assert len({groups[m] for m in members}) == 1

    def test_figure6_stats_shape(self):
        comp = compile_virtual(PROGRAMS["xfer_pressure"])
        graph = comp.flowgraph
        stats = build_instr_sets(graph, graph.points()).figure6_stats()
        assert stats["DefLi"] == 6
        assert stats["UseSi"] == 2
        assert stats["DefLDj"] == 0


class TestModelToggles:
    @pytest.mark.parametrize(
        "options",
        [
            {"redundant_position_constraints": False},
            {"tighten_needs_spill": False},
            {"a_bank_bias": 1.0},
            {"prune_banks": False},
        ],
        ids=lambda o: next(iter(o)),
    )
    def test_toggles_preserve_feasibility_and_spills(self, options):
        source = PROGRAMS["xfer_pressure"]
        _, sol_default = _solve(source)
        am, sol = _solve(source, **options)
        decoded = extract_solution(am, sol)
        assert decoded.spills == 0

    def test_no_spill_mode_drops_m_bank(self):
        comp = compile_virtual(PROGRAMS["xfer_pressure"])
        am = build_model(comp.flowgraph, ModelOptions(allow_spill=False))
        for v in comp.flowgraph.temps():
            assert Bank.M not in am.allowed(v)
