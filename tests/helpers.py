"""Shared utilities for the test suite."""

from __future__ import annotations

from repro.compiler import CompileOptions, Compilation, compile_nova
from repro.ixp.machine import Machine
from repro.ixp.memory import MemorySystem

MemoryImage = dict[str, list[tuple[int, list[int]]]]


def compile_virtual(source: str) -> Compilation:
    """Compile without running the ILP allocator (fast path for tests)."""
    options = CompileOptions()
    options.run_allocator = False
    return compile_nova(source, options=options)


def compile_full(
    source: str,
    two_phase: bool = False,
    time_limit: float | None = None,
    gap: float | None = None,
) -> Compilation:
    options = CompileOptions()
    options.alloc.two_phase = two_phase
    if time_limit is not None:
        options.alloc.solve.time_limit = time_limit
    if gap is not None:
        options.alloc.solve.gap = gap
    return compile_nova(source, options=options)


def make_memory(image: MemoryImage | None = None) -> MemorySystem:
    memory = MemorySystem.create()
    for space, chunks in (image or {}).items():
        for addr, words in chunks:
            memory[space].load_words(addr, words)
    return memory


def run_main(
    comp: Compilation,
    memory_image: MemoryImage | None = None,
    iterations: int = 1,
    **inputs,
) -> tuple[list[tuple[int, ...]], MemorySystem]:
    """Run the virtual flowgraph with source-named inputs.

    Returns (list of halt-value tuples, the memory system afterwards).
    """
    memory = make_memory(memory_image)
    raw = comp.make_inputs(**inputs)

    def provider(tid: int, iteration: int):
        if iteration >= iterations:
            return None
        return dict(raw)

    machine = Machine(
        comp.flowgraph,
        memory=memory,
        threads=1,
        physical=False,
        input_provider=provider,
    )
    result = machine.run()
    return [values for _, values in result.results], memory


def run_physical(
    comp: Compilation,
    memory_image: MemoryImage | None = None,
    iterations: int = 1,
    **inputs,
) -> tuple[list[tuple[int, ...]], MemorySystem]:
    """Run the allocated (physical) flowgraph with source-named inputs."""
    assert comp.alloc is not None
    memory = make_memory(memory_image)
    raw = comp.make_inputs(**inputs)
    locations = comp.alloc.decoded.input_locations
    physical_inputs: dict = {}
    for temp, value in raw.items():
        loc = locations.get(temp)
        if loc is None:
            continue
        kind, where = loc
        if kind == "reg":
            physical_inputs[(where.bank, where.index)] = value
        else:
            memory["scratch"].load_words(where, [value])

    def provider(tid: int, iteration: int):
        if iteration >= iterations:
            return None
        return dict(physical_inputs)

    machine = Machine(
        comp.physical,
        memory=memory,
        threads=1,
        physical=True,
        input_provider=provider,
    )
    result = machine.run()
    return [values for _, values in result.results], memory
