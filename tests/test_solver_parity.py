"""Engine parity: ``highs`` and ``bnb`` must agree on every model class.

The allocator treats the solving engine as interchangeable, so the two
back ends have to reach the same objective (within the configured MIP
gap) and report the same status on feasible, infeasible and
resource-limited models alike.  These tests also pin the branch-and-bound
gap-termination fix: a loose gap must visit strictly fewer nodes than a
tight one.
"""

import random

import pytest

from repro.ilp.model import Model
from repro.ilp.solve import SolveOptions, solve_model

ENGINES = ["highs", "bnb"]


def knapsack_model(values, weights, capacity):
    m = Model("knapsack")
    x = m.family("x")
    m.add({x[(i,)]: w for i, w in enumerate(weights)}, "<=", capacity)
    m.minimize({x[(i,)]: -v for i, v in enumerate(values)})
    return m


def hard_knapsack(seed: int) -> Model:
    """Weakly correlated knapsack: fractional LP root, real B&B tree."""
    rng = random.Random(seed)
    weights = [rng.randint(3, 30) for _ in range(14)]
    values = [w + rng.randint(-2, 2) for w in weights]
    return knapsack_model(values, weights, sum(weights) // 2)


def assignment_model(costs):
    """Assign each worker to exactly one task, each task to one worker."""
    n = len(costs)
    m = Model("assignment")
    x = m.family("x")
    for i in range(n):
        m.add_sum_eq([x[(i, j)] for j in range(n)], 1)
    for j in range(n):
        m.add_sum_eq([x[(i, j)] for i in range(n)], 1)
    m.minimize({x[(i, j)]: costs[i][j] for i in range(n) for j in range(n)})
    return m


def cover_model():
    """Small set-cover: pick sets covering {0..4} at minimum cost."""
    sets = {
        "a": ([0, 1, 2], 3.0),
        "b": ([1, 3], 2.0),
        "c": ([2, 4], 2.0),
        "d": ([0, 3, 4], 3.5),
        "e": ([4], 1.0),
    }
    m = Model("cover")
    x = m.family("x")
    for element in range(5):
        members = [x[(name,)] for name, (covered, _) in sets.items() if element in covered]
        m.add({v: 1.0 for v in members}, ">=", 1)
    m.minimize({x[(name,)]: cost for name, (_, cost) in sets.items()})
    return m


FEASIBLE_MODELS = {
    "knapsack": lambda: knapsack_model([6, 5, 8, 9, 6, 7, 3], [2, 3, 6, 7, 5, 9, 4], 15),
    "hard_knapsack": lambda: hard_knapsack(2),
    "assignment": lambda: assignment_model(
        [[9, 2, 7], [6, 4, 3], [5, 8, 1]]
    ),
    "cover": cover_model,
}


class TestParity:
    @pytest.mark.parametrize("name", sorted(FEASIBLE_MODELS))
    def test_engines_agree_on_objective(self, name):
        model = FEASIBLE_MODELS[name]()
        options = SolveOptions(gap=1e-6)
        solutions = {
            engine: solve_model(
                model, SolveOptions(engine=engine, gap=options.gap)
            )
            for engine in ENGINES
        }
        for engine, sol in solutions.items():
            assert sol.status == "optimal", (name, engine, sol.status)
            # 0-1 solution vector satisfying integrality.
            assert all(v in (0.0, 1.0) for v in sol.values)
        highs, bnb = solutions["highs"], solutions["bnb"]
        denom = max(1.0, abs(highs.objective))
        assert abs(highs.objective - bnb.objective) / denom <= options.gap

    @pytest.mark.parametrize("engine", ENGINES)
    def test_infeasible(self, engine):
        m = Model("infeasible")
        x = m.family("x")
        m.add({x[(0,)]: 1.0, x[(1,)]: 1.0}, ">=", 3)  # two 0-1 vars can't reach 3
        m.minimize({x[(0,)]: 1.0})
        sol = solve_model(m, SolveOptions(engine=engine))
        assert sol.status == "infeasible"

    def test_bnb_node_limit_reports_timeout(self):
        sol = solve_model(
            hard_knapsack(0),
            SolveOptions(engine="bnb", node_limit=0, gap=1e-9),
        )
        assert sol.status == "timeout"

    def test_highs_time_limit_is_not_infeasible(self):
        # A model HiGHS cannot finish inside the limit must come back as
        # "timeout" (the seed mislabeled the missing solution vector as
        # "infeasible").  HiGHS may still solve tiny models in presolve
        # even with a near-zero budget, so accept an optimal finish.
        sol = solve_model(
            hard_knapsack(0),
            SolveOptions(engine="highs", time_limit=1e-9, gap=1e-9),
        )
        assert sol.status in ("timeout", "optimal")


class TestStatusMapping:
    """Non-0/1 milp statuses must map to distinct, honest labels.

    0-1 models with Bounds(0, 1) can't genuinely go unbounded, so the
    mislabeled statuses (the seed reported *everything* non-0/non-1 as
    "infeasible") are pinned by substituting milp's result object.
    """

    @pytest.mark.parametrize(
        "milp_status,expected",
        [(2, "infeasible"), (3, "unbounded"), (4, "failed"), (99, "failed")],
    )
    def test_milp_status_mapping(self, monkeypatch, milp_status, expected):
        from repro.ilp import solve as solve_mod

        class FakeResult:
            status = milp_status
            x = None
            fun = None
            mip_node_count = 0
            mip_gap = None

        monkeypatch.setattr(
            solve_mod.optimize, "milp", lambda *a, **kw: FakeResult()
        )
        sol = solve_model(
            FEASIBLE_MODELS["knapsack"](), SolveOptions(engine="highs")
        )
        assert sol.status == expected


class TestLimitSemantics:
    def test_bnb_zero_time_limit_is_an_immediate_timeout(self):
        # time_limit=0.0 is an exhausted budget, not "no limit" (the
        # seed's falsiness check dropped the guard entirely).
        sol = solve_model(
            hard_knapsack(0),
            SolveOptions(engine="bnb", time_limit=0.0, gap=1e-9),
        )
        assert sol.status == "timeout"
        assert sol.nodes == 0

    def test_bnb_node_limit_is_inclusive(self):
        # The search must not explore a node beyond the limit.
        for limit in (1, 3, 5):
            sol = solve_model(
                hard_knapsack(0),
                SolveOptions(engine="bnb", node_limit=limit, gap=1e-9),
            )
            assert sol.nodes <= limit, (limit, sol.nodes)

    def test_bnb_none_time_limit_means_no_limit(self):
        sol = solve_model(
            FEASIBLE_MODELS["knapsack"](),
            SolveOptions(engine="bnb", time_limit=None, gap=1e-9),
        )
        assert sol.status == "optimal"


class TestGapTermination:
    @pytest.mark.parametrize("seed", [0, 2, 5])
    def test_loose_gap_visits_fewer_nodes(self, seed):
        model = hard_knapsack(seed)
        tight = solve_model(model, SolveOptions(engine="bnb", gap=1e-9))
        loose = solve_model(model, SolveOptions(engine="bnb", gap=0.5))
        assert tight.status == "optimal" and loose.status == "optimal"
        assert loose.nodes < tight.nodes, (
            f"gap=0.5 visited {loose.nodes} nodes, "
            f"gap=1e-9 visited {tight.nodes}"
        )
        # The loose solve still honors its advertised gap bound.
        denom = max(1.0, abs(loose.objective))
        assert (loose.objective - tight.objective) / denom <= 0.5
        assert loose.gap <= 0.5 + 1e-12

    def test_optimal_solve_reports_zero_gap(self):
        sol = solve_model(
            FEASIBLE_MODELS["knapsack"](),
            SolveOptions(engine="bnb", gap=1e-9),
        )
        assert sol.status == "optimal"
        assert sol.gap == pytest.approx(0.0, abs=1e-9)
