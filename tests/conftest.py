import pytest


def pytest_addoption(parser):
    parser.addoption(
        "--update-goldens",
        action="store_true",
        default=False,
        help="rewrite tests/goldens/*.golden from current compiler output",
    )


@pytest.fixture
def update_goldens(request) -> bool:
    return request.config.getoption("--update-goldens")
