"""The compile daemon (`repro.serve`), client, and wire protocol."""

import asyncio
import threading
import time

import pytest

from repro import cli
from repro.client import ServeClient, ServeError, parse_endpoint, try_connect
from repro.compiler import CompileOptions, compile_nova
from repro.proto import ProtocolError, options_from_wire, options_to_wire
from repro.serve import CompileServer, ServeConfig

GOOD = """
layout h = { a : 8, b : 24 };
fun main (x) {
  let u = unpack[h](x);
  u.a + u.b
}
"""

GOOD2 = """
fun main (x, y) {
  x * 3 + y
}
"""

BAD_TYPE = "fun main (x) { y }"  # unbound variable


@pytest.fixture
def server(tmp_path):
    config = ServeConfig(
        socket=str(tmp_path / "d.sock"),
        cache_dir=str(tmp_path / "cache"),
        jobs=1,
        hot_entries=4,
    )
    daemon = CompileServer(config)
    thread = threading.Thread(
        target=lambda: asyncio.run(daemon.run()), daemon=True
    )
    thread.start()
    client = None
    for _ in range(200):
        client = try_connect(config.socket, timeout=1.0)
        if client is not None:
            break
        time.sleep(0.05)
    assert client is not None, "daemon never came up"
    client.close()
    yield config
    leftover = try_connect(config.socket, timeout=1.0)
    if leftover is not None:
        try:
            leftover.shutdown()
        except ServeError:
            pass
        leftover.close()
    thread.join(timeout=30)
    assert not thread.is_alive()


class TestProtocol:
    def test_options_round_trip(self):
        options = CompileOptions()
        options.run_allocator = False
        options.alloc.two_phase = True
        options.alloc.solve.gap = 1e-2
        wire = options_to_wire(options)
        # Sparse: only the three knobs that differ from the defaults.
        assert wire == {
            "run_allocator": False,
            "alloc": {"two_phase": True, "solve": {"gap": 1e-2}},
        }
        rebuilt = options_from_wire(wire)
        assert rebuilt.run_allocator is False
        assert rebuilt.alloc.two_phase is True
        assert rebuilt.alloc.solve.gap == 1e-2
        assert options_to_wire(CompileOptions()) == {}

    def test_unknown_and_server_only_keys_rejected(self):
        with pytest.raises(ProtocolError, match="unknown option"):
            options_from_wire({"no_such_knob": 1})
        with pytest.raises(ProtocolError, match="server-side only"):
            options_from_wire({"alloc": {"solve": {"hint_dir": "/x"}}})

    def test_parse_endpoint(self):
        assert parse_endpoint("/tmp/d.sock") == ("unix", "/tmp/d.sock")
        assert parse_endpoint("d.sock") == ("unix", "d.sock")
        assert parse_endpoint("127.0.0.1:9000") == ("tcp", ("127.0.0.1", 9000))
        assert parse_endpoint("tcp:localhost:9000") == (
            "tcp", ("localhost", 9000)
        )


class TestCompileTiers:
    def test_miss_then_hot_and_payload_matches_local(self, server):
        local = compile_nova(GOOD)
        with ServeClient.connect(server.socket) as client:
            first = client.compile_source(GOOD, trace=True)
            second = client.compile_source(GOOD)
            assert first["cache"] == "miss"
            assert second["cache"] == "hot"
            # The portfolio may land on a different (equally optimal)
            # assignment than a local highs solve, so compare shape, and
            # require the hot tier to replay the miss byte-identically.
            assert first["payload"] == second["payload"]
            assert "halt" in first["payload"]
            assert (
                first["summary"]["instructions"]
                == local.flowgraph.num_instructions()
            )
            assert first["summary"]["alloc"]["status"] == "optimal"
            # The daemon narrates itself: per-request server metrics and
            # a serve.request span alongside the compile-phase spans.
            assert second["server"]["hits"] == 1
            names = [sp["name"] for sp in first["spans"]]
            assert "serve.request" in names and "allocate" in names

    def test_disk_tier_survives_hot_eviction(self, server):
        with ServeClient.connect(server.socket) as client:
            client.compile_source(GOOD)
            # Evict GOOD from the 4-entry hot LRU with distinct sources.
            for i in range(server.hot_entries + 1):
                client.compile_source(GOOD2 + f"// v{i}\n")
            again = client.compile_source(GOOD)
            assert again["cache"] == "hit"  # disk, not recompiled

    def test_structured_error_and_connection_reuse(self, server):
        with ServeClient.connect(server.socket) as client:
            body = client.compile_source(BAD_TYPE, raw=True)
            assert body["ok"] is False
            assert body["error"]["kind"] == "TypeError_"
            assert "unbound" in body["error"]["message"]
            # Same connection keeps working after a failed unit.
            assert client.compile_source(GOOD)["ok"] is True

    def test_cache_miss_defaults_to_portfolio_with_hints(self, server, tmp_path):
        with ServeClient.connect(server.socket) as client:
            client.compile_source(GOOD)
        hints = list((tmp_path / "cache" / "hints").rglob("*.json"))
        assert hints, "portfolio solve should have recorded a hint"

    def test_batch_mixes_outcomes(self, server):
        with ServeClient.connect(server.socket) as client:
            response = client.batch(
                [("a.nova", GOOD), ("bad.nova", BAD_TYPE), ("c.nova", GOOD2)]
            )
        assert response["summary"]["ok"] == 2
        assert response["summary"]["failed"] == 1
        kinds = [u.get("error", {}).get("kind") for u in response["units"]]
        assert kinds == [None, "TypeError_", None]


class TestOperations:
    def test_stats_shape(self, server):
        with ServeClient.connect(server.socket) as client:
            client.compile_source(GOOD)
            client.compile_source(GOOD)
            stats = client.stats()
        assert stats["cache"]["writes"] == 1
        assert stats["jobs"] == 1
        assert stats["hot_entries"] == 1
        assert stats["clients"]["requests"] == 2
        assert stats["clients"]["hits"] == 1
        assert stats["clients"]["p50_ms"] > 0
        assert isinstance(stats["workers"], list)

    def test_worker_crash_is_survivable(self, server):
        with ServeClient.connect(server.socket) as client:
            crashed = client.crash_worker()
            assert crashed["ok"] is False
            assert crashed["error"]["kind"] == "WorkerCrash"
            # The very next compile runs on a rebuilt pool.
            assert client.compile_source(GOOD)["ok"] is True
            assert client.stats()["pool_restarts"] == 1

    def test_drain_shutdown_finishes_inflight_compiles(self, server):
        done = {}

        def compile_slow():
            with ServeClient.connect(server.socket) as client:
                done["body"] = client.compile_source(GOOD2, raw=True)

        worker = threading.Thread(target=compile_slow)
        with ServeClient.connect(server.socket) as client:
            worker.start()
            time.sleep(0.05)  # let the compile land in flight
            response = client.shutdown()
            assert response["drained"] is True
        worker.join(timeout=30)
        # The in-flight compile completed (ok) rather than being cut off;
        # it only gets refused if it arrived after draining began.
        body = done["body"]
        assert body["ok"] or body["error"]["kind"] == "Draining"
        assert try_connect(server.socket, timeout=1.0) is None


class TestClientFallback:
    def test_try_connect_none_without_daemon(self, tmp_path):
        assert try_connect(str(tmp_path / "nothing.sock"), timeout=0.5) is None

    def test_cli_falls_back_in_process(self, tmp_path, capsys):
        source = tmp_path / "p.nova"
        source.write_text(GOOD)
        code = cli.main(
            ["--connect", str(tmp_path / "nothing.sock"), str(source)]
        )
        captured = capsys.readouterr()
        assert code == 0
        assert "compiling in-process" in captured.err
        assert captured.out == compile_nova(GOOD).physical.pretty()

    def test_cli_compiles_via_daemon(self, server, tmp_path, capsys):
        source = tmp_path / "p.nova"
        source.write_text(GOOD)
        code = cli.main(["--connect", server.socket, str(source)])
        captured = capsys.readouterr()
        assert code == 0
        assert "in-process" not in captured.err
        assert captured.out.startswith("entry:") and "halt" in captured.out
        # A second invocation is served from the hot tier, byte-identical.
        assert cli.main(["--connect", server.socket, str(source)]) == 0
        assert capsys.readouterr().out == captured.out

    def test_cli_remote_batch(self, server, tmp_path, capsys):
        good = tmp_path / "good.nova"
        good.write_text(GOOD)
        bad = tmp_path / "bad.nova"
        bad.write_text(BAD_TYPE)
        code = cli.main(["--connect", server.socket, str(good), str(bad)])
        captured = capsys.readouterr()
        assert code == 1  # one unit failed, like local batch mode
        assert "cache 0 hits / 2 misses" in captured.out
        assert "TypeError" in captured.out
