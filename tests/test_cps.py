"""CPS pipeline tests: conversion, optimization, SSU, structural invariants.

Semantic correctness is established by executing the selected (virtual)
flowgraph on the simulator and comparing with the expected values of the
program corpus.
"""

import pytest

from repro.cps import ir
from repro.cps.ssu import check_ssu
from repro.ixp.machine import hash48

from tests.helpers import compile_virtual, run_main
from tests.programs import CASES, case


@pytest.mark.parametrize("tc", CASES, ids=lambda tc: tc.name)
def test_corpus_semantics(tc):
    comp = compile_virtual(tc.source)
    results, memory = run_main(comp, tc.memory, **tc.inputs)
    if tc.expect_results is not None:
        assert results == tc.expect_results
    for space, cells in tc.expect_memory.items():
        for addr, value in cells.items():
            assert memory[space].dump_words(addr, 1) == [value], (
                f"{space}[{addr}]"
            )


def test_hash_case_matches_model():
    tc = case("hash_unit")
    comp = compile_virtual(tc.source)
    results, _ = run_main(comp, **tc.inputs)
    assert results == [(hash48(1234),)]


class TestStructuralInvariants:
    @pytest.mark.parametrize("tc", CASES, ids=lambda tc: tc.name)
    def test_unique_binders(self, tc):
        comp = compile_virtual(tc.source)
        ir.check_unique_binders(comp.ssu.term)

    @pytest.mark.parametrize("tc", CASES, ids=lambda tc: tc.name)
    def test_first_order_after_deproc(self, tc):
        comp = compile_virtual(tc.source)

        def walk(term):
            assert not isinstance(term, (ir.AppFun, ir.LetFun))
            for child in ir.subterms(term):
                walk(child)

        walk(comp.ssu.term)

    @pytest.mark.parametrize("tc", CASES, ids=lambda tc: tc.name)
    def test_ssu_property(self, tc):
        comp = compile_virtual(tc.source)
        assert check_ssu(comp.ssu.term)


class TestOptimizer:
    def test_constant_folding_collapses_constant_program(self):
        comp = compile_virtual("fun main () { (3 + 4) * 2 - 6 }")
        term = comp.ssu.term
        # The whole body should fold to halt(8).
        assert isinstance(term, ir.Halt)
        assert term.atoms == (ir.Const(8),)

    def test_algebraic_identities(self):
        comp = compile_virtual(
            "fun main (x) { ((x + 0) * 1 ^ 0) | 0 }"
        )
        assert isinstance(comp.ssu.term, ir.Halt)

    def test_constant_branch_eliminated(self):
        comp = compile_virtual(
            "fun main (x) { if (1 < 2) x + 1 else x - 1 }"
        )
        # No If should remain.
        def count_ifs(term):
            n = 1 if isinstance(term, ir.If) else 0
            return n + sum(count_ifs(c) for c in ir.subterms(term))

        assert count_ifs(comp.ssu.term) == 0

    def test_unused_unpack_fields_generate_no_code(self):
        """Paper Section 4.4: fields nobody reads are never extracted."""
        used = compile_virtual(
            """
            layout p = { a : 16, b : 16 };
            fun main (w) { let u = unpack[p]((w)); u.a + u.b }
            """
        )
        unused = compile_virtual(
            """
            layout p = { a : 16, b : 16 };
            fun main (w) { let u = unpack[p]((w)); u.a }
            """
        )
        assert ir.term_size(unused.ssu.term) < ir.term_size(used.ssu.term)

    def test_dead_memory_read_removed(self):
        comp = compile_virtual(
            "fun main (b) { let x = sram(b); 7 }"
        )
        def count_reads(term):
            n = 1 if isinstance(term, ir.MemRead) else 0
            return n + sum(count_reads(c) for c in ir.subterms(term))

        assert count_reads(comp.ssu.term) == 0

    def test_partially_dead_read_trimmed(self):
        comp = compile_virtual(
            "fun main (b) { let (x, y, z) = sram(b); y }"
        )

        def find_read(term):
            if isinstance(term, ir.MemRead):
                return term
            for child in ir.subterms(term):
                found = find_read(child)
                if found:
                    return found
            return None

        read = find_read(comp.ssu.term)
        assert read is not None
        assert len(read.vars) == 1  # leading and trailing words trimmed

    def test_memory_write_never_removed(self):
        comp = compile_virtual(
            "fun main (b) { sram(b) <- (1, 2); 0 }"
        )

        def count_writes(term):
            n = 1 if isinstance(term, ir.MemWrite) else 0
            return n + sum(count_writes(c) for c in ir.subterms(term))

        assert count_writes(comp.ssu.term) == 1

    def test_loop_invariant_params_pruned(self):
        """The conservative loop parameters conversion creates must be
        cleaned up when they never change."""
        comp = compile_virtual(
            """
            fun main (n) {
              let i = 0;
              let k = n + 1;
              while (i < n) { i := i + k - k + 1; };
              i
            }
            """
        )
        results, _ = run_main(comp, n=5)
        assert results == [(5,)]

    def test_called_once_continuations_inlined(self):
        comp = compile_virtual(
            "fun main (x) { let a = x + 1; let b = a + 1; b + 1 }"
        )
        # Straight-line code: three adds, no continuations at all.
        def count_conts(term):
            n = 1 if isinstance(term, ir.LetCont) else 0
            return n + sum(count_conts(c) for c in ir.subterms(term))

        assert count_conts(comp.ssu.term) == 0


class TestSsu:
    def test_clone_count_matches_extra_uses(self):
        comp = compile_virtual(
            """
            fun main (b) {
              let x = sram(b);
              sram(b + 4) <- (x, x);
              x
            }
            """
        )
        # x has three uses (two write positions, one halt): the two write
        # positions get clones.
        assert comp.ssu_stats.clones_inserted == 2

    def test_single_use_write_operand_not_cloned(self):
        comp = compile_virtual(
            """
            fun main (b) {
              let x = sram(b);
              sram(b + 4) <- (x + 1);
              0
            }
            """
        )
        assert comp.ssu_stats.clones_inserted == 0

    def test_clones_do_not_change_semantics(self):
        tc = case("clone_heavy")
        comp = compile_virtual(tc.source)
        results, memory = run_main(comp, tc.memory, **tc.inputs)
        assert results == tc.expect_results


class TestDeproc:
    def test_recursive_function_becomes_loop(self):
        comp = compile_virtual(
            """
            fun count (i, n) : word { if (i == n) i else count(i + 1, n) }
            fun main (n) { count(0, n) }
            """
        )
        results, _ = run_main(comp, n=7)
        assert results == [(7,)]

    def test_multiple_call_sites_inline_separately(self):
        comp = compile_virtual(
            """
            fun f (x) : word { x * 2 }
            fun main (a) { f(a) + f(a + 1) }
            """
        )
        results, _ = run_main(comp, a=10)
        assert results == [(20 + 22,)]

    def test_mutual_recursion(self):
        comp = compile_virtual(
            """
            fun even (i) : word { if (i == 0) 1 else odd(i - 1) }
            fun odd (i) : word { if (i == 0) 0 else even(i - 1) }
            fun main (n) { even(n) }
            """
        )
        assert run_main(comp, n=10)[0] == [(1,)]
        assert run_main(comp, n=7)[0] == [(0,)]


class TestBooleansAsControlFlow:
    def test_shortcircuit_and(self):
        comp = compile_virtual(
            """
            fun main (b) {
              // division guarded by the short-circuit: must not trap
              if (b != 0 && 100 / 2 > b) 1 else 0
            }
            """
        )
        assert run_main(comp, b=3)[0] == [(1,)]
        assert run_main(comp, b=0)[0] == [(0,)]

    def test_shortcircuit_or(self):
        comp = compile_virtual(
            "fun main (x) { if (x == 0 || x > 10) 1 else 0 }"
        )
        assert run_main(comp, x=0)[0] == [(1,)]
        assert run_main(comp, x=11)[0] == [(1,)]
        assert run_main(comp, x=5)[0] == [(0,)]

    def test_not(self):
        comp = compile_virtual("fun main (x) { if (!(x < 5)) 1 else 0 }")
        assert run_main(comp, x=7)[0] == [(1,)]
        assert run_main(comp, x=3)[0] == [(0,)]
