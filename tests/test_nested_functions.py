"""Nested function declarations (paper Section 3.1).

"Nova functions can be nested so that free occurrences of variables in
an inner function refer to their corresponding definitions in the outer
scope... closures do not have to be memory-allocated."
"""

import pytest

from repro.errors import TypeError_
from repro.nova.parser import parse_program
from repro.nova.typecheck import typecheck_program

from tests.helpers import compile_full, compile_virtual, run_main, run_physical


class TestTyping:
    def test_closure_over_outer_variable(self):
        typecheck_program(
            parse_program(
                """
                fun main (x) {
                  let base = x * 2;
                  fun scaled (k) : word { base + k }
                  scaled(1) + scaled(2)
                }
                """
            )
        )

    def test_nested_shadow_top_level(self):
        typecheck_program(
            parse_program(
                """
                fun helper (x) : word { x }
                fun main (x) {
                  fun helper (y) : word { y + 1 }
                  helper(x)
                }
                """
            )
        )

    def test_nested_recursion_rejected(self):
        # The name is not in scope inside its own body.
        with pytest.raises(TypeError_, match="unknown function"):
            typecheck_program(
                parse_program(
                    """
                    fun main (x) {
                      fun loop (i) : word { loop(i + 1) }
                      loop(x)
                    }
                    """
                )
            )

    def test_argument_type_checked(self):
        with pytest.raises(TypeError_, match="does not match"):
            typecheck_program(
                parse_program(
                    """
                    fun main (x) {
                      fun f (a, b) : word { a + b }
                      f(x)
                    }
                    """
                )
            )


class TestSemantics:
    def test_closure_captures_declaration_env(self):
        comp = compile_virtual(
            """
            fun main (x) {
              let base = x * 2;
              fun scaled (k) : word { base + k }
              let base = 999;   // shadows; the closure keeps the old one
              scaled(1) + scaled(2)
            }
            """
        )
        # base captured as x*2 = 10: (10+1) + (10+2) = 23.
        assert run_main(comp, x=5)[0] == [(23,)]

    def test_multiple_call_sites_inline_independently(self):
        comp = compile_virtual(
            """
            fun main (b) {
              fun fetch_sum (addr) : word {
                let (p, q) = sram(addr);
                p + q
              }
              fetch_sum(b) ^ fetch_sum(b + 2)
            }
            """
        )
        image = {"sram": [(0, [1, 2, 10, 20])]}
        assert run_main(comp, image, b=0)[0] == [((1 + 2) ^ 30,)]

    def test_nested_function_raising_outer_exception(self):
        comp = compile_virtual(
            """
            fun main (x) {
              try {
                fun guard (v) : word {
                  if (v > 10) raise TooBig (v) else v
                }
                guard(x) + guard(x + 1)
              } handle TooBig (v) { v * 4 }
            }
            """
        )
        assert run_main(comp, x=4)[0] == [(9,)]
        assert run_main(comp, x=10)[0] == [(44,)]

    def test_nested_within_loop(self):
        comp = compile_virtual(
            """
            fun main (n) {
              let acc = 0;
              let i = 0;
              while (i < n) {
                fun square_ish (v) : word { v * 4 + 1 }
                acc := acc + square_ish(i);
                i := i + 1;
              };
              acc
            }
            """
        )
        expected = sum(i * 4 + 1 for i in range(5))
        assert run_main(comp, n=5)[0] == [(expected,)]

    def test_through_full_allocation(self):
        comp = compile_full(
            """
            fun main (b) {
              let (h, l) = sram(b);
              fun mix (a, c) : word { (a << 8) | (c & 0xff) }
              sram(b + 4) <- (mix(h, l), mix(l, h));
              mix(h, l)
            }
            """
        )
        image = {"sram": [(0, [0x12, 0x34])]}
        rv, mv = run_main(comp, image, b=0)
        rp, mp = run_physical(comp, image, b=0)
        assert rv == rp == [((0x12 << 8) | 0x34,)]
        assert mv["sram"].dump_words(4, 2) == mp["sram"].dump_words(4, 2)
