"""Type checker tests: the two-layer static semantics."""

import pytest

from repro.errors import TypeError_
from repro.nova import types as ty
from repro.nova.parser import parse_program
from repro.nova.typecheck import typecheck_program


def check(source: str):
    return typecheck_program(parse_program(source))


def check_fails(source: str, fragment: str = ""):
    with pytest.raises(TypeError_) as exc:
        check(source)
    if fragment:
        assert fragment in str(exc.value)


class TestBasics:
    def test_word_arithmetic(self):
        tp = check("fun main (x) : word { x + 1 }")
        assert tp.return_type("main") == ty.WORD

    def test_bool_from_comparison(self):
        tp = check("fun main (x) : bool { x < 3 }")
        assert tp.return_type("main") == ty.BOOL

    def test_return_type_inferred(self):
        tp = check("fun main (x) { x ^ x }")
        assert tp.return_type("main") == ty.WORD

    def test_declared_return_mismatch(self):
        check_fails("fun main (x) : bool { x + 1 }")

    def test_unbound_variable(self):
        check_fails("fun main () { y }", "unbound")

    def test_bool_arithmetic_rejected(self):
        check_fails("fun main (x) { (x < 1) + 1 }")

    def test_condition_must_be_bool(self):
        check_fails("fun main (x) { if (x) 1 else 2 }")

    def test_branches_must_agree(self):
        check_fails("fun main (x) { if (x < 1) 1 else (1, 2) }")

    def test_if_without_else_is_unit(self):
        check("fun main (x) { if (x < 1) { csr(0) <- x; }; x }")

    def test_if_without_else_nonunit_rejected(self):
        check_fails("fun main (x) { let y = if (x < 1) 3; x }")

    def test_shadowing_allowed(self):
        check("fun main (x) { let x = x + 1; x }")


class TestAggregates:
    def test_tuple_projection(self):
        tp = check("fun main (x) { let t = (x, x + 1); t.1 }")
        assert tp.return_type("main") == ty.WORD

    def test_tuple_index_out_of_range(self):
        check_fails("fun main (x) { let t = (x, x); t.2 }")

    def test_record_field(self):
        check("fun main (x) { let r = [a = x, b = 2]; r.a + r.b }")

    def test_missing_record_field(self):
        check_fails("fun main (x) { let r = [a = x]; r.b }", "no field")

    def test_duplicate_record_field(self):
        check_fails("fun main (x) { [a = x, a = x] }", "duplicate")

    def test_record_destructuring(self):
        check("fun main (x) { let [a, b] = [a = x, b = 1]; a + b }")

    def test_tuple_pattern_arity(self):
        check_fails("fun main (x) { let (a, b, c) = (x, x); a }")


class TestMemory:
    def test_read_count_from_pattern(self):
        tp = check("fun main (a) { let (x, y, z) = sram(a); x + y + z }")
        assert tp.return_type("main") == ty.WORD

    def test_single_read(self):
        check("fun main (a) { let x = sram(a); x }")

    def test_sdram_odd_count_rejected(self):
        check_fails(
            "fun main (a) { let (x, y, z) = sdram(a); x }", "2, 4, 6 or 8"
        )

    def test_sram_count_limit(self):
        check_fails("fun main (a) : word { let t = sram(a, 9); 0 }")

    def test_write_tuple(self):
        check("fun main (a) { sram(a) <- (a, a, a); 0 }")

    def test_write_requires_words(self):
        check_fails("fun main (a) { sram(a) <- (a, a < 1); 0 }")

    def test_write_nested_tuple_flattens(self):
        check("fun main (a) { sram(a) <- (a, (a, a)); 0 }")

    def test_address_must_be_word(self):
        check_fails("fun main (a) { let t = sram(a < 1); 0 }")

    def test_hash_type(self):
        tp = check("fun main (x) { hash(x) }")
        assert tp.return_type("main") == ty.WORD


class TestLayouts:
    HDR = "layout h = { a : 16, b : overlay { w : 16 | p : {x : 8, y : 8} } };"

    def test_unpack_type(self):
        tp = check(
            self.HDR + "fun main (d : packed(h)) { let u = unpack[h](d); u.a }"
        )
        assert tp.return_type("main") == ty.WORD

    def test_unpack_wrong_arity(self):
        check_fails(
            self.HDR + "fun main (d : word) { let u = unpack[h]((d, d)); 0 }"
        )

    def test_overlay_access(self):
        check(
            self.HDR
            + "fun main (d : packed(h)) { let u = unpack[h](d); "
            "u.b.w + u.b.p.x }"
        )

    def test_pack_one_alternative(self):
        check(
            self.HDR
            + "fun main (v) : packed(h) { pack[h] [a = 1, b = [w = v]] }"
        )

    def test_pack_both_alternatives_rejected(self):
        check_fails(
            self.HDR
            + "fun main (v) { pack[h] [a = 1, b = [w = v, p = [x = 1, "
            "y = 2]]] }",
            "exactly one",
        )

    def test_pack_missing_field_rejected(self):
        check_fails(self.HDR + "fun main (v) { pack[h] [a = 1] }")

    def test_pack_unknown_field_rejected(self):
        check_fails(
            self.HDR + "fun main (v) { pack[h] [a = 1, b = [w = v], z = 2] }",
            "unknown",
        )

    def test_packed_type_is_word_tuple(self):
        # h is 32 bits, so packed(h) is a single word; the singleton
        # parameter tuple unwraps.
        tp = check(self.HDR + "fun main (d : packed(h)) : (word) { d }")
        assert tp.sigs["main"].param == ty.WORD
        wide = "layout w2 = { a : 32, b : 32 };"
        tp2 = check(wide + "fun main (d : packed(w2)) { d.0 }")
        assert tp2.sigs["main"].param == ty.Tuple((ty.WORD, ty.WORD))


class TestFunctionsAndRecursion:
    def test_call_known_function(self):
        check("fun f (x) : word { x + 1 } fun main (y) { f(y) }")

    def test_forward_call_needs_annotation(self):
        check_fails(
            "fun main (y) { f(y) } fun f (x) { x }",
            "return type",
        )

    def test_forward_call_with_annotation(self):
        check("fun main (y) { f(y) } fun f (x) : word { x }")

    def test_argument_mismatch(self):
        check_fails(
            "fun f (x, y) : word { x } fun main (z) { f(z) }",
            "does not match",
        )

    def test_record_argument(self):
        check("fun g [a, b] : word { a + b } fun main (x) { g[a = x, b = 1] }")

    def test_tail_recursion_allowed(self):
        check(
            """
            fun loop (i, acc) : word {
              if (i == 0) acc else loop(i - 1, acc + i)
            }
            fun main (n) { loop(n, 0) }
            """
        )

    def test_nontail_recursion_rejected(self):
        check_fails(
            """
            fun bad (i) : word {
              if (i == 0) 0 else bad(i - 1) + 1
            }
            fun main (n) { bad(n) }
            """,
            "tail",
        )

    def test_mutual_tail_recursion_allowed(self):
        check(
            """
            fun even (i) : word { if (i == 0) 1 else odd(i - 1) }
            fun odd (i) : word { if (i == 0) 0 else even(i - 1) }
            fun main (n) { even(n) }
            """
        )

    def test_mutual_nontail_rejected(self):
        check_fails(
            """
            fun a (i) : word { if (i == 0) 0 else b(i - 1) ^ 1 }
            fun b (i) : word { if (i == 0) 1 else a(i - 1) }
            fun main (n) { a(n) }
            """,
            "tail",
        )


class TestExceptions:
    def test_try_handle(self):
        check(
            """
            fun main (x) : word {
              try { if (x > 9) raise Big (x) else x }
              handle Big (v) { v - 1 }
            }
            """
        )

    def test_raise_argument_mismatch(self):
        check_fails(
            """
            fun main (x) {
              try { raise E (x, x) } handle E (v) { v }
            }
            """
        )

    def test_handler_types_must_join(self):
        check_fails(
            """
            fun main (x) {
              try { x } handle E () { (x, x) }
            }
            """
        )

    def test_exception_passed_to_function(self):
        check(
            """
            fun g [x1 : exn([b : word, c : word]), n : word] : word {
              if (n > 3) raise x1 [b = n, c = 1] else n
            }
            fun main (x) : word {
              try { g[x1 = X1, n = x] } handle X1 [b, c] { b + c }
            }
            """
        )

    def test_raise_outside_scope_rejected(self):
        check_fails("fun main (x) { raise E (x) }", "unbound")

    def test_duplicate_handlers_rejected(self):
        check_fails(
            "fun main (x) { try { x } handle E () { 0 } handle E () { 1 } }",
            "duplicate",
        )

    def test_assignment_into_try_rejected(self):
        check_fails(
            """
            fun main (x) {
              let s = 0;
              try { s := 1; x } handle E () { s }
            }
            """,
            "path-dependent",
        )


class TestAssignments:
    def test_assign_same_type(self):
        check("fun main (x) { let i = 0; i := i + 1; i }")

    def test_assign_type_mismatch(self):
        check_fails("fun main (x) { let i = 0; i := (1, 2); i }")

    def test_assign_unbound(self):
        check_fails("fun main (x) { y := 1; x }", "unbound")

    def test_while_loop(self):
        check("fun main (x) { let i = 0; while (i < x) { i := i + 1; }; i }")

    def test_while_condition_must_be_bool(self):
        check_fails("fun main (x) { while (x) { }; 0 }")
