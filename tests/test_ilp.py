"""ILP modeling layer and solver tests (the AMPL/CPLEX substitute)."""

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ilp.model import LinExpr, Model
from repro.ilp.solve import SolveOptions, solve_model, solve_root_relaxation


def knapsack_model(values, weights, capacity):
    m = Model("knapsack")
    x = m.family("x")
    m.add({x[(i,)]: w for i, w in enumerate(weights)}, "<=", capacity)
    # milp minimizes; maximize value = minimize -value
    m.minimize({x[(i,)]: -v for i, v in enumerate(values)})
    return m, x


class TestModel:
    def test_family_indexing(self):
        m = Model()
        before = m.family("Before")
        a = before[("p1", "v", "A")]
        b = before[("p1", "v", "B")]
        assert a != b
        assert before[("p1", "v", "A")] == a  # idempotent
        assert len(before) == 2
        assert m.name_of(a) == "Before[p1,v,A]"

    def test_families_are_namespaced(self):
        m = Model()
        assert m.family("X")[(1,)] != m.family("Y")[(1,)]

    def test_linexpr_accumulates(self):
        e = LinExpr()
        e.add(0, 1.0).add(0, 2.0).add(1, -1.0)
        assert e.coeffs == {0: 3.0, 1: -1.0}

    def test_bad_sense_rejected(self):
        m = Model()
        x = m.family("x")[(0,)]
        with pytest.raises(ValueError):
            m.add({x: 1.0}, "<", 1)

    def test_standard_form_shapes(self):
        m = Model()
        x = m.family("x")
        m.add({x[(0,)]: 1.0, x[(1,)]: 2.0}, "<=", 3)
        m.add({x[(0,)]: 1.0}, "==", 1)
        m.add({x[(1,)]: 1.0}, ">=", 0)
        c, matrix, lb, ub = m.standard_form()
        assert matrix.shape == (3, 2)
        assert ub[0] == 3 and lb[0] == -np.inf
        assert lb[1] == ub[1] == 1
        assert lb[2] == 0 and ub[2] == np.inf

    def test_stats(self):
        m = Model()
        x = m.family("x")
        m.add_sum_eq([x[(0,)], x[(1,)]], 1)
        m.minimize({x[(0,)]: 2.0})
        assert m.stats() == {
            "variables": 2,
            "constraints": 1,
            "objective_terms": 1,
        }


class TestSolvers:
    @pytest.mark.parametrize("engine", ["highs", "bnb"])
    def test_trivial(self, engine):
        m = Model()
        x = m.family("x")
        m.add_sum_eq([x[(0,)], x[(1,)]], 1)
        m.minimize({x[(0,)]: 1.0, x[(1,)]: 3.0})
        sol = solve_model(m, SolveOptions(engine=engine))
        assert sol.status == "optimal"
        assert sol.is_one(x.get((0,)))
        assert not sol.is_one(x.get((1,)))
        assert sol.objective == pytest.approx(1.0)

    @pytest.mark.parametrize("engine", ["highs", "bnb"])
    def test_knapsack(self, engine):
        values = [10, 13, 7, 8, 2]
        weights = [5, 6, 3, 4, 1]
        m, x = knapsack_model(values, weights, capacity=10)
        sol = solve_model(m, SolveOptions(engine=engine))
        assert sol.status == "optimal"
        chosen = [i for i in range(5) if sol.is_one(x.get((i,)))]
        assert sum(weights[i] for i in chosen) <= 10
        # Best bundle: values {13, 7, 2} with weights {6, 3, 1} = 22.
        assert -sol.objective == pytest.approx(22)

    @pytest.mark.parametrize("engine", ["highs", "bnb"])
    def test_infeasible(self, engine):
        m = Model()
        x = m.family("x")[(0,)]
        m.add({x: 1.0}, ">=", 2)  # binary cannot reach 2
        sol = solve_model(m, SolveOptions(engine=engine))
        assert sol.status == "infeasible"
        assert math.isinf(sol.objective)

    def test_empty_model(self):
        sol = solve_model(Model())
        assert sol.status == "optimal"
        assert sol.objective == 0.0

    def test_root_relaxation_is_lower_bound(self):
        values = [10, 13, 7, 8, 2]
        weights = [5, 6, 3, 4, 1]
        m, _ = knapsack_model(values, weights, capacity=10)
        relaxed, seconds, _ = solve_root_relaxation(m)
        integer = solve_model(m)
        assert relaxed <= integer.objective + 1e-6
        assert seconds >= 0

    def test_bnb_counts_nodes(self):
        values = [3, 5, 2, 7, 4, 6]
        weights = [2, 4, 1, 5, 3, 4]
        m, _ = knapsack_model(values, weights, capacity=8)
        sol = solve_model(m, SolveOptions(engine="bnb"))
        assert sol.status == "optimal"
        assert sol.nodes >= 1

    @given(
        st.lists(
            st.tuples(st.integers(1, 20), st.integers(1, 10)),
            min_size=1,
            max_size=7,
        ),
        st.integers(1, 25),
    )
    @settings(max_examples=25, deadline=None)
    def test_engines_agree_property(self, items, capacity):
        """Our branch-and-bound matches HiGHS on random knapsacks."""
        values = [v for v, _ in items]
        weights = [w for _, w in items]
        m1, _ = knapsack_model(values, weights, capacity)
        m2, _ = knapsack_model(values, weights, capacity)
        a = solve_model(m1, SolveOptions(engine="highs"))
        b = solve_model(m2, SolveOptions(engine="bnb"))
        assert a.status == b.status == "optimal"
        assert a.objective == pytest.approx(b.objective, abs=1e-6)


class TestSolutionHelpers:
    def test_ones(self):
        m = Model()
        x = m.family("x")
        m.add_sum_eq([x[(i,)] for i in range(3)], 2)
        m.minimize({x[(0,)]: 5.0})
        sol = solve_model(m)
        assert sorted(sol.ones(x)) == [(1,), (2,)]

    def test_is_one_handles_none(self):
        m = Model()
        x = m.family("x")
        m.add_sum_eq([x[(0,)]], 1)
        sol = solve_model(m)
        assert not sol.is_one(None)
        assert not sol.is_one(x.get((99,)))
