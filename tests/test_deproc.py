"""De-proceduralization internals (paper Section 4.3)."""

import pytest

from repro.cps import ir
from repro.cps.convert import cps_convert
from repro.cps.deproc import MAX_INSTANCES, deproceduralize
from repro.errors import CpsError
from repro.nova.parser import parse_program
from repro.nova.typecheck import typecheck_program

from tests.helpers import compile_virtual, run_main


def first_order(source):
    return deproceduralize(
        cps_convert(typecheck_program(parse_program(source)))
    )


def count(term, predicate):
    n = 1 if predicate(term) else 0
    return n + sum(count(c, predicate) for c in ir.subterms(term))


class TestInstantiation:
    def test_tail_recursion_single_instance(self):
        """A self tail call hits the memo: exactly one instantiation."""
        fo = first_order(
            """
            fun countdown (i) : word { if (i == 0) 0 else countdown(i - 1) }
            fun main (n) { countdown(n) }
            """
        )
        instances = count(
            fo.term,
            lambda t: isinstance(t, ir.LetCont)
            and t.name.startswith("fn_countdown"),
        )
        assert instances == 1

    def test_two_call_sites_two_instances(self):
        fo = first_order(
            """
            fun f (x) : word { x + 1 }
            fun main (a) { f(a) + f(a + 2) }
            """
        )
        instances = count(
            fo.term,
            lambda t: isinstance(t, ir.LetCont) and t.name.startswith("fn_f"),
        )
        assert instances == 2

    def test_mutual_recursion_one_instance_each(self):
        fo = first_order(
            """
            fun even (i) : word { if (i == 0) 1 else odd(i - 1) }
            fun odd (i) : word { if (i == 0) 0 else even(i - 1) }
            fun main (n) { even(n) }
            """
        )
        evens = count(
            fo.term,
            lambda t: isinstance(t, ir.LetCont) and t.name.startswith("fn_even"),
        )
        odds = count(
            fo.term,
            lambda t: isinstance(t, ir.LetCont) and t.name.startswith("fn_odd"),
        )
        assert evens == 1 and odds == 1

    def test_no_function_constructs_remain(self):
        fo = first_order(
            """
            fun g (x) : word { x * 2 }
            fun f (x) : word { g(x) + 1 }
            fun main (a) { f(g(a)) }
            """
        )
        assert count(fo.term, lambda t: isinstance(t, (ir.AppFun, ir.LetFun))) == 0

    def test_unique_binders_after_inlining(self):
        fo = first_order(
            """
            fun f (x) : word { let t = x + 1; t * 2 }
            fun main (a) { f(a) ^ f(a + 1) ^ f(a + 2) }
            """
        )
        ir.check_unique_binders(fo.term)

    def test_deep_chain_inlines(self):
        # f1 -> f2 -> f3 -> f4, each called twice: 2^4 leaf instances.
        source = "\n".join(
            f"fun f{i} (x) : word {{ f{i+1}(x) + f{i+1}(x + 1) }}"
            for i in range(1, 4)
        )
        source += "\nfun f4 (x) : word { x * 2 }\n"
        source += "fun main (a) { f1(a) }"
        comp = compile_virtual(source)
        # semantic check against the obvious Python mirror
        def f4(x):
            return (x * 2) & 0xFFFFFFFF

        def chain(i, x):
            if i == 4:
                return f4(x)
            return (chain(i + 1, x) + chain(i + 1, x + 1)) & 0xFFFFFFFF

        assert run_main(comp, a=10)[0] == [(chain(1, 10),)]


class TestLimits:
    def test_instance_cap_exists(self):
        assert MAX_INSTANCES >= 1000

    def test_entry_with_exception_params_rejected(self):
        program = typecheck_program(
            parse_program(
                """
                fun main [e : exn(word), x : word] {
                  if (x > 1) raise e (x) else x
                }
                """
            )
        )
        cp = cps_convert(program)
        with pytest.raises(CpsError, match="exception"):
            deproceduralize(cp)
