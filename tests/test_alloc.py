"""End-to-end allocation tests: the ILP back end (paper Sections 5-10).

For every corpus program, the allocated physical code must execute on
the datapath-checking simulator and agree with the virtual-register
semantics — this exercises the whole stack: model, solver, transfer
coloring, A/B coloring with coalescing, decode, spills.
"""

import pytest

from repro.alloc.verify import check_equivalence
from repro.ixp.banks import Bank

from tests.helpers import compile_full, run_main, run_physical
from tests.programs import CASES, case

# ILP solves take a couple hundred ms each; run the full corpus.
CORPUS = [tc for tc in CASES]


@pytest.mark.parametrize("tc", CORPUS, ids=lambda tc: tc.name)
def test_allocated_code_matches_virtual(tc):
    comp = compile_full(tc.source)
    assert comp.alloc is not None
    assert comp.alloc.status == "optimal"
    virtual_results, virtual_mem = run_main(comp, tc.memory, **tc.inputs)
    physical_results, physical_mem = run_physical(comp, tc.memory, **tc.inputs)
    assert physical_results == virtual_results
    spill_lo = comp.alloc.model.options and 0
    del spill_lo
    spill_slots = set(comp.alloc.decoded.spill_slots.values())
    for space in ("sram", "sdram", "scratch"):
        words_v = {a: w for a, w in virtual_mem[space].words.items() if w}
        words_p = {
            a: w
            for a, w in physical_mem[space].words.items()
            if w and not (space == "scratch" and a in spill_slots)
        }
        assert words_v == words_p, space


def test_check_equivalence_helper():
    tc = case("memory_roundtrip")
    comp = compile_full(tc.source)
    report = check_equivalence(
        comp.flowgraph,
        comp.physical,
        comp.make_inputs(**tc.inputs),
        comp.alloc.decoded.input_locations,
        memory_image=tc.memory,
        spill_region=(960, 64),
    )
    assert report.ok, report.detail


class TestPaperScenarios:
    def test_fragmentation_eviction(self):
        """Paper Section 2.1: a read fills the bank; dead values leave
        holes; a later aggregate needs contiguous space, so the solver
        must evict/arrange registers so both reads fit."""
        source = """
        fun main (a1, a2) {
          let (u, v, w, x, p, q, r, s) = sram(a1);
          // v and x die immediately; u, w live across the second read
          let keep = u + w + p + q + r + s + v + x;
          let (y, z, y2, z2, y3, z3) = sram(a2);
          keep + y + z + y2 + z2 + y3 + z3
        }
        """
        comp = compile_full(source)
        assert comp.alloc.spills == 0
        tcv, _ = run_main(comp, {"sram": [(0, list(range(1, 9))), (16, list(range(9, 15)))]}, a1=0, a2=16)
        tcp, _ = run_physical(comp, {"sram": [(0, list(range(1, 9))), (16, list(range(9, 15)))]}, a1=0, a2=16)
        assert tcv == tcp == [(sum(range(1, 15)),)]

    def test_conflicting_write_positions_need_clones(self):
        """Paper Section 2.1: x at different positions in two stores —
        without SSU/cloning the colorings would conflict."""
        source = """
        fun main (b, u, v, w, a, c) {
          let x = u ^ v;
          sram(b) <- (u, v, x, w);
          sram(b + 8) <- (a, x, w, c);
          x
        }
        """
        comp = compile_full(source)
        assert comp.ssu_stats.clones_inserted >= 2
        rv, mv = run_main(comp, b=0, u=1, v=2, w=3, a=4, c=5)
        rp, mp = run_physical(comp, b=0, u=1, v=2, w=3, a=4, c=5)
        assert rv == rp == [(3,)]
        assert mv["sram"].dump_words(0, 4) == [1, 2, 3, 3]
        assert mv["sram"].dump_words(8, 4) == [4, 3, 3, 5]
        assert mp["sram"].dump_words(8, 4) == [4, 3, 3, 5]

    def test_hash_same_register(self):
        """SameReg: hash src (S) and dst (L) share a register number."""
        source = "fun main (x) { hash(x) + hash(x + 1) }"
        comp = compile_full(source)
        rv, _ = run_main(comp, x=7)
        rp, _ = run_physical(comp, x=7)
        assert rv == rp
        # Check the color constraint held.
        colors = comp.alloc.alloc.colors
        same_reg = comp.alloc.model.sets.same_reg
        assert same_reg
        for _, _, d, s in same_reg:
            assert colors[(d, Bank.L)] == colors[(s, Bank.S)]

    def test_aggregate_colors_adjacent(self):
        source = """
        fun main (b) {
          let (p, q, r, s) = sram(b);
          p + q + r + s
        }
        """
        comp = compile_full(source)
        sets = comp.alloc.model.sets
        colors = comp.alloc.alloc.colors
        ((_, _, names),) = sets.def_l
        values = [colors[(v, Bank.L)] for v in names]
        assert values == list(range(values[0], values[0] + 4))

    def test_spill_forced_under_pressure(self):
        """More than 31 simultaneously-live values cannot fit in A+B;
        the model must spill to scratch — and the code still works.

        Spill-heavy MILPs are highly symmetric (any of the candidates
        can be the victim), so this test accepts the first incumbent
        within a coarse gap: correctness of the decoded code is what is
        asserted, not optimality.
        """
        n = 33
        reads = "\n".join(
            f"  let x{i} = sram(b + {i});" for i in range(n)
        )
        uses = " + ".join(f"x{i}" for i in range(n))
        source = f"fun main (b) {{\n{reads}\n  hash(b); {uses}\n}}"
        comp = compile_full(source, time_limit=90, gap=0.5)
        assert comp.alloc.status in ("optimal", "timeout")
        image = {"sram": [(0, list(range(1, n + 1)))]}
        rv, _ = run_main(comp, image, b=0)
        rp, _ = run_physical(comp, image, b=0)
        assert rv == rp == [(sum(range(1, n + 1)),)]

    def test_zero_spills_for_normal_pressure(self):
        tc = case("memory_roundtrip")
        comp = compile_full(tc.source)
        assert comp.alloc.spills == 0

    def test_two_phase_matches_one_shot(self):
        tc = case("clone_heavy")
        one = compile_full(tc.source)
        two = compile_full(tc.source, two_phase=True)
        assert two.alloc.status == "optimal"
        assert two.alloc.spills == one.alloc.spills == 0
        rv, _ = run_physical(one, tc.memory, **tc.inputs)
        rp, _ = run_physical(two, tc.memory, **tc.inputs)
        assert rv == rp == tc.expect_results

    def test_clones_share_register_at_clone_point(self):
        tc = case("clone_heavy")
        comp = compile_full(tc.source)
        assert comp.alloc.decoded.stats.clones_dropped >= 1
