"""Allocation fuzzing: random programs through the full ILP pipeline.

Hypothesis generates small Nova programs mixing arithmetic, memory
aggregates, branches and loops; each is allocated by the ILP and then
checked three ways:

1. the solution replay verifier (constraint families re-derived),
2. the physical-mode simulator (datapath legality traps),
3. bit-exact equivalence with the virtual-register execution.

Any model, decoder or coloring bug that slips through unit tests has to
survive all three here on arbitrary programs to go unnoticed.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.alloc.verify import check_solution

from tests.helpers import compile_full, run_main, run_physical

MASK = 0xFFFFFFFF


@st.composite
def random_program(draw):
    """A random straight-line-with-structure Nova main function."""
    lines = []
    values = ["x", "y"]  # word-typed names in scope
    n_stmts = draw(st.integers(1, 6))
    reads = 0
    writes = 0
    for i in range(n_stmts):
        kind = draw(
            st.sampled_from(["arith", "read", "write", "if", "loop"])
        )
        if kind == "arith":
            a = draw(st.sampled_from(values))
            b = draw(st.sampled_from(values))
            op = draw(st.sampled_from(["+", "^", "&", "|"]))
            lines.append(f"let t{i} = {a} {op} {b};")
            values.append(f"t{i}")
        elif kind == "read" and reads < 3:
            count = draw(st.integers(1, 4))
            names = [f"m{i}_{j}" for j in range(count)]
            lines.append(
                f"let ({', '.join(names)}) = sram({16 * reads}, {count});"
                if count > 1
                else f"let {names[0]} = sram({16 * reads});"
            )
            values.extend(names)
            reads += 1
        elif kind == "write" and writes < 2:
            count = draw(st.integers(1, 3))
            operands = [draw(st.sampled_from(values)) for _ in range(count)]
            lines.append(f"sram({64 + 8 * writes}) <- ({', '.join(operands)});")
            writes += 1
        elif kind == "if":
            a = draw(st.sampled_from(values))
            t = draw(st.sampled_from(values))
            e = draw(st.sampled_from(values))
            lines.append(f"let t{i} = if ({a} < 100) {t} else {e} + 1;")
            values.append(f"t{i}")
        elif kind == "loop":
            a = draw(st.sampled_from(values))
            n = draw(st.integers(1, 3))
            lines.append(
                f"let acc{i} = {a};"
                f" let i{i} = 0;"
                f" while (i{i} < {n}) {{"
                f" acc{i} := acc{i} + i{i}; i{i} := i{i} + 1; }};"
            )
            values.append(f"acc{i}")
    result = " ^ ".join(values[-3:]) if len(values) >= 3 else values[-1]
    body = "\n  ".join(lines)
    return f"fun main (x, y) {{\n  {body}\n  {result}\n}}"


@given(random_program(), st.integers(0, MASK), st.integers(0, MASK))
@settings(max_examples=12, deadline=None)
def test_fuzz_allocation_triple_checked(source, x, y):
    comp = compile_full(source, time_limit=60, gap=0.05)
    assert comp.alloc is not None
    assert comp.alloc.status in ("optimal", "timeout")

    # 1. Constraint replay.
    report = check_solution(comp.alloc.model, comp.alloc.alloc)
    assert report.ok, (source, report.violations)

    # 2 + 3. Physical execution (datapath checks) equals virtual.
    image = {"sram": [(0, list(range(1, 64)))]}
    rv, mv = run_main(comp, image, x=x, y=y)
    rp, mp = run_physical(comp, image, x=x, y=y)
    assert rv == rp, source
    spill_slots = set(comp.alloc.decoded.spill_slots.values())
    for space in ("sram", "scratch"):
        words_v = {a: w for a, w in mv[space].words.items() if w}
        words_p = {
            a: w
            for a, w in mp[space].words.items()
            if w and not (space == "scratch" and a in spill_slots)
        }
        assert words_v == words_p, source
