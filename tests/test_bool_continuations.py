"""The two-continuation convention for bool-returning functions
(paper Section 4.1: "functions returning a bool take two return
continuations instead of one").
"""

from repro.cps import ir
from repro.nova.parser import parse_program
from repro.nova.typecheck import typecheck_program
from repro.cps.convert import cps_convert

from tests.helpers import compile_full, compile_virtual, run_main, run_physical

SOURCE = """
fun is_tcp (proto) : bool { proto == 6 }
fun in_range (x, lo, hi) : bool { lo <= x && x < hi }
fun main (proto, port) {
  if (is_tcp(proto) && in_range(port, 1024, 4096)) 1
  else { let b = is_tcp(proto); if (b) 2 else 3 }
}
"""


def count_nodes(term, predicate):
    n = 1 if predicate(term) else 0
    return n + sum(count_nodes(c, predicate) for c in ir.subterms(term))


class TestConvention:
    def test_bool_functions_get_two_continuations(self):
        tp = typecheck_program(parse_program(SOURCE))
        cp = cps_convert(tp)
        assert cp.bool_returns == {"is_tcp", "in_range"}
        assert len(cp.funs["is_tcp"].conts) == 2
        assert len(cp.funs["in_range"].conts) == 2
        assert len(cp.funs["main"].conts) == 1

    def test_entry_never_two_continuation(self):
        tp = typecheck_program(
            parse_program("fun main (x) : bool { x == 1 }")
        )
        cp = cps_convert(tp)
        assert cp.bool_returns == frozenset()
        assert len(cp.funs["main"].conts) == 1

    def test_condition_position_never_materializes(self):
        """A bool call inside `if` compiles to pure branching: the only
        0/1 join left is the deliberate value-position `let b = ...`."""
        comp = compile_virtual(SOURCE)
        joins = count_nodes(
            comp.ssu.term,
            lambda t: isinstance(t, ir.LetCont)
            and len(t.params) == 1
            and t.params[0].startswith("b"),
        )
        assert joins == 1

    def test_semantics(self):
        comp = compile_virtual(SOURCE)
        assert run_main(comp, proto=6, port=2000)[0] == [(1,)]
        assert run_main(comp, proto=6, port=9)[0] == [(2,)]
        assert run_main(comp, proto=17, port=2000)[0] == [(3,)]

    def test_value_position_materializes_zero_one(self):
        comp = compile_virtual(
            """
            fun odd (x) : bool { (x & 1) == 1 }
            fun main (x) {
              let a = odd(x);
              let b = odd(x + 1);
              if (a == b) 7 else if (a) 1 else 0
            }
            """
        )
        assert run_main(comp, x=3)[0] == [(1,)]
        assert run_main(comp, x=2)[0] == [(0,)]

    def test_recursive_bool_function_becomes_loop(self):
        comp = compile_virtual(
            """
            fun all_zero (b, n) : bool {
              if (n == 0) true
              else if (sram(b) != 0) false
              else all_zero(b + 1, n - 1)
            }
            fun main (b, n) { if (all_zero(b, n)) 1 else 0 }
            """
        )
        image = {"sram": [(0, [0, 0, 0, 0])]}
        assert run_main(comp, image, b=0, n=4)[0] == [(1,)]
        image2 = {"sram": [(0, [0, 0, 9, 0])]}
        assert run_main(comp, image2, b=0, n=4)[0] == [(0,)]

    def test_bool_function_with_exceptions(self):
        comp = compile_virtual(
            """
            fun check [err : exn(word), v : word] : bool {
              if (v > 100) raise err (v) else v % 2 == 0
            }
            fun main (x) {
              try {
                if (check[err = Bad, v = x]) 1 else 2
              } handle Bad (v) { v }
            }
            """
        )
        assert run_main(comp, x=4)[0] == [(1,)]
        assert run_main(comp, x=5)[0] == [(2,)]
        assert run_main(comp, x=150)[0] == [(150,)]

    def test_through_full_allocation(self):
        comp = compile_full(SOURCE)
        for proto, port, expect in ((6, 2000, 1), (6, 9, 2), (17, 9, 3)):
            rv, _ = run_main(comp, proto=proto, port=port)
            rp, _ = run_physical(comp, proto=proto, port=port)
            assert rv == rp == [(expect,)]
