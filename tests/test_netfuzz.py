"""The streaming-scenario fuzzer (``novac fuzz --net``).

The acceptance bar for the net oracle mirrors the compiler oracle's:
it must stay silent on the healthy runtime, catch a deliberately broken
dispatch stage, and shrink the witness trace to a handful of events.
"""

import json
import pathlib

import pytest

from repro.cli import main
from repro.fuzz.inject import broken_steering
from repro.fuzz.netgen import (
    build_scenario_app,
    check_scenario,
    gen_scenario,
    run_net_campaign,
    shrink_scenario,
    trace_from_json,
    trace_to_json,
    validation_probes,
)
from repro.trace import Tracer


@pytest.fixture(scope="module")
def scenario6():
    # Seed 6 draws a multi-engine, steer="flow" topology whose flow
    # pool spans packets with differing seq % engines — the smallest
    # seed in the default window that exposes broken_steering.
    scenario = gen_scenario(6)
    assert scenario.config.steer == "flow" and scenario.config.engines > 1
    return scenario


def test_scenario_generation_is_deterministic():
    a = gen_scenario(5)
    b = gen_scenario(5)
    assert a.program.source == b.program.source
    assert a.config == b.config
    assert a.flows == b.flows
    assert gen_scenario(7).config != a.config or (
        gen_scenario(7).program.source != a.program.source
    )


def test_clean_scenarios_pass_every_invariant():
    for seed in range(4):
        report = check_scenario(gen_scenario(seed))
        assert report.ok, f"seed {seed}: {report.violations or report.invalid}"
        assert report.trace  # a captured, replayable trace comes back


def test_validation_probes_pass_on_fixed_runtime():
    assert validation_probes() == []


def test_trace_json_roundtrip():
    scenario = gen_scenario(1)
    report = check_scenario(scenario)
    assert report.trace
    rows = trace_to_json(report.trace)
    assert trace_from_json(rows) == report.trace
    assert trace_from_json(json.loads(json.dumps(rows))) == report.trace


def test_broken_steering_is_caught_and_shrunk(scenario6):
    """Acceptance: the oracle flags a dispatch stage that ignores the
    flow key, and the two-axis shrinker reduces the witness trace to
    <= 10 events (the healthy runtime then re-passes)."""
    app = build_scenario_app(scenario6)
    with broken_steering():
        report = check_scenario(scenario6, app=app)
        assert not report.ok
        assert any("split across engines" in v for v in report.violations)
        source, trace, stats = shrink_scenario(
            scenario6, app, report.trace
        )
    assert len(trace) <= 10
    assert stats["events_after"] == len(trace)
    assert stats["events_before"] >= stats["events_after"]
    assert stats["predicate_calls"] <= 160
    # with the patch gone the same scenario is healthy again
    assert check_scenario(scenario6, app=app).ok


def test_campaign_writes_witness_artifact(tmp_path, scenario6):
    with broken_steering():
        result = run_net_campaign(
            seed=6, count=1, artifact_dir=str(tmp_path), shrink_budget=120
        )
    assert len(result.failed) == 1
    assert result.artifacts
    directory = pathlib.Path(result.artifacts[0].directory)
    assert (directory / "program.nova").exists()
    assert (directory / "minimized.nova").exists()
    payload = json.loads((directory / "report.json").read_text())
    assert payload["seed"] == 6
    assert payload["violations"]
    assert payload["topology"]["engines"] == scenario6.config.engines
    minimized = trace_from_json(
        json.loads((directory / "minimized-trace.json").read_text())
    )
    assert 0 < len(minimized) <= 10
    full = trace_from_json(
        json.loads((directory / "trace.json").read_text())
    )
    assert len(full) >= len(minimized)


def test_small_campaign_all_ok(tmp_path):
    tracer = Tracer()
    result = run_net_campaign(
        seed=0, count=3, artifact_dir=str(tmp_path), tracer=tracer
    )
    assert len(result.units) == 3
    assert all(unit.ok for unit in result.units)
    assert result.artifacts == [] and result.probe_failures == []
    summary = result.summary()
    assert summary["ok"] == 3 and summary["violating"] == 0
    names = [span.name for span in tracer.spans]
    assert "netfuzz" in names and names.count("netfuzz.unit") == 3


def test_cli_net_fuzz_exit_codes(tmp_path, capsys):
    code = main(
        [
            "fuzz",
            "--net",
            "--seed",
            "0",
            "--count",
            "2",
            "--artifact-dir",
            str(tmp_path),
        ]
    )
    out = capsys.readouterr().out
    assert code == 0
    assert "netfuzz: 2/2 ok" in out


def test_cli_net_fuzz_rejects_bad_packet_budget(capsys):
    code = main(["fuzz", "--net", "--max-packets", "1"])
    assert code == 2
    assert "max-packets" in capsys.readouterr().err


def test_cli_net_fuzz_corpus_flags(tmp_path, capsys):
    corpus = tmp_path / "corpus"
    code = main(
        [
            "fuzz",
            "--net",
            "--seed",
            "0",
            "--count",
            "3",
            "--artifact-dir",
            str(tmp_path / "art"),
            "--corpus-dir",
            str(corpus),
            "--mutate-ratio",
            "0.5",
        ]
    )
    out = capsys.readouterr().out
    assert code == 0
    assert "corpus:" in out and "retained" in out
    assert list(corpus.glob("entry-*.json"))


def test_cli_net_fuzz_rejects_bad_mutate_ratio(capsys):
    code = main(["fuzz", "--net", "--mutate-ratio", "1.5"])
    assert code == 2
    assert "mutate-ratio" in capsys.readouterr().err


def test_corpus_probe_beats_fresh_sampling(tmp_path):
    """Acceptance: seeded with a near-miss entry, the real mutation
    engine exposes ``broken_steering`` within the budget and ddmin
    shrinks the winning mutant to <= 10 events, while fresh generator
    sampling over the pinned window finds nothing at the same budget."""
    from repro.fuzz.corpus import CorpusStore
    from repro.fuzz.inject import corpus_probe

    outcome = corpus_probe(corpus_dir=str(tmp_path))
    assert outcome["corpus_found_in"] is not None
    assert outcome["corpus_found_in"] <= 12
    assert outcome["fresh_found_in"] is None
    assert outcome["witness_events"] <= 10
    assert len(outcome["witness"]) == outcome["witness_events"]
    # the near-miss went through a real store and is itself replayable
    store = CorpusStore(tmp_path)
    assert len(store) == 1
    (entry,) = store.entries.values()
    assert entry.origin == "probe"
    assert store.verify() == []
