"""The example scripts must run end to end (their asserts self-check)."""

import pathlib
import subprocess
import sys

import pytest

EXAMPLES = pathlib.Path(__file__).resolve().parent.parent / "examples"


def run_example(name: str, timeout: int = 300) -> str:
    result = subprocess.run(
        [sys.executable, str(EXAMPLES / name)],
        capture_output=True,
        text=True,
        timeout=timeout,
    )
    assert result.returncode == 0, result.stderr[-2000:]
    return result.stdout


def test_quickstart():
    out = run_example("quickstart.py")
    assert "IPv4 packets counted: 3" in out
    assert "ILP allocation" in out


def test_layout_alignment():
    out = run_example("layout_alignment.py")
    assert out.count("(ok)") == 3


def test_forwarding_loop():
    out = run_example("forwarding_loop.py")
    assert "8 packets forwarded" in out
    assert "checksum valid" in out
    assert "INVALID" not in out


@pytest.mark.slow
def test_packet_pipeline():
    out = run_example("packet_pipeline.py")
    assert "not IPv6 -> slow path" in out
    assert "MISMATCH" not in out


@pytest.mark.slow
def test_crypto_gateway():
    out = run_example("crypto_gateway.py", timeout=600)
    assert "ciphertext verified against the reference" in out
    assert out.count("verified") >= 2
