"""A/B coloring unit and property tests (optimistic coalescing)."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.alloc.abcolor import SPARE_A, assign_ab_registers
from repro.ixp import isa
from repro.ixp.banks import Bank
from repro.ixp.flowgraph import Block, FlowGraph


def T(name):
    return isa.Temp(name)


def simple_graph(n_instrs=1):
    instrs = [isa.Immed(T(f"t{i}"), i) for i in range(n_instrs)]
    instrs.append(isa.HaltInstr(()))
    return FlowGraph("entry", {"entry": Block("entry", instrs)})


class TestColoring:
    def test_disjoint_ranges_may_share(self):
        graph = simple_graph(2)
        banks_before = {(1, "x"): Bank.A, (3, "y"): Bank.A}
        banks_after = {}
        ab = assign_ab_registers(graph, banks_before, banks_after, {})
        # Non-overlapping residencies: any valid assignment works.
        assert ab.reg("x", Bank.A) < 15
        assert ab.reg("y", Bank.A) < 15

    def test_overlapping_ranges_differ(self):
        graph = simple_graph(2)
        banks_before = {(1, "x"): Bank.A, (1, "y"): Bank.A}
        ab = assign_ab_registers(graph, banks_before, {}, {})
        assert ab.reg("x", Bank.A) != ab.reg("y", Bank.A)

    def test_clone_group_members_share(self):
        graph = simple_graph(2)
        banks_before = {(1, "x"): Bank.A, (1, "x_c"): Bank.A}
        ab = assign_ab_registers(
            graph, banks_before, {}, {"x": "x", "x_c": "x"}
        )
        assert ab.reg("x", Bank.A) == ab.reg("x_c", Bank.A)

    def test_spare_a15_never_used(self):
        graph = simple_graph(2)
        banks_before = {(1, f"v{i}"): Bank.A for i in range(15)}
        ab = assign_ab_registers(graph, banks_before, {}, {})
        used = {ab.reg(f"v{i}", Bank.A) for i in range(15)}
        assert SPARE_A not in used
        assert used == set(range(15))

    def test_move_coalescing(self):
        # x moved to y; ranges touch only at the move: one register.
        instrs = [
            isa.Immed(T("x"), 1),  # 0-1
            isa.Move(T("y"), T("x")),  # 1-2
            isa.Alu(T("z"), "add", T("y"), isa.Imm(1)),  # 2-3
            isa.HaltInstr((T("z"),)),
        ]
        graph = FlowGraph("entry", {"entry": Block("entry", instrs)})
        points = graph.points()
        p1, p2 = points.before("entry", 1), points.after("entry", 1)
        banks_before = {
            (p1, "x"): Bank.A,
            (p2, "y"): Bank.A,
            (points.before("entry", 2), "y"): Bank.A,
        }
        banks_after = {
            (p1, "x"): Bank.A,
            (p2, "y"): Bank.A,
        }
        ab = assign_ab_registers(graph, banks_before, banks_after, {})
        assert ab.reg("x", Bank.A) == ab.reg("y", Bank.A)
        assert ab.coalesced_moves >= 1

    @given(st.data())
    @settings(max_examples=60, deadline=None)
    def test_random_residencies_color_correctly(self, data):
        """Property: any residency pattern with per-point pressure <= 15
        colors so that co-resident temps get distinct registers."""
        n_temps = data.draw(st.integers(1, 20))
        n_points = data.draw(st.integers(1, 8))
        banks_before: dict = {}
        per_point: dict[int, list[str]] = {p: [] for p in range(n_points)}
        for i in range(n_temps):
            name = f"v{i}"
            start = data.draw(st.integers(0, n_points - 1))
            end = data.draw(st.integers(start, n_points - 1))
            for p in range(start, end + 1):
                if len(per_point[p]) >= 15:
                    break
            else:
                for p in range(start, end + 1):
                    banks_before[(p, name)] = Bank.A
                    per_point[p].append(name)
        graph = simple_graph(1)
        ab = assign_ab_registers(graph, banks_before, {}, {})
        for p, names in per_point.items():
            regs = [ab.reg(v, Bank.A) for v in names]
            assert len(regs) == len(set(regs)), f"collision at point {p}"
