"""Differential testing: random Nova programs vs a Python evaluator.

Hypothesis generates expression trees (word arithmetic, comparisons,
lets, ifs, while-accumulation); each is rendered to Nova source,
compiled through the full front end + CPS optimizer + selection, run on
the simulator, and compared against direct evaluation of the same tree
in Python.  This hunts miscompilations anywhere in the pipeline.

The last section goes further: whole programs from the typed fuzz
generator (:mod:`repro.fuzz.gen`) — records, layouts, try/raise, calls,
memory traffic — are *executed* under the cross-configuration oracle
(:mod:`repro.fuzz.oracle`), not just compiled.  Derandomized so CI runs
are reproducible; ``novac fuzz`` is the open-ended version.
"""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.fuzz.gen import GenConfig, generate
from repro.fuzz.oracle import check_generated, default_configs
from tests.helpers import compile_virtual, run_main

MASK = 0xFFFFFFFF


# -- expression trees --------------------------------------------------------


class Node:
    pass


class Lit(Node):
    def __init__(self, value):
        self.value = value

    def render(self):
        return str(self.value)

    def eval(self, env):
        return self.value & MASK


class Var(Node):
    def __init__(self, name):
        self.name = name

    def render(self):
        return self.name

    def eval(self, env):
        return env[self.name]


class Bin(Node):
    OPS = {
        "+": lambda a, b: (a + b) & MASK,
        "-": lambda a, b: (a - b) & MASK,
        "&": lambda a, b: a & b,
        "|": lambda a, b: a | b,
        "^": lambda a, b: a ^ b,
    }

    def __init__(self, op, left, right):
        self.op, self.left, self.right = op, left, right

    def render(self):
        return f"({self.left.render()} {self.op} {self.right.render()})"

    def eval(self, env):
        return self.OPS[self.op](self.left.eval(env), self.right.eval(env))


class Shift(Node):
    def __init__(self, op, operand, amount):
        self.op, self.operand, self.amount = op, operand, amount

    def render(self):
        return f"({self.operand.render()} {self.op} {self.amount})"

    def eval(self, env):
        value = self.operand.eval(env)
        if self.op == "<<":
            return (value << self.amount) & MASK
        return value >> self.amount


class Not(Node):
    def __init__(self, operand):
        self.operand = operand

    def render(self):
        return f"(~{self.operand.render()})"

    def eval(self, env):
        return ~self.operand.eval(env) & MASK


class IfNode(Node):
    CMPS = {
        "<": lambda a, b: a < b,
        "<=": lambda a, b: a <= b,
        "==": lambda a, b: a == b,
        "!=": lambda a, b: a != b,
        ">": lambda a, b: a > b,
        ">=": lambda a, b: a >= b,
    }

    def __init__(self, cmp, ca, cb, then, other):
        self.cmp, self.ca, self.cb = cmp, ca, cb
        self.then, self.other = then, other

    def render(self):
        return (
            f"(if ({self.ca.render()} {self.cmp} {self.cb.render()}) "
            f"{self.then.render()} else {self.other.render()})"
        )

    def eval(self, env):
        taken = self.CMPS[self.cmp](self.ca.eval(env), self.cb.eval(env))
        return (self.then if taken else self.other).eval(env)


@st.composite
def expr_tree(draw, depth=3):
    if depth == 0:
        if draw(st.booleans()):
            return Lit(draw(st.integers(0, MASK)))
        return Var(draw(st.sampled_from(["x", "y"])))
    kind = draw(
        st.sampled_from(["bin", "shift", "not", "if", "leaf", "leaf"])
    )
    if kind == "leaf":
        return draw(expr_tree(depth=0))
    if kind == "bin":
        op = draw(st.sampled_from(list(Bin.OPS)))
        return Bin(
            op,
            draw(expr_tree(depth=depth - 1)),
            draw(expr_tree(depth=depth - 1)),
        )
    if kind == "shift":
        return Shift(
            draw(st.sampled_from(["<<", ">>"])),
            draw(expr_tree(depth=depth - 1)),
            draw(st.integers(0, 31)),
        )
    if kind == "not":
        return Not(draw(expr_tree(depth=depth - 1)))
    return IfNode(
        draw(st.sampled_from(list(IfNode.CMPS))),
        draw(expr_tree(depth=depth - 1)),
        draw(expr_tree(depth=depth - 1)),
        draw(expr_tree(depth=depth - 1)),
        draw(expr_tree(depth=depth - 1)),
    )


@given(
    expr_tree(),
    st.integers(0, MASK),
    st.integers(0, MASK),
)
@settings(max_examples=60, deadline=None)
def test_random_expression_compiles_correctly(tree, x, y):
    source = f"fun main (x, y) {{ {tree.render()} }}"
    comp = compile_virtual(source)
    results, _ = run_main(comp, x=x, y=y)
    assert results == [(tree.eval({"x": x, "y": y}),)]


@given(
    st.lists(expr_tree(depth=2), min_size=1, max_size=4),
    st.integers(0, MASK),
    st.integers(0, MASK),
)
@settings(max_examples=40, deadline=None)
def test_random_let_chain_compiles_correctly(trees, x, y):
    """Chained lets: each tree may reference previous bindings via x/y
    rebinding."""
    lines = []
    env = {"x": x, "y": y}
    for i, tree in enumerate(trees):
        lines.append(f"let t{i} = {tree.render()};")
        env[f"t{i}"] = tree.eval(env)
        # Subsequent trees may use the binding through variable shadowing.
        env["x"], env["y"] = env[f"t{i}"], env["x"]
        lines.append(f"let x = t{i};" if i % 2 == 0 else f"let y = t{i};")
    # Fix the mirror: recompute faithfully below instead.
    env2 = {"x": x, "y": y}
    for i, tree in enumerate(trees):
        value = tree.eval(env2)
        if i % 2 == 0:
            env2["x"] = value
        else:
            env2["y"] = value
    body = "\n".join(lines) + "\nx ^ y"
    source = f"fun main (x, y) {{ {body} }}"
    comp = compile_virtual(source)
    results, _ = run_main(comp, x=x, y=y)
    assert results == [((env2["x"] ^ env2["y"]) & MASK,)]


@given(
    expr_tree(depth=2),
    st.integers(0, 6),
    st.integers(0, 0xFFFF),
)
@settings(max_examples=30, deadline=None)
def test_random_loop_accumulation(tree, n, seed):
    """A while loop folding a random expression over an index."""
    source = f"""
    fun main (x, y) {{
      let i = 0;
      let acc = y;
      while (i < {n}) {{
        let x = i + {seed};
        acc := acc ^ {tree.render()};
        i := i + 1;
      }};
      acc
    }}
    """
    comp = compile_virtual(source)
    seed_y = 0xABCD
    results, _ = run_main(comp, x=123, y=seed_y)
    acc = seed_y
    for i in range(n):
        env = {"x": (i + seed) & MASK, "y": seed_y}
        acc ^= tree.eval(env)
    assert results == [(acc & MASK,)]


# -- whole-program differential execution (oracle-backed) --------------------


@given(st.integers(0, 50_000))
@settings(max_examples=20, deadline=None, derandomize=True)
def test_generated_program_agrees_across_virtual_configs(seed):
    """Typed full programs: optimizer and SSU must not change meaning."""
    program = generate(seed, GenConfig(max_stmts=4))
    report = check_generated(
        program, configs=default_configs(["no-opt", "ssu-off"])
    )
    assert report.invalid is None, (
        f"seed {seed} generated an invalid program: {report.invalid}\n"
        f"{program.source}"
    )
    assert report.ok, (
        f"seed {seed} diverged: "
        + "; ".join(str(d) for d in report.divergences)
        + f"\n{program.source}"
    )
