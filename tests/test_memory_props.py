"""Property-based tests for the memory-system model.

The port model (latency / occupancy / per-word costs) and the bounds
checks underpin every simulated cycle count, so they get properties, not
examples: any counterexample here means every benchmark number is
suspect.  Uses hypothesis (already a test dependency); each property is
bounded small enough to stay well under a second.
"""

import pytest

hypothesis = pytest.importorskip("hypothesis")
from hypothesis import given, settings, strategies as st

from repro.errors import SimulatorError
from repro.ixp.memory import (
    LATENCY,
    OCCUPANCY,
    PER_WORD,
    MemorySpace,
    MemorySystem,
    WORD_MASK,
)

SIZE = 256

spaces = st.sampled_from(["scratch", "sram", "sdram"])


def _space(name: str) -> MemorySpace:
    return MemorySpace(name, SIZE)


# -- bounds ----------------------------------------------------------------


@given(
    name=spaces,
    addr=st.integers(min_value=-SIZE, max_value=2 * SIZE),
    count=st.integers(min_value=0, max_value=SIZE),
)
def test_out_of_range_accesses_always_reject(name, addr, count):
    """Every (addr, count) outside [0, size) raises; everything inside
    (and aligned, for sdram) is accepted by both read and write."""
    space = _space(name)
    out_of_range = addr < 0 or addr + count > SIZE
    misaligned = name == "sdram" and (addr % 2 or count % 2)
    if out_of_range or misaligned:
        with pytest.raises(SimulatorError):
            space.read(addr, count)
        with pytest.raises(SimulatorError):
            space.write(addr, [0] * count)
    else:
        assert space.read(addr, count) == [0] * count
        space.write(addr, [1] * count)


@given(
    name=spaces,
    addr=st.integers(min_value=0, max_value=SIZE - 1),
    values=st.lists(
        st.integers(min_value=0, max_value=2**40), min_size=1, max_size=16
    ),
)
def test_read_after_write_round_trips(name, addr, values):
    """What you write (masked to 32 bits) is what you read back, and
    words outside the written range stay zero."""
    space = _space(name)
    if name == "sdram":
        addr -= addr % 2
        if len(values) % 2:
            values = values + [0]
    if addr + len(values) > SIZE:
        addr = SIZE - len(values)
    space.write(addr, values)
    assert space.read(addr, len(values)) == [v & WORD_MASK for v in values]
    if addr >= 2:
        assert space.dump_words(addr - 2, 2) == [0, 0]


@given(
    name=spaces,
    counts=st.lists(
        st.integers(min_value=1, max_value=16), min_size=2, max_size=2
    ),
)
def test_transfer_time_monotone_in_count(name, counts):
    space = _space(name)
    small, large = sorted(counts)
    assert space.transfer_time(small) <= space.transfer_time(large)
    assert space.transfer_time(small) >= LATENCY[name]


@given(
    name=spaces,
    issues=st.lists(
        st.tuples(
            st.integers(min_value=0, max_value=50),  # gap to next issue
            st.integers(min_value=1, max_value=8),  # words
        ),
        min_size=1,
        max_size=20,
    ),
)
def test_back_to_back_issues_never_overlap(name, issues):
    """Completion times strictly increase and consecutive transfers are
    separated by at least the port occupancy: the port serializes its
    acceptance pipeline no matter how requests are timed."""
    space = _space(name)
    now = 0
    finishes = []
    for gap, count in issues:
        now += gap
        finish = space.issue(now, count)
        assert finish >= now + LATENCY[name]
        finishes.append((finish, count))
    for (f1, _), (f2, c2) in zip(finishes, finishes[1:]):
        assert f2 >= f1 + OCCUPANCY[name] + PER_WORD[name] * (c2 - 1)


@given(
    name=spaces,
    count=st.integers(min_value=1, max_value=8),
    now=st.integers(min_value=0, max_value=1000),
)
def test_issue_on_idle_port_completes_at_transfer_time(name, count, now):
    space = _space(name)
    assert space.issue(now, count) == now + space.transfer_time(count)


# -- rings -----------------------------------------------------------------


ring_ops = st.lists(
    st.one_of(
        st.tuples(st.just("enq"), st.integers(min_value=0, max_value=2**33)),
        st.tuples(st.just("deq"), st.just(0)),
    ),
    max_size=60,
)


@given(capacity=st.integers(min_value=1, max_value=8), ops=ring_ops)
@settings(max_examples=60)
def test_ring_is_a_bounded_fifo(capacity, ops):
    """Model check against a plain list: FIFO order, bounded depth,
    control words mirrored into the backing space, correct high-water."""
    memory = MemorySystem.create({"scratch": 64})
    ring = memory.add_ring("r", 0, capacity)
    scratch = memory["scratch"]
    model: list[int] = []
    highest = 0
    now = 0
    for kind, value in ops:
        now += 3
        if kind == "enq":
            finish = ring.try_enqueue(now, value)
            if len(model) >= capacity:
                assert finish is None, "enqueue into a full ring succeeded"
            else:
                assert finish is not None and finish > now
                model.append(value & WORD_MASK)
                highest = max(highest, len(model))
        else:
            popped = ring.try_dequeue(now)
            if not model:
                assert popped is None, "dequeue from an empty ring succeeded"
            else:
                value_out, finish = popped
                assert value_out == model.pop(0)
                assert finish > now
        assert ring.depth() == len(model)
        assert ring.snapshot() == model
        assert ring.full == (len(model) == capacity)
        assert ring.empty == (not model)
        assert scratch.words[ring.base] == ring.head & WORD_MASK
        assert scratch.words[ring.base + 1] == ring.tail & WORD_MASK
    assert ring.high_water == highest


@given(base=st.integers(min_value=-4, max_value=70),
       capacity=st.integers(min_value=-2, max_value=70))
def test_ring_regions_validated(base, capacity):
    memory = MemorySystem.create({"scratch": 64})
    fits = capacity > 0 and base >= 0 and base + 2 + capacity <= 64
    if fits:
        memory.add_ring("r", base, capacity)
    else:
        with pytest.raises(SimulatorError):
            memory.add_ring("r", base, capacity)


def test_duplicate_and_unknown_ring_names():
    memory = MemorySystem.create({"scratch": 64})
    memory.add_ring("r", 0, 4)
    with pytest.raises(SimulatorError, match="already exists"):
        memory.add_ring("r", 16, 4)
    with pytest.raises(SimulatorError, match="unknown ring"):
        memory.ring("missing")
