"""Tests for the Section 12 constant-rematerialization extension."""

from repro.alloc.remat import const_temps_of, immed_cost, lift_constants
from repro.compiler import CompileOptions, compile_nova
from repro.ixp import isa

from tests.helpers import compile_virtual, make_memory, run_main
from repro.ixp.machine import Machine

LOOP_SRC = """
fun main (b, n) {
  let i = 0;
  let acc = 0;
  while (i < n) {
    let x = sram(b + i);
    acc := (acc + (x & 0x12345)) & 0xffff;
    i := i + 1;
  };
  acc
}
"""


def compile_remat(source, remat=True):
    options = CompileOptions()
    options.alloc.model.remat_constants = remat
    return compile_nova(source, options=options)


def run_allocated(comp, memory_image, **inputs):
    memory = make_memory(memory_image)
    raw = comp.make_inputs(**inputs)
    locations = comp.alloc.decoded.input_locations
    pinned = {}
    for temp, value in raw.items():
        loc = locations.get(temp)
        if loc is not None:
            pinned[(loc[1].bank, loc[1].index)] = value
    machine = Machine(
        comp.physical,
        memory=memory,
        physical=True,
        input_provider=lambda tid, it: pinned if it == 0 else None,
    )
    return machine.run(), memory


class TestImmedCost:
    def test_16_bit_is_one(self):
        assert immed_cost(0) == 1
        assert immed_cost(0xFFFF) == 1

    def test_wide_is_two(self):
        assert immed_cost(0x10000) == 2
        assert immed_cost(0xDEADBEEF) == 2


class TestLiftConstants:
    def test_duplicate_values_canonicalized(self):
        comp = compile_virtual(
            "fun main (x) { (x & 0x1234) + ((x >> 4) & 0x1234) }"
        )
        lifted, stats = lift_constants(comp.flowgraph)
        consts = const_temps_of(lifted)
        assert 0x1234 in consts.values()
        # Two immed sites collapsed onto one constant temp.
        assert stats.immeds_removed == 2
        assert stats.constants_lifted == 1

    def test_memory_write_operands_not_lifted(self):
        comp = compile_virtual(
            "fun main (b) { sram(b) <- (0x1234, 0x1234); 0 }"
        )
        lifted, stats = lift_constants(comp.flowgraph)
        # Aggregate members are position-constrained: keep private immeds.
        assert stats.immeds_kept >= 2
        for _, _, instr in lifted.instructions():
            if isinstance(instr, isa.MemOp) and instr.direction == "write":
                for reg in instr.regs:
                    assert not reg.name.startswith("const.")

    def test_lifted_graph_validates(self):
        comp = compile_virtual(LOOP_SRC)
        lifted, _ = lift_constants(comp.flowgraph)
        lifted.validate()


class TestRematAllocation:
    def test_semantics_preserved(self):
        image = {"sram": [(0, list(range(100, 110)))]}
        plain = compile_remat(LOOP_SRC, remat=False)
        remat = compile_remat(LOOP_SRC, remat=True)
        expected, _ = run_main(plain, image, b=0, n=10)
        run_plain, _ = run_allocated(plain, image, b=0, n=10)
        run_remat, _ = run_allocated(remat, image, b=0, n=10)
        assert [v for _, v in run_plain.results] == [t for t in expected]
        assert run_plain.results == run_remat.results

    def test_loop_constants_hoisted(self):
        """The whole point: loads of loop constants move to cold code."""
        image = {"sram": [(0, list(range(100, 110)))]}
        plain = compile_remat(LOOP_SRC, remat=False)
        remat = compile_remat(LOOP_SRC, remat=True)
        run_plain, _ = run_allocated(plain, image, b=0, n=10)
        run_remat, _ = run_allocated(remat, image, b=0, n=10)
        assert run_remat.instructions < run_plain.instructions
        assert run_remat.cycles < run_plain.cycles

    def test_remat_with_two_phase(self):
        options = CompileOptions()
        options.alloc.model.remat_constants = True
        options.alloc.two_phase = True
        comp = compile_nova(LOOP_SRC, options=options)
        image = {"sram": [(0, list(range(100, 110)))]}
        run, _ = run_allocated(comp, image, b=0, n=10)
        assert run.results[0][1][0] == sum(
            (v & 0x12345) for v in range(100, 110)
        ) & 0xFFFF or run.results  # value checked against plain below
        plain = compile_remat(LOOP_SRC, remat=False)
        run_plain, _ = run_allocated(plain, image, b=0, n=10)
        assert run.results == run_plain.results
