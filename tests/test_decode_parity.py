"""Three-way simulator-tier parity: interp = decoded = compiled.

The three speed tiers — the reference interpreter
(``Machine(mode="interp")``), the pre-decoded closure path
(``mode="decoded"``, the default) and the codegen tier
(``mode="compiled"``) — must agree *bit for bit*: same cycles, halt
values, per-thread stats, final memory images, raised error type and
message, and (under tracing) per-opcode histograms — on every program:
the curated semantic cases, the fuzz reproducers, and freshly generated
fuzz programs.  The decoded tier is the compiled tier's parity oracle.
"""

import dataclasses

import pytest

from repro.compiler import CompileOptions, compile_nova
from repro.errors import SimulatorError
from repro.fuzz.gen import GenConfig, generate
from repro.ixp import isa
from repro.ixp.banks import Bank
from repro.ixp.flowgraph import Block, FlowGraph
from repro.ixp.machine import Machine
from repro.trace import Tracer

from tests.helpers import compile_full, compile_virtual, make_memory
from tests.programs import CASES
from tests.test_reproducers import CASES as REPRO_CASES, REPRODUCERS

#: cases whose physical compile is exercised here (full ILP solves are
#: the expensive part; virtual parity below covers every case)
PHYSICAL_CASES = [c.name for c in CASES[:8]]

#: every simulator speed tier, checked pairwise against the first.
MODES = ("interp", "decoded", "compiled")


def _snapshot(memory) -> dict:
    return {
        space: {a: w for a, w in memory[space].words.items() if w != 0}
        for space in ("sram", "sdram", "scratch")
    }


def _observe(comp, physical, raw_inputs, memory_image, mode, tracer=None):
    """Run one compilation and return every observable as plain data."""
    memory = make_memory(memory_image)
    if physical:
        graph = comp.physical
        locations = comp.alloc.decoded.input_locations
        inputs: dict = {}
        for temp, value in raw_inputs.items():
            loc = locations.get(temp)
            if loc is None:
                continue
            kind, where = loc
            if kind == "reg":
                inputs[(where.bank, where.index)] = value
            else:
                memory["scratch"].load_words(where, [value])
    else:
        graph, inputs = comp.flowgraph, raw_inputs
    machine = Machine(
        graph,
        memory=memory,
        threads=1,
        physical=physical,
        input_provider=lambda tid, it: dict(inputs) if it == 0 else None,
        max_cycles=5_000_000,
        mode=mode,
        tracer=tracer,
    )
    try:
        run = machine.run()
    except SimulatorError as exc:
        # Error *identity*: exact type and message must match across
        # tiers (SimulatorError subclasses compare by name here).
        return {"error": (type(exc).__name__, str(exc))}
    return {
        "run": dataclasses.asdict(run),
        "memory": _snapshot(memory),
    }


def _assert_parity(comp, physical, raw_inputs, memory_image=None):
    observed = {
        mode: _observe(comp, physical, raw_inputs, memory_image, mode)
        for mode in MODES
    }
    assert observed["decoded"] == observed["interp"]
    assert observed["compiled"] == observed["interp"]


@pytest.mark.parametrize("case", CASES, ids=lambda c: c.name)
def test_virtual_parity(case):
    comp = compile_virtual(case.source)
    memory_image = {s: list(chunks) for s, chunks in case.memory.items()}
    _assert_parity(comp, False, comp.make_inputs(**case.inputs), memory_image)


@pytest.mark.parametrize("name", PHYSICAL_CASES)
def test_physical_parity(name):
    case = next(c for c in CASES if c.name == name)
    comp = compile_full(case.source)
    memory_image = {s: list(chunks) for s, chunks in case.memory.items()}
    _assert_parity(comp, True, comp.make_inputs(**case.inputs), memory_image)


@pytest.mark.parametrize("name", sorted(REPRO_CASES))
def test_reproducer_parity(name):
    _, vectors, memory_image = REPRO_CASES[name]
    source = (REPRODUCERS / name).read_text()
    virtual = compile_virtual(source)
    physical = compile_full(source)
    for vector in vectors:
        _assert_parity(virtual, False, virtual.make_inputs(**vector), memory_image)
        _assert_parity(physical, True, physical.make_inputs(**vector), memory_image)


def test_fuzz_smoke_parity_25_seeds():
    """Bit-identical RunResults on generated programs, both paths."""
    for seed in range(25):
        program = generate(seed, GenConfig())
        comp = compile_virtual(program.source)
        for vector in program.vectors:
            _assert_parity(
                comp, False, comp.make_inputs(**vector), program.memory_image
            )


def _histogram(tracer) -> dict:
    for span in tracer.spans:
        if span.name == "simulate":
            return {
                k: v
                for k, v in span.counters.items()
                if k.startswith(("count.", "cycles."))
            }
    raise AssertionError("no simulate span recorded")


def test_opcode_histogram_equality_under_tracing():
    case = CASES[0]
    comp = compile_virtual(case.source)
    raw = comp.make_inputs(**case.inputs)
    traces = {}
    for mode in MODES:
        tracer = Tracer()
        _observe(comp, False, raw, None, mode, tracer=tracer)
        traces[mode] = tracer
    hist = _histogram(traces["decoded"])
    assert hist == _histogram(traces["interp"])
    assert hist == _histogram(traces["compiled"])
    assert hist, "tracing should record per-opcode counters"
    assert any(
        span.name == "simulate.decode" for span in traces["decoded"].spans
    ), "decoding under a tracer must emit a simulate.decode span"
    assert not any(
        span.name == "simulate.decode" for span in traces["interp"].spans
    )
    assert any(
        span.name == "simulate.codegen" for span in traces["compiled"].spans
    ), "compiling under a tracer must emit a simulate.codegen span"
    assert not any(
        span.name == "simulate.codegen"
        for tier in ("interp", "decoded")
        for span in traces[tier].spans
    )


def _trap_graph():
    return FlowGraph(
        "entry",
        {
            "entry": Block(
                "entry",
                [
                    isa.Immed(isa.PhysReg(Bank.A, 0), 1),
                    isa.Immed(isa.PhysReg(Bank.A, 1), 2),
                    isa.Alu(
                        isa.PhysReg(Bank.A, 2),
                        "add",
                        isa.PhysReg(Bank.A, 0),
                        isa.PhysReg(Bank.A, 1),
                    ),
                    isa.HaltInstr(()),
                ],
            )
        },
        (),
    )


def test_error_message_parity():
    messages = {}
    for mode in MODES:
        with pytest.raises(SimulatorError) as exc_info:
            Machine(_trap_graph(), physical=True, mode=mode).run()
        messages[mode] = (type(exc_info.value).__name__, str(exc_info.value))
    assert messages["decoded"] == messages["interp"]
    assert messages["compiled"] == messages["interp"]
    assert "two operands from bank A" in messages["interp"][1]


# -- ring enqueue/dequeue parity -------------------------------------------
#
# Ring ops have the richest blocking behaviour in the ISA (spin-retry on
# full/empty, port contention on success), so parity is checked on
# hand-built physical graphs under multi-thread contention: cycles,
# stalls, halt values, the ring's control words and slots (part of the
# scratch image), and queue contents must be bit-identical across paths.

from repro.ixp.memory import MemorySystem


def _ring_memory(prefill=(), capacity=4):
    memory = MemorySystem.create()
    memory.add_ring("work", 0, capacity)
    memory.add_ring("out", 32, capacity)
    for i, value in enumerate(prefill):
        memory.ring("work").try_enqueue(0, value)
    return memory


def _run_ring_graph(graph, memory, threads, mode, provider=None):
    machine = Machine(
        graph,
        memory=memory,
        threads=threads,
        physical=True,
        input_provider=provider,
        max_cycles=100_000,
        mode=mode,
    )
    try:
        run = machine.run()
    except SimulatorError as exc:
        return {
            "error": (type(exc).__name__, str(exc)),
            "memory": _snapshot(memory),
        }
    return {
        "run": dataclasses.asdict(run),
        "memory": _snapshot(memory),
        "work": memory.ring("work").snapshot(),
        "out": memory.ring("out").snapshot(),
        "hwm": (memory.ring("work").high_water, memory.ring("out").high_water),
    }


def _assert_ring_parity(make_graph, threads, prefill=(), capacity=4,
                        provider=None):
    observed = {}
    for mode in MODES:
        observed[mode] = _run_ring_graph(
            make_graph(), _ring_memory(prefill, capacity), threads, mode,
            provider,
        )
    assert observed["decoded"] == observed["interp"]
    assert observed["compiled"] == observed["interp"]
    return observed["interp"]


def _a(i):
    return isa.PhysReg(Bank.A, i)


def test_ring_pull_transform_push_parity_under_contention():
    """4 threads each pull one word from a prefilled 'work' ring,
    transform it, and push to 'out': threads contend for both rings and
    for the scratch port; every observable must agree across paths."""

    def graph():
        return FlowGraph(
            "entry",
            {
                "entry": Block(
                    "entry",
                    [
                        isa.RingOp("deq", "work", _a(0)),
                        isa.Alu(_a(1), "add", _a(0), isa.Imm(100)),
                        isa.RingOp("enq", "out", _a(1)),
                        isa.HaltInstr((_a(0),)),
                    ],
                )
            },
            (),
        )

    observed = _assert_ring_parity(graph, threads=4, prefill=(7, 8, 9, 10))
    halts = sorted(v[0] for _, v in observed["run"]["results"])
    assert halts == [7, 8, 9, 10]
    assert observed["work"] == []
    assert sorted(observed["out"]) == [107, 108, 109, 110]


def test_ring_full_backpressure_parity():
    """A producer thread overruns a capacity-2 ring and must spin until
    the consumer thread drains an entry; the spin-retry cycles are part
    of the cycle-exact contract."""

    def graph():
        return FlowGraph(
            "entry",
            {
                "entry": Block(
                    "entry",
                    [
                        isa.BrCmp("eq", _a(7), isa.Imm(0), "producer",
                                  "consumer"),
                    ],
                ),
                "producer": Block(
                    "producer",
                    [
                        isa.RingOp("enq", "work", isa.Imm(1)),
                        isa.RingOp("enq", "work", isa.Imm(2)),
                        isa.RingOp("enq", "work", isa.Imm(3)),  # ring full
                        isa.HaltInstr((isa.Imm(0),)),
                    ],
                ),
                "consumer": Block(
                    "consumer",
                    [
                        # burn time on a memory read so the producer
                        # reaches the full ring first
                        isa.Immed(_a(2), 64),
                        isa.MemOp("sram", "read", _a(2), (isa.PhysReg(Bank.L, 0),)),
                        isa.MemOp("sram", "read", _a(2), (isa.PhysReg(Bank.L, 0),)),
                        isa.RingOp("deq", "work", _a(3)),
                        isa.HaltInstr((_a(3),)),
                    ],
                ),
            },
            (),
        )

    observed = _assert_ring_parity(
        graph,
        threads=2,
        capacity=2,
        provider=lambda tid, it: {(Bank.A, 7): tid} if it == 0 else None,
    )
    results = dict(
        (tid, values) for tid, values in observed["run"]["results"]
    )
    assert results[1] == (1,), "consumer must pop the oldest entry"
    assert observed["work"] == [2, 3], "producer's third word got through"
    assert observed["hwm"][0] == 2


def test_ring_empty_spin_parity():
    """A consumer on an empty ring spins until the producer delivers."""

    def graph():
        return FlowGraph(
            "entry",
            {
                "entry": Block(
                    "entry",
                    [isa.BrCmp("eq", _a(7), isa.Imm(0), "producer",
                               "consumer")],
                ),
                "producer": Block(
                    "producer",
                    [
                        isa.Immed(_a(2), 64),
                        isa.MemOp("sram", "read", _a(2), (isa.PhysReg(Bank.L, 0),)),
                        isa.RingOp("enq", "work", isa.Imm(42)),
                        isa.HaltInstr((isa.Imm(0),)),
                    ],
                ),
                "consumer": Block(
                    "consumer",
                    [
                        isa.RingOp("deq", "work", _a(3)),
                        isa.HaltInstr((_a(3),)),
                    ],
                ),
            },
            (),
        )

    observed = _assert_ring_parity(
        graph,
        threads=2,
        provider=lambda tid, it: {(Bank.A, 7): tid} if it == 0 else None,
    )
    results = dict(observed["run"]["results"])
    assert results[1] == (42,)
    assert observed["work"] == []


def test_ring_error_parity_unknown_ring_and_bad_operand():
    def unknown():
        return FlowGraph(
            "entry",
            {
                "entry": Block(
                    "entry",
                    [isa.RingOp("enq", "missing", isa.Imm(1)),
                     isa.HaltInstr(())],
                )
            },
            (),
        )

    def imm_dst():
        return FlowGraph(
            "entry",
            {
                "entry": Block(
                    "entry",
                    [isa.RingOp("deq", "work", isa.Imm(1)),
                     isa.HaltInstr(())],
                )
            },
            (),
        )

    for make_graph in (unknown, imm_dst):
        messages = {}
        for mode in MODES:
            out = _run_ring_graph(
                make_graph(), _ring_memory(), 1, mode
            )
            assert "error" in out
            messages[mode] = out["error"]
        assert messages["decoded"] == messages["interp"]
        assert messages["compiled"] == messages["interp"]


def test_unreached_illegal_instruction_does_not_trap_at_decode():
    """Static checks move to decode time, but failures stay lazy: an
    illegal instruction that never executes must not raise."""
    graph = FlowGraph(
        "entry",
        {
            "entry": Block(
                "entry",
                [isa.Immed(isa.PhysReg(Bank.A, 0), 7), isa.Br("good")],
            ),
            "bad": Block(
                "bad",
                [
                    isa.Alu(
                        isa.PhysReg(Bank.A, 2),
                        "add",
                        isa.PhysReg(Bank.A, 0),
                        isa.PhysReg(Bank.A, 1),
                    ),
                    isa.HaltInstr(()),
                ],
            ),
            "good": Block("good", [isa.HaltInstr((isa.PhysReg(Bank.A, 0),))]),
        },
        (),
    )
    for mode in MODES:
        machine = Machine(graph, physical=True, mode=mode)
        assert machine.run().results == [(0, (7,))]
