"""Golden regression for the streaming runtime: a fixed-seed NAT trace.

One seeded NAT stream (virtual compilation — deterministic across
platforms, like the listing goldens) is rendered to a line-per-packet
transcript pinning packet order, per-packet timing, drop count, queue
high-water marks and a digest of the final memory image, and compared
byte-for-byte against ``tests/goldens/net_nat_stream.golden``.  Any
change to ring costs, the port model, worker scheduling or the arrival
process shows up as a readable diff.

To accept intentional timing-model changes::

    PYTHONPATH=src python -m pytest tests/test_net_golden.py --update-goldens
"""

import pathlib

import pytest

from repro.ixp.net import NetConfig, NetRuntime, stream_app, stream_trace_lines

from tests.helpers import compile_virtual

GOLDENS = pathlib.Path(__file__).resolve().parent / "goldens"
GOLDEN_PATH = GOLDENS / "net_nat_stream.golden"

#: deliberately overloaded: a small RX ring plus bursty arrivals force
#: drops, so the golden pins the drop accounting too.
CONFIG = NetConfig(
    engines=2,
    threads=2,
    rx_capacity=6,
    tx_capacity=4,
    packets=24,
    seed=1234,
    arrival="poisson",
    mean_gap=24.0,
    burst=2,
    sink_gap=50,
)


def _transcript(sim_mode: str | None = None) -> str:
    import dataclasses

    app = stream_app("nat", None)
    app = dataclasses.replace(app, comp=compile_virtual(app.bundle.source))
    config = dataclasses.replace(CONFIG, sim_mode=sim_mode)
    runtime = NetRuntime(app, config)
    result = runtime.run()
    return "\n".join(stream_trace_lines(result, runtime.memory)) + "\n"


def test_nat_stream_reproduces_exactly_across_runs():
    assert _transcript() == _transcript()


def test_nat_stream_compiled_tier_transcript_is_byte_identical():
    """The codegen tier must be invisible to the streaming runtime: the
    whole transcript — packet order, per-packet timing, drops, RX
    high-water marks, the conservation verdict and the memory digest —
    must match the decoded tier's byte for byte."""
    assert _transcript("compiled") == _transcript("decoded")


def test_nat_stream_matches_golden(update_goldens):
    transcript = _transcript()
    if update_goldens:
        GOLDEN_PATH.parent.mkdir(parents=True, exist_ok=True)
        GOLDEN_PATH.write_text(transcript)
        pytest.skip(f"updated {GOLDEN_PATH.name}")
    assert GOLDEN_PATH.exists(), (
        "missing streaming golden; run pytest with --update-goldens"
    )
    assert transcript == GOLDEN_PATH.read_text(), (
        f"streaming transcript drifted from {GOLDEN_PATH.name}; if the "
        "timing-model change is intentional, rerun with --update-goldens"
    )


def test_golden_covers_drops_and_contention():
    """The pinned scenario must actually exercise the interesting paths
    (otherwise the golden silently stops guarding them)."""
    transcript = _transcript()
    assert " dropped" in transcript
    assert "memory_digest=" in transcript
    lines = transcript.splitlines()
    assert sum(1 for line in lines if line.startswith("pkt ")) == 24
    # packet conservation is pinned in the transcript itself
    assert "conservation generated==completed+dropped+inflight holds" in lines
    totals = next(line for line in lines if line.startswith("generated="))
    counts = dict(piece.split("=") for piece in totals.split())
    assert int(counts["generated"]) == (
        int(counts["completed"])
        + int(counts["dropped"])
        + int(counts["inflight"])
    )
    # steering spread the stream over both engines' private rings
    assert any(line.startswith("rx0 steered=") for line in lines)
    assert any(line.startswith("rx1 steered=") for line in lines)
