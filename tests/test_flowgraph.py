"""Flowgraph structure tests: program points, ordering, edges."""

from repro.ixp import isa
from repro.ixp.flowgraph import Block, FlowGraph


def T(name):
    return isa.Temp(name)


def diamond():
    blocks = {
        "entry": Block(
            "entry",
            [
                isa.Immed(T("x"), 1),
                isa.BrCmp("lt", T("x"), isa.Imm(5), "left", "right"),
            ],
        ),
        "left": Block("left", [isa.Immed(T("a"), 1), isa.Br("join")]),
        "right": Block("right", [isa.Immed(T("a"), 2), isa.Br("join")]),
        "join": Block("join", [isa.HaltInstr((T("a"),))]),
    }
    return FlowGraph("entry", blocks)


class TestStructure:
    def test_block_order_starts_at_entry(self):
        order = diamond().block_order()
        assert order[0] == "entry"
        assert set(order) == {"entry", "left", "right", "join"}
        assert order.index("join") > order.index("left")
        assert order.index("join") > order.index("right")

    def test_predecessors(self):
        preds = diamond().predecessors()
        assert sorted(preds["join"]) == ["left", "right"]
        assert preds["entry"] == []

    def test_successors(self):
        graph = diamond()
        assert graph.blocks["entry"].successors() == ["left", "right"]
        assert graph.blocks["left"].successors() == ["join"]
        assert graph.blocks["join"].successors() == []

    def test_instruction_enumeration(self):
        graph = diamond()
        instrs = graph.instructions()
        assert len(instrs) == graph.num_instructions() == 7
        assert instrs[0][0] == "entry"

    def test_temps_enumeration(self):
        graph = diamond()
        graph.inputs = ("z",)
        assert graph.temps() == ["a", "x", "z"]


class TestPointMap:
    def test_counts(self):
        graph = diamond()
        pm = graph.points()
        # Per block: n instrs + 1 exit point.
        expected = sum(len(b.instrs) + 1 for b in graph.blocks.values())
        assert pm.count == expected

    def test_before_after_chain(self):
        graph = diamond()
        pm = graph.points()
        assert pm.after("entry", 0) == pm.before("entry", 1)
        assert pm.after("entry", 1) == pm.exit("entry")
        assert pm.entry("entry") == pm.before("entry", 0)

    def test_points_unique_across_blocks(self):
        graph = diamond()
        pm = graph.points()
        seen = set()
        for label, block in graph.blocks.items():
            for index in range(len(block.instrs)):
                point = pm.before(label, index)
                assert point not in seen
                seen.add(point)
            exit_p = pm.exit(label)
            assert exit_p not in seen
            seen.add(exit_p)

    def test_edges_connect_exit_to_entries(self):
        graph = diamond()
        pm = graph.points()
        edges = set(pm.edges())
        assert (pm.exit("entry"), pm.entry("left")) in edges
        assert (pm.exit("entry"), pm.entry("right")) in edges
        assert (pm.exit("left"), pm.entry("join")) in edges
        assert (pm.exit("right"), pm.entry("join")) in edges
        assert len(edges) == 4
