"""Layout algebra tests: widths, overlays, recipes, pack/unpack."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import LayoutError
from repro.nova import layouts as lay
from repro.nova.parser import _Parser
from repro.nova.lexer import tokenize


def parse_layout(text: str, env=None):
    parser = _Parser(tokenize(text))
    expr = parser.parse_layout_expr()
    return lay.resolve(expr, env or {})


class TestResolve:
    def test_simple_sequence_width(self):
        layout = parse_layout("{a : 16, b : 8, c : 8}")
        assert layout.width == 32

    def test_nested_layout(self):
        inner = parse_layout("{x : 4, y : 4}")
        layout = parse_layout("{h : inner, t : 24}", {"inner": inner})
        assert layout.width == 32

    def test_gap(self):
        layout = parse_layout("{16}")
        assert isinstance(layout, lay.Gap)
        assert layout.width == 16

    def test_concat(self):
        layout = parse_layout("{16} ## {a : 8} ## {8}")
        assert layout.width == 32
        assert isinstance(layout, lay.Seq)

    def test_concat_splices_fields(self):
        a = parse_layout("{x : 8}")
        layout = parse_layout("a ## {y : 8}", {"a": a})
        names = [n for n, _ in layout.fields]
        assert names == ["x", "y"]

    def test_unknown_name_rejected(self):
        with pytest.raises(LayoutError):
            parse_layout("nope")

    def test_zero_width_field_rejected(self):
        with pytest.raises(LayoutError):
            parse_layout("{a : 0}")

    def test_field_over_32_bits_rejected(self):
        with pytest.raises(LayoutError):
            parse_layout("{a : 33}")

    def test_duplicate_field_rejected(self):
        with pytest.raises(LayoutError):
            parse_layout("{a : 8, a : 8}")

    def test_overlay_equal_widths(self):
        layout = parse_layout(
            "{v : overlay { whole : 8 | parts : {hi : 4, lo : 4} }}"
        )
        assert layout.width == 8

    def test_overlay_unequal_widths_rejected(self):
        with pytest.raises(LayoutError):
            parse_layout("{v : overlay { a : 8 | b : 16 }}")

    def test_overlay_single_alternative_rejected(self):
        with pytest.raises(LayoutError):
            parse_layout("{v : overlay { a : 8 }}")


class TestLeafFields:
    def test_offsets_sequential(self):
        layout = parse_layout("{a : 4, b : 12, c : 16}")
        leaves = lay.leaf_fields(layout)
        assert [(l.path, l.offset, l.bits) for l in leaves] == [
            (("a",), 0, 4),
            (("b",), 4, 12),
            (("c",), 16, 16),
        ]

    def test_gap_shifts_offsets(self):
        layout = parse_layout("{16} ## {a : 8}")
        (leaf,) = lay.leaf_fields(layout)
        assert leaf.offset == 16

    def test_overlay_produces_all_alternatives(self):
        layout = parse_layout(
            "{v : overlay { whole : 8 | parts : {hi : 4, lo : 4} }, rest : 8}"
        )
        paths = {l.path for l in lay.leaf_fields(layout)}
        assert paths == {
            ("v", "whole"),
            ("v", "parts", "hi"),
            ("v", "parts", "lo"),
            ("rest",),
        }

    def test_overlay_alternatives_share_offset(self):
        layout = parse_layout("{v : overlay { whole : 8 | alt : 8 }}")
        leaves = {l.path: l.offset for l in lay.leaf_fields(layout)}
        assert leaves[("v", "whole")] == leaves[("v", "alt")] == 0


class TestRecipes:
    def test_word_aligned_field(self):
        layout = parse_layout("{a : 32, b : 32}")
        leaves = lay.leaf_fields(layout)
        recipe = lay.extract_recipe(leaves[1])
        assert len(recipe.parts) == 1
        assert recipe.parts[0].index == 1
        assert recipe.parts[0].right_shift == 0

    def test_interior_field(self):
        layout = parse_layout("{a : 4, b : 8, c : 20}")
        recipe = lay.extract_recipe(lay.leaf_fields(layout)[1])
        (part,) = recipe.parts
        assert part.right_shift == 20
        assert part.mask == 0xFF

    def test_straddling_field_has_two_parts(self):
        layout = parse_layout("{a : 24, b : 16, c : 24}")
        recipe = lay.extract_recipe(lay.leaf_fields(layout)[1])
        assert len(recipe.parts) == 2
        assert recipe.parts[0].index == 0
        assert recipe.parts[1].index == 1

    def test_extract_value_straddle(self):
        layout = parse_layout("{a : 24, b : 16}")
        words = [0x00000012, 0x34000000]
        leaf = lay.leaf_fields(layout)[1]
        value = lay.extract_value(words, lay.extract_recipe(leaf))
        assert value == 0x1234

    def test_deposit_inverse_of_extract(self):
        layout = parse_layout("{a : 24, b : 16, c : 24}")
        words = [0, 0]
        leaf = lay.leaf_fields(layout)[1]
        lay.deposit_value(words, lay.deposit_recipe(leaf), 0xBEEF)
        got = lay.extract_value(words, lay.extract_recipe(leaf))
        assert got == 0xBEEF


class TestPackUnpackReference:
    def ipv6(self):
        addr = parse_layout("{a1 : 32, a2 : 32, a3 : 32, a4 : 32}")
        return parse_layout(
            "{verpri : overlay { whole : 8 | parts : {version : 4, "
            "priority : 4} }, flow_label : 24, payload_length : 16, "
            "next_header : 8, hop_limit : 8, src : a, dst : a}",
            {"a": addr},
        )

    def test_ipv6_is_ten_words(self):
        assert lay.packed_words(self.ipv6()) == 10

    def test_unpack_version(self):
        words = [0x60012345] + [0] * 9
        fields = lay.unpack_reference(self.ipv6(), words)
        assert fields[("verpri", "parts", "version")] == 6
        assert fields[("verpri", "whole")] == 0x60
        assert fields[("flow_label",)] == 0x012345

    def test_unpack_short_input_rejected(self):
        with pytest.raises(LayoutError):
            lay.unpack_reference(self.ipv6(), [0] * 5)

    def test_pack_requires_one_overlay_alternative(self):
        layout = self.ipv6()
        fields = lay.unpack_reference(layout, [0x60012345] + [1] * 9)
        with pytest.raises(LayoutError):
            lay.pack_reference(layout, fields)  # both alternatives present

    def test_pack_roundtrip_whole(self):
        layout = self.ipv6()
        words = [0x60012345, 0xABCD1234] + list(range(2, 10))
        fields = lay.unpack_reference(layout, words)
        chosen = {
            path: value
            for path, value in fields.items()
            if path[:2] != ("verpri", "parts")
        }
        assert lay.pack_reference(layout, chosen) == words

    def test_pack_roundtrip_parts(self):
        layout = self.ipv6()
        words = [0x60012345, 0xABCD1234] + list(range(2, 10))
        fields = lay.unpack_reference(layout, words)
        chosen = {
            path: value
            for path, value in fields.items()
            if path != ("verpri", "whole")
        }
        assert lay.pack_reference(layout, chosen) == words

    def test_pack_missing_field_rejected(self):
        layout = parse_layout("{a : 8, b : 8}")
        with pytest.raises(LayoutError):
            lay.pack_reference(layout, {("a",): 1})

    def test_alignment_views(self):
        """The paper's example: the same layout at offsets 0, 16, 24."""
        lyt = parse_layout("{x : 16, y : 32, z : 8}")
        value_words = [0xDEAD0000 | 0x1234, 0x56789ABC, 0xDE000000]
        # place x=0x1234 at offset 16 using {16} ## lyt ## {24}
        shifted = parse_layout("{16} ## l ## {24}", {"l": lyt})
        fields = lay.unpack_reference(shifted, value_words)
        assert fields[("x",)] == 0x1234
        assert fields[("y",)] == 0x56789ABC
        assert fields[("z",)] == 0xDE


# -- property-based tests -----------------------------------------------------


@st.composite
def random_layout(draw, max_fields=6):
    """A random flat layout of named fields and gaps."""
    n = draw(st.integers(1, max_fields))
    items = []
    for i in range(n):
        is_gap = draw(st.booleans())
        bits = draw(st.integers(1, 32))
        if is_gap:
            items.append(("", lay.Gap(bits)))
        else:
            items.append((f"f{i}", lay.BitField(bits)))
    return lay.Seq(tuple(items))


@given(random_layout(), st.data())
@settings(max_examples=80, deadline=None)
def test_pack_unpack_roundtrip_property(layout, data):
    """pack . unpack == identity on field values (gaps drop)."""
    leaves = lay.leaf_fields(layout)
    values = {
        leaf.path: data.draw(
            st.integers(0, (1 << leaf.bits) - 1), label=str(leaf.path)
        )
        for leaf in leaves
    }
    words = lay.pack_reference(layout, values)
    assert len(words) == lay.packed_words(layout)
    got = lay.unpack_reference(layout, words)
    assert got == values


@given(random_layout())
@settings(max_examples=80, deadline=None)
def test_leaves_do_not_overlap_property(layout):
    """Non-overlay leaves occupy disjoint bit ranges."""
    spans = [
        range(leaf.offset, leaf.offset + leaf.bits)
        for leaf in lay.leaf_fields(layout)
    ]
    for i, a in enumerate(spans):
        for b in spans[i + 1 :]:
            assert set(a).isdisjoint(b)


@given(random_layout(), st.data())
@settings(max_examples=60, deadline=None)
def test_extract_sees_only_own_bits_property(layout, data):
    """Extracting one field is unaffected by all other fields."""
    leaves = lay.leaf_fields(layout)
    if not leaves:
        return
    target = data.draw(st.sampled_from(leaves))
    value = data.draw(st.integers(0, (1 << target.bits) - 1))
    base = {
        leaf.path: 0 if leaf.path != target.path else value for leaf in leaves
    }
    noisy = {
        leaf.path: (
            value
            if leaf.path == target.path
            else data.draw(st.integers(0, (1 << leaf.bits) - 1), label="noise")
        )
        for leaf in leaves
    }
    words_a = lay.pack_reference(layout, base)
    words_b = lay.pack_reference(layout, noisy)
    recipe = lay.extract_recipe(target)
    assert lay.extract_value(words_a, recipe) == value
    assert lay.extract_value(words_b, recipe) == value
