"""Streaming-runtime behaviour: backpressure, drops, determinism,
sink validation, and the throughput zero-division guards.

Everything here runs *virtual* (pre-allocation) compilations — fully
deterministic, no ILP solve — through small NAT/Kasumi streams; the
allocated path is exercised end to end by
``benchmarks/test_net_throughput.py``.
"""

import dataclasses

import pytest

from repro.apps.driver import ThroughputResult
from repro.errors import SimulatorError
from repro.ixp.machine import RunResult, ThreadStats
from repro.ixp.net import (
    NetConfig,
    NetRuntime,
    StreamResult,
    TraceEvent,
    capture_trace,
    run_stream,
    stream_app,
)
from repro.trace import Tracer

from tests.helpers import compile_virtual


@pytest.fixture(scope="module")
def nat_stream():
    app = stream_app("nat", None)
    return dataclasses.replace(app, comp=compile_virtual(app.bundle.source))


@pytest.fixture(scope="module")
def kasumi_stream():
    app = stream_app("kasumi", None, (8, 16))
    return dataclasses.replace(app, comp=compile_virtual(app.bundle.source))


def test_stream_completes_and_validates(nat_stream):
    result = run_stream(
        nat_stream, NetConfig(packets=16, seed=2, arrival="backlog",
                              rx_capacity=32)
    )
    assert result.generated == result.completed == 16
    assert result.dropped == 0 and result.inflight == 0
    assert result.mismatches == []
    assert all(p.status == "done" for p in result.packets)
    assert result.cycles > 0 and result.mbps > 0
    assert len(result.latencies) == 16
    assert result.rx_high_water <= 32
    assert sum(result.steered) == 16  # every packet got a dispatch verdict


def test_overload_drops_at_rx_and_accounts_every_packet(nat_stream):
    # 4-packet RX ring, packets arriving far faster than one engine
    # drains them: the dispatch stage must tail-drop, and every
    # generated packet must end up either completed or dropped.
    config = NetConfig(
        packets=48, seed=5, arrival="constant", mean_gap=4, burst=2,
        rx_capacity=4, tx_capacity=4, engines=1, threads=2,
    )
    result = run_stream(nat_stream, config)
    assert result.dropped > 0
    assert result.completed + result.dropped == result.generated == 48
    assert result.inflight == 0
    assert result.mismatches == []
    assert result.rx_high_water == 4  # the ring actually filled
    assert sum(result.rx_drops) == result.dropped  # per-ring accounting
    assert 0 < result.drop_rate < 1
    statuses = {p.status for p in result.packets}
    assert statuses == {"done", "dropped"}


def test_slow_sink_backpressures_workers(nat_stream):
    # A sink that drains one packet per 3000 cycles with a tiny TX ring:
    # workers must hit a full TX ring and retry (tx_stalls), and the TX
    # high-water mark must reach the ring's capacity.
    config = NetConfig(
        packets=12, seed=3, arrival="backlog", rx_capacity=16,
        tx_capacity=2, sink_gap=3000,
    )
    result = run_stream(nat_stream, config)
    assert result.completed == 12
    assert result.tx_high_water == 2
    assert sum(p.tx_stalls for p in result.packets) > 0
    # drains are spaced by the sink gap, so latency grows along the run
    drains = sorted(p.drained for p in result.packets)
    assert all(b - a >= 3000 for a, b in zip(drains, drains[1:]))


def test_same_seed_reproduces_exactly(kasumi_stream):
    config = NetConfig(packets=20, seed=11, arrival="poisson", mean_gap=40,
                       engines=2, threads=2)
    a = run_stream(kasumi_stream, config)
    b = run_stream(kasumi_stream, config)
    assert a.summary() == b.summary()
    assert [dataclasses.asdict(p) for p in a.packets] == [
        dataclasses.asdict(p) for p in b.packets
    ]


def test_different_seeds_differ(kasumi_stream):
    config = NetConfig(packets=20, seed=11, arrival="poisson", mean_gap=40)
    a = run_stream(kasumi_stream, config)
    b = run_stream(
        kasumi_stream, dataclasses.replace(config, seed=12)
    )
    assert [p.payload_words for p in a.packets] != [
        p.payload_words for p in b.packets
    ]


def test_multi_engine_spreads_work(nat_stream):
    config = NetConfig(engines=4, threads=2, packets=32, seed=9,
                       arrival="backlog", rx_capacity=40)
    result = run_stream(nat_stream, config)
    assert result.completed == 32
    engines_used = {p.engine for p in result.packets}
    assert len(engines_used) > 1, "work never left the first engine"
    assert len(result.engine_cycles) == 4
    assert sum(result.engine_instructions) > 0


def test_sink_catches_corrupted_reference(nat_stream):
    # Poison one packet's expectations: the sink must flag exactly it.
    runtime = NetRuntime(
        nat_stream, NetConfig(packets=6, seed=2, arrival="backlog",
                              rx_capacity=8)
    )
    original = runtime.app.generate

    def poisoned(rng, seq):
        packet = original(rng, seq)
        if seq == 3:
            packet.expected_results = (0xDEAD,)
        return packet

    runtime.app = dataclasses.replace(runtime.app, generate=poisoned)
    result = runtime.run()
    assert [m["packet"] for m in result.mismatches] == [3]
    assert result.packets[3].status == "mismatch"
    assert sum(p.status == "done" for p in result.packets) == 5


def test_net_spans_record_latency_histogram(nat_stream):
    tracer = Tracer()
    run_stream(
        nat_stream,
        NetConfig(packets=8, seed=2, arrival="backlog", rx_capacity=16,
                  engines=2),
        tracer,
    )
    run_span = tracer.get("net.run")
    assert run_span is not None
    assert run_span.counters["completed"] == 8
    assert run_span.counters["mismatches"] == 0
    buckets = {
        k: v for k, v in run_span.counters.items()
        if k.startswith("latency.le_")
    }
    assert sum(buckets.values()) == 8
    assert len(tracer.all("net.engine")) == 2


def test_ring_regions_must_fit_in_scratch(nat_stream):
    with pytest.raises(ValueError, match="does not fit scratch"):
        NetRuntime(nat_stream, NetConfig(rx_capacity=2048))


def test_ring_layout_boundary_is_exact(nat_stream):
    # Rings grow down from the top of the 1024-word scratch; with no
    # program scratch data the boundary is address 0.  The largest
    # per-engine RX capacity that fits must construct, one more word
    # per ring must not (it used to underflow into negative bases).
    top = max(
        (addr + len(words)
         for addr, words in nat_stream.bundle.memory_image.get(
             "scratch", ())),
        default=0,
    )
    free = 1024 - top - (2 + 32)  # minus the TX ring
    per_engine = free // 6 - 2
    NetRuntime(nat_stream, NetConfig(rx_capacity=per_engine))  # fits
    with pytest.raises(ValueError, match="does not fit scratch"):
        NetRuntime(nat_stream, NetConfig(rx_capacity=per_engine + 1))


def test_nonpositive_ring_capacities_rejected(nat_stream):
    with pytest.raises(ValueError, match="capacities must be positive"):
        NetRuntime(nat_stream, NetConfig(rx_capacity=0))
    with pytest.raises(ValueError, match="capacities must be positive"):
        NetRuntime(nat_stream, NetConfig(tx_capacity=-4))


def test_bad_arrival_process_rejected(nat_stream):
    # Validated in NetRuntime.__init__ now -- the typo used to surface
    # only deep inside _gap() after the first burst fired.
    with pytest.raises(ValueError, match="unknown arrival"):
        NetRuntime(nat_stream, NetConfig(packets=2, arrival="bursty"))
    with pytest.raises(ValueError, match="unknown arrival"):
        run_stream(nat_stream, NetConfig(packets=2, arrival="bursty"))


# -- trace-driven replay ---------------------------------------------------


def _fingerprints(result):
    return [
        (p.seq, p.arrival, p.flow, p.engine, p.status, p.latency,
         tuple(p.payload_words), tuple(p.results))
        for p in result.packets
    ]


def test_trace_replay_reproduces_seeded_run_exactly(nat_stream):
    # Capture a lossy poisson run's traffic and replay it: every packet
    # must come back with the same arrival, steering verdict, results
    # and latency — drops and makespan included.
    config = NetConfig(engines=2, threads=2, packets=24, seed=1234,
                       rx_capacity=6, tx_capacity=4)
    seeded = run_stream(nat_stream, config)
    trace = capture_trace(seeded)
    assert len(trace) == seeded.generated
    assert all(event.gap >= 0 for event in trace)
    replayed = run_stream(
        nat_stream, dataclasses.replace(config, trace=trace)
    )
    assert _fingerprints(replayed) == _fingerprints(seeded)
    assert replayed.dropped == seeded.dropped
    assert replayed.cycles == seeded.cycles


def test_trace_replays_on_a_different_topology(nat_stream):
    # The trace is pure traffic: the same events on one engine with
    # oversize rings must complete every packet the source offered.
    config = NetConfig(engines=2, threads=2, packets=24, seed=1234,
                       rx_capacity=6, tx_capacity=4)
    trace = capture_trace(run_stream(nat_stream, config))
    wide = dataclasses.replace(
        config, trace=trace, engines=1,
        rx_capacity=len(trace) + 4, tx_capacity=len(trace) + 4,
    )
    result = run_stream(nat_stream, wide)
    assert result.completed == result.generated == len(trace)
    assert result.mismatches == []


def test_trace_events_carry_explicit_flows(nat_stream):
    # Replayed packets keep the recorded flow identity even if events
    # are deleted around them — the point of storing flows explicitly.
    config = NetConfig(engines=3, threads=1, packets=12, seed=5,
                       arrival="backlog", rx_capacity=16)
    seeded = run_stream(nat_stream, config)
    trace = capture_trace(seeded)
    thinned = trace[::2]
    result = run_stream(
        nat_stream,
        dataclasses.replace(
            config, trace=thinned, rx_capacity=len(trace) + 4
        ),
    )
    survivors = [p for p in seeded.packets][::2]
    assert [p.flow for p in result.packets] == [p.flow for p in survivors]
    assert [p.engine for p in result.packets] == [
        p.engine for p in survivors
    ]


def test_trace_validation_errors(nat_stream):
    good = TraceEvent(gap=0, flow=1, payload=(1, 2, 3))
    with pytest.raises(ValueError, match="negative gap"):
        NetRuntime(
            nat_stream,
            NetConfig(trace=(dataclasses.replace(good, gap=-1),)),
        )
    no_replay = dataclasses.replace(nat_stream, replay=None)
    with pytest.raises(ValueError, match="no replay constructor"):
        NetRuntime(no_replay, NetConfig(trace=(good,)))


def test_empty_trace_runs_clean(nat_stream):
    result = run_stream(nat_stream, NetConfig(trace=()))
    assert result.generated == result.completed == 0


def test_capture_trace_requires_kept_packets(nat_stream):
    result = run_stream(
        nat_stream, NetConfig(packets=4, arrival="backlog", rx_capacity=8)
    )
    result.packets = []
    with pytest.raises(ValueError, match="kept no packets"):
        capture_trace(result)


def test_truncation_by_cycle_budget(nat_stream):
    config = NetConfig(packets=64, seed=2, arrival="backlog", engines=1,
                       rx_capacity=80, max_cycles=2000)
    result = run_stream(nat_stream, config)
    assert result.truncated
    assert result.completed < result.generated
    # Conservation survives truncation: what the budget stranded on the
    # rings/engines is counted, not silently lost.
    assert result.inflight > 0
    assert (
        result.completed + result.dropped + result.inflight
        == result.generated
    )
    assert result.cycles <= 2000 + 5000  # last slice may overshoot a bit


# -- throughput zero-division guards (the driver dataclass used to
#    divide by run.cycles unguarded) --------------------------------------


def _empty_run() -> RunResult:
    return RunResult(cycles=0, thread_stats=[ThreadStats()], results=[])


def test_throughput_result_mbps_zero_cycles():
    result = ThroughputResult(
        run=_empty_run(), payload_bytes=64, packets=0, threads=1
    )
    assert result.mbps == 0.0
    assert result.cycles_per_packet == 0.0


def test_run_result_throughput_zero_cycles():
    assert _empty_run().throughput_mbps(64) == 0.0


def test_stream_result_mbps_zero_cycles():
    result = StreamResult(
        app="nat", config=NetConfig(), generated=0, completed=0, dropped=0,
        mismatches=[], cycles=0, latencies=[], payload_bits=0,
        rx_high_water=0, tx_high_water=0, engine_cycles=[0],
        engine_instructions=[0],
    )
    assert result.mbps == 0.0
    assert result.drop_rate == 0.0
    assert result.percentile(50) == -1
    assert result.latency_histogram() == {}
