"""Lexer unit tests."""

import pytest

from repro.errors import LexError
from repro.nova.lexer import Token, TokenKind, tokenize


def kinds(text):
    return [t.kind for t in tokenize(text)]


def texts(text):
    return [t.text for t in tokenize(text)[:-1]]


class TestBasicTokens:
    def test_empty_input_yields_eof(self):
        tokens = tokenize("")
        assert len(tokens) == 1
        assert tokens[0].kind is TokenKind.EOF

    def test_identifier(self):
        tok = tokenize("packet_count")[0]
        assert tok.kind is TokenKind.IDENT
        assert tok.text == "packet_count"

    def test_underscore_identifier(self):
        tok = tokenize("_tmp")[0]
        assert tok.kind is TokenKind.IDENT

    def test_keyword_recognized(self):
        tok = tokenize("layout")[0]
        assert tok.kind is TokenKind.KEYWORD

    def test_keyword_prefix_is_identifier(self):
        tok = tokenize("layouts")[0]
        assert tok.kind is TokenKind.IDENT

    def test_all_memory_keywords(self):
        for word in ("sram", "sdram", "scratch", "hash", "csr", "ctx_swap"):
            assert tokenize(word)[0].kind is TokenKind.KEYWORD


class TestNumbers:
    def test_decimal(self):
        tok = tokenize("42")[0]
        assert tok.kind is TokenKind.INT
        assert tok.value == 42

    def test_hex(self):
        assert tokenize("0xFF")[0].value == 255
        assert tokenize("0Xff")[0].value == 255

    def test_binary(self):
        assert tokenize("0b1010")[0].value == 10

    def test_zero(self):
        assert tokenize("0")[0].value == 0

    def test_malformed_hex_rejected(self):
        with pytest.raises(LexError):
            tokenize("0x")

    def test_malformed_binary_rejected(self):
        with pytest.raises(LexError):
            tokenize("0b")

    def test_digit_then_letter_rejected(self):
        with pytest.raises(LexError):
            tokenize("12abc")


class TestPunctuation:
    def test_maximal_munch_shift(self):
        assert texts("a << b") == ["a", "<<", "b"]

    def test_maximal_munch_arrow(self):
        assert texts("sram(0) <- x") == ["sram", "(", "0", ")", "<-", "x"]

    def test_concat_operator(self):
        assert texts("a ## b") == ["a", "##", "b"]

    def test_compare_vs_assign(self):
        assert texts("a == b = c := d") == ["a", "==", "b", "=", "c", ":=", "d"]

    def test_le_vs_lt(self):
        assert texts("a <= b < c") == ["a", "<=", "b", "<", "c"]

    def test_unknown_character(self):
        with pytest.raises(LexError):
            tokenize("a $ b")


class TestComments:
    def test_line_comment(self):
        assert texts("a // comment\nb") == ["a", "b"]

    def test_block_comment(self):
        assert texts("a /* x\ny */ b") == ["a", "b"]

    def test_unterminated_block_comment(self):
        with pytest.raises(LexError):
            tokenize("a /* never ends")

    def test_comment_only(self):
        assert kinds("// nothing") == [TokenKind.EOF]


class TestPositions:
    def test_line_and_column(self):
        tokens = tokenize("a\n  b")
        assert tokens[0].span.start.line == 1
        assert tokens[1].span.start.line == 2
        assert tokens[1].span.start.col == 3

    def test_filename_recorded(self):
        tok = tokenize("x", filename="test.nova")[0]
        assert tok.span.filename == "test.nova"

    def test_helpers(self):
        tok = tokenize("(")[0]
        assert tok.is_punct("(")
        assert not tok.is_punct(")")
        assert not tok.is_keyword("fun")
