"""Property-based tests for the corpus mutation engine.

The corpus is only useful if mutants stay *replayable*: a mutation
that produced a gap of -1, a payload word outside 32 bits or a flow
outside the entry's pool would be rejected by ``NetConfig.trace``
validation (or worse, crash the runtime mid-campaign) and the slot
would be wasted.  So validity-preservation gets properties, not
examples: arbitrary *chains* of trace mutations over arbitrary seeds
must keep :func:`repro.fuzz.corpus.trace_problems` empty, and a
mutated trace must always replay through the real runtime without
raising.  Uses hypothesis, like ``tests/test_memory_props.py``; the
scenario and app are built once per module so each property example
costs one (small) stream replay at most.
"""

import random
from dataclasses import replace

import pytest

hypothesis = pytest.importorskip("hypothesis")
from hypothesis import given, settings, strategies as st

from repro.fuzz.corpus import (
    TRACE_MUTATIONS,
    mutate_entry,
    mutate_topology,
    mutate_trace,
    trace_problems,
)
from repro.fuzz.netgen import (
    build_scenario_app,
    check_scenario,
    gen_scenario,
)
from repro.fuzz.corpus import entry_from_scenario
from repro.ixp.net import NetRuntime, run_stream


@pytest.fixture(scope="module")
def recorded():
    """One captured scenario (seed 1), its app and a corpus entry."""
    scenario = gen_scenario(1)
    app = build_scenario_app(scenario)
    report = check_scenario(scenario, app=app)
    assert report.ok and report.trace
    trace = report.trace[:10]  # keep every replay example small
    entry = entry_from_scenario(scenario, trace, report.signature)
    return scenario, app, entry


ops = st.lists(
    st.sampled_from(TRACE_MUTATIONS), min_size=1, max_size=6
)


@given(ops=ops, seed=st.integers(min_value=0, max_value=2**32))
@settings(max_examples=60, deadline=None)
def test_mutation_chains_preserve_trace_validity(recorded, ops, seed):
    """Any chain of trace mutations keeps the trace valid: non-empty,
    non-negative integer gaps, 32-bit payload words, flows inside the
    entry's pool — the exact contract ``NetConfig.trace`` validation
    enforces."""
    _scenario, _app, entry = recorded
    rng = random.Random(seed)
    trace = entry.trace
    assert trace_problems(trace, entry.flows) == []
    for op in ops:
        trace = mutate_trace(rng, op, trace, entry.flows)
        assert trace_problems(trace, entry.flows) == []
    assert all(event.payload_bytes == 4 * len(event.payload)
               for event in trace)


@given(seed=st.integers(min_value=0, max_value=2**32))
@settings(max_examples=25, deadline=None)
def test_mutated_entries_replay_without_crashing(recorded, seed):
    """mutate -> replay never raises: whatever ``mutate_entry`` draws
    (trace op or topology swap), the runtime accepts the config and
    streams it to completion with packets conserved."""
    scenario, app, entry = recorded
    rng = random.Random(seed)
    _op, trace, config = mutate_entry(rng, entry)
    assert trace_problems(trace, entry.flows) == []
    NetRuntime(app, replace(config, trace=trace))  # validation accepts
    result = run_stream(app, replace(config, trace=trace))
    assert result.generated == len(trace)
    assert (
        result.completed + result.dropped + result.inflight
        == result.generated
    )


@given(seed=st.integers(min_value=0, max_value=2**32))
@settings(max_examples=40, deadline=None)
def test_topology_swaps_are_always_accepted(recorded, seed):
    """Every swapped topology comes from the generator's own choice
    space, so ``NetRuntime`` validation must accept it as-is."""
    scenario, app, entry = recorded
    rng = random.Random(seed)
    swapped = mutate_topology(rng, entry.config())
    NetRuntime(app, replace(swapped, trace=entry.trace))


@given(seed=st.integers(min_value=0, max_value=2**32))
@settings(max_examples=60, deadline=None)
def test_mutations_never_invent_flows_or_payload_words(recorded, seed):
    """Stronger than pool membership: mutated events are *rearranged
    or retokened copies* — every (flow, payload-tail) pair already
    existed in the base trace or is a retoken of one, so replay
    expectations stay derivable from the entry's program alone."""
    _scenario, _app, entry = recorded
    rng = random.Random(seed)
    base_tails = {event.payload[1:] for event in entry.trace}
    op = rng.choice(TRACE_MUTATIONS)
    trace = mutate_trace(rng, op, entry.trace, entry.flows)
    for event in trace:
        assert event.payload[1:] in base_tails
        assert event.flow in set(entry.flows)
        assert event.payload[0] == event.flow & 0xFFFFFFFF
