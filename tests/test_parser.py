"""Parser unit tests."""

import pytest

from repro.errors import ParseError
from repro.nova import ast
from repro.nova.parser import parse_expr, parse_program


class TestExpressions:
    def test_precedence_mul_over_add(self):
        e = parse_expr("a + b * c")
        assert isinstance(e, ast.BinOp) and e.op == "+"
        assert isinstance(e.right, ast.BinOp) and e.right.op == "*"

    def test_precedence_shift_under_compare(self):
        e = parse_expr("a << 2 < b")
        assert e.op == "<"
        assert isinstance(e.left, ast.BinOp) and e.left.op == "<<"

    def test_precedence_bitand_over_bitor(self):
        e = parse_expr("a | b & c")
        assert e.op == "|"
        assert e.right.op == "&"

    def test_left_associativity(self):
        e = parse_expr("a - b - c")
        assert e.op == "-"
        assert isinstance(e.left, ast.BinOp) and e.left.op == "-"

    def test_unary_chain(self):
        e = parse_expr("~-a")
        assert isinstance(e, ast.UnOp) and e.op == "~"
        assert isinstance(e.operand, ast.UnOp) and e.operand.op == "-"

    def test_field_access_chain(self):
        e = parse_expr("u.src_address.a1")
        assert isinstance(e, ast.FieldAccess) and e.field_name == "a1"
        assert isinstance(e.base, ast.FieldAccess)

    def test_tuple_projection(self):
        e = parse_expr("t.0")
        assert isinstance(e, ast.FieldAccess) and e.field_name == "0"

    def test_unit_literal(self):
        assert isinstance(parse_expr("()"), ast.UnitLit)

    def test_tuple(self):
        e = parse_expr("(a, b, c)")
        assert isinstance(e, ast.TupleExpr) and len(e.elems) == 3

    def test_parenthesized_is_not_tuple(self):
        assert isinstance(parse_expr("(a)"), ast.VarRef)

    def test_record_literal(self):
        e = parse_expr("[x = 1, y = b]")
        assert isinstance(e, ast.RecordExpr)
        assert [n for n, _ in e.fields] == ["x", "y"]

    def test_record_punning(self):
        e = parse_expr("[x, y]")
        assert all(isinstance(v, ast.VarRef) for _, v in e.fields)

    def test_call_tuple(self):
        e = parse_expr("f(a, b)")
        assert isinstance(e, ast.Call) and isinstance(e.arg, ast.TupleExpr)

    def test_call_record(self):
        e = parse_expr("g[x = 1]")
        assert isinstance(e, ast.Call) and isinstance(e.arg, ast.RecordExpr)

    def test_if_else(self):
        e = parse_expr("if (a < b) x else y")
        assert isinstance(e, ast.IfExpr)
        assert e.else_branch is not None

    def test_trailing_junk_rejected(self):
        with pytest.raises(ParseError):
            parse_expr("a b")


class TestMemoryAndHardware:
    def test_sram_read(self):
        e = parse_expr("sram(100)")
        assert isinstance(e, ast.MemRead)
        assert e.space == "sram" and e.count is None

    def test_sram_read_with_count(self):
        e = parse_expr("sram(100, 4)")
        assert e.count == 4

    def test_sram_write(self):
        e = parse_expr("sram(100) <- (a, b)")
        assert isinstance(e, ast.MemWrite)

    def test_sdram_and_scratch(self):
        assert parse_expr("sdram(0, 2)").space == "sdram"
        assert parse_expr("scratch(0)").space == "scratch"

    def test_hash(self):
        assert isinstance(parse_expr("hash(x)"), ast.HashOp)

    def test_csr_read_write(self):
        r = parse_expr("csr(3)")
        assert isinstance(r, ast.CsrOp) and r.value is None
        w = parse_expr("csr(3) <- x")
        assert w.value is not None

    def test_ctx_swap(self):
        assert isinstance(parse_expr("ctx_swap()"), ast.CtxSwap)

    def test_unpack(self):
        e = parse_expr("unpack[hdr](p)")
        assert isinstance(e, ast.UnpackExpr)

    def test_pack_with_record(self):
        e = parse_expr("pack[hdr] [a = 1, b = 2]")
        assert isinstance(e, ast.PackExpr)
        assert isinstance(e.arg, ast.RecordExpr)

    def test_pack_with_expr(self):
        e = parse_expr("pack[hdr](u)")
        assert isinstance(e.arg, ast.VarRef)

    def test_unpack_concat_layout(self):
        e = parse_expr("unpack[{16} ## lyt ## {24}](p)")
        assert isinstance(e, ast.UnpackExpr)


class TestStatements:
    def test_block_with_let(self):
        e = parse_expr("{ let x = 1; x + 1 }")
        assert isinstance(e, ast.Block)
        assert len(e.stmts) == 1 and e.result is not None

    def test_block_without_result(self):
        e = parse_expr("{ let x = 1; }")
        assert e.result is None

    def test_assignment(self):
        e = parse_expr("{ x := x + 1; }")
        assert isinstance(e.stmts[0], ast.AssignStmt)

    def test_tuple_pattern_let(self):
        e = parse_expr("{ let (a, b) = sram(0); a }")
        let = e.stmts[0]
        assert isinstance(let.pat, ast.TuplePat)

    def test_while(self):
        e = parse_expr("while (i < 4) { i := i + 1; }")
        assert isinstance(e, ast.WhileExpr)

    def test_try_handle(self):
        e = parse_expr(
            "try { raise E (1) } handle E (x) { x } handle F () { 0 }"
        )
        assert isinstance(e, ast.TryExpr)
        assert [h.exn for h in e.handlers] == ["E", "F"]

    def test_try_without_handler_rejected(self):
        with pytest.raises(ParseError):
            parse_expr("try { 1 }")

    def test_raise_record(self):
        e = parse_expr("raise X [b = 1, c = 2]")
        assert isinstance(e, ast.RaiseExpr)
        assert isinstance(e.arg, ast.RecordExpr)

    def test_raise_unit(self):
        e = parse_expr("raise X")
        assert isinstance(e.arg, ast.UnitLit)


class TestPrograms:
    def test_layout_and_fun(self):
        p = parse_program(
            """
            layout h = { a : 8, b : 24 };
            fun main (x) : word { x }
            """
        )
        assert [l.name for l in p.layouts] == ["h"]
        assert [f.name for f in p.funs] == ["main"]

    def test_record_params(self):
        p = parse_program("fun g [x1, x2 : word] { x1 }")
        assert isinstance(p.funs[0].param, ast.RecordPat)

    def test_typed_params(self):
        p = parse_program("fun f (p : packed(h), n : word) : word { n }")
        pat = p.funs[0].param
        assert isinstance(pat.elems[0].ty, ast.PackedTE)

    def test_single_param_wrapped_in_tuple(self):
        p = parse_program("fun f (x) { x }")
        assert isinstance(p.funs[0].param, ast.TuplePat)

    def test_missing_semicolon_rejected(self):
        with pytest.raises(ParseError):
            parse_program("layout h = { a : 8 }")

    def test_stray_toplevel_rejected(self):
        with pytest.raises(ParseError):
            parse_program("let x = 1;")

    def test_fun_lookup(self):
        p = parse_program("fun a () { 1 } fun b () { 2 }")
        assert p.fun("b").name == "b"
        with pytest.raises(KeyError):
            p.fun("c")
