"""Content-addressed compile cache (`repro.cache`) correctness.

The cache key must cover *everything* a compilation depends on — source
bytes and the full options tree — and unreadable entries must read as
misses, never as crashes or stale artifacts.
"""

import pickle
from concurrent.futures import ProcessPoolExecutor

import pytest

from repro.cache import (
    CACHE_FORMAT,
    CompileCache,
    cache_key,
    cached_compile,
    options_fingerprint,
)
from repro.compiler import CompileOptions, compile_nova
from repro.ilp.solve import SolveOptions
from repro.trace import Tracer

SOURCE = """
layout h = { a : 8, b : 24 };
fun main (x) {
  let u = unpack[h](x);
  u.a + u.b
}
"""


@pytest.fixture
def cache(tmp_path):
    return CompileCache(tmp_path / "cache")


def test_byte_identical_rerun_hits(cache):
    options = CompileOptions()
    first, state1 = cached_compile(SOURCE, options=options, cache=cache)
    second, state2 = cached_compile(SOURCE, options=options, cache=cache)
    assert (state1, state2) == ("miss", "hit")
    assert cache.stats.hits == 1 and cache.stats.misses == 1
    # The artifact is the full compilation, not a summary.
    assert second.flowgraph.num_instructions() == first.flowgraph.num_instructions()
    assert second.alloc.status == first.alloc.status
    assert second.physical.pretty() == first.physical.pretty()


def test_source_change_misses(cache):
    options = CompileOptions()
    cached_compile(SOURCE, options=options, cache=cache)
    _, state = cached_compile(SOURCE + "\n", options=options, cache=cache)
    assert state == "miss"


def test_different_alloc_options_miss(cache):
    plain = CompileOptions()
    cached_compile(SOURCE, options=plain, cache=cache)
    two_phase = CompileOptions()
    two_phase.alloc.two_phase = True
    _, state = cached_compile(SOURCE, options=two_phase, cache=cache)
    assert state == "miss"
    assert cache_key(SOURCE, plain) != cache_key(SOURCE, two_phase)


def test_different_solve_options_miss(cache):
    loose = CompileOptions()
    loose.alloc.solve = SolveOptions(gap=1e-2)
    tight = CompileOptions()
    tight.alloc.solve = SolveOptions(gap=1e-6)
    cached_compile(SOURCE, options=loose, cache=cache)
    _, state = cached_compile(SOURCE, options=tight, cache=cache)
    assert state == "miss"
    assert options_fingerprint(loose) != options_fingerprint(tight)


def test_fingerprint_is_deterministic():
    assert options_fingerprint(CompileOptions()) == options_fingerprint(
        CompileOptions()
    )
    assert cache_key(SOURCE, CompileOptions()) == cache_key(
        SOURCE, CompileOptions()
    )


def test_unfingerprintable_option_raises_naming_the_field():
    # The old fallback hashed repr(value), which for arbitrary objects
    # embeds a memory address — two identical option trees fingerprinted
    # differently run-to-run, silently turning every lookup into a miss.
    # Non-plain data must be a loud error naming the offending field.
    options = CompileOptions()
    options.alloc.solve.node_limit = object()
    with pytest.raises(TypeError, match=r"options\.alloc\.solve\.node_limit"):
        options_fingerprint(options)
    with pytest.raises(TypeError, match="object"):
        cache_key(SOURCE, options)


def test_hint_fields_are_fingerprint_excluded():
    # hint_dir/hint_key are runtime plumbing for the solver portfolio,
    # not part of the problem statement: the daemon sets them on every
    # request and cached artifacts must still hit.
    plain = CompileOptions()
    hinted = CompileOptions()
    hinted.alloc.solve.hint_dir = "/anywhere/hints"
    hinted.alloc.solve.hint_key = "ab" * 32
    assert options_fingerprint(plain) == options_fingerprint(hinted)
    assert cache_key(SOURCE, plain) == cache_key(SOURCE, hinted)


def _race_writer(root, source, comp, rounds):
    cache = CompileCache(root)
    for _ in range(rounds):
        cache.put(source, None, comp)
    return cache.stats.as_dict()


def _race_reader(root, source, rounds):
    cache = CompileCache(root)
    seen = 0
    for _ in range(rounds):
        if cache.get(source, None) is not None:
            seen += 1
    return seen, cache.stats.invalidations


def test_concurrent_put_never_exposes_a_torn_entry(tmp_path):
    # Two processes hammer put() on the same key while two more read it
    # back.  put() writes to a temp file and os.replace()s into place,
    # so a reader must always see either the old or the new complete
    # artifact — a torn read would unpickle garbage and count an
    # invalidation.
    root = str(tmp_path / "cache")
    options = CompileOptions()
    options.run_allocator = False  # virtual-only: small + fast artifact
    comp = compile_nova(SOURCE, options=options).slim()
    CompileCache(root).put(SOURCE, None, comp)  # entry exists up front
    rounds = 60
    with ProcessPoolExecutor(max_workers=4) as pool:
        writers = [
            pool.submit(_race_writer, root, SOURCE, comp, rounds)
            for _ in range(2)
        ]
        readers = [
            pool.submit(_race_reader, root, SOURCE, rounds)
            for _ in range(2)
        ]
        for writer in writers:
            assert writer.result()["writes"] == rounds
        for reader in readers:
            seen, invalidations = reader.result()
            assert seen == rounds  # never a miss once the entry exists
            assert invalidations == 0  # never a torn/corrupt read


def test_corrupt_entry_is_a_miss_not_a_crash(cache):
    options = CompileOptions()
    cached_compile(SOURCE, options=options, cache=cache)
    path = cache.path_for(cache_key(SOURCE, options))
    path.write_bytes(b"not a pickle at all")
    result = cache.get(SOURCE, options)
    assert result is None
    assert cache.stats.invalidations == 1
    assert not path.exists()  # corrupt entry deleted
    # The next compile repopulates it.
    _, state = cached_compile(SOURCE, options=options, cache=cache)
    assert state == "miss"
    assert cache.get(SOURCE, options) is not None


def test_truncated_entry_is_a_miss(cache):
    options = CompileOptions()
    cached_compile(SOURCE, options=options, cache=cache)
    path = cache.path_for(cache_key(SOURCE, options))
    blob = path.read_bytes()
    path.write_bytes(blob[: len(blob) // 2])
    assert cache.get(SOURCE, options) is None
    assert cache.stats.invalidations == 1


def test_wrong_format_version_is_a_miss(cache):
    options = CompileOptions()
    comp = compile_nova(SOURCE, options=options)
    key = cache_key(SOURCE, options)
    path = cache.path_for(key)
    path.parent.mkdir(parents=True, exist_ok=True)
    entry = {"format": CACHE_FORMAT + 1, "key": key, "compilation": comp}
    path.write_bytes(pickle.dumps(entry))
    assert cache.get(SOURCE, options) is None
    assert cache.stats.invalidations == 1


def test_cached_artifact_never_embeds_a_tracer(tmp_path):
    tracer = Tracer()
    cache = CompileCache(tmp_path / "cache", tracer)
    compiled, _ = cached_compile(SOURCE, options=None, cache=cache, tracer=tracer)
    assert compiled.trace is tracer  # the live compile keeps its tracer
    hit = cache.get(SOURCE, None)
    assert hit.trace is None  # ...but the stored artifact does not
    assert hit.alloc.model is None  # nor the multi-MB raw ILP model
    assert hit.alloc.variables > 0  # the summary ints survive


def test_lookup_and_store_record_spans(tmp_path):
    tracer = Tracer()
    cache = CompileCache(tmp_path / "cache", tracer)
    cached_compile(SOURCE, options=None, cache=cache, tracer=tracer)
    cached_compile(SOURCE, options=None, cache=cache, tracer=tracer)
    lookups = tracer.all("cache.lookup")
    assert [s.counters["outcome"] for s in lookups] == ["miss", "hit"]
    stores = tracer.all("cache.store")
    assert len(stores) == 1 and stores[0].counters["bytes"] > 0
