"""Codegen cache semantics: identity keying, eviction, sharing, fallback.

The compiled-function cache must behave exactly like the decode cache
(``machine._DECODED``): keyed by graph *identity* (two equal graphs get
two compiles; one graph gets one), entries evicted when the graph is
garbage collected so ``id()`` reuse cannot alias, and every Machine
sharing a FlowGraph sharing one generated function.  An instruction the
generator does not cover makes the whole graph fall back to the decoded
tier — memoized, graceful, never an error.
"""

import gc

from repro.ixp import codegen, isa
from repro.ixp.banks import Bank
from repro.ixp.codegen import compiled_graph
from repro.ixp.flowgraph import Block, FlowGraph
from repro.ixp.machine import Machine

from tests.helpers import compile_virtual

SOURCE = "fun main (x, y) { let a = (x + y); a ^ 3 }"


def _a(i):
    return isa.PhysReg(Bank.A, i)


def _tiny_graph():
    return FlowGraph(
        "entry",
        {
            "entry": Block(
                "entry",
                [
                    isa.Immed(_a(0), 5),
                    isa.Alu(_a(1), "add", _a(0), isa.Imm(2)),
                    isa.HaltInstr((_a(1),)),
                ],
            )
        },
        (),
    )


def test_two_machines_sharing_a_graph_share_one_compiled_function():
    comp = compile_virtual(SOURCE)
    graph = comp.flowgraph
    m1 = Machine(graph, physical=False, mode="compiled")
    m2 = Machine(graph, physical=False, mode="compiled")
    assert m1.compiled is not None
    assert m1.compiled is m2.compiled
    # Each bind is a fresh closure over machine state, but both close
    # over the same generated code object.
    assert m1._slice is not m2._slice
    assert m1._slice.__code__ is m2._slice.__code__


def test_cache_is_keyed_by_graph_identity_not_structure():
    # The same source compiled twice gives structurally equal graphs
    # with distinct identities: each must compile separately.
    g1 = compile_virtual(SOURCE).flowgraph
    g2 = compile_virtual(SOURCE).flowgraph
    c1 = compiled_graph(g1, False)
    c2 = compiled_graph(g2, False)
    assert c1 is not None and c2 is not None
    assert c1 is not c2
    # ...while recompiling the same graph object hits the cache.
    assert compiled_graph(g1, False) is c1


def test_physical_and_instrumented_variants_cache_separately():
    graph = _tiny_graph()
    plain = compiled_graph(graph, True, instrumented=False)
    instrumented = compiled_graph(graph, True, instrumented=True)
    assert plain is not None and instrumented is not None
    assert plain is not instrumented
    assert instrumented.instrumented and not plain.instrumented
    assert compiled_graph(graph, True, instrumented=True) is instrumented


def test_entries_evict_when_the_graph_is_collected():
    graph = _tiny_graph()
    compiled = compiled_graph(graph, True)
    assert compiled is not None
    key = (id(graph), True, False)
    assert key in codegen._COMPILED
    del graph, compiled
    gc.collect()
    assert key not in codegen._COMPILED


class _Mystery(isa.Instr):
    """An instruction kind the generator has never heard of."""

    def __repr__(self):
        return "mystery"


def _graph_with_mystery():
    # The mystery op sits on a never-executed path, so the decoded
    # fallback runs the program to completion (lazy faulting keeps
    # unreached illegal instructions silent on every tier).
    return FlowGraph(
        "entry",
        {
            "entry": Block(
                "entry",
                [isa.Immed(_a(0), 7), isa.Br("good")],
            ),
            "bad": Block("bad", [_Mystery(), isa.HaltInstr(())]),
            "good": Block("good", [isa.HaltInstr((_a(0),))]),
        },
        (),
    )


def test_uncovered_op_falls_back_to_decoded_tier():
    graph = _graph_with_mystery()
    assert compiled_graph(graph, True) is None
    # The decline is memoized like a successful compile.
    assert compiled_graph(graph, True) is None
    machine = Machine(graph, physical=True, mode="compiled")
    assert machine.compiled is None
    assert machine.decoded is not None
    assert machine.run().results == [(0, (7,))]
