#!/usr/bin/env python3
"""Quickstart: compile a Nova program and watch it run on the IXP1200.

This walks the whole pipeline on a small packet-counting program:
parse → typecheck → CPS → ILP register/bank allocation → simulation,
printing the interesting artifacts along the way.

Run:  python examples/quickstart.py
"""

from repro import compile_nova
from repro.cps import ir
from repro.ixp.machine import Machine
from repro.ixp.memory import MemorySystem

SOURCE = """
// Count IPv4 vs other packets in a small ring of headers.

layout ip_ver = { version : 4, rest : 28 };

fun classify (w) : word {
  let u = unpack[ip_ver](w);
  if (u.version == 4) 1 else 0
}

fun main (ring_base, n) : word {
  let i = 0;
  let ipv4 = 0;
  while (i < n) {
    let w = sram(ring_base + i);
    ipv4 := ipv4 + classify(w);
    i := i + 1;
  };
  ipv4
}
"""


def main() -> None:
    print("=== Compiling ===")
    result = compile_nova(SOURCE)

    print("\n--- optimized CPS (static single use form) ---")
    print(ir.pretty(result.ssu.term))

    print("--- virtual flowgraph ---")
    print(result.flowgraph.pretty())

    alloc = result.alloc
    assert alloc is not None
    print("--- ILP allocation ---")
    print(
        f"status={alloc.status}  variables={alloc.variables}  "
        f"constraints={alloc.constraints}"
    )
    print(f"inter-bank moves={alloc.moves}  spills={alloc.spills}")

    print("\n--- allocated (physical) code ---")
    print(result.physical.pretty())

    print("=== Running on the simulator ===")
    memory = MemorySystem.create()
    headers = [0x45000054, 0x60012345, 0x45000028, 0x60FF1122, 0x45ABCDEF]
    memory["sram"].load_words(64, headers)

    inputs = result.make_inputs(ring_base=64, n=len(headers))
    locations = alloc.decoded.input_locations
    physical_inputs = {}
    for temp, value in inputs.items():
        loc = locations.get(temp)
        if loc is not None:
            physical_inputs[(loc[1].bank, loc[1].index)] = value

    machine = Machine(
        result.physical,
        memory=memory,
        physical=True,
        input_provider=lambda tid, it: physical_inputs if it == 0 else None,
    )
    run = machine.run()
    (tid, values), = run.results
    print(f"IPv4 packets counted: {values[0]}  (expected 3)")
    print(f"cycles: {run.cycles}  instructions: {run.instructions}")


if __name__ == "__main__":
    main()
