#!/usr/bin/env python3
"""Layouts and misalignment: the paper's Section 3.2 worked example.

Real packet data does not respect SDRAM/SRAM alignment.  Nova's layout
sublanguage lets one definition serve every alignment: this example
compiles the paper's three-way-aligned header extractor, shows the
*different* shift/mask code the compiler generates per branch, and runs
all three alignments on the simulator.

Run:  python examples/layout_alignment.py
"""

from repro import compile_nova
from repro.ixp.machine import Machine
from repro.ixp.memory import MemorySystem

# Directly from the paper (Section 3.2), completed into a program: a
# 56-bit layout that can sit at offsets 0, 16 or 24 within 3 words.
SOURCE = """
layout lyt = { x : 16, y : 32, z : 8 };   // size = 56 bits

fun main (alignment, base) : word {
  let (p0, p1, p2) = sram(base);
  let udata =
    if (alignment == 0)
      unpack[lyt ## {40}]((p0, p1, p2))
    else if (alignment == 16)
      unpack[{16} ## lyt ## {24}]((p0, p1, p2))
    else
      unpack[{24} ## lyt ## {16}]((p0, p1, p2));
  if (udata.x == 0x3456) udata.y else 0xffffffff
}
"""


def place_at_alignment(alignment: int) -> list[int]:
    """Pack x=0x3456, y=0xCAFEBABE, z=0x77 at the given bit offset."""
    bits = (0x3456 << 40) | (0xCAFEBABE << 8) | 0x77  # the 56-bit value
    stream = bits << (96 - 56 - alignment)
    return [(stream >> 64) & 0xFFFFFFFF, (stream >> 32) & 0xFFFFFFFF, stream & 0xFFFFFFFF]


def main() -> None:
    result = compile_nova(SOURCE)
    print("--- allocated code (one extractor, three alignments) ---")
    print(result.physical.pretty())

    for alignment in (0, 16, 24):
        memory = MemorySystem.create()
        memory["sram"].load_words(8, place_at_alignment(alignment))
        inputs = result.make_inputs(alignment=alignment, base=8)
        locations = result.alloc.decoded.input_locations
        physical = {}
        for temp, value in inputs.items():
            loc = locations.get(temp)
            if loc is not None:
                physical[(loc[1].bank, loc[1].index)] = value
        machine = Machine(
            result.physical,
            memory=memory,
            physical=True,
            input_provider=lambda tid, it, p=physical: p if it == 0 else None,
        )
        run = machine.run()
        (_, values), = run.results
        print(
            f"alignment {alignment:2d}: y = {values[0]:#010x} "
            f"({'ok' if values[0] == 0xCAFEBABE else 'WRONG'})"
        )
        assert values[0] == 0xCAFEBABE


if __name__ == "__main__":
    main()
