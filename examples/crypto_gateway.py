#!/usr/bin/env python3
"""A crypto gateway: AES and KASUMI line-rate encryption on the IXP1200.

Compiles the paper's two cipher benchmarks, validates the simulated
micro-engine output against the pure-Python references, and measures
multi-threaded throughput at the 233 MHz IXP1200 clock — the Section 11
experiment.

Run:  python examples/crypto_gateway.py          (takes ~30s: 2 ILP solves)
"""

from repro.apps import build_aes_app, build_kasumi_app
from repro.apps.aes_nova import aes_reference_ciphertext
from repro.apps.kasumi_nova import kasumi_reference_ciphertext
from repro.apps.driver import run_physical_threads
from repro.compiler import CompileOptions, compile_nova


def compile_app(app):
    options = CompileOptions()
    options.alloc.solve.time_limit = 900
    print(f"[{app.name}] compiling (ILP bank assignment + coloring)...")
    comp = compile_nova(app.source, options=options)
    alloc = comp.alloc
    print(
        f"[{app.name}] {alloc.status}: {alloc.variables} vars, "
        f"{alloc.moves} moves, {alloc.spills} spills, "
        f"solve {alloc.integer_seconds:.1f}s"
    )
    return comp


def validate(comp, app, reference_words, payload_words):
    """One packet through the allocated code; compare the ciphertext."""
    result = run_physical_threads(
        comp, app, payload_words, threads=1, packets_per_thread=1
    )
    base = app.inputs["base"]
    got = result.run  # noqa: F841 — cycles live here
    # Re-run to read memory (run_physical_threads owns its memory).
    from repro.ixp.memory import MemorySystem

    memory = MemorySystem.create()
    for space, chunks in app.memory_image.items():
        for addr, words in chunks:
            memory[space].load_words(addr, words)
    from repro.ixp.machine import Machine

    raw = comp.make_inputs(**app.inputs)
    locations = comp.alloc.decoded.input_locations
    inputs = {}
    for temp, value in raw.items():
        loc = locations.get(temp)
        if loc is not None:
            inputs[(loc[1].bank, loc[1].index)] = value
    machine = Machine(
        comp.physical,
        memory=memory,
        physical=True,
        input_provider=lambda tid, it: inputs if it == 0 else None,
    )
    machine.run()
    got_words = memory["sdram"].dump_words(base, len(reference_words))
    assert got_words == reference_words, "simulated ciphertext mismatch!"
    print(f"[{app.name}] ciphertext verified against the reference")


def main() -> None:
    # --- AES ---
    payload = bytes(range(16))
    aes_app = build_aes_app(payload=payload)
    aes = compile_app(aes_app)
    words = [int.from_bytes(payload[i : i + 4], "big") for i in (0, 4, 8, 12)]
    validate(aes, aes_app, aes_reference_ciphertext(payload), words)

    # --- KASUMI ---
    kpayload = bytes(range(8))
    kasumi_app = build_kasumi_app(payload=kpayload)
    kasumi = compile_app(kasumi_app)
    kwords = [int.from_bytes(kpayload[i : i + 4], "big") for i in (0, 4)]
    validate(kasumi, kasumi_app, kasumi_reference_ciphertext(kpayload), kwords)

    # --- throughput sweep (Section 11) ---
    print("\npayload sweep, 4 threads, 233 MHz:")
    print(f"{'cipher':8s} {'payload':>8s} {'Mb/s':>8s} {'cyc/pkt':>9s}")
    for app, comp, block in ((aes_app, aes, 16), (kasumi_app, kasumi, 8)):
        for payload_bytes in (block, block * 2, 256):
            data = bytes((i * 31 + 5) & 0xFF for i in range(payload_bytes))
            pw = [
                int.from_bytes(data[i : i + 4], "big")
                for i in range(0, len(data), 4)
            ]
            res = run_physical_threads(
                comp,
                app,
                pw,
                threads=4,
                packets_per_thread=4,
                input_overrides={"nblocks": payload_bytes // block},
            )
            print(
                f"{app.name:8s} {payload_bytes:>7d}B {res.mbps:>8.1f} "
                f"{res.cycles_per_packet:>9.0f}"
            )


if __name__ == "__main__":
    main()
