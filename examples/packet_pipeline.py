#!/usr/bin/env python3
"""An IPv6→IPv4 NAT fast path, end to end.

The paper's third benchmark as a runnable scenario: a stream of IPv6
packets arrives in SDRAM; the compiled Nova fast path translates each
header through the hash-indexed mapping table, moves the packet start,
fills in the IPv4 checksum, and punts non-IPv6 packets to the slow path
via an exception.

Run:  python examples/packet_pipeline.py         (takes ~10s: 1 ILP solve)
"""

from repro.apps import build_nat_app
from repro.apps.nat_nova import NAT_TABLE_BASE, nat_reference_output
from repro.apps.refimpl import nat as nat_ref
from repro.compiler import CompileOptions, compile_nova
from repro.ixp.machine import Machine
from repro.ixp.memory import MemorySystem


def make_packets():
    """A small mixed traffic sample: three IPv6 flows + one IPv4 stray."""
    flows = [
        ((0x20010DB8, 0, 0, 0x11), (0x20010DB8, 0, 0, 0x21), 120, 6, 61),
        ((0x20010DB8, 0, 0, 0x12), (0x20010DB8, 0, 0, 0x22), 48, 17, 64),
        ((0x20010DB8, 0, 0, 0x13), (0x20010DB8, 0, 0, 0x23), 1280, 6, 2),
    ]
    packets = []
    mappings = {}
    for i, (src, dst, plen, proto, hop) in enumerate(flows):
        w0 = (6 << 28) | ((i * 3) << 20) | (0x100 + i)
        w1 = (plen << 16) | (proto << 8) | hop
        packets.append([w0, w1, *src, *dst])
        mappings[src] = 0x0A640000 + 2 * i + 1
        mappings[dst] = 0x0A640000 + 2 * i + 2
    # One stray IPv4 packet (version 4): must take the slow path.
    packets.append([(4 << 28) | 0x5001234] + [0] * 9)
    return packets, mappings


def main() -> None:
    packets, mappings = make_packets()
    app = build_nat_app(ipv6_words=packets[0], mappings=mappings)

    options = CompileOptions()
    options.alloc.solve.time_limit = 900
    print("compiling the NAT fast path...")
    comp = compile_nova(app.source, options=options)
    print(
        f"allocated: {comp.alloc.moves} moves, {comp.alloc.spills} spills, "
        f"{comp.physical.num_instructions()} instructions"
    )

    memory = MemorySystem.create()
    memory["sram"].load_words(
        NAT_TABLE_BASE, nat_ref.build_nat_table(mappings)
    )
    stride = 0x40
    base = 0x200
    for i, packet in enumerate(packets):
        memory["sdram"].load_words(base + i * stride, packet)

    locations = comp.alloc.decoded.input_locations
    name_map = comp.inputs_by_name()

    def provider(tid: int, iteration: int):
        if iteration >= len(packets):
            return None
        inputs = {}
        for temp in name_map["base"]:
            loc = locations.get(temp)
            if loc is not None:
                inputs[(loc[1].bank, loc[1].index)] = base + iteration * stride
        return inputs

    machine = Machine(
        comp.physical, memory=memory, physical=True, input_provider=provider
    )
    run = machine.run()

    print(f"\nprocessed {len(run.results)} packets in {run.cycles} cycles")
    for i, (_, values) in enumerate(run.results):
        code = values[0]
        if code == 0xFFFFFFFF:
            print(f"  packet {i}: not IPv6 -> slow path")
            continue
        if code == 0xFFFFFFFE:
            print(f"  packet {i}: no mapping -> slow path")
            continue
        header = memory["sdram"].dump_words(base + i * stride + 5, 5)
        expect, _ = nat_reference_output(packets[i], mappings)
        status = "OK" if header == expect else "MISMATCH"
        print(
            f"  packet {i}: IPv4 {header[3]:#010x} -> {header[4]:#010x} "
            f"checksum={code:#06x} [{status}]"
        )
        assert header == expect


if __name__ == "__main__":
    main()
