#!/usr/bin/env python3
"""The full fast path: receive FIFO → process → transmit FIFO.

The paper notes that each application ships with "code that synchronizes
with the receive scheduler, reads in the packet from the receive FIFOs
..., synchronizes with the transmit scheduler" (Section 11).  This
example is that harness in Nova: four hardware threads share a work
queue guarded by a lock bit, pull packet elements from the receive FIFO,
decrement the IPv4 TTL (with an incremental RFC-1624-style checksum
fix-up through layouts), archive the header to SDRAM, and push the
packet to the transmit FIFO.

Run:  python examples/forwarding_loop.py          (takes ~10s: 1 ILP solve)
"""

from repro.compiler import CompileOptions, compile_nova
from repro.ixp.machine import Machine
from repro.ixp.memory import MemorySystem

SOURCE = """
// Shared work queue: scratch[0] is the next free element index, guarded
// by lock bit 0.  Each main() invocation forwards one packet.

layout ipv4 = {
  version : 4, ihl : 4, tos : 8, total_length : 16,
  ident : 16, flags_frag : 16,
  ttl : 8, protocol : 8, checksum : 16,
  src : 32, dst : 32
};

fun claim_element () : word {
  lock(0);
  let index = scratch(0);
  scratch(0) <- (index + 1);
  unlock(0);
  index
}

fun main (nelems, archive) : word {
  try {
    let index = claim_element();
    if (index >= nelems) raise Drained (index);

    // Receive: one 16-word FIFO element holds the header + start of
    // payload; the header is the first five words.
    let elem = index << 4;
    let (h0, h1, h2, h3, h4, p0, p1, p2) = rfifo(elem);
    let u = unpack[ipv4]((h0, h1, h2, h3, h4));
    if (u.version != 4) raise NotIpv4 (u.version);
    if (u.ttl == 0) raise Expired (index);

    // Decrement TTL and patch the checksum incrementally (the ttl
    // field sits in the high byte of the third word; subtracting one
    // from it adds 0x100 to the ones'-complement sum).
    let ck = u.checksum + 0x100;
    let ck2 = (ck & 0xffff) + (ck >> 16);
    let (n0, n1, n2, n3, n4) = pack[ipv4] [
      version = 4, ihl = u.ihl, tos = u.tos,
      total_length = u.total_length,
      ident = u.ident, flags_frag = u.flags_frag,
      ttl = u.ttl - 1, protocol = u.protocol, checksum = ck2,
      src = u.src, dst = u.dst
    ];

    // Archive the rewritten header to SDRAM for the slow path.
    sdram(archive + (index << 3)) <- (n0, n1, n2, n3, n4, p0, p1, p2);

    // Transmit.
    tfifo(elem) <- (n0, n1, n2, n3, n4, p0, p1, p2);
    index
  }
  handle Drained (i) { 0xffffffff }
  handle NotIpv4 (v) { 0xfffffffe }
  handle Expired (i) { 0xfffffffd }
}
"""


def ipv4_header(ttl: int, ident: int) -> list[int]:
    words = [
        (4 << 28) | (5 << 24) | 84,
        (ident << 16) | 0x4000,
        (ttl << 24) | (6 << 16),
        0x0A000001,
        0x0A000002 + ident,
    ]
    total = sum((w >> 16) + (w & 0xFFFF) for w in words)
    while total >> 16:
        total = (total & 0xFFFF) + (total >> 16)
    words[2] |= (~total) & 0xFFFF
    return words


def checksum_ok(words: list[int]) -> bool:
    total = sum((w >> 16) + (w & 0xFFFF) for w in words)
    while total >> 16:
        total = (total & 0xFFFF) + (total >> 16)
    return total == 0xFFFF


def main() -> None:
    options = CompileOptions()
    options.alloc.solve.time_limit = 900
    print("compiling the forwarding loop...")
    comp = compile_nova(SOURCE, options=options)
    print(
        f"allocated: {comp.alloc.status}, {comp.alloc.moves} moves, "
        f"{comp.alloc.spills} spills"
    )

    n_packets = 8
    memory = MemorySystem.create()
    packets = []
    for i in range(n_packets):
        header = ipv4_header(ttl=10 + i, ident=i)
        payload = [0x1000 + i, 0x2000 + i, 0x3000 + i]
        packets.append(header)
        memory["rfifo"].load_words(i * 16, header + payload)

    locations = comp.alloc.decoded.input_locations
    name_map = comp.inputs_by_name()

    def provider(tid: int, iteration: int):
        if iteration >= 3:  # each thread tries up to 3 packets
            return None
        inputs = {}
        for source_name, value in (("nelems", n_packets), ("archive", 0x800)):
            for temp in name_map.get(source_name, ()):
                loc = locations.get(temp)
                if loc is not None:
                    inputs[(loc[1].bank, loc[1].index)] = value
        return inputs

    machine = Machine(
        comp.physical,
        memory=memory,
        physical=True,
        threads=4,
        input_provider=provider,
    )
    run = machine.run()

    forwarded = [v[0] for _, v in run.results if v[0] < 0xF0000000]
    drained = sum(1 for _, v in run.results if v[0] == 0xFFFFFFFF)
    print(
        f"\n{len(forwarded)} packets forwarded by 4 threads in "
        f"{run.cycles} cycles; {drained} idle polls after drain"
    )
    assert sorted(forwarded) == list(range(n_packets))

    for i in range(n_packets):
        out = memory["tfifo"].dump_words(i * 16, 5)
        ttl = out[2] >> 24
        print(
            f"  packet {i}: ttl {10 + i} -> {ttl}, checksum "
            f"{'valid' if checksum_ok(out) else 'INVALID'}"
        )
        assert ttl == 10 + i - 1
        assert checksum_ok(out)
        # Archived copy matches what went out.
        archived = memory["sdram"].dump_words(0x800 + i * 8, 5)
        assert archived == out


if __name__ == "__main__":
    main()
