"""``repro.ilp.portfolio`` — race ``highs`` and ``bnb``, warm-started.

The compile daemon's cache-miss path is dominated by the allocation ILP,
and neither engine dominates the other: HiGHS branch & cut wins on the
paper-scale models, while our own branch-and-bound — seeded with a good
incumbent — can prove optimality from the root LP alone.  The portfolio
runs both engines concurrently in threads (scipy's HiGHS wrappers
release the GIL, so the race is genuinely parallel), takes the first
solution proved feasible-within-gap, and cancels the loser: ``bnb``
cooperatively via a per-node poll, ``highs`` by abandonment (scipy
exposes no interrupt — the thread is bounded by its own time limit).

The race is *core-adaptive*: concurrency only pays when a second core
exists.  On a single-CPU host (measured: racing doubles wall time —
both engines are crunching the same memory-bound sparse matrices) the
portfolio runs its engines in sequence instead, ``highs`` first, and
only falls through to ``bnb`` when ``highs`` was not decisive, so the
portfolio costs the price of its best engine plus epsilon.

Warm starts come from a :class:`HintStore`: a directory of prior
solutions, each stored as the *names* of its one-valued variables plus
the objective.  Names survive model rebuilds (variable ids do not), so a
hint recorded under one option point maps onto the nearest prior model's
successor — the daemon keys hints by the front-end fingerprint, so
allocator-knob-only variants of one program share one incumbent, the
same way Merlin's incremental provisioning reuses solutions of
near-identical models.  A hint is *validated* against the target model
before use (constraint rows within tolerance); a stale or structurally
incompatible hint is simply ignored.

Spans: one ``solve`` span (``engine="portfolio"``) wrapping the race,
with ``portfolio.warm_start`` (hint lookup outcome) and
``portfolio.race`` (per-engine status/seconds and the winner) nested
inside — see ``docs/TRACING.md``.
"""

from __future__ import annotations

import json
import math
import os
import tempfile
import threading
import time
from concurrent.futures import FIRST_COMPLETED, ThreadPoolExecutor, wait
from dataclasses import replace
from pathlib import Path

import numpy as np

from repro.ilp.model import Model, Solution
from repro.trace import NULL, ensure

#: Constraint-row tolerance when validating a hint against a model.
FEAS_TOL = 1e-6

#: Bumped when the hint file layout changes; stale formats read as "no hint".
HINT_FORMAT = 1


class HintStore:
    """Directory of prior ILP solutions, keyed by the caller's model key.

    Same two-level fan-out and atomic-write discipline as
    :class:`repro.cache.CompileCache`; any unreadable entry reads as "no
    hint", never an exception.  Entries are tiny (names of one-valued
    variables only — a few KB even for the paper's 10^5-variable models).
    """

    def __init__(self, root: str | Path):
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)

    def path_for(self, key: str) -> Path:
        return self.root / key[:2] / f"{key[2:]}.json"

    def load(self, key: str) -> dict | None:
        path = self.path_for(key)
        try:
            with open(path) as handle:
                doc = json.load(handle)
        except FileNotFoundError:
            return None
        except Exception:
            try:
                path.unlink()
            except OSError:
                pass
            return None
        if (
            not isinstance(doc, dict)
            or doc.get("format") != HINT_FORMAT
            or not isinstance(doc.get("ones"), list)
            or not isinstance(doc.get("objective"), (int, float))
        ):
            return None
        return doc

    def save(self, key: str, model: Model, solution: Solution) -> None:
        """Record a solution's one-valued variable names; atomic."""
        ones = [
            model.name_of(var)
            for var in range(model.num_vars)
            if solution.values[var] > 0.5
        ]
        doc = {
            "format": HINT_FORMAT,
            "objective": float(solution.objective),
            "status": solution.status,
            "ones": ones,
        }
        path = self.path_for(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        fd, tmp = tempfile.mkstemp(dir=path.parent, suffix=".tmp")
        try:
            with os.fdopen(fd, "w") as handle:
                json.dump(doc, handle, separators=(",", ":"))
            os.replace(tmp, path)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise


def hint_incumbent(
    model: Model, hint: dict
) -> tuple[float, np.ndarray] | None:
    """Map a stored hint onto ``model``; None unless it is feasible there.

    Variables are matched by *name* (family + index tuple), so the hint
    survives model rebuilds and moderate option changes; names the model
    does not know are dropped, and the projected point is then checked
    against every constraint row.  The objective is recomputed from the
    model's own cost vector — the stored value is advisory only.
    """
    names = {model.name_of(var): var for var in range(model.num_vars)}
    x = np.zeros(model.num_vars)
    for name in hint["ones"]:
        var = names.get(name)
        if var is not None:
            x[var] = 1.0
    c, matrix, lb, ub = model.standard_form()
    if len(model.constraints):
        row = matrix @ x
        if np.any(row < lb - FEAS_TOL) or np.any(row > ub + FEAS_TOL):
            return None
    return float(c @ x), x


def _decisive(solution: Solution | None) -> bool:
    """Does this result end the race immediately?

    A solve proved optimal (within the engine's own MIP-gap termination)
    wins; an ``infeasible`` verdict is equally final — no other engine
    can do better on the same model.
    """
    if solution is None:
        return False
    if solution.status == "infeasible":
        return True
    return solution.status == "optimal"


def _usable(solution: Solution | None) -> bool:
    if solution is None:
        return False
    return math.isfinite(solution.objective)


def effective_cores() -> int:
    """CPUs this process may actually run on (affinity-aware)."""
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # platforms without affinity
        return os.cpu_count() or 1


def solve_portfolio(
    model: Model, options, tracer=None
) -> Solution:
    """Race ``highs`` and ``bnb`` on one model; first proved result wins.

    Mirrors :func:`repro.ilp.solve.solve_model`'s contract (one ``solve``
    span, same counters) so the allocator's fallback chain and the
    Figure 7 benchmarks read portfolio solves exactly like single-engine
    ones.
    """
    from repro.ilp.solve import _solve_bnb, _solve_highs

    tracer = ensure(tracer)
    with tracer.span("solve", engine="portfolio") as sp:
        # Pre-warm the memoized standard form once, before both racers
        # would otherwise build it concurrently.
        model.standard_form()
        store, warm = _load_hint(model, options, tracer)
        if effective_cores() >= 2:
            solution, winner, race = _run_race(
                model, options, tracer, warm, _solve_bnb, _solve_highs
            )
        else:
            solution, winner, race = _run_sequential(
                model, options, tracer, warm, _solve_bnb, _solve_highs
            )
        if (
            store is not None
            and _usable(solution)
            and solution.status in ("optimal", "timeout")
        ):
            store.save(options.hint_key, model, solution)
        if sp:
            sp.add(
                rows=len(model.constraints),
                cols=model.num_vars,
                nonzeros=model.nonzeros(),
                status=solution.status,
                objective=float(solution.objective),
                root_relaxation_seconds=solution.root_relaxation_seconds,
                integer_seconds=solution.integer_seconds,
                nodes=solution.nodes,
                gap=float(solution.gap),
                winner=winner,
                **race,
            )
    return solution


def _load_hint(model: Model, options, tracer):
    """Look up and validate a warm-start hint; (store, incumbent|None)."""
    if not options.hint_dir or not options.hint_key:
        return None, None
    store = HintStore(options.hint_dir)
    with tracer.span(
        "portfolio.warm_start", key=options.hint_key[:12]
    ) as sp:
        hint = store.load(options.hint_key)
        warm = hint_incumbent(model, hint) if hint is not None else None
        if hint is None:
            outcome = "none"
        elif warm is None:
            outcome = "stale"  # structurally incompatible or infeasible
        else:
            outcome = "seeded"
        if sp:
            sp.add(outcome=outcome)
            if warm is not None:
                sp.add(incumbent=warm[0])
    return store, warm


def _run_sequential(model, options, tracer, warm, _solve_bnb, _solve_highs):
    """The single-core portfolio: engines in sequence, not in parallel.

    ``highs`` goes first — warm-bounded it beats everything else we
    measured, including incumbent-seeded ``bnb`` — and a decisive result
    skips ``bnb`` entirely, so the common case costs one engine.  Same
    return contract and span shape as :func:`_run_race`.
    """
    counters: dict[str, object] = {}
    winner = "none"
    best: Solution | None = None
    with tracer.span(
        "portfolio.race",
        engines="highs,bnb",
        warm=int(warm is not None),
        mode="sequential",
    ) as sp:
        start = time.perf_counter()
        runs = [
            (
                "highs",
                lambda: _solve_highs(
                    model,
                    replace(options, engine="highs"),
                    NULL,
                    upper_bound=warm[0] if warm else None,
                ),
            ),
            (
                "bnb",
                lambda: _solve_bnb(
                    model, replace(options, engine="bnb"), incumbent=warm
                ),
            ),
        ]
        for index, (engine, run) in enumerate(runs):
            try:
                solution = run()
            except Exception as exc:  # a crashed engine loses
                counters[f"{engine}_status"] = f"crash:{type(exc).__name__}"
                continue
            counters[f"{engine}_status"] = solution.status
            counters[f"{engine}_seconds"] = round(
                time.perf_counter() - start, 6
            )
            if _decisive(solution):
                winner = engine
                best = solution
                for skipped, _ in runs[index + 1 :]:
                    counters[f"{skipped}_status"] = "skipped"
                break
            if best is None or (
                _usable(solution)
                and solution.objective < (best.objective if best else math.inf)
            ):
                best = solution
        if sp:
            sp.add(winner=winner, **counters)
    if best is None:
        best = Solution(
            "failed",
            math.inf,
            np.zeros(model.num_vars),
            0.0,
            time.perf_counter() - start,
            0,
            math.inf,
        )
    return best, winner, counters


def _run_race(model, options, tracer, warm, _solve_bnb, _solve_highs):
    """The two-thread race; returns (solution, winner, span counters)."""
    cancel = threading.Event()

    def run_highs():
        opts = replace(options, engine="highs")
        return _solve_highs(
            model, opts, NULL, upper_bound=warm[0] if warm else None
        )

    def run_bnb():
        opts = replace(options, engine="bnb")
        return _solve_bnb(model, opts, incumbent=warm, cancel=cancel.is_set)

    counters: dict[str, object] = {}
    winner = "none"
    best: Solution | None = None
    with tracer.span(
        "portfolio.race", engines="highs+bnb", warm=int(warm is not None)
    ) as sp:
        start = time.perf_counter()
        pool = ThreadPoolExecutor(
            max_workers=2, thread_name_prefix="portfolio"
        )
        try:
            futures = {
                pool.submit(run_highs): "highs",
                pool.submit(run_bnb): "bnb",
            }
            pending = set(futures)
            while pending and winner == "none":
                done, pending = wait(pending, return_when=FIRST_COMPLETED)
                for future in done:
                    engine = futures[future]
                    try:
                        solution = future.result()
                    except Exception as exc:  # a crashed racer loses
                        counters[f"{engine}_status"] = (
                            f"crash:{type(exc).__name__}"
                        )
                        continue
                    counters[f"{engine}_status"] = solution.status
                    counters[f"{engine}_seconds"] = round(
                        time.perf_counter() - start, 6
                    )
                    if _decisive(solution):
                        winner = engine
                        best = solution
                        break
                    # Not decisive (timeout / failed): keep the best
                    # incumbent in case the other engine fails too.
                    if best is None or (
                        _usable(solution)
                        and solution.objective
                        < (best.objective if best else math.inf)
                    ):
                        best = solution
            for future in pending:
                counters[f"{futures[future]}_status"] = "cancelled"
        finally:
            cancel.set()
            pool.shutdown(wait=False, cancel_futures=True)
        if sp:
            sp.add(winner=winner, **counters)

    if best is None:
        # Both racers crashed; report a failed solve (the allocator's
        # fallback chain degrades to the baseline allocator from here).
        best = Solution(
            "failed",
            math.inf,
            np.zeros(model.num_vars),
            0.0,
            time.perf_counter() - start,
            0,
            math.inf,
        )
    return best, winner, counters
