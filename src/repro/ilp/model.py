"""A small AMPL-flavoured 0-1 ILP modeling layer.

The paper describes its optimization problems with AMPL: *sets* provide
index ranges, ``var x {T, R} binary;`` declares a family of 0-1 variables,
and constraint templates quantify over the sets (Figure 2).  This module
gives the allocator the same vocabulary:

>>> m = Model("demo")
>>> x = m.family("Before")           # var Before {Exists, Banks} binary
>>> a = x[("p1", "v", "A")]          # instantiating an index creates a var
>>> m.add(LinExpr({a: 1}), "==", 1, note="in one place only")
>>> m.minimize({a: 3.0})

Constraints and the objective reference variables by dense integer ids,
so conversion to sparse matrix form (for HiGHS or our own solver) is a
single pass.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np
from scipy import sparse


@dataclass
class LinExpr:
    """A linear expression: mapping variable id → coefficient."""

    coeffs: dict[int, float] = field(default_factory=dict)

    def add(self, var: int, coef: float = 1.0) -> "LinExpr":
        self.coeffs[var] = self.coeffs.get(var, 0.0) + coef
        return self

    def __iadd__(self, other: "LinExpr") -> "LinExpr":
        for var, coef in other.coeffs.items():
            self.add(var, coef)
        return self


class Family:
    """An indexed family of binary variables (``var x {S1, S2} binary``)."""

    def __init__(self, model: "Model", name: str):
        self.model = model
        self.name = name
        self.index: dict[tuple, int] = {}

    def __getitem__(self, key: tuple) -> int:
        var = self.index.get(key)
        if var is None:
            var = self.model._new_var(self.name, key)
            self.index[key] = var
        return var

    def get(self, key: tuple) -> int | None:
        return self.index.get(key)

    def __contains__(self, key: tuple) -> bool:
        return key in self.index

    def __len__(self) -> int:
        return len(self.index)

    def items(self):
        return self.index.items()


@dataclass
class _Constraint:
    coeffs: dict[int, float]
    sense: str  # '<=', '>=', '=='
    rhs: float
    note: str = ""


class Model:
    """A 0-1 integer linear program under construction."""

    def __init__(self, name: str = "model"):
        self.name = name
        self.num_vars = 0
        self.var_names: list[tuple[str, tuple]] = []
        self.families: dict[str, Family] = {}
        self.constraints: list[_Constraint] = []
        self.objective: dict[int, float] = {}
        #: bumped by every mutating call; keys the standard_form memo so
        #: one model solved by several engines converts to matrices once.
        self._mutations = 0
        self._standard_cache: tuple | None = None

    def __getstate__(self):
        # The memoized matrices are cheap to rebuild and bulky to pickle.
        state = self.__dict__.copy()
        state["_standard_cache"] = None
        return state

    # -- variables ------------------------------------------------------------

    def family(self, name: str) -> Family:
        fam = self.families.get(name)
        if fam is None:
            fam = Family(self, name)
            self.families[name] = fam
        return fam

    def _new_var(self, family: str, key: tuple) -> int:
        var = self.num_vars
        self.num_vars += 1
        self.var_names.append((family, key))
        self._mutations += 1
        return var

    def name_of(self, var: int) -> str:
        family, key = self.var_names[var]
        return f"{family}[{','.join(str(k) for k in key)}]"

    # -- constraints ------------------------------------------------------------

    def add(
        self,
        expr: LinExpr | dict[int, float],
        sense: str,
        rhs: float,
        note: str = "",
    ) -> None:
        coeffs = expr.coeffs if isinstance(expr, LinExpr) else expr
        if sense not in ("<=", ">=", "=="):
            raise ValueError(f"bad constraint sense {sense!r}")
        self.constraints.append(_Constraint(dict(coeffs), sense, rhs, note))
        self._mutations += 1

    def add_sum_eq(self, vars_: list[int], rhs: float, note: str = "") -> None:
        self.add({v: 1.0 for v in vars_}, "==", rhs, note)

    def add_sum_le(self, vars_: list[int], rhs: float, note: str = "") -> None:
        self.add({v: 1.0 for v in vars_}, "<=", rhs, note)

    # -- objective -----------------------------------------------------------------

    def minimize(self, coeffs: dict[int, float]) -> None:
        for var, coef in coeffs.items():
            self.objective[var] = self.objective.get(var, 0.0) + coef
        self._mutations += 1

    @property
    def objective_terms(self) -> int:
        return sum(1 for c in self.objective.values() if c != 0.0)

    # -- standard form -----------------------------------------------------------

    def standard_form(self):
        """Return (c, A, lb_row, ub_row) with one row per constraint.

        Row senses are encoded as [lb, ub] bounds on A @ x, suitable for
        :class:`scipy.optimize.LinearConstraint`.

        Memoized against the mutation counter (and objective identity,
        for code that rebinds ``objective`` wholesale): the fuzz oracle
        solves one model under several engines, and the sparse-matrix
        conversion is a large share of small-model solve time.  Callers
        must treat the returned arrays as read-only.
        """
        key = (self._mutations, id(self.objective))
        cached = self._standard_cache
        if cached is not None and cached[0] == key:
            return cached[1]
        rows: list[int] = []
        cols: list[int] = []
        data: list[float] = []
        lb = np.empty(len(self.constraints))
        ub = np.empty(len(self.constraints))
        for i, con in enumerate(self.constraints):
            for var, coef in con.coeffs.items():
                rows.append(i)
                cols.append(var)
                data.append(coef)
            if con.sense == "<=":
                lb[i], ub[i] = -np.inf, con.rhs
            elif con.sense == ">=":
                lb[i], ub[i] = con.rhs, np.inf
            else:
                lb[i], ub[i] = con.rhs, con.rhs
        matrix = sparse.csr_matrix(
            (data, (rows, cols)),
            shape=(len(self.constraints), self.num_vars),
        )
        c = np.zeros(self.num_vars)
        for var, coef in self.objective.items():
            c[var] = coef
        result = (c, matrix, lb, ub)
        self._standard_cache = (key, result)
        return result

    # -- reporting --------------------------------------------------------------

    def nonzeros(self) -> int:
        """Structural nonzeros of the constraint matrix (Figure 7 vocabulary)."""
        return sum(len(con.coeffs) for con in self.constraints)

    def stats(self) -> dict[str, int]:
        return {
            "variables": self.num_vars,
            "constraints": len(self.constraints),
            "objective_terms": self.objective_terms,
        }


@dataclass
class Solution:
    """Result of solving a model."""

    status: str  # 'optimal' | 'infeasible' | 'timeout' | 'unbounded' | 'failed'
    objective: float
    values: np.ndarray
    root_relaxation_seconds: float
    integer_seconds: float
    nodes: int = 0
    #: final relative MIP gap (0.0 when proved optimal with no slack;
    #: ``inf`` when no incumbent was found).
    gap: float = 0.0

    def value(self, var: int) -> float:
        return float(self.values[var])

    def is_one(self, var: int | None) -> bool:
        if var is None:
            return False
        return self.values[var] > 0.5

    def ones(self, family: Family) -> list[tuple]:
        return [key for key, var in family.items() if self.is_one(var)]
