"""Solvers for 0-1 integer linear programs (the CPLEX substitute).

Two engines:

- ``highs`` — scipy's :func:`scipy.optimize.milp` (HiGHS branch & cut),
  the default production solver;
- ``bnb`` — our own depth-first best-bound branch-and-bound over HiGHS
  LP relaxations, kept as an independently-testable reference (and proof
  that no black-box integer solver is required).

Both report the two timings Figure 7 tabulates: the *root relaxation*
(optimal LP solution) and the total time to integer optimality.  The
``highs`` engine only pays for a separate root-relaxation ``linprog``
solve when someone will read the number — a tracer is active or
:attr:`SolveOptions.root_relaxation` is set — since ``milp`` does not
report it and the extra solve is pure measurement overhead otherwise.
"""

from __future__ import annotations

import math
import time
from dataclasses import dataclass, field

import numpy as np
from scipy import optimize, sparse

from repro.ilp.model import Model, Solution
from repro.trace import ensure


@dataclass
class SolveOptions:
    engine: str = "highs"  # 'highs' | 'bnb' | 'portfolio'
    time_limit: float | None = 600.0
    gap: float = 1e-4  # CPLEX-style relative MIP gap (paper: 0.01%)
    node_limit: int = 200_000
    #: measure the LP root relaxation with a dedicated ``linprog`` solve
    #: even when no tracer is active (the ``bnb`` engine gets it for free
    #: from its first node; ``highs`` needs the extra solve).
    root_relaxation: bool = False
    #: Warm-start hint store (``engine="portfolio"``): directory of prior
    #: solutions and the key of the nearest prior model (the compile
    #: daemon uses the front-end fingerprint, so allocator-knob-only
    #: variants share one incumbent).  Runtime plumbing, not part of the
    #: problem statement — excluded from cache fingerprints.
    hint_dir: str | None = field(
        default=None, metadata={"fingerprint": False}
    )
    hint_key: str | None = field(
        default=None, metadata={"fingerprint": False}
    )


def solve_root_relaxation(model: Model) -> tuple[float, float, np.ndarray]:
    """Solve the LP relaxation; returns (objective, seconds, x)."""
    c, matrix, lb, ub = model.standard_form()
    return _root_relaxation(c, matrix, lb, ub, model.num_vars)


def _root_relaxation(c, matrix, lb, ub, num_vars):
    a_ub, b_ub = _ub_matrix(matrix, lb, ub)
    a_eq, b_eq = _eq_matrix(matrix, lb, ub)
    start = time.perf_counter()
    res = optimize.linprog(
        c,
        A_ub=a_ub,
        b_ub=b_ub,
        A_eq=a_eq,
        b_eq=b_eq,
        bounds=(0, 1),
        method="highs",
    )
    seconds = time.perf_counter() - start
    if not res.success:
        return math.inf, seconds, np.zeros(num_vars)
    return float(res.fun), seconds, res.x


def _split_rows(matrix, lb, ub):
    eq_rows = np.where(lb == ub)[0]
    le_rows = np.where((ub < np.inf) & (lb != ub))[0]
    ge_rows = np.where((lb > -np.inf) & (lb != ub))[0]
    return eq_rows, le_rows, ge_rows


def _ub_matrix(matrix, lb, ub):
    _, le_rows, ge_rows = _split_rows(matrix, lb, ub)
    parts = []
    rhs = []
    if len(le_rows):
        parts.append(matrix[le_rows])
        rhs.append(ub[le_rows])
    if len(ge_rows):
        parts.append(-matrix[ge_rows])
        rhs.append(-lb[ge_rows])
    if not parts:
        return None, None
    return sparse.vstack(parts), np.concatenate(rhs)

def _eq_matrix(matrix, lb, ub):
    eq_rows, _, _ = _split_rows(matrix, lb, ub)
    if not len(eq_rows):
        return None, None
    return matrix[eq_rows], ub[eq_rows]


def solve_model(
    model: Model, options: SolveOptions | None = None, tracer=None
) -> Solution:
    options = options or SolveOptions()
    tracer = ensure(tracer)
    if model.num_vars == 0:
        return Solution("optimal", 0.0, np.zeros(0), 0.0, 0.0)
    if options.engine == "portfolio":
        from repro.ilp.portfolio import solve_portfolio

        return solve_portfolio(model, options, tracer)
    with tracer.span("solve", engine=options.engine) as sp:
        if options.engine == "bnb":
            solution = _solve_bnb(model, options)
        else:
            solution = _solve_highs(model, options, tracer)
        if sp:
            sp.add(
                rows=len(model.constraints),
                cols=model.num_vars,
                nonzeros=model.nonzeros(),
                status=solution.status,
                objective=float(solution.objective),
                root_relaxation_seconds=solution.root_relaxation_seconds,
                integer_seconds=solution.integer_seconds,
                nodes=solution.nodes,
                gap=float(solution.gap),
            )
    return solution


#: :func:`scipy.optimize.milp` status codes → :class:`Solution` statuses
#: (0 optimal and 1 iteration/time limit are handled separately above).
_MILP_STATUS = {2: "infeasible", 3: "unbounded", 4: "failed"}


def _solve_highs(
    model: Model,
    options: SolveOptions,
    tracer,
    upper_bound: float | None = None,
) -> Solution:
    """HiGHS branch & cut via :func:`scipy.optimize.milp`.

    ``upper_bound`` is a warm-start hint: the objective value of a known
    feasible solution.  Minimization means any optimal point satisfies
    ``c @ x <= upper_bound``, so the bound is added as one extra
    constraint row — HiGHS prunes everything above it without being told
    the incumbent itself (scipy exposes no warm-start API).
    """
    c, matrix, lb, ub = model.standard_form()
    # milp does not report the root-relaxation time; measure it with a
    # dedicated LP solve only when the number will actually be read.
    root_seconds = 0.0
    if tracer.enabled or options.root_relaxation:
        _, root_seconds, _ = _root_relaxation(c, matrix, lb, ub, model.num_vars)
    start = time.perf_counter()
    constraints = []
    if len(model.constraints):
        constraints.append(optimize.LinearConstraint(matrix, lb, ub))
    if upper_bound is not None and math.isfinite(upper_bound):
        bound_row = sparse.csr_matrix(c.reshape(1, -1))
        constraints.append(
            optimize.LinearConstraint(bound_row, -np.inf, upper_bound + 1e-6)
        )
    milp_options = {"mip_rel_gap": options.gap}
    if options.time_limit is not None:
        milp_options["time_limit"] = options.time_limit
    res = optimize.milp(
        c,
        constraints=constraints,
        integrality=np.ones(model.num_vars),
        bounds=optimize.Bounds(0, 1),
        options=milp_options,
    )
    seconds = time.perf_counter() - start
    nodes = int(getattr(res, "mip_node_count", 0) or 0)
    gap = float(getattr(res, "mip_gap", 0.0) or 0.0)
    if res.status == 0 and res.x is not None:
        values = np.round(res.x)
        return Solution(
            "optimal", float(res.fun), values, root_seconds, seconds, nodes, gap
        )
    if res.status == 1:  # iteration/time limit
        if res.x is not None:
            return Solution(
                "timeout",
                float(res.fun),
                np.round(res.x),
                root_seconds,
                seconds,
                nodes,
                gap,
            )
        return Solution(
            "timeout",
            math.inf,
            np.zeros(model.num_vars),
            root_seconds,
            seconds,
            nodes,
            math.inf,
        )
    # milp statuses: 2 infeasible, 3 unbounded, 4 numerical failure.
    status = _MILP_STATUS.get(res.status, "failed")
    return Solution(
        status,
        math.inf,
        np.zeros(model.num_vars),
        root_seconds,
        seconds,
        nodes,
        math.inf,
    )


# --------------------------------------------------------------------------
# Our own branch and bound
# --------------------------------------------------------------------------


def _relative_gap(incumbent: float, bound: float) -> float:
    """CPLEX-style relative MIP gap between incumbent and best bound."""
    if not math.isfinite(incumbent):
        return math.inf
    return (incumbent - bound) / max(1.0, abs(incumbent))


def _solve_bnb(
    model: Model,
    options: SolveOptions,
    incumbent: tuple[float, np.ndarray] | None = None,
    cancel=None,
) -> Solution:
    """Depth-first branch-and-bound with best-bound pruning.

    LP relaxations are solved by HiGHS ``linprog`` with variable fixings
    expressed through bounds.  Branches on the most fractional variable;
    explores the rounded branch first to find incumbents early.  Each
    open node carries its parent's LP bound, which gives (a) pruning
    before paying for the node's LP solve and (b) a global best bound —
    the minimum over open nodes — so the search stops as soon as the
    incumbent is within ``options.gap`` of it (relative MIP gap), exactly
    like CPLEX's ``mipgap`` termination.

    ``incumbent`` warm-starts the search with ``(objective, x)`` of a
    known-feasible solution (the caller must have validated feasibility
    against *this* model): the initial upper bound prunes from node one,
    and when the root LP bound already proves the incumbent within the
    gap the search terminates after a single LP solve.

    ``cancel`` is an argumentless callable polled once per node; when it
    returns true the search stops with status ``"cancelled"`` (the
    portfolio uses it to stop the losing racer).
    """
    c, matrix, lb, ub = model.standard_form()
    a_ub, b_ub = _ub_matrix(matrix, lb, ub)
    a_eq, b_eq = _eq_matrix(matrix, lb, ub)
    n = model.num_vars
    start = time.perf_counter()
    root_seconds = [0.0]

    def relax(fix_lo: np.ndarray, fix_hi: np.ndarray):
        bounds = list(zip(fix_lo, fix_hi))
        t0 = time.perf_counter()
        res = optimize.linprog(
            c,
            A_ub=a_ub,
            b_ub=b_ub,
            A_eq=a_eq,
            b_eq=b_eq,
            bounds=bounds,
            method="highs",
        )
        if root_seconds[0] == 0.0:
            root_seconds[0] = time.perf_counter() - t0
        if not res.success:
            return math.inf, None
        return float(res.fun), res.x

    best_obj = math.inf
    best_x: np.ndarray | None = None
    if incumbent is not None:
        best_obj, warm_x = incumbent
        best_x = np.asarray(warm_x, dtype=float)
    best_bound = -math.inf
    nodes = 0
    status = "optimal"

    # (fixed lower bounds, fixed upper bounds, parent's LP bound)
    stack: list[tuple[np.ndarray, np.ndarray, float]] = [
        (np.zeros(n), np.ones(n), -math.inf)
    ]
    while stack:
        if cancel is not None and cancel():
            status = "cancelled"
            break
        # ``is not None``: a budget of 0.0 means "stop immediately", not
        # "run forever" (falsiness would drop the check entirely).
        if (
            options.time_limit is not None
            and time.perf_counter() - start > options.time_limit
        ):
            status = "timeout"
            break
        if nodes >= options.node_limit:
            status = "timeout"
            break
        best_bound = min(parent for _, _, parent in stack)
        if best_x is not None and _relative_gap(best_obj, best_bound) <= options.gap:
            break  # incumbent proved within the MIP gap: stop the search
        fix_lo, fix_hi, parent_bound = stack.pop()
        if parent_bound >= best_obj - 1e-9:
            continue  # pruned by the parent's bound: no LP solve needed
        nodes += 1
        bound, x = relax(fix_lo, fix_hi)
        if x is None or bound >= best_obj - 1e-9:
            continue
        frac = np.abs(x - np.round(x))
        branch_var = int(np.argmax(frac))
        if frac[branch_var] < 1e-6:
            # Integral solution.
            best_obj = bound
            best_x = np.round(x)
            continue
        # Explore the rounding of the fractional value first.
        first = int(round(x[branch_var]))
        for value in (1 - first, first):
            lo2, hi2 = fix_lo.copy(), fix_hi.copy()
            lo2[branch_var] = hi2[branch_var] = value
            stack.append((lo2, hi2, bound))

    if not stack:
        best_bound = best_obj  # search exhausted: the bound is proved

    seconds = time.perf_counter() - start
    if best_x is None:
        return Solution(
            "infeasible" if status == "optimal" else status,
            math.inf,
            np.zeros(n),
            root_seconds[0],
            seconds,
            nodes,
            math.inf,
        )
    return Solution(
        status,
        best_obj,
        best_x,
        root_seconds[0],
        seconds,
        nodes,
        max(0.0, _relative_gap(best_obj, best_bound)),
    )
