"""Solvers for 0-1 integer linear programs (the CPLEX substitute).

Two engines:

- ``highs`` — scipy's :func:`scipy.optimize.milp` (HiGHS branch & cut),
  the default production solver;
- ``bnb`` — our own depth-first best-bound branch-and-bound over HiGHS
  LP relaxations, kept as an independently-testable reference (and proof
  that no black-box integer solver is required).

Both report the two timings Figure 7 tabulates: the *root relaxation*
(optimal LP solution) and the total time to integer optimality.
"""

from __future__ import annotations

import math
import time
from dataclasses import dataclass

import numpy as np
from scipy import optimize, sparse

from repro.ilp.model import Model, Solution


@dataclass
class SolveOptions:
    engine: str = "highs"  # 'highs' | 'bnb'
    time_limit: float | None = 600.0
    gap: float = 1e-4  # CPLEX-style relative MIP gap (paper: 0.01%)
    node_limit: int = 200_000


def solve_root_relaxation(model: Model) -> tuple[float, float, np.ndarray]:
    """Solve the LP relaxation; returns (objective, seconds, x)."""
    c, matrix, lb, ub = model.standard_form()
    start = time.perf_counter()
    res = optimize.linprog(
        c,
        A_ub=_ub_matrix(matrix, lb, ub)[0],
        b_ub=_ub_matrix(matrix, lb, ub)[1],
        A_eq=_eq_matrix(matrix, lb, ub)[0],
        b_eq=_eq_matrix(matrix, lb, ub)[1],
        bounds=(0, 1),
        method="highs",
    )
    seconds = time.perf_counter() - start
    if not res.success:
        return math.inf, seconds, np.zeros(model.num_vars)
    return float(res.fun), seconds, res.x


def _split_rows(matrix, lb, ub):
    eq_rows = np.where(lb == ub)[0]
    le_rows = np.where((ub < np.inf) & (lb != ub))[0]
    ge_rows = np.where((lb > -np.inf) & (lb != ub))[0]
    return eq_rows, le_rows, ge_rows


def _ub_matrix(matrix, lb, ub):
    _, le_rows, ge_rows = _split_rows(matrix, lb, ub)
    parts = []
    rhs = []
    if len(le_rows):
        parts.append(matrix[le_rows])
        rhs.append(ub[le_rows])
    if len(ge_rows):
        parts.append(-matrix[ge_rows])
        rhs.append(-lb[ge_rows])
    if not parts:
        return None, None
    return sparse.vstack(parts), np.concatenate(rhs)

def _eq_matrix(matrix, lb, ub):
    eq_rows, _, _ = _split_rows(matrix, lb, ub)
    if not len(eq_rows):
        return None, None
    return matrix[eq_rows], ub[eq_rows]


def solve_model(model: Model, options: SolveOptions | None = None) -> Solution:
    options = options or SolveOptions()
    if model.num_vars == 0:
        return Solution("optimal", 0.0, np.zeros(0), 0.0, 0.0)
    if options.engine == "bnb":
        return _solve_bnb(model, options)
    return _solve_highs(model, options)


def _solve_highs(model: Model, options: SolveOptions) -> Solution:
    c, matrix, lb, ub = model.standard_form()
    _, root_seconds, _ = solve_root_relaxation(model)
    start = time.perf_counter()
    constraints = (
        optimize.LinearConstraint(matrix, lb, ub)
        if len(model.constraints)
        else ()
    )
    res = optimize.milp(
        c,
        constraints=constraints,
        integrality=np.ones(model.num_vars),
        bounds=optimize.Bounds(0, 1),
        options={
            "time_limit": options.time_limit,
            "mip_rel_gap": options.gap,
        },
    )
    seconds = time.perf_counter() - start
    if res.status == 0 and res.x is not None:
        values = np.round(res.x)
        return Solution("optimal", float(res.fun), values, root_seconds, seconds)
    if res.status == 1 and res.x is not None:  # iteration/time limit w/ sol
        return Solution(
            "timeout", float(res.fun), np.round(res.x), root_seconds, seconds
        )
    return Solution(
        "infeasible", math.inf, np.zeros(model.num_vars), root_seconds, seconds
    )


# --------------------------------------------------------------------------
# Our own branch and bound
# --------------------------------------------------------------------------


def _solve_bnb(model: Model, options: SolveOptions) -> Solution:
    """Depth-first branch-and-bound with best-bound pruning.

    LP relaxations are solved by HiGHS ``linprog`` with variable fixings
    expressed through bounds.  Branches on the most fractional variable;
    explores the rounded branch first to find incumbents early.
    """
    c, matrix, lb, ub = model.standard_form()
    a_ub, b_ub = _ub_matrix(matrix, lb, ub)
    a_eq, b_eq = _eq_matrix(matrix, lb, ub)
    n = model.num_vars
    start = time.perf_counter()
    root_seconds = [0.0]

    def relax(fix_lo: np.ndarray, fix_hi: np.ndarray):
        bounds = list(zip(fix_lo, fix_hi))
        t0 = time.perf_counter()
        res = optimize.linprog(
            c,
            A_ub=a_ub,
            b_ub=b_ub,
            A_eq=a_eq,
            b_eq=b_eq,
            bounds=bounds,
            method="highs",
        )
        if root_seconds[0] == 0.0:
            root_seconds[0] = time.perf_counter() - t0
        if not res.success:
            return math.inf, None
        return float(res.fun), res.x

    best_obj = math.inf
    best_x: np.ndarray | None = None
    nodes = 0
    status = "optimal"

    stack: list[tuple[np.ndarray, np.ndarray]] = [
        (np.zeros(n), np.ones(n))
    ]
    while stack:
        if options.time_limit and time.perf_counter() - start > options.time_limit:
            status = "timeout"
            break
        if nodes > options.node_limit:
            status = "timeout"
            break
        fix_lo, fix_hi = stack.pop()
        nodes += 1
        bound, x = relax(fix_lo, fix_hi)
        if x is None or bound >= best_obj - 1e-9:
            continue
        frac = np.abs(x - np.round(x))
        branch_var = int(np.argmax(frac))
        if frac[branch_var] < 1e-6:
            # Integral solution.
            if bound < best_obj:
                best_obj = bound
                best_x = np.round(x)
                if best_obj <= options.gap:
                    pass
            continue
        # Explore the rounding of the fractional value first.
        first = int(round(x[branch_var]))
        for value in (1 - first, first):
            lo2, hi2 = fix_lo.copy(), fix_hi.copy()
            lo2[branch_var] = hi2[branch_var] = value
            stack.append((lo2, hi2))

    seconds = time.perf_counter() - start
    if best_x is None:
        return Solution(
            "infeasible" if status == "optimal" else status,
            math.inf,
            np.zeros(n),
            root_seconds[0],
            seconds,
            nodes,
        )
    return Solution(status, best_obj, best_x, root_seconds[0], seconds, nodes)
