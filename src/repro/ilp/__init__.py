"""0-1 integer linear programming layer (the paper's AMPL + CPLEX role).

:mod:`repro.ilp.model` is a small modeling language: families of binary
variables indexed by tuples, linear constraints, a linear objective —
the job AMPL does in the paper (Figure 2).  :mod:`repro.ilp.solve`
instantiates the model into sparse standard form and solves it, either
with scipy's HiGHS MILP solver or with our own branch-and-bound (the
CPLEX substitute).
"""

from repro.ilp.model import LinExpr, Model, Solution
from repro.ilp.solve import SolveOptions, solve_model, solve_root_relaxation

__all__ = [
    "LinExpr",
    "Model",
    "Solution",
    "SolveOptions",
    "solve_model",
    "solve_root_relaxation",
]
