"""Fuzz campaign driver — the engine behind ``novac fuzz``.

Fans seeds out over :func:`repro.batch.scatter` (each worker regenerates
its program from the seed, so only plain ints and option records cross
the process boundary), collects per-seed verdicts, then — in the driver
process — shrinks every divergent program with :mod:`repro.fuzz.shrink`
and writes a crash-artifact directory per finding.

Tracing mirrors :mod:`repro.batch`: each unit runs under its own
:class:`repro.trace.Tracer` (one ``fuzz.unit`` span wrapping a
``fuzz.config`` span per configuration) and the driver adopts the spans
under a job-level ``fuzz`` span, so ``novac fuzz --trace`` renders one
coherent table for the whole campaign.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

from repro.batch import scatter
from repro.cache import CompileCache
from repro.fuzz.gen import ALL_FEATURES, GenConfig, generate
from repro.fuzz.oracle import check_generated, default_configs
from repro.fuzz.shrink import shrink, write_artifact
from repro.trace import Tracer, ensure


@dataclass
class FuzzUnit:
    """Verdict for one seed."""

    seed: int
    ok: bool
    seconds: float
    divergences: list = field(default_factory=list)  # stringified
    skips: list = field(default_factory=list)
    invalid: str | None = None
    source: str | None = None  # kept only for failing units
    cache_hits: int = 0
    cache_misses: int = 0


@dataclass
class FuzzResult:
    units: list[FuzzUnit]
    seconds: float
    jobs: int
    artifacts: list = field(default_factory=list)

    @property
    def failed(self) -> list[FuzzUnit]:
        return [u for u in self.units if not u.ok]

    @property
    def invalid(self) -> list[FuzzUnit]:
        return [u for u in self.units if u.invalid is not None]

    def summary(self) -> dict:
        return {
            "programs": len(self.units),
            "ok": sum(1 for u in self.units if u.ok),
            "divergent": len(self.failed) - len(self.invalid),
            "invalid": len(self.invalid),
            "skipped_configs": sum(len(u.skips) for u in self.units),
            "cache_hits": sum(u.cache_hits for u in self.units),
            "cache_misses": sum(u.cache_misses for u in self.units),
            "jobs": self.jobs,
            "seconds": round(self.seconds, 3),
        }


def _fuzz_unit(
    seed: int,
    gen_config: GenConfig,
    config_names: list | None,
    max_cycles: int,
    trace: bool,
    cache_dir: str | None = None,
) -> tuple[FuzzUnit, list]:
    """One seed: generate, cross-check, report.  Runs in pool workers."""
    tracer = Tracer() if trace else None
    span_source = ensure(tracer)
    # CompileCache writes atomically, so pool workers can share one root.
    cache = CompileCache(cache_dir, tracer) if cache_dir else None
    start = time.perf_counter()
    with span_source.span("fuzz.unit", seed=seed) as sp:
        program = generate(seed, gen_config)
        try:
            report = check_generated(
                program,
                configs=default_configs(config_names),
                tracer=tracer,
                max_cycles=max_cycles,
                cache=cache,
            )
        except Exception as exc:  # an internal crash is a finding too
            unit = FuzzUnit(
                seed=seed,
                ok=False,
                seconds=time.perf_counter() - start,
                divergences=[f"internal error: {type(exc).__name__}: {exc}"],
                source=program.source,
            )
            if sp:
                sp.add(outcome="internal-error")
            return unit, list(span_source.spans) if tracer else []
        unit = FuzzUnit(
            seed=seed,
            ok=report.ok,
            seconds=time.perf_counter() - start,
            divergences=[str(d) for d in report.divergences],
            skips=[f"{s.config}: {s.reason}" for s in report.skips],
            invalid=report.invalid,
            source=None if report.ok else program.source,
            cache_hits=report.cache_hits,
            cache_misses=report.cache_misses,
        )
        if sp:
            sp.add(outcome="ok" if report.ok else "divergent")
    return unit, list(span_source.spans) if tracer else []


def _shrink_finding(
    unit: FuzzUnit,
    gen_config: GenConfig,
    config_names: list | None,
    max_cycles: int,
    artifact_dir: str,
    shrink_budget: int,
    cache: CompileCache | None = None,
):
    """Minimize one divergent program and persist the crash artifact."""
    program = generate(unit.seed, gen_config)
    configs = default_configs(config_names)
    report = check_generated(
        program, configs=configs, max_cycles=max_cycles, cache=cache
    )

    # Re-checking only the configs that diverged makes each predicate
    # call several times cheaper; any still-diverging subset is a valid
    # reproducer for triage.
    diverged = sorted({d.config for d in report.divergences if d.config != "ref"})
    pred_configs = default_configs(diverged) if diverged else configs

    def still_diverges(source: str) -> bool:
        candidate = check_generated(
            _with_source(program, source),
            configs=pred_configs,
            max_cycles=max_cycles,
            cache=cache,
        )
        return candidate.invalid is None and bool(candidate.divergences)
    minimized, stats = shrink(
        program.source, still_diverges, max_predicate_calls=shrink_budget
    )
    return write_artifact(
        f"{artifact_dir}/crash-seed{unit.seed}",
        program,
        report,
        minimized=minimized,
        stats=stats,
    )


def _with_source(program, source: str):
    from dataclasses import replace

    return replace(program, source=source)


def run_campaign(
    seed: int = 0,
    count: int = 100,
    jobs: int = 1,
    config_names: list | None = None,
    gen_config: GenConfig | None = None,
    artifact_dir: str = ".fuzz-artifacts",
    tracer=None,
    max_cycles: int = 5_000_000,
    shrink_budget: int = 400,
    shrink_findings: bool = True,
    cache_dir: str | None = None,
    pool=None,
) -> FuzzResult:
    """Fuzz ``count`` programs from ``seed`` upward; returns verdicts.

    Divergent seeds are re-run and minimized in the driver process (the
    campaign keeps going regardless), each producing a crash-artifact
    directory under ``artifact_dir``.  ``cache_dir`` enables a shared
    content-addressed compile cache across workers and campaigns, which
    makes re-running a campaign (or shrinking its findings) mostly
    cache hits.  ``pool`` reuses an existing executor across campaigns
    (see :func:`repro.batch.scatter`) instead of forking per call.
    """
    gen_config = gen_config or GenConfig()
    tracer = ensure(tracer)
    start = time.perf_counter()
    with tracer.span("fuzz", seed=seed, count=count, jobs=jobs) as sp:
        outcomes = scatter(
            _fuzz_unit,
            [
                (s, gen_config, config_names, max_cycles, tracer.enabled, cache_dir)
                for s in range(seed, seed + count)
            ],
            jobs,
            pool=pool,
        )
        units = []
        for unit, spans in outcomes:
            units.append(unit)
            tracer.adopt(spans, parent="fuzz")
        artifacts = []
        shrink_cache = (
            CompileCache(cache_dir, tracer) if cache_dir else None
        )
        for unit in units:
            if unit.ok or unit.invalid is not None:
                continue
            if not shrink_findings:
                continue
            with tracer.span("fuzz.shrink", seed=unit.seed):
                artifacts.append(
                    _shrink_finding(
                        unit,
                        gen_config,
                        config_names,
                        max_cycles,
                        artifact_dir,
                        shrink_budget,
                        cache=shrink_cache,
                    )
                )
        if sp:
            sp.add(
                ok=sum(1 for u in units if u.ok),
                divergent=sum(
                    1 for u in units if not u.ok and u.invalid is None
                ),
                invalid=sum(1 for u in units if u.invalid is not None),
            )
    return FuzzResult(
        units=units,
        seconds=time.perf_counter() - start,
        jobs=jobs,
        artifacts=artifacts,
    )


# -- CLI ---------------------------------------------------------------------


def fuzz_main(argv: list | None = None) -> int:
    """``novac fuzz`` — differential fuzzing subcommand.

    ``--net`` switches to the streaming-scenario fuzzer
    (:mod:`repro.fuzz.netgen`), which has its own option set.
    """
    import argparse
    import sys

    if argv is None:
        argv = sys.argv[1:]
    if "--net" in argv:
        from repro.fuzz.netgen import netfuzz_main

        return netfuzz_main([a for a in argv if a != "--net"])

    parser = argparse.ArgumentParser(
        prog="novac fuzz",
        description="differentially fuzz the Nova pipeline across "
        "optimizer / SSU / allocator configurations",
    )
    parser.add_argument("--seed", type=int, default=0, help="first seed")
    parser.add_argument(
        "--count", type=int, default=100, help="number of programs"
    )
    parser.add_argument(
        "--jobs", type=int, default=1, metavar="N", help="parallel workers"
    )
    parser.add_argument(
        "--configs",
        metavar="A,B,...",
        help="comma-separated configuration subset (default: full matrix; "
        "'ref' is always included). Known: ref, no-opt, ssu-off, "
        "sim-compiled, alloc-highs, alloc-bnb, alloc-baseline",
    )
    parser.add_argument(
        "--artifact-dir",
        default=".fuzz-artifacts",
        help="directory for crash artifacts (default %(default)s)",
    )
    parser.add_argument(
        "--cache-dir",
        metavar="DIR",
        help="content-addressed compile cache shared across workers "
        "and campaigns (default: no cache)",
    )
    parser.add_argument(
        "--max-stmts", type=int, default=7, help="program size knob"
    )
    parser.add_argument(
        "--features",
        metavar="F,G,...",
        help=f"feature subset; known: {', '.join(sorted(ALL_FEATURES))}",
    )
    parser.add_argument(
        "--no-shrink",
        action="store_true",
        help="skip minimization of findings (faster triage-later mode)",
    )
    parser.add_argument("--trace", action="store_true")
    parser.add_argument("--trace-json", metavar="FILE")
    args = parser.parse_args(argv)

    config_names = (
        [n.strip() for n in args.configs.split(",") if n.strip()]
        if args.configs
        else None
    )
    features = ALL_FEATURES
    if args.features:
        requested = {f.strip() for f in args.features.split(",") if f.strip()}
        unknown = requested - ALL_FEATURES
        if unknown:
            print(f"novac fuzz: unknown features {sorted(unknown)}", file=sys.stderr)
            return 2
        features = frozenset(requested)
    gen_config = GenConfig(max_stmts=args.max_stmts, features=features)
    tracer = Tracer() if (args.trace or args.trace_json) else None

    try:
        result = run_campaign(
            seed=args.seed,
            count=args.count,
            jobs=args.jobs,
            config_names=config_names,
            gen_config=gen_config,
            artifact_dir=args.artifact_dir,
            tracer=tracer,
            shrink_findings=not args.no_shrink,
            cache_dir=args.cache_dir,
        )
    except ValueError as exc:  # unknown config name
        print(f"novac fuzz: {exc}", file=sys.stderr)
        return 2

    for unit in result.units:
        if unit.invalid is not None:
            print(f"seed {unit.seed}: INVALID ({unit.invalid})")
        elif not unit.ok:
            print(f"seed {unit.seed}: DIVERGENT")
            for divergence in unit.divergences:
                print(f"  {divergence}")
    for artifact in result.artifacts:
        print(f"crash artifact: {artifact.directory}")
    summary = result.summary()
    cache_note = (
        f", cache {summary['cache_hits']} hits / "
        f"{summary['cache_misses']} misses"
        if args.cache_dir
        else ""
    )
    print(
        f"fuzz: {summary['ok']}/{summary['programs']} ok, "
        f"{summary['divergent']} divergent, {summary['invalid']} invalid, "
        f"{summary['skipped_configs']} config skips in "
        f"{summary['seconds']:.1f}s (jobs={summary['jobs']}{cache_note})"
    )
    if tracer is not None:
        if args.trace:
            print(tracer.table())
        if args.trace_json:
            tracer.write_jsonl(args.trace_json)
    return 1 if (result.failed or result.invalid) else 0
