"""``repro.fuzz.netmeta`` — metamorphic checks for flow-hash steering.

The differential oracle (:mod:`repro.fuzz.oracle`) pins the *compiler*:
every configuration must produce bit-identical results.  This module
pins the *streaming runtime* the same way — properties of the dispatch
stage and the per-engine RX rings that must hold for any app, seed and
topology:

- **conservation** — ``generated == completed + dropped + inflight``
  and ``sum(steered) == generated``;
- **flow affinity** — every packet of one flow is steered to the same
  engine (the whole point of hashing the flow key);
- **per-flow order** — a flow's packets are pulled off its engine's RX
  ring in arrival (sequence) order — the ring is FIFO and the dispatch
  stage pushes in arrival order — and with one thread per engine they
  also *drain* in sequence order end to end;
- **engine-count independence** — the per-packet results of a run are a
  function of the traffic, not the topology: the same seed must produce
  the same ``(seq, results)`` set on 1, 2 or 6 engines (rings are sized
  so nothing drops; drops legitimately depend on topology).

:func:`check_steering` runs one app through several topologies and
returns human-readable violation strings — an empty list is a pass.
"""

from __future__ import annotations

from repro.ixp.net import NetConfig, StreamApp, StreamResult, run_stream

#: engine counts compared for topology independence.
DEFAULT_ENGINE_COUNTS = (1, 2, 6)


def _run(
    app: StreamApp,
    engines: int,
    threads: int,
    packets: int,
    seed: int,
    steer: str = "flow",
) -> StreamResult:
    # Rings large enough that nothing ever drops: drops are the one
    # outcome that legitimately depends on topology.
    config = NetConfig(
        engines=engines,
        threads=threads,
        rx_capacity=packets + 4,
        tx_capacity=packets + 4,
        packets=packets,
        seed=seed,
        arrival="backlog",
        steer=steer,
    )
    return run_stream(app, config)


def check_result(
    result: StreamResult, expect_no_drops: bool = True
) -> list[str]:
    """Single-run invariants; returns violation strings (empty = pass).

    ``expect_no_drops=True`` (the historical behaviour) additionally
    treats any tail drop as a violation — correct when the caller sized
    the rings so nothing can drop.  Lossy scenarios (the net fuzzer
    explores overloaded topologies on purpose) pass ``False``: drops
    are then legitimate outcomes, still bound by conservation.

    Flow affinity and per-flow order are properties of ``steer="flow"``
    only — round-robin sprays a flow across engines by design — but
    per-*engine* FIFO order (packets steered to one engine are pulled
    off its ring in arrival order) holds in every steer mode and is
    checked unconditionally.
    """
    violations: list[str] = []
    if (
        result.generated
        != result.completed + result.dropped + result.inflight
    ):
        violations.append(
            f"conservation violated: generated={result.generated} != "
            f"completed={result.completed} + dropped={result.dropped} + "
            f"inflight={result.inflight}"
        )
    if sum(result.steered) != result.generated:
        violations.append(
            f"steering lost packets: steered={result.steered} "
            f"sums to {sum(result.steered)}, generated={result.generated}"
        )
    if result.mismatches:
        violations.append(
            f"{len(result.mismatches)} packets mismatched the reference"
        )
    if result.dropped and expect_no_drops:
        violations.append(
            f"{result.dropped} drops despite oversize rings "
            f"(per-engine drops: {result.rx_drops})"
        )
    by_flow: dict[int, list] = {}
    by_engine: dict[int, list] = {}
    if result.config.steer == "flow":
        flow_engine: dict[int, int] = {}
        for packet in result.packets:
            if packet.engine < 0:
                continue
            first = flow_engine.setdefault(packet.flow, packet.engine)
            if first != packet.engine:
                violations.append(
                    f"flow {packet.flow:#x} split across engines "
                    f"{first} and {packet.engine}"
                )
    for packet in result.packets:
        if packet.engine < 0 or packet.status not in ("done", "mismatch"):
            continue
        by_engine.setdefault(packet.engine, []).append(packet)
        if result.config.steer == "flow":
            by_flow.setdefault(packet.flow, []).append(packet)
    for engine, packets in by_engine.items():
        packets.sort(key=lambda p: p.seq)
        pulls = [p.dispatched for p in packets]
        if pulls != sorted(pulls):
            violations.append(
                f"engine {engine} pulled packets off its RX ring out "
                f"of arrival order: {pulls}"
            )
    for flow, packets in by_flow.items():
        packets.sort(key=lambda p: p.seq)
        pulls = [p.dispatched for p in packets]
        if pulls != sorted(pulls):
            violations.append(
                f"flow {flow:#x} pulled off its RX ring out of "
                f"sequence order: {pulls}"
            )
        if result.config.threads == 1:
            drains = [p.drained for p in packets]
            if drains != sorted(drains):
                violations.append(
                    f"flow {flow:#x} drained out of sequence order "
                    f"with one thread per engine: {drains}"
                )
    return violations


def check_steering(
    app: StreamApp,
    packets: int = 48,
    seed: int = 0,
    engine_counts: tuple[int, ...] = DEFAULT_ENGINE_COUNTS,
    threads: int = 2,
    steer: str = "flow",
) -> list[str]:
    """Metamorphic steering check over several topologies.

    Streams identical seeded traffic through each engine count (plus a
    one-thread run for the end-to-end order invariant) and returns
    every violation found; an empty list means all invariants hold.
    ``steer`` selects the dispatch policy under test — per-packet
    results must be engine-count independent under either policy.
    """
    violations: list[str] = []
    outcomes: dict[int, list] = {}
    for engines in engine_counts:
        result = _run(app, engines, threads, packets, seed, steer)
        violations.extend(f"[{engines}e] {v}" for v in check_result(result))
        outcomes[engines] = sorted(
            (p.seq, tuple(p.results))
            for p in result.packets
            if p.status == "done"
        )
    baseline_engines = engine_counts[0]
    baseline = outcomes[baseline_engines]
    for engines, outcome in outcomes.items():
        if outcome != baseline:
            violations.append(
                f"per-packet results differ between {baseline_engines} "
                f"and {engines} engines"
            )
    single = _run(app, max(engine_counts), 1, packets, seed, steer)
    violations.extend(f"[1t] {v}" for v in check_result(single))
    return violations
