"""``repro.fuzz.corpus`` — a coverage-guided record/replay corpus.

PR 7 made traffic a first-class, replayable artifact
(:class:`~repro.ixp.net.TraceEvent`, ``NetConfig.trace``,
:func:`~repro.ixp.net.capture_trace`); this module stops throwing the
interesting ones away.  A :class:`CorpusStore` persists
``(program, trace, topology)`` scenarios as JSON entries compatible
with the witness-artifact layout, and an entry is retained iff its
run's :func:`~repro.ixp.net.coverage_signature` lights up a counter
bucket — a ring high-water, drop or backpressure-stall log2 bucket, a
latency-histogram cell, a topology — that no stored entry reached.

The **mutation engine** turns retained entries back into new scenarios:

- ``splice`` — cut a contiguous run of trace events and reinsert it
  elsewhere (cross-flow reordering at the schedule level);
- ``duplicate`` — replay a short burst of events a second time;
- ``reorder`` — swap two events (a local inversion ddmin cannot reach,
  since deletion alone never *creates* an inversion);
- ``gap_jitter`` — squeeze or stretch inter-arrival gaps (bursts,
  lulls, zero-gap pileups);
- ``retoken`` — remap one flow's token to another token from the
  entry's flow pool (flow collision / rebalance; the payload's flow
  word moves with it, so replay expectations stay derivable);
- ``topology`` — replay the trace unchanged on a freshly drawn
  topology (engine count, ring capacities, steer mode).

Every mutation preserves trace validity: gaps stay non-negative
integers, payload words stay 32-bit, flows stay inside the entry's
flow pool — :func:`trace_problems` is the executable definition, and
``tests/test_corpus_props.py`` holds hypothesis to it.

The campaign driver (:func:`repro.fuzz.netgen.run_net_campaign` with
``corpus_dir=``, i.e. ``novac fuzz --net --corpus-dir``) mixes fresh
generator scenarios with corpus mutants at ``mutate_ratio``, feeds
every clean run's signature back into the store, and finishes with
:meth:`CorpusStore.minimize` so subsumed entries don't accumulate.
CI caches the directory across nightly runs, so coverage accumulates.
"""

from __future__ import annotations

import hashlib
import json
import random
from dataclasses import dataclass, field, replace
from pathlib import Path

from repro.ixp.net import (
    NetConfig,
    TraceEvent,
    capture_trace,
    config_from_dict,
    config_to_dict,
    coverage_signature,
    run_stream,
    trace_from_json,
    trace_to_json,
)

#: recognised mutation operators (``mutate_entry`` draws uniformly).
MUTATIONS = (
    "splice",
    "duplicate",
    "reorder",
    "gap_jitter",
    "retoken",
    "topology",
)

#: the trace-shaped subset of :data:`MUTATIONS` (no topology swap).
TRACE_MUTATIONS = tuple(op for op in MUTATIONS if op != "topology")

#: gap multipliers for ``gap_jitter`` (0 builds zero-gap bursts).
_GAP_SCALES = (0, 0, 1, 2, 4)

_WORD_MASK = 0xFFFFFFFF


@dataclass(frozen=True)
class StoredProgram:
    """A corpus entry's program, shaped like :class:`~repro.fuzz.gen.
    GenProgram` as far as the streaming fuzzer cares.

    Entries store the program *source* (not just the seed), so replay
    does not depend on the generator staying bit-identical across
    versions; ``params`` pins the payload-word binding order.  Corpus
    scenarios come from :data:`~repro.fuzz.netgen.STREAM_FEATURES`
    programs, which never preload memory.
    """

    seed: int
    source: str
    params: tuple[str, ...]
    memory_image: dict = field(default_factory=dict)


@dataclass(frozen=True)
class CorpusEntry:
    """One persisted ``(program, trace, topology)`` scenario."""

    entry_id: str
    seed: int
    source: str
    params: tuple[str, ...]
    #: the flow-token pool mutations may draw from (``retoken``).
    flows: tuple[int, ...]
    trace: tuple[TraceEvent, ...]
    #: :func:`~repro.ixp.net.config_to_dict` topology (no trace).
    topology: dict
    #: :func:`~repro.ixp.net.coverage_signature` of the recorded run.
    signature: tuple[str, ...]
    #: provenance: ``fresh``, ``mutant:<op>`` or ``probe``.
    origin: str = "fresh"
    #: parent entry id for mutants.
    parent: str | None = None
    #: the features this entry covered first (discovery stats).
    new_features: tuple[str, ...] = ()

    def config(self) -> NetConfig:
        """The entry's topology as a :class:`NetConfig` (no trace)."""
        return config_from_dict(self.topology)

    def scenario(self, with_trace: bool = True):
        """Rebuild a :class:`~repro.fuzz.netgen.NetScenario` whose
        config replays this entry's trace (``with_trace=False`` leaves
        the seeded-source knobs in charge)."""
        from repro.fuzz.netgen import NetScenario

        config = self.config()
        if with_trace:
            config = replace(config, trace=self.trace)
        return NetScenario(
            seed=self.seed,
            program=StoredProgram(
                seed=self.seed, source=self.source, params=self.params
            ),
            config=config,
            flows=self.flows,
        )


def entry_id_for(source: str, trace: tuple[TraceEvent, ...], topology: dict) -> str:
    """Content-addressed entry id over the three scenario axes."""
    payload = json.dumps(
        {
            "program": source,
            "trace": trace_to_json(trace),
            "topology": topology,
        },
        sort_keys=True,
    )
    return hashlib.sha256(payload.encode()).hexdigest()[:16]


def entry_from_scenario(
    scenario,
    trace: tuple[TraceEvent, ...],
    signature: tuple[str, ...],
    origin: str = "fresh",
    parent: str | None = None,
) -> CorpusEntry:
    """Build a :class:`CorpusEntry` from a checked scenario's captured
    trace and coverage signature."""
    topology = config_to_dict(scenario.config)
    return CorpusEntry(
        entry_id=entry_id_for(scenario.program.source, trace, topology),
        seed=scenario.seed,
        source=scenario.program.source,
        params=tuple(scenario.program.params),
        flows=tuple(scenario.flows),
        trace=tuple(trace),
        topology=topology,
        signature=tuple(signature),
        origin=origin,
        parent=parent,
    )


def _entry_to_json(entry: CorpusEntry) -> dict:
    return {
        "entry_id": entry.entry_id,
        "seed": entry.seed,
        "program": entry.source,
        "params": list(entry.params),
        "flows": list(entry.flows),
        "trace": trace_to_json(entry.trace),
        "topology": dict(entry.topology),
        "signature": list(entry.signature),
        "origin": entry.origin,
        "parent": entry.parent,
        "new_features": list(entry.new_features),
    }


def _entry_from_json(data: dict) -> CorpusEntry:
    return CorpusEntry(
        entry_id=data["entry_id"],
        seed=data["seed"],
        source=data["program"],
        params=tuple(data["params"]),
        flows=tuple(data["flows"]),
        trace=trace_from_json(data["trace"]),
        topology=dict(data["topology"]),
        signature=tuple(data["signature"]),
        origin=data.get("origin", "fresh"),
        parent=data.get("parent"),
        new_features=tuple(data.get("new_features", ())),
    )


class CorpusStore:
    """A directory of corpus entries with a union coverage map.

    Layout: one ``entry-<id>.json`` per retained scenario (the id is
    content-addressed over program + trace + topology, so re-adding an
    identical scenario is naturally idempotent).  The store keeps the
    union of every entry's signature in :attr:`covered`;
    :meth:`consider` retains an entry iff it contributes at least one
    uncovered feature.
    """

    def __init__(self, directory):
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        self.entries: dict[str, CorpusEntry] = {}
        self.covered: set[str] = set()
        for path in sorted(self.directory.glob("entry-*.json")):
            entry = _entry_from_json(json.loads(path.read_text()))
            self.entries[entry.entry_id] = entry
            self.covered |= set(entry.signature)

    def __len__(self) -> int:
        return len(self.entries)

    def _path(self, entry_id: str) -> Path:
        return self.directory / f"entry-{entry_id}.json"

    def _write(self, entry: CorpusEntry) -> None:
        self._path(entry.entry_id).write_text(
            json.dumps(_entry_to_json(entry), indent=2, sort_keys=True) + "\n"
        )

    def add(self, entry: CorpusEntry) -> None:
        """Retain unconditionally (seeding probes and tests)."""
        self.entries[entry.entry_id] = entry
        self.covered |= set(entry.signature)
        self._write(entry)

    def consider(self, entry: CorpusEntry) -> tuple[str, ...]:
        """Retain ``entry`` iff it is coverage-novel.

        Returns the features it covered first — empty means the entry
        was subsumed by the existing corpus and discarded.
        """
        new = tuple(sorted(set(entry.signature) - self.covered))
        if not new:
            return ()
        self.add(replace(entry, new_features=new))
        return new

    def minimize(self) -> list[str]:
        """Drop entries whose signature is subsumed by the kept set.

        Greedy set cover over the union coverage: repeatedly keep the
        entry covering the most still-uncovered features (ties broken
        by entry id, so minimization is deterministic), then delete
        everything that no longer contributes.  Returns removed ids.
        """
        remaining = dict(self.entries)
        keep: dict[str, CorpusEntry] = {}
        covered: set[str] = set()
        while remaining:
            best = max(
                remaining.values(),
                key=lambda e: (len(set(e.signature) - covered), e.entry_id),
            )
            if not set(best.signature) - covered:
                break
            keep[best.entry_id] = best
            covered |= set(best.signature)
            del remaining[best.entry_id]
        removed = [eid for eid in self.entries if eid not in keep]
        for entry_id in removed:
            self._path(entry_id).unlink(missing_ok=True)
        self.entries = keep
        return removed

    def pick(self, rng: random.Random) -> CorpusEntry:
        """A deterministic random entry (sorted ids, then choice)."""
        if not self.entries:
            raise ValueError("corpus is empty")
        return self.entries[rng.choice(sorted(self.entries))]

    def verify(self) -> list[str]:
        """Replay every entry; returns problems (empty = all faithful)."""
        problems: list[str] = []
        for entry_id in sorted(self.entries):
            problems.extend(verify_entry(self.entries[entry_id]))
        return problems

    def summary(self) -> dict:
        return {
            "entries": len(self.entries),
            "covered_features": len(self.covered),
            "directory": str(self.directory),
        }


def verify_entry(entry: CorpusEntry) -> list[str]:
    """Replay one entry and check it reproduces its recorded run.

    Packet-for-packet fidelity without storing packets: replaying the
    stored trace must (a) re-capture to *exactly* the stored trace —
    same arrivals, flows, payload words and sizes — and (b) reproduce
    the recorded coverage signature, which pins every ring high-water,
    drop count, steered count and latency bucket of the original run.
    """
    from repro.fuzz.netgen import ScenarioInvalid, build_scenario_app

    scenario = entry.scenario()
    try:
        app = build_scenario_app(scenario)
    except ScenarioInvalid as exc:
        return [f"entry {entry.entry_id}: stored program unusable: {exc}"]
    result = run_stream(app, scenario.config)
    problems = []
    if capture_trace(result) != entry.trace:
        problems.append(
            f"entry {entry.entry_id}: replay diverged from the stored trace"
        )
    signature = coverage_signature(result)
    if signature != entry.signature:
        missing = set(entry.signature) - set(signature)
        gained = set(signature) - set(entry.signature)
        problems.append(
            f"entry {entry.entry_id}: replay signature drifted "
            f"(-{sorted(missing)} +{sorted(gained)})"
        )
    return problems


# --------------------------------------------------------------------------
# The mutation engine
# --------------------------------------------------------------------------


def trace_problems(
    trace: tuple[TraceEvent, ...], flows: tuple[int, ...] | None = None
) -> list[str]:
    """Validity violations of a (possibly mutated) trace (empty = ok).

    The executable contract every mutation must preserve: non-empty,
    non-negative integer gaps, 32-bit payload words, and — when the
    entry's flow pool is given — every event's flow drawn from it.
    A trace that passes here is accepted by ``NetConfig.trace``
    validation and replayable by any app with a ``replay`` constructor.
    """
    problems: list[str] = []
    if not trace:
        return ["trace is empty"]
    pool = set(flows) if flows else None
    for index, event in enumerate(trace):
        if not isinstance(event.gap, int) or event.gap < 0:
            problems.append(f"event {index}: bad gap {event.gap!r}")
        for word in event.payload:
            if not isinstance(word, int) or not 0 <= word <= _WORD_MASK:
                problems.append(f"event {index}: bad payload word {word!r}")
        if event.flow is not None and not isinstance(event.flow, int):
            problems.append(f"event {index}: bad flow {event.flow!r}")
        if pool is not None and event.flow is not None and event.flow not in pool:
            problems.append(
                f"event {index}: flow {event.flow:#x} outside the pool"
            )
    return problems


def _splice(rng: random.Random, events: list[TraceEvent]) -> list[TraceEvent]:
    if len(events) < 2:
        return events
    length = rng.randrange(1, max(2, len(events) // 2))
    start = rng.randrange(0, len(events) - length + 1)
    segment = events[start : start + length]
    rest = events[:start] + events[start + length :]
    at = rng.randrange(0, len(rest) + 1)
    return rest[:at] + segment + rest[at:]


def _duplicate(rng: random.Random, events: list[TraceEvent]) -> list[TraceEvent]:
    length = rng.randrange(1, min(4, len(events)) + 1)
    start = rng.randrange(0, len(events) - length + 1)
    segment = events[start : start + length]
    at = rng.randrange(0, len(events) + 1)
    return events[:at] + segment + events[at:]


def _reorder(rng: random.Random, events: list[TraceEvent]) -> list[TraceEvent]:
    if len(events) < 2:
        return events
    i = rng.randrange(0, len(events))
    j = rng.randrange(0, len(events))
    events = list(events)
    events[i], events[j] = events[j], events[i]
    return events


def _gap_jitter(rng: random.Random, events: list[TraceEvent]) -> list[TraceEvent]:
    out = []
    for event in events:
        if rng.random() < 0.5:
            event = replace(
                event, gap=int(event.gap * rng.choice(_GAP_SCALES))
            )
        out.append(event)
    return out


def _retoken(
    rng: random.Random, events: list[TraceEvent], flows: tuple[int, ...]
) -> list[TraceEvent]:
    present = sorted({e.flow for e in events if e.flow is not None})
    if not present or not flows:
        return events
    old = rng.choice(present)
    new = rng.choice(flows)
    out = []
    for event in events:
        if event.flow == old:
            payload = event.payload
            if payload:
                # generated scenario payloads carry the flow token in
                # word 0 (it doubles as the app's flow key) — move it
                # with the flow so replay expectations stay derivable.
                payload = (new & _WORD_MASK,) + payload[1:]
            event = replace(event, flow=new, payload=payload)
        out.append(event)
    return out


def mutate_trace(
    rng: random.Random,
    op: str,
    trace: tuple[TraceEvent, ...],
    flows: tuple[int, ...],
) -> tuple[TraceEvent, ...]:
    """Apply one named trace mutation; always returns a valid trace."""
    events = list(trace)
    if op == "splice":
        events = _splice(rng, events)
    elif op == "duplicate":
        events = _duplicate(rng, events)
    elif op == "reorder":
        events = _reorder(rng, events)
    elif op == "gap_jitter":
        events = _gap_jitter(rng, events)
    elif op == "retoken":
        events = _retoken(rng, events, flows)
    else:
        raise ValueError(f"unknown trace mutation '{op}'")
    return tuple(events)


def mutate_topology(
    rng: random.Random, config: NetConfig, gen_config=None
) -> NetConfig:
    """A fresh topology for cross-topology replay, drawn from the same
    choice space the scenario generator samples (so every swap is a
    topology the runtime accepts)."""
    if gen_config is None:
        from repro.fuzz.netgen import NetGenConfig

        gen_config = NetGenConfig()
    return replace(
        config,
        engines=rng.choice(gen_config.engine_choices),
        threads=rng.choice(gen_config.thread_choices),
        rx_capacity=rng.choice(gen_config.rx_choices),
        tx_capacity=rng.choice(gen_config.tx_choices),
        steer=rng.choice(gen_config.steer_choices),
        dispatch_cycles=rng.choice(gen_config.dispatch_choices),
    )


def mutate_entry(
    rng: random.Random, entry: CorpusEntry, gen_config=None
) -> tuple[str, tuple[TraceEvent, ...], NetConfig]:
    """One mutated scenario from a corpus entry.

    Draws an operator uniformly from :data:`MUTATIONS` and returns
    ``(op, trace, config)`` — ``topology`` keeps the trace and swaps
    the config, every other operator keeps the config and mutates the
    trace.
    """
    op = rng.choice(MUTATIONS)
    if op == "topology":
        return op, entry.trace, mutate_topology(rng, entry.config(), gen_config)
    return op, mutate_trace(rng, op, entry.trace, entry.flows), entry.config()
