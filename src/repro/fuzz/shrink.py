"""Delta-debugging test-case minimizer for mismatching Nova programs.

Works on source *lines* (the generator emits one statement per line), so
it needs no AST surgery: a candidate is interesting iff the caller's
predicate still reports a divergence — candidates that no longer parse,
typecheck, or reproduce simply fail the predicate and are discarded.

Two phases, iterated to a fixed point under a shared predicate budget:

1. **ddmin over lines** — remove progressively smaller chunks of lines
   (classic Zeller/Hildebrandt, adapted to "greedy with shrinking chunk
   size" since the predicate dominates the cost);
2. **per-line simplification** — rewrite ``let x = <expr>;`` to
   ``let x = 0;``, drop ``else`` arms, and collapse the final result
   expression, all of which open up further line removals.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import Callable

_LET_RE = re.compile(r"^(\s*let\s+\w+\s*=\s*).*;\s*$")
_ASSIGN_RE = re.compile(r"^(\s*\w+\s*:=\s*).*;\s*$")


@dataclass
class ShrinkStats:
    predicate_calls: int = 0
    lines_before: int = 0
    lines_after: int = 0
    rounds: int = 0


@dataclass
class _Budget:
    remaining: int

    def spend(self) -> bool:
        if self.remaining <= 0:
            return False
        self.remaining -= 1
        return True


def _lines(source: str) -> list[str]:
    return [line for line in source.splitlines() if line.strip()]


def _join(lines: list[str]) -> str:
    return "\n".join(lines) + "\n"


def _ddmin(
    items: list,
    interesting: Callable[[list], bool],
    budget: _Budget,
    stats: ShrinkStats,
) -> list:
    """Greedy shrinking-chunk ddmin over any item list.

    Removes progressively smaller chunks while the predicate stays
    true; never proposes the empty list.  Items are opaque — the same
    engine minimizes program *lines* and traffic-trace *events*.
    """
    chunk = max(1, len(items) // 2)
    while chunk >= 1:
        index = 0
        while index < len(items):
            candidate = items[:index] + items[index + chunk :]
            if not candidate:  # never propose the empty list
                index += chunk
                continue
            if not budget.spend():
                return items
            stats.predicate_calls += 1
            if interesting(candidate):
                items = candidate  # keep the removal, stay at this index
            else:
                index += chunk
        chunk //= 2
    return items


def _ddmin_lines(
    lines: list[str],
    interesting: Callable[[str], bool],
    budget: _Budget,
    stats: ShrinkStats,
) -> list[str]:
    """Remove chunks of lines while the predicate stays true."""
    return _ddmin(
        lines, lambda candidate: interesting(_join(candidate)), budget, stats
    )


def shrink_list(
    items: list,
    interesting: Callable[[list], bool],
    max_predicate_calls: int = 200,
) -> tuple[list, ShrinkStats]:
    """Minimize an item list while ``interesting(items)`` holds.

    The list-shaped sibling of :func:`shrink`: ddmin over opaque items
    (the net fuzzer minimizes traffic traces with it).  Re-checks the
    input first so a flaky predicate cannot "minimize" a healthy list;
    never returns the empty list.
    """
    stats = ShrinkStats(lines_before=len(items))
    budget = _Budget(max_predicate_calls)
    if not budget.spend():
        stats.lines_after = len(items)
        return items, stats
    stats.predicate_calls += 1
    if not items or not interesting(items):
        stats.lines_after = len(items)
        return items, stats
    items = _ddmin(items, interesting, budget, stats)
    stats.lines_after = len(items)
    return items, stats


def _simplify_line(line: str) -> list[str]:
    """Cheaper variants of one line, most aggressive first."""
    out = []
    for pattern in (_LET_RE, _ASSIGN_RE):
        match = pattern.match(line)
        if match and not line.strip().endswith("= 0;"):
            out.append(f"{match.group(1)}0;")
    stripped = line.strip()
    # the final result expression of a block: try the simplest value
    if (
        stripped
        and not stripped.endswith((";", "{", "}"))
        and not stripped.startswith(("fun", "layout", "while", "if"))
        and stripped != "0"
    ):
        indent = line[: len(line) - len(line.lstrip())]
        out.append(f"{indent}0")
    return out


def _simplify_pass(
    lines: list[str],
    interesting: Callable[[str], bool],
    budget: _Budget,
    stats: ShrinkStats,
) -> tuple[list[str], bool]:
    changed = False
    for index in range(len(lines)):
        for replacement in _simplify_line(lines[index]):
            if not budget.spend():
                return lines, changed
            candidate = lines[:index] + [replacement] + lines[index + 1 :]
            stats.predicate_calls += 1
            if interesting(_join(candidate)):
                lines = candidate
                changed = True
                break
    return lines, changed


def shrink(
    source: str,
    interesting: Callable[[str], bool],
    max_predicate_calls: int = 400,
) -> tuple[str, ShrinkStats]:
    """Minimize ``source`` while ``interesting(source)`` holds.

    ``interesting`` must be true for the input (callers should assert
    this; :func:`shrink` re-checks and returns the input unchanged if
    not, so a flaky predicate cannot "minimize" a healthy program).
    Returns ``(minimized_source, stats)``.
    """
    stats = ShrinkStats(lines_before=len(_lines(source)))
    budget = _Budget(max_predicate_calls)
    if not budget.spend():
        stats.lines_after = stats.lines_before
        return source, stats
    stats.predicate_calls += 1
    if not interesting(source):
        stats.lines_after = stats.lines_before
        return source, stats

    lines = _lines(source)
    while True:
        stats.rounds += 1
        before = list(lines)
        lines = _ddmin_lines(lines, interesting, budget, stats)
        lines, simplified = _simplify_pass(lines, interesting, budget, stats)
        if lines == before and not simplified:
            break
        if budget.remaining <= 0:
            break
    stats.lines_after = len(lines)
    return _join(lines), stats


@dataclass
class CrashArtifact:
    """What gets written to disk for one divergence."""

    directory: str
    program_path: str
    minimized_path: str
    report_path: str


def write_artifact(
    directory,
    program,
    report,
    minimized: str | None = None,
    stats: ShrinkStats | None = None,
) -> CrashArtifact:
    """Persist a crash-artifact directory for one mismatching program.

    Layout: ``program.nova`` (as generated), ``minimized.nova`` (after
    shrinking, when available) and ``report.json`` (seed, input vectors,
    memory image, divergences, shrink statistics) — everything needed to
    triage without re-running the campaign.
    """
    import json
    from pathlib import Path

    path = Path(directory)
    path.mkdir(parents=True, exist_ok=True)
    program_path = path / "program.nova"
    program_path.write_text(program.source)
    minimized_path = path / "minimized.nova"
    if minimized is not None:
        minimized_path.write_text(minimized)
    payload = {
        "seed": program.seed,
        "params": list(program.params),
        "vectors": [dict(v) for v in program.vectors],
        "memory_image": {
            space: [[addr, words] for addr, words in chunks]
            for space, chunks in program.memory_image.items()
        },
        "divergences": [str(d) for d in report.divergences],
        "configs_run": report.configs_run,
        "skips": [[s.config, s.reason] for s in report.skips],
    }
    if stats is not None:
        payload["shrink"] = {
            "predicate_calls": stats.predicate_calls,
            "lines_before": stats.lines_before,
            "lines_after": stats.lines_after,
            "rounds": stats.rounds,
        }
    report_path = path / "report.json"
    report_path.write_text(json.dumps(payload, indent=2) + "\n")
    return CrashArtifact(
        directory=str(path),
        program_path=str(program_path),
        minimized_path=str(minimized_path),
        report_path=str(report_path),
    )
