"""``repro.fuzz`` — differential fuzzing for the Nova → IXP1200 pipeline.

The paper's claim is that CPS optimization, SSU cloning and ILP register
allocation preserve program behaviour.  This package earns that claim
statistically instead of anecdotally:

- :mod:`repro.fuzz.gen` — a seeded, typed random Nova program generator
  (records, tuples, layouts with overlays, ``try``/``handle``/``raise``,
  tail calls, memory traffic) whose output is well-typed by construction;
- :mod:`repro.fuzz.oracle` — compiles each program under a matrix of
  configurations (optimizer on/off, SSU on/off, allocator highs / bnb /
  baseline) and demands bit-identical simulator results, memory images
  and solution-replay verdicts;
- :mod:`repro.fuzz.shrink` — a delta-debugging minimizer that reduces a
  mismatching program to a small reproducer;
- :mod:`repro.fuzz.driver` — the campaign runner behind ``novac fuzz``
  (parallel fan-out through :func:`repro.batch.scatter`, crash-artifact
  directories, per-config trace spans);
- :mod:`repro.fuzz.inject` — deliberate miscompilation hooks used to
  prove the oracle and shrinker actually work;
- :mod:`repro.fuzz.netmeta` — metamorphic checks for the streaming
  runtime's flow-hash steering (flow affinity, per-flow order, packet
  conservation, engine-count independence);
- :mod:`repro.fuzz.netgen` — whole-scenario fuzzing of the streaming
  runtime behind ``novac fuzz --net``: random (program, traffic,
  topology) triples checked against the netmeta invariants plus trace
  replay fidelity and latency monotonicity, shrunk over both the
  program and the traffic trace;
- :mod:`repro.fuzz.corpus` — a persistent coverage-guided corpus for
  the net fuzzer: scenarios whose runtime-counter signature reaches an
  uncovered bucket are retained, mutated (trace splice / duplicate /
  reorder, gap jitter, flow retokening, topology swap) and fed back
  into later campaigns via ``--corpus-dir``.
"""

from repro.fuzz.corpus import (
    CorpusEntry,
    CorpusStore,
    entry_from_scenario,
    mutate_entry,
    mutate_trace,
    trace_problems,
    verify_entry,
)
from repro.fuzz.gen import GenConfig, GenProgram, generate
from repro.fuzz.netgen import (
    NetGenConfig,
    NetScenario,
    ScenarioReport,
    build_scenario_app,
    check_scenario,
    gen_scenario,
    run_net_campaign,
    shrink_scenario,
    trace_violations,
)
from repro.fuzz.netmeta import check_result, check_steering
from repro.fuzz.oracle import (
    Divergence,
    FuzzConfig,
    OracleReport,
    check_generated,
    check_program,
    default_configs,
)
from repro.fuzz.shrink import shrink, shrink_list

__all__ = [
    "CorpusEntry",
    "CorpusStore",
    "Divergence",
    "FuzzConfig",
    "GenConfig",
    "GenProgram",
    "NetGenConfig",
    "NetScenario",
    "OracleReport",
    "ScenarioReport",
    "build_scenario_app",
    "check_generated",
    "check_program",
    "check_result",
    "check_scenario",
    "check_steering",
    "default_configs",
    "entry_from_scenario",
    "gen_scenario",
    "generate",
    "mutate_entry",
    "mutate_trace",
    "run_net_campaign",
    "shrink",
    "shrink_list",
    "shrink_scenario",
    "trace_problems",
    "trace_violations",
    "verify_entry",
]
