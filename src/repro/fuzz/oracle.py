"""Cross-configuration differential oracle.

One generated program is compiled under a matrix of pipeline
configurations and executed on the :mod:`repro.ixp.machine` simulator
for every input vector.  The first configuration (``ref`` — optimizer
and SSU on, no allocator, virtual registers) defines the expected
behaviour; every other configuration must produce bit-identical halt
values and memory images, or the program is a *divergence* — evidence of
a miscompile somewhere between the two configuration points.

Allocator configurations additionally replay the paper's constraint
families against the extracted ILP solution
(:func:`repro.alloc.verify.check_solution`) so a solver answer that
happens to simulate correctly but violates a datapath rule still fails.

Legal asymmetries are *skips*, not divergences:

- ``ssu-off`` only runs virtually (the paper's Sections 9-10 ablation:
  without SSU some programs have no feasible coloring);
- the forced-baseline configuration may spill on register-heavy
  programs, which the heuristic allocator reports by raising — the
  config is skipped rather than failed.

Compilation sharing
-------------------

Compile time, not simulation, dominates a campaign (the three allocator
configs each solve an ILP), so the oracle reuses every option-independent
stage across the matrix instead of calling ``compile_nova`` six times:

- the front end (parse → typecheck → CPS → deproc) runs once per program
  (:func:`repro.compiler.parse_front`);
- configs that differ only in allocator knobs re-run just the allocator
  over the reference's virtual flowgraph
  (:func:`repro.compiler.allocate_compilation`);
- solver-engine configs with identical model options share one built
  :class:`~repro.alloc.ilpmodel.AllocModel` (and, via the memoized
  ``Model.standard_form``, one sparse-matrix conversion);
- an optional :class:`repro.cache.CompileCache` short-circuits repeat
  compiles entirely (shrinking re-checks the same base program many
  times).  Cached artifacts are slim — ``alloc.model`` is dropped — so
  the ILP constraint replay silently skips on hits; a divergence found
  through the cache always reproduces without it.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.alloc.verify import check_solution
from repro.cache import CompileCache, frontend_fingerprint, options_fingerprint
from repro.compiler import (
    Compilation,
    CompileOptions,
    FrontEnd,
    allocate_compilation,
    compile_from_front,
    parse_front,
)
from repro.errors import AllocError, NovaError, SimulatorError
from repro.ilp.solve import SolveOptions
from repro.ixp.machine import Machine
from repro.ixp.memory import MemorySystem
from repro.trace import ensure

#: scratch window reserved for spill slots / spilled inputs; excluded
#: from memory comparison on physical runs (see repro.alloc.decode).
SPILL_WINDOW = (960, 64)

#: cycle budget per simulated vector — generated programs are tiny, so
#: anything past this is a runaway loop (itself a finding).
MAX_CYCLES = 5_000_000


@dataclass(frozen=True)
class FuzzConfig:
    """One point in the configuration matrix."""

    name: str
    options: CompileOptions
    #: run the allocated (physical-register) flowgraph
    physical: bool = False
    #: simulator speed tier the vectors execute under; the compiled
    #: tier rides the same matrix so nightly campaigns cross-check the
    #: codegen stage against the decoded oracle automatically.
    sim_mode: str = "decoded"


def _virtual_options(**overrides) -> CompileOptions:
    options = CompileOptions(**overrides)
    options.run_allocator = False
    return options


def default_configs(names: list[str] | None = None) -> list[FuzzConfig]:
    """The full matrix; ``names`` selects a subset (ref is always kept).

    ``alloc-baseline`` forces the heuristic graph-coloring allocator by
    giving the exact solver a zero time budget, which walks the PR-2
    fallback chain to its last stage.
    """
    highs = CompileOptions()
    highs.alloc.solve = SolveOptions(engine="highs", time_limit=60.0)
    bnb = CompileOptions()
    bnb.alloc.solve = SolveOptions(engine="bnb", time_limit=60.0)
    baseline = CompileOptions()
    baseline.alloc.solve = SolveOptions(engine="bnb", time_limit=0.0)

    matrix = [
        FuzzConfig("ref", _virtual_options()),
        FuzzConfig("no-opt", _virtual_options(optimizer_rounds=0)),
        FuzzConfig("ssu-off", _virtual_options(run_ssu=False)),
        # Same compile as ref, executed on the codegen tier: any
        # difference is a miscompiled *simulator*, not program.
        FuzzConfig("sim-compiled", _virtual_options(), sim_mode="compiled"),
        FuzzConfig("alloc-highs", highs, physical=True),
        FuzzConfig("alloc-bnb", bnb, physical=True),
        FuzzConfig("alloc-baseline", baseline, physical=True),
    ]
    if names is None:
        return matrix
    unknown = set(names) - {c.name for c in matrix}
    if unknown:
        raise ValueError(f"unknown fuzz config(s): {sorted(unknown)}")
    return [c for c in matrix if c.name == "ref" or c.name in names]


@dataclass
class Divergence:
    """One observed behaviour difference against the reference config."""

    config: str
    kind: str  # 'results' | 'memory' | 'sim-error' | 'compile-error' | 'verify'
    vector: int | None = None
    detail: str = ""
    expected: object = None
    actual: object = None

    def __str__(self) -> str:
        where = f" vector {self.vector}" if self.vector is not None else ""
        body = self.detail
        if self.kind in ("results", "memory"):
            body = f"{self.detail} expected={self.expected} actual={self.actual}"
        return f"[{self.config}]{where} {self.kind}: {body}"


@dataclass
class Skip:
    config: str
    reason: str


@dataclass
class Outcome:
    """What one config produced for one input vector."""

    results: list | None = None
    memory: dict | None = None  # space -> {addr: nonzero word}
    error: str | None = None


@dataclass
class OracleReport:
    seed: int | None
    configs_run: list[str] = field(default_factory=list)
    divergences: list[Divergence] = field(default_factory=list)
    skips: list[Skip] = field(default_factory=list)
    #: reference halt values per vector (None if the program is invalid)
    reference: list | None = None
    #: the reference config itself failed: the *program* is bad, not the
    #: compiler — the generator should never produce these.
    invalid: str | None = None
    #: compile-cache outcomes across the matrix (zero when no cache)
    cache_hits: int = 0
    cache_misses: int = 0

    @property
    def ok(self) -> bool:
        return self.invalid is None and not self.divergences


@dataclass
class _CompileShare:
    """Per-program state reused across the configuration matrix."""

    source: str
    filename: str = "<fuzz>"
    #: lazily parsed option-independent pipeline prefix
    front: FrontEnd | None = None
    #: compilations usable as allocator bases, by front-end fingerprint
    bases: dict[str, Compilation] = field(default_factory=dict)
    #: built AllocModels, by (front-end fp, model-options fp)
    models: dict[tuple[str, str], object] = field(default_factory=dict)


def _model_share_key(
    options: CompileOptions, front_fp: str
) -> tuple[str, str] | None:
    """Key under which this config's AllocModel may be shared, or None.

    Two-phase allocation mutates the model's objective and
    rematerialization transforms the graph before modeling, so neither
    variant can reuse (or donate) a prebuilt model.
    """
    alloc = options.alloc
    if alloc.two_phase or alloc.model.remat_constants:
        return None
    return (front_fp, options_fingerprint(alloc.model))


def _compile_shared(
    config: FuzzConfig, share: _CompileShare, tracer
) -> Compilation:
    """Compile one config, reusing front end / flowgraph / AllocModel."""
    options = config.options
    fp = frontend_fingerprint(options)
    base = share.bases.get(fp)
    if options.run_allocator and base is not None:
        key = _model_share_key(options, fp)
        prebuilt = share.models.get(key) if key is not None else None
        comp = allocate_compilation(base, options, tracer, prebuilt=prebuilt)
    else:
        if share.front is None:
            share.front = parse_front(share.source, share.filename, tracer)
        comp = compile_from_front(share.front, options, tracer)
        share.bases.setdefault(fp, comp)
    if options.run_allocator and comp.alloc is not None:
        key = _model_share_key(options, fp)
        if key is not None and comp.alloc.model is not None:
            share.models.setdefault(key, comp.alloc.model)
    return comp


def _compile_config(
    config: FuzzConfig,
    share: _CompileShare,
    cache: CompileCache | None,
    tracer,
    report: OracleReport,
) -> Compilation:
    """Cache lookup, then the shared compile path; stores on miss."""
    if cache is not None:
        cached = cache.get(share.source, config.options)
        if cached is not None:
            report.cache_hits += 1
            # A cached artifact still carries the virtual flowgraph, so
            # it can seed allocator-only recompiles for later configs.
            share.bases.setdefault(frontend_fingerprint(config.options), cached)
            return cached
        report.cache_misses += 1
    comp = _compile_shared(config, share, tracer)
    if cache is not None:
        cache.put(share.source, config.options, comp)
    return comp


def _snapshot_memory(memory: MemorySystem, physical: bool) -> dict:
    """Nonzero words per space, minus the physical spill window."""
    out: dict[str, dict[int, int]] = {}
    lo, hi = SPILL_WINDOW[0], SPILL_WINDOW[0] + SPILL_WINDOW[1]
    for space in ("sram", "sdram", "scratch"):
        words = {a: w for a, w in memory[space].words.items() if w != 0}
        if physical and space == "scratch":
            words = {a: w for a, w in words.items() if not lo <= a < hi}
        out[space] = words
    return out


def _make_memory(image: dict | None) -> MemorySystem:
    memory = MemorySystem.create()
    for space, chunks in (image or {}).items():
        for addr, words in chunks:
            memory[space].load_words(addr, words)
    return memory


def _run_vector(
    comp: Compilation,
    config: FuzzConfig,
    vector: dict,
    memory_image: dict | None,
    max_cycles: int,
) -> Outcome:
    """Compile artifact + one input vector -> halt values and memory."""
    raw = comp.make_inputs(**vector)
    memory = _make_memory(memory_image)
    if config.physical:
        graph = comp.physical
        locations = comp.alloc.decoded.input_locations
        inputs: dict = {}
        for temp, value in raw.items():
            loc = locations.get(temp)
            if loc is None:
                continue  # dead input
            kind, where = loc
            if kind == "reg":
                inputs[(where.bank, where.index)] = value
            else:
                memory["scratch"].load_words(where, [value])
    else:
        graph, inputs = comp.flowgraph, raw
    machine = Machine(
        graph,
        memory=memory,
        threads=1,
        physical=config.physical,
        input_provider=lambda tid, it: dict(inputs) if it == 0 else None,
        max_cycles=max_cycles,
        mode=config.sim_mode,
    )
    try:
        run = machine.run()
    except SimulatorError as exc:
        return Outcome(error=str(exc))
    return Outcome(
        results=[values for _, values in run.results],
        memory=_snapshot_memory(memory, config.physical),
    )


def _is_legal_skip(config: FuzzConfig, exc: NovaError) -> str | None:
    """Compile failures that are documented behaviour, not miscompiles."""
    if not isinstance(exc, AllocError):
        return None
    text = str(exc)
    if config.name == "alloc-baseline" and "spilled" in text:
        return "baseline allocator spilled"
    return None


def check_program(
    source: str,
    vectors,
    memory_image: dict | None = None,
    configs: list[FuzzConfig] | None = None,
    tracer=None,
    seed: int | None = None,
    max_cycles: int = MAX_CYCLES,
    cache: CompileCache | None = None,
) -> OracleReport:
    """Differentially test one program across the config matrix.

    ``vectors`` is a sequence of ``{param: word}`` input dicts.  Returns
    an :class:`OracleReport`; ``report.ok`` means every configuration
    agreed with the reference on every vector (modulo legal skips).
    ``cache`` optionally short-circuits per-config compiles with a
    content-addressed :class:`repro.cache.CompileCache`.
    """
    configs = configs or default_configs()
    tracer = ensure(tracer)
    report = OracleReport(seed=seed)
    share = _CompileShare(source=source)

    reference: list[Outcome] = []
    ref_config = configs[0]
    with tracer.span("fuzz.config", config=ref_config.name):
        try:
            ref_comp = _compile_config(ref_config, share, cache, tracer, report)
        except NovaError as exc:
            report.invalid = f"reference compile failed: {exc}"
            return report
        for vector in vectors:
            outcome = _run_vector(
                ref_comp, ref_config, vector, memory_image, max_cycles
            )
            if outcome.error is not None:
                report.invalid = f"reference run failed: {outcome.error}"
                return report
            reference.append(outcome)
    report.configs_run.append(ref_config.name)
    report.reference = [o.results for o in reference]

    for config in configs[1:]:
        with tracer.span("fuzz.config", config=config.name) as sp:
            try:
                comp = _compile_config(config, share, cache, tracer, report)
            except NovaError as exc:
                reason = _is_legal_skip(config, exc)
                if reason is not None:
                    report.skips.append(Skip(config.name, reason))
                    if sp:
                        sp.add(outcome=f"skip:{reason}")
                    continue
                report.divergences.append(
                    Divergence(
                        config.name,
                        "compile-error",
                        detail=f"{type(exc).__name__}: {exc}",
                    )
                )
                if sp:
                    sp.add(outcome="compile-error")
                continue
            report.configs_run.append(config.name)
            divergences_before = len(report.divergences)
            if config.physical and comp.alloc is not None:
                _verify_allocation(comp, config, report)
            for index, vector in enumerate(vectors):
                outcome = _run_vector(
                    comp, config, vector, memory_image, max_cycles
                )
                _compare(report, config, index, reference[index], outcome)
            if sp:
                new = len(report.divergences) - divergences_before
                sp.add(outcome="ok" if new == 0 else f"divergences:{new}")
    return report


def _verify_allocation(
    comp: Compilation, config: FuzzConfig, report: OracleReport
) -> None:
    """Replay the ILP constraint families against the solution."""
    alloc = comp.alloc
    if alloc.model is None or alloc.alloc is None:
        return  # baseline fallback: no ILP solution to replay
    solution_report = check_solution(alloc.model, alloc.alloc)
    if not solution_report.ok:
        report.divergences.append(
            Divergence(
                config.name,
                "verify",
                detail="; ".join(solution_report.violations[:5]),
            )
        )


def _compare(
    report: OracleReport,
    config: FuzzConfig,
    vector_index: int,
    expected: Outcome,
    actual: Outcome,
) -> None:
    if actual.error is not None:
        report.divergences.append(
            Divergence(
                config.name, "sim-error", vector=vector_index, detail=actual.error
            )
        )
        return
    if actual.results != expected.results:
        report.divergences.append(
            Divergence(
                config.name,
                "results",
                vector=vector_index,
                detail="halt values differ",
                expected=expected.results,
                actual=actual.results,
            )
        )
        return
    for space in ("sram", "sdram", "scratch"):
        if actual.memory[space] != expected.memory[space]:
            report.divergences.append(
                Divergence(
                    config.name,
                    "memory",
                    vector=vector_index,
                    detail=f"{space} contents differ",
                    expected=expected.memory[space],
                    actual=actual.memory[space],
                )
            )
            return


def check_generated(
    program, configs=None, tracer=None, max_cycles=MAX_CYCLES, cache=None
):
    """:func:`check_program` over a :class:`repro.fuzz.gen.GenProgram`."""
    return check_program(
        program.source,
        program.vectors,
        memory_image=program.memory_image,
        configs=configs,
        tracer=tracer,
        seed=program.seed,
        max_cycles=max_cycles,
        cache=cache,
    )
