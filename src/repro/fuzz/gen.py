"""Seeded, typed random Nova program generator.

Programs are well-typed *by construction*: the generator only writes
word-valued expressions over in-scope word atoms, only raises inside a
``try`` whose handler catches the exception, keeps every loop bounded by
a small constant, restricts ``*``/``/``/``%`` to the constant forms
instruction selection can expand (shift-add, power-of-two shift/mask),
and keeps memory addresses inside preloaded in-range regions (SDRAM
accesses stay 8-byte aligned).

The same seed and :class:`GenConfig` always produce the same
:class:`GenProgram` — source text, input vectors and memory image — so
any fuzz finding is reproducible from its seed alone.

Feature knobs (``GenConfig.features``) gate each construct so a campaign
can target one subsystem (e.g. layouts only) or shrink the surface while
chasing a bug.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

MASK = 0xFFFFFFFF

#: Every construct the generator knows how to emit.
ALL_FEATURES = frozenset(
    {
        "loops",
        "ifstmt",
        "memory",
        "layouts",
        "overlays",
        "pack",
        "records",
        "tuples",
        "tryraise",
        "calls",
        "tailcalls",
        "exnparams",
        "hash",
        "csr",
        "tuple_result",
    }
)

#: Values worth feeding into 32-bit datapaths.
_SPECIAL_WORDS = (0, 1, 2, 0xFFFFFFFF, 0x80000000, 0x7FFFFFFF, 0xFFFF, 0x100)

#: Constant multipliers selection can expand (popcount <= 4).
_MUL_CONSTANTS = (2, 3, 4, 5, 6, 8, 9, 10, 12, 16)

#: Power-of-two divisors/moduli (shift/mask expansion).
_POW2_CONSTANTS = (2, 4, 8, 16, 32)

_CMPS = ("==", "!=", "<", "<=", ">", ">=")


@dataclass(frozen=True)
class GenConfig:
    """Size and feature knobs for one generated program."""

    max_stmts: int = 7
    max_depth: int = 3
    max_funs: int = 2
    max_params: int = 3
    n_vectors: int = 2
    features: frozenset = ALL_FEATURES


@dataclass
class GenProgram:
    """A generated program plus everything needed to run it."""

    seed: int
    source: str
    params: tuple[str, ...]
    #: input vectors, each mapping source parameter name -> word value
    vectors: tuple[dict, ...]
    #: space -> [(addr, words)] preload chunks
    memory_image: dict = field(default_factory=dict)


@dataclass
class _Layout:
    name: str
    total_bits: int
    #: projection paths that read a word-sized-or-smaller field,
    #: e.g. "f1", "f2.whole", "f2.parts.hi"
    paths: list
    #: (field name, mask, overlay alternative or None) for pack literals
    pack_fields: list


@dataclass
class _Helper:
    name: str
    kind: str  # 'expr' | 'tail' | 'exn'
    arity: int


class _Gen:
    def __init__(self, seed: int, cfg: GenConfig):
        self.rng = random.Random(seed)
        self.cfg = cfg
        self.counter = 0
        #: word-valued atoms readable right now (names and projections)
        self.words: list[str] = []
        #: let-bound word variables that := may target
        self.mutable: list[str] = []
        self.layouts: list[_Layout] = []
        self.helpers: list[_Helper] = []
        self.memory_image: dict[str, list[tuple[int, list[int]]]] = {}
        self._cursor = {"sram": 8, "sdram": 64, "scratch": 8}
        self._read_regions: dict[str, list[tuple[int, int]]] = {}

    def has(self, feature: str) -> bool:
        return feature in self.cfg.features

    def fresh(self, prefix: str) -> str:
        self.counter += 1
        return f"{prefix}{self.counter}"

    def pick_word(self) -> str:
        return self.rng.choice(self.words)

    # -- expressions -------------------------------------------------------

    def literal(self) -> str:
        if self.rng.random() < 0.5:
            return str(self.rng.choice(_SPECIAL_WORDS))
        if self.rng.random() < 0.5:
            return str(self.rng.randrange(0, 64))
        return hex(self.rng.randrange(0, 1 << 32))

    def expr(self, depth: int | None = None) -> str:
        """A word-typed expression over the current scope."""
        if depth is None:
            depth = self.cfg.max_depth
        rng = self.rng
        if depth <= 0 or rng.random() < 0.2:
            if self.words and rng.random() < 0.65:
                return self.pick_word()
            return self.literal()
        kind = rng.choice(
            ["bin", "bin", "bin", "shift", "muldiv", "unary", "ifexpr", "hash"]
        )
        if kind == "bin":
            op = rng.choice(["+", "-", "&", "|", "^"])
            return f"({self.expr(depth - 1)} {op} {self.expr(depth - 1)})"
        if kind == "shift":
            op = rng.choice(["<<", ">>"])
            if rng.random() < 0.7:
                amount = str(rng.randrange(0, 32))
            else:
                # variable shift amounts exercise the non-immediate path
                amount = f"({self.expr(0)} & 31)"
            return f"({self.expr(depth - 1)} {op} {amount})"
        if kind == "muldiv":
            op = rng.choice(["*", "/", "%"])
            if op == "*":
                constant = rng.choice(_MUL_CONSTANTS)
                # A literal on the left would commute into "mul by
                # <literal>" during selection (select.py puts the
                # constant on the right), so keep the left a variable.
                left = (
                    self.pick_word()
                    if self.words
                    else str(rng.choice(_MUL_CONSTANTS))
                )
                return f"({left} {op} {constant})"
            constant = rng.choice(_POW2_CONSTANTS)
            return f"({self.expr(depth - 1)} {op} {constant})"
        if kind == "unary":
            op = rng.choice(["~", "-"])
            return f"({op}{self.expr(depth - 1)})"
        if kind == "hash" and self.has("hash"):
            return f"hash({self.expr(depth - 1)})"
        return (
            f"(if ({self.cond(depth - 1)}) {self.expr(depth - 1)} "
            f"else {self.expr(depth - 1)})"
        )

    def cond(self, depth: int = 1) -> str:
        rng = self.rng
        if depth > 0 and rng.random() < 0.3:
            connective = rng.choice(["&&", "||"])
            return (
                f"({self.cond(depth - 1)}) {connective} "
                f"({self.cond(depth - 1)})"
            )
        if depth > 0 and rng.random() < 0.15:
            return f"!({self.cond(depth - 1)})"
        cmp = rng.choice(_CMPS)
        return f"{self.expr(1)} {cmp} {self.expr(1)}"

    # -- memory regions ----------------------------------------------------

    def _region(self, space: str, count: int, preload: bool) -> int:
        """Reserve an in-range address window; maybe preload it."""
        # Leave 8 words of headroom for masked variable offsets.
        window = count + 8
        addr = self._cursor[space]
        if addr + window > 240:
            regions = self._read_regions.get(space)
            if regions:
                addr, _ = self.rng.choice(regions)
                return addr
            addr = 8 if space != "sdram" else 64
        self._cursor[space] = addr + window + (window % 2)
        if preload:
            words = [self.rng.randrange(0, 1 << 32) for _ in range(window)]
            self.memory_image.setdefault(space, []).append((addr, words))
            self._read_regions.setdefault(space, []).append((addr, count))
        return addr

    def _addr_expr(self, space: str, addr: int) -> str:
        """Literal address, sometimes perturbed by a masked variable."""
        if self.words and self.rng.random() < 0.35:
            # sdram needs 8-byte (even-word) alignment: keep offsets even
            mask = "6" if space == "sdram" else "7"
            return f"({addr} + ({self.pick_word()} & {mask}))"
        return str(addr)

    # -- statements --------------------------------------------------------

    def stmt_let(self, out: list) -> None:
        name = self.fresh("v")
        out.append(f"let {name} = {self.expr()};")
        self.words.append(name)
        self.mutable.append(name)

    def stmt_assign(self, out: list) -> None:
        if not self.mutable:
            return self.stmt_let(out)
        out.append(f"{self.rng.choice(self.mutable)} := {self.expr()};")

    def stmt_if(self, out: list) -> None:
        if not self.mutable:
            return self.stmt_let(out)
        target = self.rng.choice(self.mutable)
        then = f"{{ {target} := {self.expr(1)}; }}"
        if self.rng.random() < 0.5:
            other = self.rng.choice(self.mutable)
            out.append(
                f"if ({self.cond()}) {then} "
                f"else {{ {other} := {self.expr(1)}; }};"
            )
        else:
            out.append(f"if ({self.cond()}) {then};")

    def stmt_loop(self, out: list) -> None:
        accum = self.fresh("acc")
        out.append(f"let {accum} = {self.expr(1)};")
        self.words.append(accum)
        self.mutable.append(accum)
        i = self.fresh("i")
        bound = self.rng.randrange(0, 7)
        out.append(f"let {i} = 0;")
        out.append(f"while ({i} < {bound}) {{")
        self.words.append(i)
        body_stmts = self.rng.randrange(1, 3)
        for _ in range(body_stmts):
            kind = self.rng.random()
            if kind < 0.6 or not self.has("memory"):
                target = self.rng.choice(self.mutable)
                out.append(f"  {target} := {self.expr(2)};")
            else:
                self.stmt_mem_write(out, indent="  ")
        out.append(f"  {i} := {i} + 1;")
        out.append("};")
        # the counter's final value stays readable after the loop

    def stmt_mem_read(self, out: list) -> None:
        space = self.rng.choice(["sram", "sdram", "scratch"])
        count = {
            "sram": self.rng.randrange(1, 5),
            "sdram": 2,
            "scratch": self.rng.randrange(1, 3),
        }[space]
        if space == "sdram":
            count = 2
        addr = self._region(space, count, preload=True)
        names = [self.fresh("m") for _ in range(count)]
        if count == 1:
            out.append(f"let {names[0]} = {space}({self._addr_expr(space, addr)});")
        else:
            pattern = ", ".join(names)
            out.append(
                f"let ({pattern}) = {space}({self._addr_expr(space, addr)});"
            )
        self.words.extend(names)

    def stmt_mem_write(self, out: list, indent: str = "") -> None:
        space = self.rng.choice(["sram", "sdram", "scratch"])
        count = {"sram": self.rng.randrange(1, 4), "sdram": 2, "scratch": 1}[
            space
        ]
        reuse = self._read_regions.get(space)
        if reuse and self.rng.random() < 0.4:
            addr = self.rng.choice(reuse)[0]
        else:
            addr = self._region(space, count, preload=False)
        values = ", ".join(self.expr(1) for _ in range(count))
        if count > 1:
            values = f"({values})"
        out.append(
            f"{indent}{space}({self._addr_expr(space, addr)}) <- {values};"
        )

    def stmt_tuple(self, out: list) -> None:
        names = [self.fresh("t") for _ in range(self.rng.randrange(2, 4))]
        values = ", ".join(self.expr(1) for _ in names)
        out.append(f"let ({', '.join(names)}) = ({values});")
        self.words.extend(names)

    def stmt_record(self, out: list) -> None:
        name = self.fresh("r")
        out.append(
            f"let {name} = [a = {self.expr(1)}, "
            f"b = [c = {self.expr(1)}, d = {self.expr(1)}]];"
        )
        self.words.extend([f"{name}.a", f"{name}.b.c", f"{name}.b.d"])
        if self.rng.random() < 0.5:
            pa, pc = self.fresh("p"), self.fresh("p")
            out.append(f"let [a = {pa}, b = [c = {pc}, d = _]] = {name};")
            self.words.extend([pa, pc])

    def stmt_try(self, out: list) -> None:
        name = self.fresh("e")
        exn = self.fresh("E")
        caught = self.fresh("z")
        out.append(
            f"let {name} = try {{ "
            f"if ({self.cond()}) raise {exn} ({self.expr(1)}) "
            f"else {self.expr(1)} "
            f"}} handle {exn} ({caught}) {{ {caught} ^ {self.expr(1)} }};"
        )
        self.words.append(name)

    def stmt_unpack(self, out: list) -> None:
        layout = self.rng.choice(self.layouts)
        words = (layout.total_bits + 31) // 32
        pad = words * 32 - layout.total_bits
        name = self.fresh("u")
        layout_expr = layout.name if pad == 0 else f"{layout.name} ## {{{pad}}}"
        args = ", ".join(self.expr(1) for _ in range(words))
        if words > 1:
            args = f"({args})"
        out.append(f"let {name} = unpack[{layout_expr}]({args});")
        self.words.extend(f"{name}.{path}" for path in layout.paths)

    def stmt_pack(self, out: list) -> None:
        candidates = [l for l in self.layouts if l.total_bits == 32]
        if not candidates:
            return self.stmt_let(out)
        layout = self.rng.choice(candidates)
        name = self.fresh("k")
        parts = []
        for fname, mask, overlay in layout.pack_fields:
            value = f"({self.expr(1)}) & {mask:#x}"
            if overlay is not None:
                value = f"[{overlay} = {value}]"
            parts.append(f"{fname} = {value}")
        out.append(f"let {name} = pack[{layout.name}] [{', '.join(parts)}];")
        self.words.append(name)

    def stmt_call(self, out: list) -> None:
        if not self.helpers:
            return self.stmt_let(out)
        helper = self.rng.choice(self.helpers)
        name = self.fresh("c")
        if helper.kind == "exn":
            exn = self.fresh("E")
            caught = self.fresh("z")
            out.append(
                f"let {name} = try {{ "
                f"{helper.name}[err = {exn}, v = {self.expr(1)}] "
                f"}} handle {exn} ({caught}) {{ {caught} + 1 }};"
            )
        elif helper.kind == "tail":
            # first argument bounds the recursion depth: keep it small
            out.append(
                f"let {name} = {helper.name}"
                f"(({self.expr(1)}) & 7, {self.expr(1)});"
            )
        else:
            args = ", ".join(self.expr(1) for _ in range(helper.arity))
            out.append(f"let {name} = {helper.name}({args});")
        self.words.append(name)

    def stmt_csr(self, out: list) -> None:
        number = self.rng.randrange(0, 8)
        name = self.fresh("s")
        out.append(f"csr({number}) <- {self.expr(1)};")
        out.append(f"let {name} = csr({number});")
        self.words.append(name)

    # -- declarations ------------------------------------------------------

    def gen_layout(self) -> None:
        total = self.rng.choice([32, 32, 64])
        name = self.fresh("L")
        remaining = total
        items: list[str] = []
        paths: list[str] = []
        pack_fields: list[tuple[str, int, str | None]] = []
        while remaining > 0:
            fname = self.fresh("f")
            if remaining <= 4 or len(items) >= 4:
                width = min(remaining, 32)  # bitfields cap at 32
            else:
                width = self.rng.choice(
                    [w for w in (4, 8, 12, 16, 24) if w < remaining]
                    or [remaining]
                )
            use_overlay = (
                self.has("overlays") and width >= 8 and self.rng.random() < 0.3
            )
            if use_overlay:
                hi = width // 2
                lo = width - hi
                items.append(
                    f"{fname} : overlay {{ whole : {width} | "
                    f"parts : {{ hi : {hi}, lo : {lo} }} }}"
                )
                paths.extend(
                    [f"{fname}.whole", f"{fname}.parts.hi", f"{fname}.parts.lo"]
                )
                pack_fields.append(
                    (fname, (1 << width) - 1 if width < 32 else MASK, "whole")
                )
            else:
                items.append(f"{fname} : {width}")
                if width <= 32:
                    paths.append(fname)
                pack_fields.append(
                    (fname, (1 << width) - 1 if width < 32 else MASK, None)
                )
            remaining -= width
        self.layouts.append(_Layout(name, total, paths, pack_fields))
        self.decls.append(f"layout {name} = {{ {', '.join(items)} }};")

    def gen_helper(self) -> None:
        kinds = ["expr"]
        if self.has("tailcalls"):
            kinds.append("tail")
        if self.has("exnparams") and self.has("tryraise"):
            kinds.append("exn")
        kind = self.rng.choice(kinds)
        name = self.fresh("fn")
        saved_words = self.words
        if kind == "expr":
            self.words = ["a", "b"]
            body = self.expr(2)
            self.decls.append(f"fun {name} (a, b) : word {{ {body} }}")
            self.helpers.append(_Helper(name, "expr", 2))
        elif kind == "tail":
            self.words = ["i", "acc"]
            step = self.expr(1)
            self.decls.append(
                f"fun {name} (i, acc) : word {{ "
                f"if (i == 0) acc else {name}(i - 1, acc ^ ({step})) }}"
            )
            self.helpers.append(_Helper(name, "tail", 2))
        else:
            self.words = ["v"]
            raised = self.expr(1)
            fallback = self.expr(1)
            self.decls.append(
                f"fun {name} [err : exn(word), v : word] : word {{ "
                f"if ({self.cond(0)}) raise err ({raised}) "
                f"else {fallback} }}"
            )
            self.helpers.append(_Helper(name, "exn", 1))
        self.words = saved_words

    # -- whole programs ----------------------------------------------------

    _STMT_WEIGHTS = [
        ("let", 4, None),
        ("assign", 2, None),
        ("ifstmt", 2, "ifstmt"),
        ("loop", 2, "loops"),
        ("mem_read", 3, "memory"),
        ("mem_write", 2, "memory"),
        ("tuple", 1, "tuples"),
        ("record", 1, "records"),
        ("tryraise", 2, "tryraise"),
        ("unpack", 2, "layouts"),
        ("pack", 1, "pack"),
        ("call", 2, "calls"),
        ("csr", 1, "csr"),
    ]

    def generate(self, seed: int) -> GenProgram:
        self.decls: list[str] = []
        rng = self.rng
        if self.has("layouts"):
            for _ in range(rng.randrange(0, 3)):
                self.gen_layout()
        if self.has("calls"):
            for _ in range(rng.randrange(0, self.cfg.max_funs + 1)):
                self.gen_helper()

        params = tuple(
            f"x{i}" for i in range(rng.randrange(1, self.cfg.max_params + 1))
        )
        self.words = list(params)

        body: list[str] = []
        dispatch = {
            "let": self.stmt_let,
            "assign": self.stmt_assign,
            "ifstmt": self.stmt_if,
            "loop": self.stmt_loop,
            "mem_read": self.stmt_mem_read,
            "mem_write": self.stmt_mem_write,
            "tuple": self.stmt_tuple,
            "record": self.stmt_record,
            "tryraise": self.stmt_try,
            "unpack": lambda out: (
                self.stmt_unpack(out) if self.layouts else self.stmt_let(out)
            ),
            "pack": self.stmt_pack,
            "call": self.stmt_call,
            "csr": self.stmt_csr,
        }
        names = [
            name
            for name, weight, feature in self._STMT_WEIGHTS
            if feature is None or self.has(feature)
            for _ in range(weight)
        ]
        for _ in range(rng.randrange(1, self.cfg.max_stmts + 1)):
            dispatch[rng.choice(names)](body)

        # Fold several live values into the result so the differential
        # comparison observes more than one dataflow path.
        atoms = [
            self.pick_word()
            for _ in range(min(len(self.words), rng.randrange(2, 5)))
        ]
        result = " ^ ".join(atoms) if atoms else self.expr(1)
        if self.has("tuple_result") and rng.random() < 0.2:
            result = f"({result}, {self.expr(1)})"

        lines = list(self.decls)
        lines.append(f"fun main ({', '.join(params)}) {{")
        lines.extend(f"  {line}" for line in body)
        lines.append(f"  {result}")
        lines.append("}")
        source = "\n".join(lines) + "\n"

        vectors = []
        for index in range(self.cfg.n_vectors):
            vector = {}
            for p in params:
                if index == 0 and rng.random() < 0.5:
                    vector[p] = rng.choice(_SPECIAL_WORDS)
                else:
                    vector[p] = rng.randrange(0, 1 << 32)
            vectors.append(vector)

        return GenProgram(
            seed=seed,
            source=source,
            params=params,
            vectors=tuple(vectors),
            memory_image=self.memory_image,
        )


def generate(seed: int, config: GenConfig | None = None) -> GenProgram:
    """Generate one well-typed Nova program from ``seed``."""
    config = config or GenConfig()
    return _Gen(seed, config).generate(seed)
