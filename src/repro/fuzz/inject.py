"""Deliberate miscompile injection — sanity checks for the oracle.

A differential fuzzer that has never caught a bug proves nothing; these
context managers break the compiler in controlled, realistic ways so the
test suite can demonstrate the oracle *fails* and the shrinker produces
a small reproducer.  Each patch is config-dependent on purpose: the bug
must manifest under some configurations of the matrix but not the
reference point, which is exactly the class of miscompile the oracle is
built to catch.
"""

from __future__ import annotations

import importlib
from contextlib import contextmanager

# ``repro.cps`` re-exports a *function* named ``optimize``; go through
# importlib so we get the submodule whose ``_fold`` global we patch.
_optimize = importlib.import_module("repro.cps.optimize")


@contextmanager
def broken_constant_fold(op: str = "xor", delta: int = 1):
    """Make the optimizer's constant folder mis-evaluate one primitive.

    ``x ^ y`` folded at compile time comes out ``delta`` too large, so
    any program whose optimized form folds that op diverges between the
    optimizing configurations and ``no-opt`` (whose folder never runs).
    The simulator is untouched — exactly a constant-folding miscompile.
    """
    original = _optimize._fold

    def bad_fold(fold_op: str, values: list) -> int | None:
        result = original(fold_op, values)
        if fold_op == op and result is not None:
            return (result + delta) & 0xFFFFFFFF
        return result

    _optimize._fold = bad_fold
    try:
        yield
    finally:
        _optimize._fold = original


@contextmanager
def broken_codegen(op: str = "xor", delta: int = 1):
    """Make the compiled simulator tier mis-evaluate one ALU op.

    The codegen template for ``op`` comes out ``delta`` too large, so
    any program executing that op on runtime values diverges between
    the ``sim-compiled`` configuration and the reference (which runs
    the decoded tier).  Constant folding is untouched (it goes through
    ``machine._ALU_FNS``), so the bug only manifests in *generated*
    code — exactly a miscompiled simulator, not a miscompiled program.

    The compiled-graph cache is cleared on entry and exit: cached
    functions were generated from the unpatched template (and vice
    versa on the way out), and the cache is keyed by graph identity,
    not template contents.
    """
    from repro.ixp import codegen

    original = codegen._ALU_EXPRS[op]
    codegen._ALU_EXPRS[op] = f"((({original}) + {delta}) & 4294967295)"
    codegen.clear_cache()
    try:
        yield
    finally:
        codegen._ALU_EXPRS[op] = original
        codegen.clear_cache()


@contextmanager
def broken_steering():
    """Make the dispatch stage ignore the flow key entirely.

    Every packet steers by raw sequence number — the classic bug the
    flow-hash dispatch stage exists to prevent: a flow's packets spray
    across engines, so flow affinity (and, with multiple engines,
    per-flow order) breaks under ``steer="flow"`` whenever a flow
    spans packets whose sequence numbers differ mod the engine count.
    Results stay correct — only the *steering* invariants fail, which
    is exactly what the net oracle must catch and the trace shrinker
    must minimize.
    """
    from repro.ixp.net import NetRuntime

    original = NetRuntime._steer

    def bad_steer(self, packet):
        return packet.seq % self.config.engines

    NetRuntime._steer = bad_steer
    try:
        yield
    finally:
        NetRuntime._steer = original


@contextmanager
def disabled_constant_fold():
    """Turn constant folding off entirely (a *benign* injection).

    Useful as a control: the oracle must NOT report divergences for a
    patch that only loses an optimization, since the folded and unfolded
    programs still agree on every input.
    """
    original = _optimize._fold

    def no_fold(fold_op: str, values: list) -> int | None:
        return None

    _optimize._fold = no_fold
    try:
        yield
    finally:
        _optimize._fold = original
