"""Deliberate miscompile injection — sanity checks for the oracle.

A differential fuzzer that has never caught a bug proves nothing; these
context managers break the compiler in controlled, realistic ways so the
test suite can demonstrate the oracle *fails* and the shrinker produces
a small reproducer.  Each patch is config-dependent on purpose: the bug
must manifest under some configurations of the matrix but not the
reference point, which is exactly the class of miscompile the oracle is
built to catch.
"""

from __future__ import annotations

import importlib
from contextlib import contextmanager

# ``repro.cps`` re-exports a *function* named ``optimize``; go through
# importlib so we get the submodule whose ``_fold`` global we patch.
_optimize = importlib.import_module("repro.cps.optimize")


@contextmanager
def broken_constant_fold(op: str = "xor", delta: int = 1):
    """Make the optimizer's constant folder mis-evaluate one primitive.

    ``x ^ y`` folded at compile time comes out ``delta`` too large, so
    any program whose optimized form folds that op diverges between the
    optimizing configurations and ``no-opt`` (whose folder never runs).
    The simulator is untouched — exactly a constant-folding miscompile.
    """
    original = _optimize._fold

    def bad_fold(fold_op: str, values: list) -> int | None:
        result = original(fold_op, values)
        if fold_op == op and result is not None:
            return (result + delta) & 0xFFFFFFFF
        return result

    _optimize._fold = bad_fold
    try:
        yield
    finally:
        _optimize._fold = original


@contextmanager
def broken_codegen(op: str = "xor", delta: int = 1):
    """Make the compiled simulator tier mis-evaluate one ALU op.

    The codegen template for ``op`` comes out ``delta`` too large, so
    any program executing that op on runtime values diverges between
    the ``sim-compiled`` configuration and the reference (which runs
    the decoded tier).  Constant folding is untouched (it goes through
    ``machine._ALU_FNS``), so the bug only manifests in *generated*
    code — exactly a miscompiled simulator, not a miscompiled program.

    The compiled-graph cache is cleared on entry and exit: cached
    functions were generated from the unpatched template (and vice
    versa on the way out), and the cache is keyed by graph identity,
    not template contents.
    """
    from repro.ixp import codegen

    original = codegen._ALU_EXPRS[op]
    codegen._ALU_EXPRS[op] = f"((({original}) + {delta}) & 4294967295)"
    codegen.clear_cache()
    try:
        yield
    finally:
        codegen._ALU_EXPRS[op] = original
        codegen.clear_cache()


@contextmanager
def broken_steering():
    """Make the dispatch stage ignore the flow key entirely.

    Every packet steers by raw sequence number — the classic bug the
    flow-hash dispatch stage exists to prevent: a flow's packets spray
    across engines, so flow affinity (and, with multiple engines,
    per-flow order) breaks under ``steer="flow"`` whenever a flow
    spans packets whose sequence numbers differ mod the engine count.
    Results stay correct — only the *steering* invariants fail, which
    is exactly what the net oracle must catch and the trace shrinker
    must minimize.
    """
    from repro.ixp.net import NetRuntime

    original = NetRuntime._steer

    def bad_steer(self, packet):
        return packet.seq % self.config.engines

    NetRuntime._steer = bad_steer
    try:
        yield
    finally:
        NetRuntime._steer = original


def corpus_probe(
    budget: int = 12,
    probe_seed: int = 34,
    fresh_start: int = 1104,
    corpus_dir=None,
) -> dict:
    """Prove the corpus mutation loop out-hunts fresh sampling.

    Seeds a corpus with a *near-miss* scenario for
    :func:`broken_steering`: an aligned trace in which every flow token
    sticks to one ``seq % engines`` residue class, so even the broken
    dispatcher (steer by raw sequence number) happens to preserve flow
    affinity and the entry looks healthy.  Then, with the bug injected,
    the real mutation engine (:func:`repro.fuzz.corpus.mutate_entry`)
    attacks the entry for ``budget`` scenarios while fresh generator
    sampling gets the same budget over the pinned ``fresh_start``
    window.  ``splice``/``duplicate``/``reorder`` shift a flow's later
    occurrences to a different residue class and ``retoken`` merges two
    pinned flows, so a mutant exposes the bug within a few attempts;
    the fresh window is chosen (and pinned by the test suite) so that
    no fresh scenario does.  The winning mutant's trace is ddmin-shrunk
    to a small witness.

    Returns ``{"corpus_found_in", "fresh_found_in", "mutation",
    "witness_events", "witness"}``; ``corpus_dir`` additionally
    persists the near-miss entry through a real
    :class:`~repro.fuzz.corpus.CorpusStore`.
    """
    import random
    from dataclasses import replace

    from repro.fuzz.corpus import entry_from_scenario, mutate_entry
    from repro.fuzz.netgen import (
        ScenarioInvalid,
        build_scenario_app,
        gen_scenario,
    )
    from repro.fuzz.netmeta import check_result
    from repro.fuzz.shrink import shrink_list
    from repro.ixp.net import TraceEvent, coverage_signature, run_stream

    scenario = gen_scenario(probe_seed)
    config = scenario.config
    engines = config.engines
    flows = sorted(set(scenario.flows))[:engines]
    if config.steer != "flow" or engines < 2 or len(flows) < engines:
        raise ValueError(
            f"probe seed {probe_seed} cannot express the near miss"
        )
    app = build_scenario_app(scenario)
    extras = tuple(3 for _ in scenario.program.params[1:])
    aligned = tuple(
        TraceEvent(
            gap=16,
            flow=flows[i % engines],
            payload=(flows[i % engines],) + extras,
            payload_bytes=4 * (1 + len(extras)),
        )
        for i in range(3 * engines)
    )

    def affinity_broken(events, cfg=config) -> bool:
        try:
            result = run_stream(app, replace(cfg, trace=tuple(events)))
        except Exception:
            return False
        return any(
            "split across engines" in v
            for v in check_result(result, expect_no_drops=False)
        )

    recorded = run_stream(app, replace(config, trace=aligned))
    entry = entry_from_scenario(
        scenario, aligned, coverage_signature(recorded), origin="probe"
    )
    if corpus_dir is not None:
        from repro.fuzz.corpus import CorpusStore

        CorpusStore(corpus_dir).add(entry)

    rng = random.Random(f"corpus-probe-{probe_seed}")
    outcome = {
        "corpus_found_in": None,
        "fresh_found_in": None,
        "mutation": None,
        "witness_events": None,
        "witness": None,
    }
    with broken_steering():
        if affinity_broken(aligned):
            raise AssertionError(
                "near-miss trace already trips the injected bug"
            )
        found = None
        for attempt in range(1, budget + 1):
            op, trace, cfg = mutate_entry(rng, entry)
            if affinity_broken(trace, cfg):
                found = (attempt, op, trace, cfg)
                break
        for offset in range(budget):
            fresh = gen_scenario(fresh_start + offset)
            try:
                fresh_app = build_scenario_app(fresh)
            except ScenarioInvalid:
                continue
            result = run_stream(fresh_app, fresh.config)
            if any(
                "split across engines" in v
                for v in check_result(result, expect_no_drops=False)
            ):
                outcome["fresh_found_in"] = offset + 1
                break
        if found is not None:
            attempt, op, trace, cfg = found
            events, _ = shrink_list(
                list(trace), lambda evs: affinity_broken(evs, cfg)
            )
            outcome.update(
                corpus_found_in=attempt,
                mutation=op,
                witness_events=len(events),
                witness=tuple(events),
            )
    return outcome


@contextmanager
def disabled_constant_fold():
    """Turn constant folding off entirely (a *benign* injection).

    Useful as a control: the oracle must NOT report divergences for a
    patch that only loses an optimization, since the folded and unfolded
    programs still agree on every input.
    """
    original = _optimize._fold

    def no_fold(fold_op: str, values: list) -> int | None:
        return None

    _optimize._fold = no_fold
    try:
        yield
    finally:
        _optimize._fold = original
