"""``repro.fuzz.netgen`` — differential fuzzing of the streaming runtime.

The compiler oracle (:mod:`repro.fuzz.oracle`) holds the *program*
fixed across configurations; this module holds the *traffic* and the
*topology* random too.  One scenario is a seeded triple:

- a random pure Nova program (:mod:`repro.fuzz.gen` with
  :data:`STREAM_FEATURES` — memory and CSR constructs are excluded so
  packets cannot interfere through shared state and every packet's
  expected halt values are computable by a single-thread reference
  run);
- a random traffic schedule — arrival process, gaps, bursts, packet
  budget, and a small pool of *flow tokens* the first parameter draws
  from, so flows repeat and the affinity/order invariants have teeth;
- a random topology — engine/thread counts, ring capacities, steer
  mode and dispatch latency.

Each scenario streams through :func:`repro.ixp.net.run_stream` and is
judged by metamorphic invariants generalized from
:mod:`repro.fuzz.netmeta`:

1. **conservation** and per-engine FIFO order on the scenario's own
   (possibly lossy) topology;
2. **replay fidelity** — capturing the run's traffic as an explicit
   :class:`~repro.ixp.net.TraceEvent` trace and replaying it must
   reproduce the run packet for packet (arrival, steering, results,
   latency);
3. **flow affinity / per-flow order / loss-free completion** on
   oversize rings;
4. **engine-count independence** — the per-packet results of the
   captured trace are the same on 1 engine and on the scenario's
   engine count;
5. **latency monotone in offered load** — stretching every gap 4x
   must not raise the mean latency (beyond a poll-quantization slack).

A failing scenario is shrunk on *two axes*: ddmin over the traffic
trace (events carry explicit flows, so deleting events never re-steers
survivors) interleaved with the line shrinker over the program, and
persisted as a ``(program, trace, topology)`` witness artifact.

``novac fuzz --net`` runs campaigns of these scenarios over the
:mod:`repro.batch` pool; the campaign also replays the three
config-validation regressions (arrival typo, non-positive/oversize
rings, chip-seed aliasing) as live probes before fuzzing.  With
``--corpus-dir`` the campaign is coverage-guided: clean runs whose
:func:`~repro.ixp.net.coverage_signature` reaches an uncovered counter
bucket are persisted by :mod:`repro.fuzz.corpus`, and a
``--mutate-ratio`` fraction of later slots replays mutated corpus
entries instead of fresh generator scenarios.
"""

from __future__ import annotations

import json
import random
import time
from dataclasses import dataclass, field, replace

from repro.batch import scatter
from repro.compiler import CompileOptions, compile_nova
from repro.errors import NovaError, SimulatorError
from repro.fuzz.gen import ALL_FEATURES, GenConfig, GenProgram, generate
from repro.fuzz.netmeta import check_result
from repro.fuzz.shrink import ShrinkStats, shrink, shrink_list
from repro.ixp.machine import Machine
from repro.ixp.memory import MemorySystem
from repro.ixp.net import (
    ARRIVAL_MODES,
    STEER_MODES,
    NetConfig,
    NetRuntime,
    StreamApp,
    StreamPacket,
    StreamResult,
    TraceEvent,
    chip_seed,
    capture_trace,
    config_from_dict,
    config_to_dict,
    coverage_signature,
    run_stream,
    trace_from_json,
    trace_to_json,
)
from repro.trace import Tracer, ensure

#: program features safe under the streaming runtime: no ``memory``
#: (absolute SRAM/SDRAM/scratch addresses are shared across engines, so
#: packets would interfere and per-packet expectations would not be
#: computable) and no ``csr`` (per-engine control registers are shared
#: by that engine's threads).
STREAM_FEATURES = frozenset(ALL_FEATURES - {"memory", "csr"})

#: cycle budget for the single-thread reference run of one packet.
REFERENCE_MAX_CYCLES = 5_000_000

#: offered-load multiplier for the latency-monotonicity check.
LOAD_STRETCH = 4


class ScenarioInvalid(Exception):
    """The scenario itself is unusable (generator bug, not a finding)."""


@dataclass(frozen=True)
class NetGenConfig:
    """The scenario space one campaign samples from."""

    engine_choices: tuple[int, ...] = (1, 2, 3, 6)
    thread_choices: tuple[int, ...] = (1, 2, 4)
    rx_choices: tuple[int, ...] = (4, 8, 16, 48)
    tx_choices: tuple[int, ...] = (4, 8, 32)
    steer_choices: tuple[str, ...] = STEER_MODES
    arrival_choices: tuple[str, ...] = ARRIVAL_MODES
    min_packets: int = 8
    max_packets: int = 32
    mean_gap_choices: tuple[float, ...] = (12.0, 48.0, 200.0)
    burst_choices: tuple[int, ...] = (1, 2, 4)
    dispatch_choices: tuple[int, ...] = (0, 4, 8, 16)
    sink_gap_choices: tuple[int, ...] = (0, 0, 0, 25)
    #: flow-token pool size range: x0 draws from this many values.
    max_flows: int = 4
    #: program-shape knobs (kept small: the runtime, not the compiler,
    #: is under test here).
    gen: GenConfig = GenConfig(max_stmts=5, features=STREAM_FEATURES)


@dataclass
class NetScenario:
    """One seeded (program, traffic, topology) triple."""

    seed: int
    program: GenProgram
    config: NetConfig
    #: the flow-token pool packet payloads draw their first word from.
    flows: tuple[int, ...]


def gen_scenario(seed: int, config: NetGenConfig | None = None) -> NetScenario:
    """Deterministically derive one scenario from ``seed``."""
    config = config or NetGenConfig()
    program = generate(seed, config.gen)
    # A distinct stream from the program generator's Random(seed).
    rng = random.Random(f"net-{seed}")
    flows = tuple(
        rng.randrange(1 << 32)
        for _ in range(rng.randrange(1, config.max_flows + 1))
    )
    net = NetConfig(
        engines=rng.choice(config.engine_choices),
        threads=rng.choice(config.thread_choices),
        rx_capacity=rng.choice(config.rx_choices),
        tx_capacity=rng.choice(config.tx_choices),
        packets=rng.randrange(config.min_packets, config.max_packets + 1),
        seed=seed,
        arrival=rng.choice(config.arrival_choices),
        mean_gap=rng.choice(config.mean_gap_choices),
        burst=rng.choice(config.burst_choices),
        sink_gap=rng.choice(config.sink_gap_choices),
        steer=rng.choice(config.steer_choices),
        dispatch_cycles=rng.choice(config.dispatch_choices),
    )
    return NetScenario(seed=seed, program=program, config=net, flows=flows)


def _reference_results(comp, program: GenProgram, vector: dict) -> tuple:
    """Single-thread reference run: one packet's expected halt values."""
    raw = comp.make_inputs(**vector)
    memory = MemorySystem.create()
    for space, chunks in (program.memory_image or {}).items():
        for addr, words in chunks:
            memory[space].load_words(addr, words)
    machine = Machine(
        comp.flowgraph,
        memory=memory,
        threads=1,
        physical=False,
        input_provider=lambda tid, it: dict(raw) if it == 0 else None,
        max_cycles=REFERENCE_MAX_CYCLES,
    )
    try:
        run = machine.run()
    except SimulatorError as exc:
        raise ScenarioInvalid(f"reference run failed: {exc}") from exc
    return tuple(run.results[0][1])


def build_scenario_app(
    scenario: NetScenario, source: str | None = None
) -> StreamApp:
    """Compile the scenario's program and wrap it as a streaming app.

    The packet payload is one word per ``main`` parameter; the first
    word is drawn from the scenario's flow-token pool and doubles as
    the flow key, so flows repeat across the stream.  Expected halt
    values come from a memoized single-thread reference run per
    distinct payload; the expected slot words are the payload itself
    (pinning the receive DMA and slot isolation).  ``source``
    substitutes a shrunk program body.
    """
    from repro.apps.aes_nova import AppBundle

    program = scenario.program
    src = program.source if source is None else source
    options = CompileOptions()
    options.run_allocator = False
    try:
        comp = compile_nova(src, f"gen{scenario.seed}.nova", options)
    except NovaError as exc:
        raise ScenarioInvalid(f"compile failed: {exc}") from exc
    bundle = AppBundle(
        name=f"gen{scenario.seed}",
        source=src,
        memory_image=program.memory_image or {},
        inputs={},
        payload_base=512,
    )
    params = program.params
    flows = scenario.flows
    expectations: dict[tuple, tuple] = {}

    def from_payload(seq: int, payload: tuple[int, ...]) -> StreamPacket:
        expected = expectations.get(payload)
        if expected is None:
            vector = dict(zip(params, payload))
            expected = _reference_results(comp, program, vector)
            expectations[payload] = expected
        return StreamPacket(
            seq=seq,
            payload_words=list(payload),
            payload_bytes=4 * len(payload),
            inputs=dict(zip(params, payload)),
            expected_results=expected,
            expected_words=list(payload),
        )

    def gen_packet(rng: random.Random, seq: int) -> StreamPacket:
        payload = (rng.choice(flows),) + tuple(
            rng.randrange(1 << 32) for _ in params[1:]
        )
        return from_payload(seq, payload)

    def replay(seq: int, event: TraceEvent) -> StreamPacket:
        return from_payload(seq, tuple(event.payload))

    def flow_key(packet: StreamPacket) -> int:
        return packet.payload_words[0] & 0xFFFFFFFF

    return StreamApp(
        name=f"gen{scenario.seed}",
        bundle=bundle,
        comp=comp,
        slot_words=len(params),
        generate=gen_packet,
        flow_key=flow_key,
        replay=replay,
    )


# --------------------------------------------------------------------------
# The net oracle: metamorphic invariants over one scenario
# --------------------------------------------------------------------------


def _fingerprints(result: StreamResult) -> list[tuple]:
    return [
        (
            p.seq,
            p.arrival,
            p.flow,
            p.engine,
            p.status,
            p.latency,
            tuple(p.payload_words),
            tuple(p.results),
        )
        for p in result.packets
    ]


def _oversize(config: NetConfig, trace: tuple, engines: int) -> NetConfig:
    """The trace on ``engines`` engines with rings nothing can drop from."""
    return replace(
        config,
        trace=trace,
        engines=engines,
        rx_capacity=len(trace) + 4,
        tx_capacity=len(trace) + 4,
    )


def _latency_slack(config: NetConfig) -> int:
    """Scheduling noise allowed by the latency-monotonicity check:
    idle workers and the sink re-poll on ``poll`` boundaries, so a
    *lighter* load can pay a few extra poll quanta per packet."""
    return 4 * config.poll + 2 * config.dispatch_cycles + 128


def trace_violations(
    app: StreamApp, config: NetConfig, trace: tuple[TraceEvent, ...]
) -> list[str]:
    """Metamorphic invariants of one captured trace (empty = pass).

    Replays the trace on the scenario topology (conservation, order,
    affinity under loss), on oversize rings at 1 and ``config.engines``
    engines (loss-free completion + engine-count independence), and at
    1/``LOAD_STRETCH`` the offered load (latency monotonicity).
    """
    if not trace:
        return []
    violations: list[str] = []
    lossy = run_stream(app, replace(config, trace=trace))
    violations.extend(
        f"[replay] {v}" for v in check_result(lossy, expect_no_drops=False)
    )

    outcomes: dict[int, list] = {}
    results: dict[int, StreamResult] = {}
    counts = sorted({1, config.engines})
    for engines in counts:
        result = run_stream(app, _oversize(config, trace, engines))
        results[engines] = result
        violations.extend(
            f"[{engines}e] {v}" for v in check_result(result)
        )
        if result.completed != result.generated:
            violations.append(
                f"[{engines}e] {result.generated - result.completed} "
                "packets missing despite oversize rings"
            )
        outcomes[engines] = sorted(
            (p.seq, tuple(p.results))
            for p in result.packets
            if p.status == "done"
        )
    baseline = outcomes[counts[0]]
    for engines in counts[1:]:
        if outcomes[engines] != baseline:
            violations.append(
                f"per-packet results differ between {counts[0]} and "
                f"{engines} engines"
            )

    heavy = results[config.engines]
    light_trace = tuple(
        replace(event, gap=event.gap * LOAD_STRETCH) for event in trace
    )
    light = run_stream(
        app, _oversize(config, light_trace, config.engines)
    )
    if heavy.latencies and light.latencies:
        mean_heavy = sum(heavy.latencies) / len(heavy.latencies)
        mean_light = sum(light.latencies) / len(light.latencies)
        if mean_light > mean_heavy + _latency_slack(config):
            violations.append(
                "latency not monotone in offered load: mean "
                f"{mean_light:.0f} cycles at 1/{LOAD_STRETCH} the load "
                f"vs {mean_heavy:.0f} at full load"
            )
    return violations


@dataclass
class ScenarioReport:
    """Everything the net oracle concluded about one scenario."""

    seed: int
    violations: list[str] = field(default_factory=list)
    trace: tuple[TraceEvent, ...] | None = None
    invalid: str | None = None
    #: :func:`repro.ixp.net.coverage_signature` of the seeded run —
    #: the corpus layer's retention signal.
    signature: tuple[str, ...] = ()

    @property
    def ok(self) -> bool:
        return self.invalid is None and not self.violations


def check_scenario(
    scenario: NetScenario, app: StreamApp | None = None
) -> ScenarioReport:
    """Run one scenario through every net invariant."""
    try:
        app = app or build_scenario_app(scenario)
        seeded = run_stream(app, scenario.config)
    except ScenarioInvalid as exc:
        return ScenarioReport(seed=scenario.seed, invalid=str(exc))
    report = ScenarioReport(seed=scenario.seed)
    report.signature = coverage_signature(seeded)
    report.violations.extend(
        f"[seeded] {v}"
        for v in check_result(seeded, expect_no_drops=False)
    )
    report.trace = capture_trace(seeded)
    replayed = run_stream(app, replace(scenario.config, trace=report.trace))
    if _fingerprints(replayed) != _fingerprints(seeded):
        diffs = [
            f"pkt {a[0]}: seeded={a} replayed={b}"
            for a, b in zip(_fingerprints(seeded), _fingerprints(replayed))
            if a != b
        ]
        report.violations.append(
            "trace replay diverged from the seeded run: "
            + "; ".join(diffs[:3])
        )
    report.violations.extend(
        trace_violations(app, scenario.config, report.trace)
    )
    return report


# --------------------------------------------------------------------------
# Two-axis shrinking and witness artifacts
# --------------------------------------------------------------------------


def shrink_scenario(
    scenario: NetScenario,
    app: StreamApp,
    trace: tuple[TraceEvent, ...],
    max_predicate_calls: int = 160,
) -> tuple[str, tuple[TraceEvent, ...], dict]:
    """Minimize a failing scenario on both axes.

    ddmin over the traffic trace first (cheap — no recompilation; the
    events' explicit flows keep survivors steering identically), then
    the line shrinker over the program (each candidate recompiles and
    replays the minimized trace), then one more trace pass against the
    minimized program.  A candidate is interesting iff *any* net
    invariant still fails.  Returns ``(source, trace, stats)``.
    """
    config = scenario.config

    def trace_fails(app_: StreamApp):
        def predicate(events: list) -> bool:
            try:
                return bool(trace_violations(app_, config, tuple(events)))
            except Exception:
                return False

        return predicate

    budgets = (
        max_predicate_calls // 2,
        max_predicate_calls // 4,
        max_predicate_calls // 4,
    )
    events, trace_stats = shrink_list(
        list(trace), trace_fails(app), max_predicate_calls=budgets[0]
    )
    minimized_trace = tuple(events)

    def source_fails(source: str) -> bool:
        try:
            candidate = build_scenario_app(scenario, source=source)
            return bool(
                trace_violations(candidate, config, minimized_trace)
            )
        except Exception:
            return False

    minimized_source, line_stats = shrink(
        scenario.program.source, source_fails, max_predicate_calls=budgets[1]
    )
    try:
        minimized_app = build_scenario_app(scenario, source=minimized_source)
    except ScenarioInvalid:
        minimized_app = app
        minimized_source = scenario.program.source
    events, trace_stats2 = shrink_list(
        list(minimized_trace),
        trace_fails(minimized_app),
        max_predicate_calls=budgets[2],
    )
    minimized_trace = tuple(events)
    stats = {
        "predicate_calls": (
            trace_stats.predicate_calls
            + line_stats.predicate_calls
            + trace_stats2.predicate_calls
        ),
        "events_before": len(trace),
        "events_after": len(minimized_trace),
        "lines_before": line_stats.lines_before,
        "lines_after": line_stats.lines_after,
    }
    return minimized_source, minimized_trace, stats


@dataclass
class NetArtifact:
    """On-disk witness for one net finding."""

    directory: str
    program_path: str
    minimized_path: str
    trace_path: str
    minimized_trace_path: str
    report_path: str


def write_net_artifact(
    directory,
    scenario: NetScenario,
    report: ScenarioReport,
    minimized_source: str | None = None,
    minimized_trace: tuple[TraceEvent, ...] | None = None,
    shrink_stats: dict | None = None,
) -> NetArtifact:
    """Persist a ``(program, trace, topology)`` witness directory."""
    from pathlib import Path

    path = Path(directory)
    path.mkdir(parents=True, exist_ok=True)
    program_path = path / "program.nova"
    program_path.write_text(scenario.program.source)
    minimized_path = path / "minimized.nova"
    if minimized_source is not None:
        minimized_path.write_text(minimized_source)
    trace_path = path / "trace.json"
    if report.trace is not None:
        trace_path.write_text(
            json.dumps(trace_to_json(report.trace)) + "\n"
        )
    minimized_trace_path = path / "minimized-trace.json"
    if minimized_trace is not None:
        minimized_trace_path.write_text(
            json.dumps(trace_to_json(minimized_trace)) + "\n"
        )
    topology = config_to_dict(scenario.config)
    payload = {
        "seed": scenario.seed,
        "flows": list(scenario.flows),
        "topology": topology,
        "violations": list(report.violations),
        "invalid": report.invalid,
    }
    if shrink_stats is not None:
        payload["shrink"] = dict(shrink_stats)
    report_path = path / "report.json"
    report_path.write_text(json.dumps(payload, indent=2) + "\n")
    return NetArtifact(
        directory=str(path),
        program_path=str(program_path),
        minimized_path=str(minimized_path),
        trace_path=str(trace_path),
        minimized_trace_path=str(minimized_trace_path),
        report_path=str(report_path),
    )


# --------------------------------------------------------------------------
# Campaign driver + ``novac fuzz --net``
# --------------------------------------------------------------------------


def validation_probes() -> list[str]:
    """Replay the three config-validation regressions as live probes.

    Campaigns run these first: each probe is the exact class of
    misconfiguration the validation bugfixes guard against (arrival
    typo, non-positive capacity, ring layout underflow, chip-seed
    aliasing) and must be rejected loudly.  Returns failures.
    """
    failures: list[str] = []
    scenario = gen_scenario(0)
    app = build_scenario_app(scenario)
    rejected = [
        ("arrival typo", replace(scenario.config, arrival="bursty")),
        ("rx_capacity=0", replace(scenario.config, rx_capacity=0)),
        ("tx_capacity=-4", replace(scenario.config, tx_capacity=-4)),
        (
            "ring layout underflow",
            replace(scenario.config, engines=6, rx_capacity=2048),
        ),
    ]
    for name, config in rejected:
        try:
            NetRuntime(app, config)
        except ValueError:
            continue
        failures.append(f"probe '{name}' was accepted instead of rejected")
    if chip_seed(0, 1) == chip_seed(1, 0):
        failures.append(
            "chip seeds alias: chip_seed(0, 1) == chip_seed(1, 0)"
        )
    return failures


@dataclass
class NetUnit:
    """Verdict for one scenario slot (fresh seed or corpus mutant)."""

    seed: int
    ok: bool
    seconds: float
    violations: list = field(default_factory=list)
    invalid: str | None = None
    #: provenance: ``fresh`` or ``mutant:<op>``.
    origin: str = "fresh"
    #: parent corpus entry id (mutants only).
    parent: str | None = None
    #: coverage signature of the seeded run (corpus retention signal).
    signature: tuple = ()
    #: captured trace as JSON rows, shipped back for corpus intake.
    trace_rows: list | None = None


@dataclass
class NetFuzzResult:
    units: list[NetUnit]
    seconds: float
    jobs: int
    artifacts: list = field(default_factory=list)
    probe_failures: list = field(default_factory=list)
    #: corpus accounting when the campaign ran with ``corpus_dir``.
    corpus: dict | None = None

    @property
    def failed(self) -> list[NetUnit]:
        return [u for u in self.units if not u.ok]

    @property
    def invalid(self) -> list[NetUnit]:
        return [u for u in self.units if u.invalid is not None]

    def summary(self) -> dict:
        out = {
            "scenarios": len(self.units),
            "ok": sum(1 for u in self.units if u.ok),
            "violating": len(self.failed) - len(self.invalid),
            "invalid": len(self.invalid),
            "mutants": sum(
                1 for u in self.units if u.origin.startswith("mutant")
            ),
            "probe_failures": len(self.probe_failures),
            "jobs": self.jobs,
            "seconds": round(self.seconds, 3),
        }
        if self.corpus is not None:
            out["corpus"] = dict(self.corpus)
        return out


def _scenario_from_task(task: dict, gen_config: NetGenConfig) -> NetScenario:
    """Rebuild the scenario a campaign task describes.

    ``fresh`` tasks re-derive everything from the seed (nothing but the
    int crosses the process boundary); ``mutant`` tasks carry the
    corpus entry's stored program plus the mutated trace/topology as
    plain JSON rows, and their scenario config replays that trace.
    """
    if task["kind"] == "fresh":
        return gen_scenario(task["seed"], gen_config)
    from repro.fuzz.corpus import StoredProgram

    config = replace(
        config_from_dict(task["topology"]),
        trace=trace_from_json(task["trace"]),
    )
    return NetScenario(
        seed=task["seed"],
        program=StoredProgram(
            seed=task["seed"],
            source=task["source"],
            params=tuple(task["params"]),
        ),
        config=config,
        flows=tuple(task["flows"]),
    )


def _net_unit(
    task: dict, gen_config: NetGenConfig, trace: bool
) -> tuple[NetUnit, list]:
    """One scenario: rebuild, check, report.  Runs in pool workers."""
    tracer = Tracer() if trace else None
    span_source = ensure(tracer)
    start = time.perf_counter()
    seed = task["seed"]
    origin = task.get("origin", "fresh")
    parent = task.get("parent")
    with span_source.span("netfuzz.unit", seed=seed, origin=origin) as sp:
        try:
            scenario = _scenario_from_task(task, gen_config)
            report = check_scenario(scenario)
        except Exception as exc:  # an internal crash is a finding too
            unit = NetUnit(
                seed=seed,
                ok=False,
                seconds=time.perf_counter() - start,
                violations=[
                    f"internal error: {type(exc).__name__}: {exc}"
                ],
                origin=origin,
                parent=parent,
            )
            if sp:
                sp.add(outcome="internal-error")
            return unit, list(span_source.spans) if tracer else []
        unit = NetUnit(
            seed=seed,
            ok=report.ok,
            seconds=time.perf_counter() - start,
            violations=list(report.violations),
            invalid=report.invalid,
            origin=origin,
            parent=parent,
            signature=tuple(report.signature),
            trace_rows=(
                trace_to_json(report.trace)
                if report.trace is not None
                else None
            ),
        )
        if sp:
            sp.add(outcome="ok" if report.ok else "violating")
    return unit, list(span_source.spans) if tracer else []


def run_net_campaign(
    seed: int = 0,
    count: int = 100,
    jobs: int = 1,
    gen_config: NetGenConfig | None = None,
    artifact_dir: str = ".netfuzz-artifacts",
    tracer=None,
    shrink_budget: int = 160,
    shrink_findings: bool = True,
    pool=None,
    corpus_dir=None,
    mutate_ratio: float = 0.5,
) -> NetFuzzResult:
    """Fuzz ``count`` streaming scenarios from ``seed`` upward.

    Mirrors :func:`repro.fuzz.driver.run_campaign`: scenarios fan out
    over the batch pool (each worker re-derives its scenario from the
    seed), violating seeds are re-run and two-axis-shrunk in the
    driver process, and every finding becomes a witness directory
    under ``artifact_dir``.  The three validation-regression probes
    run first and are reported alongside scenario verdicts.
    ``pool`` reuses an existing executor across campaigns (see
    :func:`repro.batch.scatter`).

    With ``corpus_dir``, the campaign goes coverage-guided: each slot
    is a corpus mutant with probability ``mutate_ratio`` (when the
    store has entries to mutate) and a fresh generator scenario
    otherwise; every clean run whose signature lights up an uncovered
    feature is retained, and the store is minimized afterwards.
    """
    gen_config = gen_config or NetGenConfig()
    tracer = ensure(tracer)
    start = time.perf_counter()
    store = None
    corpus_stats = None
    if corpus_dir is not None:
        from repro.fuzz.corpus import (
            CorpusStore,
            entry_from_scenario,
            mutate_entry,
        )

        store = CorpusStore(corpus_dir)
    with tracer.span("netfuzz", seed=seed, count=count, jobs=jobs) as sp:
        probe_failures = validation_probes()
        rng = random.Random(f"netfuzz-corpus-{seed}")
        tasks: list[dict] = []
        for s in range(seed, seed + count):
            if (
                store is not None
                and len(store)
                and rng.random() < mutate_ratio
            ):
                entry = store.pick(rng)
                op, trace, config = mutate_entry(rng, entry, gen_config)
                tasks.append(
                    {
                        "kind": "mutant",
                        "seed": s,
                        "source": entry.source,
                        "params": list(entry.params),
                        "flows": list(entry.flows),
                        "trace": trace_to_json(trace),
                        "topology": config_to_dict(config),
                        "origin": f"mutant:{op}",
                        "parent": entry.entry_id,
                    }
                )
            else:
                tasks.append({"kind": "fresh", "seed": s})
        outcomes = scatter(
            _net_unit,
            [(task, gen_config, tracer.enabled) for task in tasks],
            jobs,
            pool=pool,
        )
        units = []
        for unit, spans in outcomes:
            units.append(unit)
            tracer.adopt(spans, parent="netfuzz")
        if store is not None:
            retained = 0
            new_features = 0
            for task, unit in zip(tasks, units):
                if (
                    not unit.ok
                    or not unit.signature
                    or unit.trace_rows is None
                ):
                    continue
                entry = entry_from_scenario(
                    _scenario_from_task(task, gen_config),
                    trace_from_json(unit.trace_rows),
                    unit.signature,
                    origin=unit.origin,
                    parent=unit.parent,
                )
                fresh_features = store.consider(entry)
                if fresh_features:
                    retained += 1
                    new_features += len(fresh_features)
            removed = store.minimize()
            corpus_stats = dict(store.summary())
            corpus_stats.update(
                retained=retained,
                new_features=new_features,
                minimized_away=len(removed),
            )
        artifacts = []
        for task, unit in zip(tasks, units):
            if unit.ok or unit.invalid is not None:
                continue
            with tracer.span("netfuzz.shrink", seed=unit.seed):
                scenario = _scenario_from_task(task, gen_config)
                report = check_scenario(scenario)
                minimized_source = None
                minimized_trace = None
                stats = None
                if (
                    shrink_findings
                    and report.trace
                    and not report.ok
                ):
                    app = build_scenario_app(scenario)
                    minimized_source, minimized_trace, stats = (
                        shrink_scenario(
                            scenario,
                            app,
                            report.trace,
                            max_predicate_calls=shrink_budget,
                        )
                    )
                artifacts.append(
                    write_net_artifact(
                        f"{artifact_dir}/net-seed{unit.seed}",
                        scenario,
                        report,
                        minimized_source=minimized_source,
                        minimized_trace=minimized_trace,
                        shrink_stats=stats,
                    )
                )
        if sp:
            sp.add(
                ok=sum(1 for u in units if u.ok),
                violating=sum(
                    1 for u in units if not u.ok and u.invalid is None
                ),
                invalid=sum(1 for u in units if u.invalid is not None),
                probe_failures=len(probe_failures),
            )
    return NetFuzzResult(
        units=units,
        seconds=time.perf_counter() - start,
        jobs=jobs,
        artifacts=artifacts,
        probe_failures=probe_failures,
        corpus=corpus_stats,
    )


def netfuzz_main(argv: list | None = None) -> int:
    """``novac fuzz --net`` — streaming-scenario fuzzing subcommand."""
    import argparse
    import sys

    parser = argparse.ArgumentParser(
        prog="novac fuzz --net",
        description="fuzz the streaming runtime with random "
        "(program, traffic, topology) scenarios under metamorphic "
        "invariants",
    )
    parser.add_argument("--seed", type=int, default=0, help="first seed")
    parser.add_argument(
        "--count", type=int, default=100, help="number of scenarios"
    )
    parser.add_argument(
        "--jobs", type=int, default=1, metavar="N", help="parallel workers"
    )
    parser.add_argument(
        "--artifact-dir",
        default=".netfuzz-artifacts",
        help="directory for witness artifacts (default %(default)s)",
    )
    parser.add_argument(
        "--max-stmts", type=int, default=5, help="program size knob"
    )
    parser.add_argument(
        "--max-packets",
        type=int,
        default=32,
        help="largest per-scenario packet budget (default %(default)s)",
    )
    parser.add_argument(
        "--no-shrink",
        action="store_true",
        help="skip minimization of findings (faster triage-later mode)",
    )
    parser.add_argument(
        "--corpus-dir",
        default=None,
        metavar="DIR",
        help="persistent coverage-guided corpus directory; retained "
        "scenarios seed mutants in this and later campaigns",
    )
    parser.add_argument(
        "--mutate-ratio",
        type=float,
        default=0.5,
        metavar="R",
        help="fraction of scenario slots fed from corpus mutants when "
        "the corpus is non-empty (default %(default)s)",
    )
    parser.add_argument("--trace", action="store_true")
    parser.add_argument("--trace-json", metavar="FILE")
    args = parser.parse_args(argv)

    if args.max_packets < 2:
        print("novac fuzz --net: --max-packets must be >= 2", file=sys.stderr)
        return 2
    if not 0.0 <= args.mutate_ratio <= 1.0:
        print(
            "novac fuzz --net: --mutate-ratio must be in [0, 1]",
            file=sys.stderr,
        )
        return 2
    gen_config = NetGenConfig(
        min_packets=min(8, args.max_packets),
        max_packets=args.max_packets,
        gen=GenConfig(max_stmts=args.max_stmts, features=STREAM_FEATURES),
    )
    tracer = Tracer() if (args.trace or args.trace_json) else None

    result = run_net_campaign(
        seed=args.seed,
        count=args.count,
        jobs=args.jobs,
        gen_config=gen_config,
        artifact_dir=args.artifact_dir,
        tracer=tracer,
        shrink_findings=not args.no_shrink,
        corpus_dir=args.corpus_dir,
        mutate_ratio=args.mutate_ratio,
    )

    for failure in result.probe_failures:
        print(f"validation probe FAILED: {failure}")
    for unit in result.units:
        if unit.invalid is not None:
            print(f"seed {unit.seed}: INVALID ({unit.invalid})")
        elif not unit.ok:
            print(f"seed {unit.seed}: VIOLATING")
            for violation in unit.violations:
                print(f"  {violation}")
    for artifact in result.artifacts:
        print(f"witness artifact: {artifact.directory}")
    if result.corpus is not None:
        corpus = result.corpus
        print(
            f"corpus: {corpus['entries']} entries covering "
            f"{corpus['covered_features']} features "
            f"(+{corpus['retained']} retained, "
            f"{corpus['minimized_away']} minimized away) in "
            f"{corpus['directory']}"
        )
    summary = result.summary()
    print(
        f"netfuzz: {summary['ok']}/{summary['scenarios']} ok, "
        f"{summary['violating']} violating, {summary['invalid']} invalid, "
        f"{summary['probe_failures']} probe failures in "
        f"{summary['seconds']:.1f}s (jobs={summary['jobs']})"
    )
    if tracer is not None:
        if args.trace:
            print(tracer.table())
        if args.trace_json:
            tracer.write_jsonl(args.trace_json)
    return (
        1
        if (result.failed or result.invalid or result.probe_failures)
        else 0
    )
