"""``novac`` — command-line front end for the Nova compiler.

Usage::

    novac program.nova              # compile, print physical code
    novac --virtual program.nova    # stop before register allocation
    novac --stats program.nova      # print per-phase statistics
    novac --cps program.nova        # dump the optimized CPS term
    novac --jobs 4 a.nova b.nova    # batch-compile over a process pool
    novac --cache-dir .cache *.nova # content-addressed compile cache
    novac fuzz --seed 0 --count 200 # differential fuzzing campaign
    novac fuzz --net --count 100    # streaming-scenario fuzzing campaign
    novac pump --app nat --chips 2  # whole-chip packet streaming (6x4)
    novac serve --socket /tmp/n.sock --cache-dir .cache  # compile daemon
    novac --connect /tmp/n.sock program.nova  # compile via the daemon
    novac client --socket /tmp/n.sock --stats # daemon introspection

With more than one source file ``novac`` switches to batch mode: every
file is compiled (failures don't stop the rest), a one-line outcome per
file plus a job summary is printed, and the exit status is 1 iff any
unit failed.  ``--cache-dir`` also works for single compiles.
"""

from __future__ import annotations

import argparse
import sys

from repro.compiler import CompileOptions, compile_nova
from repro.cps import ir
from repro.errors import NovaError
from repro.trace import Tracer


def main(argv: list[str] | None = None) -> int:
    if argv is None:
        argv = sys.argv[1:]
    if argv and argv[0] == "fuzz":
        from repro.fuzz.driver import fuzz_main

        return fuzz_main(argv[1:])
    if argv and argv[0] == "pump":
        from repro.ixp.net import pump_main

        return pump_main(argv[1:])
    if argv and argv[0] == "serve":
        from repro.serve import serve_main

        return serve_main(argv[1:])
    if argv and argv[0] == "client":
        from repro.client import client_main

        return client_main(argv[1:])
    parser = argparse.ArgumentParser(
        prog="novac", description="Nova → IXP1200 compiler"
    )
    parser.add_argument(
        "sources", nargs="+", metavar="source", help="Nova source file(s)"
    )
    parser.add_argument(
        "--virtual",
        action="store_true",
        help="stop after instruction selection (skip the ILP allocator)",
    )
    parser.add_argument(
        "--cps", action="store_true", help="dump the optimized CPS term"
    )
    parser.add_argument(
        "--stats", action="store_true", help="print compilation statistics"
    )
    parser.add_argument(
        "--two-phase",
        action="store_true",
        help="use the two-phase (spill-detection first) objective",
    )
    parser.add_argument(
        "--listing",
        action="store_true",
        help="print IXP assembler-style output instead of the IR form",
    )
    parser.add_argument(
        "--run",
        metavar="INPUTS",
        help=(
            "execute main on the simulator with comma-separated inputs, "
            "e.g. --run 'base=64,n=4' (values may be hex)"
        ),
    )
    parser.add_argument(
        "--threads",
        type=int,
        default=1,
        help="hardware threads for --run (default 1)",
    )
    parser.add_argument(
        "--jobs",
        type=int,
        default=1,
        metavar="N",
        help="compile N sources concurrently over a process pool",
    )
    parser.add_argument(
        "--cache-dir",
        metavar="DIR",
        help="content-addressed compile cache directory",
    )
    parser.add_argument(
        "--trace",
        action="store_true",
        help="print a per-phase span table (wall time + counters)",
    )
    parser.add_argument(
        "--trace-json",
        metavar="FILE",
        help="write the trace as JSON lines, one span per line",
    )
    parser.add_argument(
        "--connect",
        metavar="ENDPOINT",
        help=(
            "compile via a novac serve daemon (Unix socket path or "
            "host:port); falls back to in-process when unreachable"
        ),
    )
    args = parser.parse_args(argv)

    tracer = (
        Tracer() if (args.trace or args.trace_json is not None) else None
    )
    if len(args.sources) > 1:
        code = _batch_main(args, tracer)
    else:
        code = _single_main(args, tracer)
    if tracer is not None:
        if args.trace:
            print(tracer.table())
        if args.trace_json is not None:
            try:
                tracer.write_jsonl(args.trace_json)
            except OSError as exc:
                print(f"novac: {exc}", file=sys.stderr)
                return 1
    return code


def _make_options(args) -> CompileOptions:
    options = CompileOptions()
    options.run_allocator = not args.virtual
    options.alloc.two_phase = args.two_phase
    return options


def _remote_client(args):
    """A live daemon connection for --connect, or None (with a notice).

    Output modes the daemon cannot serve (--cps needs the CPS IR,
    --run and --stats need the full artifact) also compile locally.
    """
    if args.connect is None:
        return None
    if args.cps or args.stats or args.run is not None:
        print(
            "novac: --cps/--stats/--run need the full artifact; "
            "compiling in-process",
            file=sys.stderr,
        )
        return None
    from repro.client import try_connect

    client = try_connect(args.connect)
    if client is None:
        print(
            f"novac: no daemon at {args.connect}; compiling in-process",
            file=sys.stderr,
        )
    return client


def _adopt_remote_spans(tracer, body) -> None:
    if tracer is None or not body.get("spans"):
        return
    from repro.trace import span_from_dict

    tracer.adopt([span_from_dict(sp) for sp in body["spans"]])


def _single_main(args, tracer) -> int:
    source_path = args.sources[0]
    try:
        with open(source_path) as handle:
            source = handle.read()
    except OSError as exc:
        print(f"novac: {exc}", file=sys.stderr)
        return 1

    client = _remote_client(args)
    if client is not None:
        from repro.client import ServeError

        with client:
            try:
                body = client.compile_source(
                    source,
                    filename=source_path,
                    options=_make_options(args),
                    payload="listing" if args.listing else "pretty",
                    trace=tracer is not None,
                )
            except ServeError as exc:
                print(f"novac: {exc}", file=sys.stderr)
                return 1
        _adopt_remote_spans(tracer, body)
        if body.get("payload"):
            print(body["payload"], end="")
        return 0

    options = _make_options(args)
    try:
        if args.cache_dir is not None:
            from repro.cache import CompileCache, cached_compile

            cache = CompileCache(args.cache_dir, tracer)
            result, _ = cached_compile(
                source, source_path, options, cache, tracer
            )
        else:
            result = compile_nova(source, source_path, options, tracer=tracer)
    except NovaError as exc:
        # The spans recorded before the failing phase (parse, typecheck,
        # ...) still flush — main() renders/writes the tracer on every
        # exit path — so --trace-json keeps its diagnostic value.
        print(f"novac: {exc}", file=sys.stderr)
        return 1

    return _render(result, args, tracer)


def _batch_main(args, tracer) -> int:
    from repro.batch import compile_many

    for flag in ("cps", "run", "listing"):
        if getattr(args, flag):
            print(
                f"novac: --{flag} requires a single source file",
                file=sys.stderr,
            )
            return 2

    client = _remote_client(args)
    if client is not None:
        return _remote_batch(args, tracer, client)

    result = compile_many(
        args.sources,
        jobs=args.jobs,
        options=_make_options(args),
        cache_dir=args.cache_dir,
        tracer=tracer,
        keep_artifacts=False,
    )
    for unit in result.units:
        if unit.ok:
            cache = f", cache {unit.cache}" if unit.cache != "off" else ""
            print(f"{unit.name}: ok ({unit.seconds:.2f}s{cache})")
        else:
            print(f"{unit.name}: error: {unit.error}")
    summary = result.summary()
    print(
        f"batch: {summary['ok']}/{summary['units']} ok in "
        f"{summary['seconds']:.2f}s (jobs={summary['jobs']}, "
        f"cache {summary['cache_hits']} hits / "
        f"{summary['cache_misses']} misses)"
    )
    stats = summary.get("cache")
    if stats:
        rendered = "  ".join(
            f"{key}={value}" for key, value in sorted(stats.items())
        )
        print(f"cache stats: {rendered}")
    return 0 if not result.failed else 1


def _remote_batch(args, tracer, client) -> int:
    """Batch compile through a novac serve daemon (--connect).

    Sources are read client-side and shipped as text — the daemon need
    not share a filesystem with the caller.  An unreadable file is a
    failed unit, not a fatal error, matching local batch semantics.
    """
    from repro.client import ServeError

    units = []
    unreadable = []
    for path in args.sources:
        try:
            with open(path) as handle:
                units.append((path, handle.read()))
        except OSError as exc:
            unreadable.append((path, str(exc)))
    failed = len(unreadable)
    for path, message in unreadable:
        print(f"{path}: error: {message} [OSError]")
    response = None
    if units:
        with client:
            try:
                response = client.batch(
                    units,
                    options=_make_options(args),
                    trace=tracer is not None,
                )
            except ServeError as exc:
                print(f"novac: {exc}", file=sys.stderr)
                return 1
    hits = misses = 0
    if response is not None:
        for (path, _), body in zip(units, response["units"]):
            _adopt_remote_spans(tracer, body)
            if body.get("ok"):
                print(
                    f"{path}: ok ({body.get('seconds', 0.0):.2f}s, "
                    f"cache {body.get('cache')})"
                )
            else:
                error = body.get("error") or {}
                location = error.get("location")
                prefix = f"{location}: " if location else ""
                print(
                    f"{path}: error: {prefix}{error.get('message')} "
                    f"[{error.get('kind')}]"
                )
                failed += 1
        summary = response.get("summary", {})
        hits = summary.get("cache_hits", 0)
        misses = summary.get("cache_misses", 0)
    total = len(args.sources)
    print(
        f"batch: {total - failed}/{total} ok via {args.connect} "
        f"(cache {hits} hits / {misses} misses)"
    )
    return 0 if not failed else 1


def _render(result, args, tracer) -> int:
    """The output mode switch (everything after a successful compile)."""
    if args.cps:
        print(ir.pretty(result.ssu.term), end="")
        return 0
    if args.stats:
        stats = result.source_stats
        print(f"lines: {stats.line_count}  layouts: {stats.layouts}")
        print(
            f"packs: {stats.packs}  unpacks: {stats.unpacks}  "
            f"raises: {stats.raises}  handles: {stats.handles}"
        )
        print(f"instructions: {result.flowgraph.num_instructions()}")
        print(f"temporaries: {len(result.flowgraph.temps())}")
        for phase, seconds in result.phase_seconds.items():
            print(f"  {phase:10s} {seconds * 1000:8.1f} ms")
        if result.alloc is not None:
            row = result.alloc.figure7_row()
            print(
                "ILP: "
                + "  ".join(f"{key}={value}" for key, value in row.items())
            )
        return 0
    if args.run is not None:
        return _run_program(result, args, tracer)

    graph = result.physical if result.alloc is not None else result.flowgraph
    if args.listing:
        from repro.ixp.listing import render_listing

        print(render_listing(graph, title=args.sources[0]), end="")
    else:
        print(graph.pretty(), end="")
    return 0


def _run_program(result, args, tracer=None) -> int:
    """Execute the compiled program on the simulator (--run)."""
    from repro.ixp.machine import CLOCK_MHZ, Machine

    try:
        values = {}
        if args.run.strip():
            for piece in args.run.split(","):
                name, _, text = piece.partition("=")
                values[name.strip()] = int(text.strip(), 0)
        raw = result.make_inputs(**values)
    except (ValueError, KeyError) as exc:
        print(f"novac: bad --run inputs: {exc}", file=sys.stderr)
        return 1

    if result.alloc is not None:
        graph = result.physical
        locations = result.alloc.decoded.input_locations
        inputs = {}
        for temp, value in raw.items():
            loc = locations.get(temp)
            if loc is not None:
                inputs[(loc[1].bank, loc[1].index)] = value
        physical = True
    else:
        graph, inputs, physical = result.flowgraph, raw, False

    machine = Machine(
        graph,
        threads=args.threads,
        physical=physical,
        input_provider=lambda tid, it: dict(inputs) if it == 0 else None,
        tracer=tracer,
    )
    run = machine.run()
    for tid, halt_values in run.results:
        rendered = ", ".join(f"{v:#x}" for v in halt_values)
        print(f"thread {tid}: ({rendered})")
    microseconds = run.cycles / CLOCK_MHZ
    print(
        f"{run.cycles} cycles ({microseconds:.2f} us at {CLOCK_MHZ} MHz), "
        f"{run.instructions} instructions"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
