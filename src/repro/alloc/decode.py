"""Decode an ILP solution into physical IXP code.

Takes the bank assignment (Before/After), the inserted inter-bank moves,
the transfer-register colors, and the A/B coloring, and rewrites the
virtual flowgraph into physical-register form:

- every operand is replaced by its assigned ``PhysReg``;
- ``Move[p,v,b1,b2]`` decisions materialize at point p as real code —
  an ALU move, or a spill/reload sequence through scratch memory using
  the spare S/L transfer register the ``needsSpill`` constraints kept
  free and the reserved A15 for the slot address;
- multiple moves at one point form a *parallel copy*, sequentialized
  with dependency ordering and A15 for cycles (the reason the ILP's K
  constraint for A is 15, Section 6);
- ``clone`` pseudo-instructions vanish (the model guarantees source and
  clone share a register at the clone point);
- coalesced same-bank moves (same physical register on both sides)
  vanish — the optimistic-coalescing payoff.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import AllocError
from repro.ixp import isa
from repro.ixp.banks import Bank, XFER_SIZE
from repro.ixp.flowgraph import Block, FlowGraph
from repro.alloc.abcolor import SPARE_A, AbAssignment
from repro.alloc.ilpmodel import AllocModel, AllocSolution

#: Default first scratch word used for spill slots.
SPILL_BASE = 960


@dataclass
class DecodeStats:
    moves_inserted: int = 0
    moves_coalesced: int = 0
    spill_stores: int = 0
    spill_reloads: int = 0
    clones_dropped: int = 0


@dataclass
class DecodeResult:
    graph: FlowGraph
    #: program input name → physical location ('reg', PhysReg) or
    #: ('slot', scratch word address)
    input_locations: dict[str, tuple]
    spill_slots: dict[str, int]
    stats: DecodeStats = field(default_factory=DecodeStats)


class _Decoder:
    def __init__(
        self,
        am: AllocModel,
        solution: AllocSolution,
        ab: AbAssignment,
        spill_base: int = SPILL_BASE,
    ):
        self.am = am
        self.sol = solution
        self.ab = ab
        self.stats = DecodeStats()
        self.moves_at: dict[int, list[tuple[str, Bank, Bank]]] = {}
        for p, v, b1, b2 in solution.moves:
            self.moves_at.setdefault(p, []).append((v, b1, b2))
        self.spill_slots: dict[str, int] = {}
        spilled = sorted(
            {
                v
                for (_, v), b in list(solution.banks_before.items())
                + list(solution.banks_after.items())
                if b is Bank.M
            }
        )
        for i, v in enumerate(spilled):
            self.spill_slots[v] = spill_base + i

    # -- register lookup ----------------------------------------------------

    def reg_of(self, v: str, bank: Bank) -> isa.PhysReg:
        if bank in (Bank.A, Bank.B):
            return isa.PhysReg(bank, self.ab.reg(v, bank))
        if bank in (Bank.L, Bank.S, Bank.LD, Bank.SD):
            color = self.sol.colors.get((v, bank))
            if color is None:
                raise AllocError(f"no color for '{v}' in bank {bank}")
            return isa.PhysReg(bank, color)
        raise AllocError(f"'{v}' has no register in bank {bank}")

    def use_reg(self, p1: int, v: str) -> isa.PhysReg:
        bank = self.sol.banks_after.get((p1, v))
        if bank is None:
            raise AllocError(f"no After bank for '{v}' at point {p1}")
        return self.reg_of(v, bank)

    def def_reg(self, p2: int, v: str) -> isa.PhysReg:
        bank = self.sol.banks_before.get((p2, v))
        if bank is None:
            raise AllocError(f"no Before bank for '{v}' at point {p2}")
        return self.reg_of(v, bank)

    def _free_xfer(self, p: int, bank: Bank) -> isa.PhysReg:
        """A transfer register in ``bank`` unoccupied at point p."""
        occupied: set[int] = set()
        for table in (self.sol.banks_before, self.sol.banks_after):
            for (q, v), b in table.items():
                if q == p and b is bank:
                    occupied.add(self.sol.colors[(v, bank)])
        for r in range(XFER_SIZE):
            if r not in occupied:
                return isa.PhysReg(bank, r)
        raise AllocError(
            f"no spare {bank} register at point {p}; needsSpill "
            "constraints should have prevented this"
        )

    # -- move materialization ---------------------------------------------------

    def _move_sequences(self, p: int):
        """Each ILP move at p as (reads, writes, instruction list)."""
        sequences = []
        spare_a = isa.PhysReg(Bank.A, SPARE_A)
        const_temps = getattr(self.am, "const_temps", {})
        for v, b1, b2 in self.moves_at.get(p, []):
            slot = self.spill_slots.get(v)
            instrs: list[isa.Instr] = []
            reads: list[isa.PhysReg] = []
            writes: list[isa.PhysReg] = []
            if b2 is Bank.C:
                # Discarding a constant from a register: no code.
                continue
            if b1 is Bank.C:
                # Loading a constant (Section 12 rematerialization).
                dst = self.reg_of(v, b2)
                writes.append(dst)
                instrs.append(isa.Immed(dst, const_temps[v]))
                sequences.append((reads, writes, instrs))
                self.stats.moves_inserted += 1
                continue
            if b2 is Bank.M:
                # Spill: route through an S register unless already there.
                assert slot is not None
                src = self.reg_of(v, b1)
                reads.append(src)
                if b1 is Bank.S:
                    staging = src
                else:
                    staging = self._free_xfer(p, Bank.S)
                    instrs.append(isa.Move(staging, src))
                instrs.append(isa.Immed(spare_a, slot))
                instrs.append(isa.MemOp("scratch", "write", spare_a, (staging,)))
                self.stats.spill_stores += 1
            elif b1 is Bank.M:
                # Reload: lands in L, then moves on if needed.
                assert slot is not None
                dst = self.reg_of(v, b2)
                writes.append(dst)
                landing = dst if b2 is Bank.L else self._free_xfer(p, Bank.L)
                instrs.append(isa.Immed(spare_a, slot))
                instrs.append(isa.MemOp("scratch", "read", spare_a, (landing,)))
                if b2 is not Bank.L:
                    instrs.append(isa.Move(dst, landing))
                self.stats.spill_reloads += 1
            elif b1 is Bank.S or b2 is Bank.L:
                # No direct path: round-trip through a scratch slot.
                src = self.reg_of(v, b1)
                dst = self.reg_of(v, b2)
                reads.append(src)
                writes.append(dst)
                slot = self.spill_slots.setdefault(
                    v, SPILL_BASE + 32 + len(self.spill_slots)
                )
                staging = src if b1 is Bank.S else self._free_xfer(p, Bank.S)
                if b1 is not Bank.S:
                    instrs.append(isa.Move(staging, src))
                instrs.append(isa.Immed(spare_a, slot))
                instrs.append(isa.MemOp("scratch", "write", spare_a, (staging,)))
                landing = dst if b2 is Bank.L else self._free_xfer(p, Bank.L)
                instrs.append(isa.MemOp("scratch", "read", spare_a, (landing,)))
                if b2 is not Bank.L:
                    instrs.append(isa.Move(dst, landing))
                self.stats.spill_stores += 1
                self.stats.spill_reloads += 1
            else:
                src = self.reg_of(v, b1)
                dst = self.reg_of(v, b2)
                if src == dst:
                    continue  # coalesced: same register on both sides
                reads.append(src)
                writes.append(dst)
                instrs.append(isa.Move(dst, src))
            if instrs:
                sequences.append((reads, writes, instrs))
                self.stats.moves_inserted += 1
        return sequences

    def emit_moves(self, p: int, out: list[isa.Instr]) -> None:
        """Sequentialize the parallel copy at point p."""
        sequences = self._move_sequences(p)
        if not sequences:
            return
        pending = list(range(len(sequences)))
        renames: dict[isa.PhysReg, isa.PhysReg] = {}
        spare_a = isa.PhysReg(Bank.A, SPARE_A)
        while pending:
            progressed = False
            for i in list(pending):
                reads, writes, instrs = sequences[i]
                # Safe if nothing still pending reads what we write.
                clobbers = any(
                    w in sequences[j][0]
                    for j in pending
                    if j != i
                    for w in writes
                )
                if clobbers:
                    continue
                for instr in instrs:
                    out.append(_apply_renames(instr, renames))
                pending.remove(i)
                progressed = True
            if progressed:
                continue
            # Cycle among register moves: park one source in A15.
            reads, writes, instrs = sequences[pending[0]]
            victim = reads[0]
            out.append(isa.Move(spare_a, _apply_renames_reg(victim, renames)))
            renames[victim] = spare_a
            # The victim's readers now read the spare instead.
            for j in pending:
                sequences[j] = (
                    [spare_a if r == victim else r for r in sequences[j][0]],
                    sequences[j][1],
                    sequences[j][2],
                )

    # -- instruction rewriting -------------------------------------------------------

    def rewrite(self, label: str, index: int, instr: isa.Instr) -> list[isa.Instr]:
        points = self.am.points
        p1 = points.before(label, index)
        p2 = points.after(label, index)

        def use(reg):
            if isinstance(reg, isa.Imm) or reg is None:
                return reg
            return self.use_reg(p1, reg.name)

        def define(reg):
            return self.def_reg(p2, reg.name)

        if isinstance(instr, isa.Alu):
            return [isa.Alu(define(instr.dst), instr.op, use(instr.a), use(instr.b))]
        if isinstance(instr, isa.Immed):
            return [isa.Immed(define(instr.dst), instr.value)]
        if isinstance(instr, isa.Move):
            dst = define(instr.dst)
            src = use(instr.src)
            if dst == src:
                self.stats.moves_coalesced += 1
                return []
            return [isa.Move(dst, src)]
        if isinstance(instr, isa.Clone):
            dst_bank = self.sol.banks_before.get((p2, instr.dst.name))
            src_bank = self.sol.banks_after.get((p1, instr.src.name))
            if dst_bank != src_bank:
                raise AllocError(
                    f"clone {instr} assigned differing banks "
                    f"{dst_bank}/{src_bank}"
                )
            dst = self.def_reg(p2, instr.dst.name)
            src = self.reg_of(instr.src.name, src_bank)
            if dst != src:
                raise AllocError(
                    f"clone {instr} assigned differing registers {dst}/{src}"
                )
            self.stats.clones_dropped += 1
            return []
        if isinstance(instr, isa.MemOp):
            if instr.direction == "read":
                regs = tuple(define(r) for r in instr.regs)
            else:
                regs = tuple(use(r) for r in instr.regs)
            return [isa.MemOp(instr.space, instr.direction, use(instr.addr), regs)]
        if isinstance(instr, isa.HashInstr):
            return [isa.HashInstr(define(instr.dst), use(instr.src))]
        if isinstance(instr, isa.CsrRd):
            return [isa.CsrRd(define(instr.dst), instr.csr)]
        if isinstance(instr, isa.CsrWr):
            return [isa.CsrWr(instr.csr, use(instr.src))]
        if isinstance(instr, (isa.CtxArb, isa.LockInstr)):
            return [instr]
        if isinstance(instr, isa.Br):
            return [instr]
        if isinstance(instr, isa.BrCmp):
            return [
                isa.BrCmp(
                    instr.cmp,
                    use(instr.a),
                    use(instr.b),
                    instr.then_target,
                    instr.else_target,
                )
            ]
        if isinstance(instr, isa.HaltInstr):
            return [isa.HaltInstr(tuple(use(r) for r in instr.results))]
        raise AllocError(f"unhandled instruction {instr!r}")

    # -- main ---------------------------------------------------------------------------

    def run(self) -> DecodeResult:
        graph = self.am.graph
        points = self.am.points
        new_blocks: dict[str, Block] = {}
        for label in graph.block_order():
            block = graph.blocks[label]
            out: list[isa.Instr] = []
            for index, instr in enumerate(block.instrs):
                self.emit_moves(points.before(label, index), out)
                out.extend(self.rewrite(label, index, instr))
            # Moves at the exit point (only legal after plain jumps):
            # they belong before the terminator.
            exit_moves_at = points.exit(label)
            if exit_moves_at in self.moves_at:
                terminator = out.pop()
                self.emit_moves(exit_moves_at, out)
                out.append(terminator)
            new_blocks[label] = Block(label, out)

        physical = FlowGraph(graph.entry, new_blocks, graph.inputs)
        physical.validate()

        entry_point = points.entry(graph.entry)
        input_locations: dict[str, tuple] = {}
        for name in graph.inputs:
            bank = self.sol.banks_before.get((entry_point, name))
            if bank is None:
                continue  # unused input
            if bank is Bank.M:
                input_locations[name] = ("slot", self.spill_slots[name])
            else:
                input_locations[name] = ("reg", self.reg_of(name, bank))
        return DecodeResult(
            physical, input_locations, dict(self.spill_slots), self.stats
        )


def _apply_renames_reg(reg, renames):
    return renames.get(reg, reg)


def _apply_renames(instr: isa.Instr, renames: dict) -> isa.Instr:
    if not renames:
        return instr
    # Only rename uses (sources); writes keep their targets.
    if isinstance(instr, isa.Move):
        return isa.Move(instr.dst, renames.get(instr.src, instr.src))
    if isinstance(instr, isa.MemOp) and instr.direction == "write":
        return isa.MemOp(
            instr.space,
            instr.direction,
            renames.get(instr.addr, instr.addr),
            tuple(renames.get(r, r) for r in instr.regs),
        )
    return instr


def decode(
    am: AllocModel,
    solution: AllocSolution,
    ab: AbAssignment,
    spill_base: int = SPILL_BASE,
) -> DecodeResult:
    """Materialize an ILP solution as a physical-register flowgraph."""
    return _Decoder(am, solution, ab, spill_base).run()
