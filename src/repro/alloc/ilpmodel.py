"""The paper's ILP model: bank assignment + aggregate coloring + spills.

This module plays the role of the AMPL model *and* its data section
(paper Figures 2-3).  From a flowgraph it derives the sets

    P, V, Exists, Copy, DefABW, DefAB, Arith, UseReg1, UseAddr,
    DefL[i], DefLD[j], UseS[i], UseSD[j], SameReg, Clone, Interferes

and instantiates the 0-1 variables and constraint families of Sections
5, 6, 9 and 10:

- ``Move[p,v,b1,b2]``, ``Before[p,v,b]``, ``After[p,v,b]`` with the
  in-before/in-after, in-one-place-only, and copy-propagation ties;
- operand and result constraints per instruction kind;
- K constraints for A (15, one spare for parallel-copy cycles) and B (16),
  with clone-representative counting;
- ``Color[v,b,r]`` with point-independent coloring, interference,
  aggregate adjacency, redundant position elimination, and SameReg;
- ``colorAvail``/``needsSpill`` for the L and S banks;
- clone sets: location agreement at the clone point, non-interference,
  and once-only counting of group moves (``cloneMove``);
- the weighted-move objective with the A-over-B bias.

Model-size reductions of Section 8 (candidate banks) are applied through
:mod:`repro.alloc.pruning`; the flags on :class:`ModelOptions` expose the
paper's engineering choices for the ablation benchmarks.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import AllocError
from repro.ixp import isa
from repro.ixp.banks import Bank, READ_BANK, WRITE_BANK, XFER_SIZE
from repro.ixp.flowgraph import FlowGraph, PointMap
from repro.ilp.model import Model
from repro.trace import ensure
from repro.alloc import frequency, liveness, pruning

ALU_IN = (Bank.A, Bank.B, Bank.L, Bank.LD)
ALU_OUT = (Bank.A, Bank.B, Bank.S, Bank.SD)
GPR = (Bank.A, Bank.B)
XFER = (Bank.L, Bank.S, Bank.LD, Bank.SD)


@dataclass
class ModelOptions:
    """Engineering switches of the ILP formulation."""

    #: Section 8 candidate-bank pruning.
    prune_banks: bool = True
    #: Section 9 redundant aggregate-position constraints (solver speed).
    redundant_position_constraints: bool = True
    #: Section 9 tightening of needsSpill from above.
    tighten_needs_spill: bool = True
    #: Section 7 bias towards A registers over B.
    a_bank_bias: float = 1.01
    #: Interference-coloring encoding: "aux" collapses the per-point
    #: quantification with one both-in-bank witness per pair (equivalent
    #: but much smaller); "direct" is the paper-literal form.
    interference_encoding: str = "aux"
    #: Section 12 extension: constants as temporaries in the virtual C
    #: bank (the graph must have been through
    #: :func:`repro.alloc.remat.lift_constants`).
    remat_constants: bool = False
    #: Costs (paper Section 7).
    mv_cost: float = 1.0
    ld_cost: float = 200.0
    st_cost: float = 200.0
    #: Allow spilling at all (two-phase mode rebuilds without M).
    allow_spill: bool = True


# --------------------------------------------------------------------------
# The "AMPL data": instruction-derived sets
# --------------------------------------------------------------------------


@dataclass
class InstrSets:
    """Operand/result sets in the paper's vocabulary (Figure 3)."""

    def_abw: list[tuple[int, int, str]] = field(default_factory=list)
    def_ab: list[tuple[int, int, str]] = field(default_factory=list)
    arith: list[tuple[int, int, str, str]] = field(default_factory=list)
    use_reg1: list[tuple[int, int, str]] = field(default_factory=list)
    use_addr: list[tuple[int, int, str]] = field(default_factory=list)
    def_l: list[tuple[int, int, tuple[str, ...]]] = field(default_factory=list)
    def_ld: list[tuple[int, int, tuple[str, ...]]] = field(default_factory=list)
    use_s: list[tuple[int, int, tuple[str, ...]]] = field(default_factory=list)
    use_sd: list[tuple[int, int, tuple[str, ...]]] = field(default_factory=list)
    same_reg: list[tuple[int, int, str, str]] = field(default_factory=list)
    clones: list[tuple[int, int, str, str]] = field(default_factory=list)
    #: points where inserting a move is illegal (after two-way branches
    #: and halts — "situations where it would be illegal to insert move
    #: instructions", Section 5.2)
    no_move_points: set[int] = field(default_factory=set)

    def figure6_stats(self) -> dict[str, int]:
        """Temporaries participating in coloring (paper Figure 6)."""
        def count(sets):
            return sum(len(vs) for _, _, vs in sets)

        return {
            "DefLi": count(self.def_l),
            "DefLDj": count(self.def_ld),
            "UseSi": count(self.use_s),
            "UseSDj": count(self.use_sd),
        }


def _temp(reg) -> str | None:
    return reg.name if isinstance(reg, isa.Temp) else None


def build_instr_sets(graph: FlowGraph, points: PointMap) -> InstrSets:
    sets = InstrSets()
    for label, index, instr in graph.instructions():
        p1 = points.before(label, index)
        p2 = points.after(label, index)
        if isinstance(instr, isa.Alu):
            a, b = _temp(instr.a), _temp(instr.b) if instr.b else None
            if a and b and a != b:
                sets.arith.append((p1, p2, a, b))
            elif a and b and a == b:
                raise AllocError(
                    f"ALU reads temp '{a}' on both ports at {label}:{index}; "
                    "selection should have rewritten this"
                )
            elif a:
                sets.use_reg1.append((p1, p2, a))
            elif b:
                sets.use_reg1.append((p1, p2, b))
            sets.def_abw.append((p1, p2, instr.dst.name))
        elif isinstance(instr, isa.Move):
            sets.use_reg1.append((p1, p2, instr.src.name))
            sets.def_abw.append((p1, p2, instr.dst.name))
        elif isinstance(instr, isa.Immed):
            sets.def_abw.append((p1, p2, instr.dst.name))
        elif isinstance(instr, isa.MemOp):
            addr = _temp(instr.addr)
            if addr:
                sets.use_addr.append((p1, p2, addr))
            names = tuple(r.name for r in instr.regs)
            bank = (
                READ_BANK[instr.space]
                if instr.direction == "read"
                else WRITE_BANK[instr.space]
            )
            if instr.direction == "read":
                (sets.def_l if bank is Bank.L else sets.def_ld).append(
                    (p1, p2, names)
                )
            else:
                (sets.use_s if bank is Bank.S else sets.use_sd).append(
                    (p1, p2, names)
                )
        elif isinstance(instr, isa.HashInstr):
            sets.same_reg.append((p1, p2, instr.dst.name, instr.src.name))
        elif isinstance(instr, isa.Clone):
            sets.clones.append((p1, p2, instr.dst.name, instr.src.name))
        elif isinstance(instr, isa.CsrRd):
            sets.def_ab.append((p1, p2, instr.dst.name))
        elif isinstance(instr, isa.CsrWr):
            sets.use_addr.append((p1, p2, instr.src.name))
        elif isinstance(instr, isa.BrCmp):
            a, b = _temp(instr.a), _temp(instr.b)
            if a and b and a != b:
                sets.arith.append((p1, p2, a, b))
            elif a and b:
                pass  # same temp compared with itself: constant branch
            elif a:
                sets.use_reg1.append((p1, p2, a))
            elif b:
                sets.use_reg1.append((p1, p2, b))
        elif isinstance(instr, isa.HaltInstr):
            for reg in instr.results:
                name = _temp(reg)
                if name:
                    sets.use_reg1.append((p1, p2, name))
    # No moves after branch/halt terminators: those exit points fan out
    # to several targets (or to nothing).
    for label, block in graph.blocks.items():
        term = block.terminator
        if isinstance(term, (isa.BrCmp, isa.HaltInstr)):
            sets.no_move_points.add(points.exit(label))
    return sets


# --------------------------------------------------------------------------
# Clone groups
# --------------------------------------------------------------------------


def clone_groups(sets: InstrSets) -> dict[str, str]:
    """Union-find: temp → clone-group representative."""
    parent: dict[str, str] = {}

    def find(x: str) -> str:
        parent.setdefault(x, x)
        while parent[x] != x:
            parent[x] = parent[parent[x]]
            x = parent[x]
        return x

    for _, _, dst, src in sets.clones:
        root_d, root_s = find(dst), find(src)
        if root_d != root_s:
            parent[root_d] = root_s
    return {x: find(x) for x in parent}


# --------------------------------------------------------------------------
# The model builder
# --------------------------------------------------------------------------


@dataclass
class AllocModel:
    """The instantiated ILP plus everything needed to decode a solution."""

    model: Model
    graph: FlowGraph
    points: PointMap
    live: liveness.Liveness
    sets: InstrSets
    candidates: pruning.Candidates
    costs: pruning.MoveCosts
    weights: frequency.PointWeights
    options: ModelOptions
    clone_rep: dict[str, str]
    # variable families
    before: object = None
    after: object = None
    move: object = None
    color: object = None

    #: constant-temp name → value (Section 12 rematerialization).
    const_temps: dict[str, int] = field(default_factory=dict)

    def allowed(self, temp: str) -> frozenset[Bank]:
        if temp in self.const_temps:
            return frozenset((Bank.C, Bank.A, Bank.B))
        banks = self.candidates.of(temp)
        if not self.options.allow_spill:
            banks = banks - {Bank.M}
        return banks

    def colorable_banks(self, temp: str) -> list[Bank]:
        return [b for b in XFER if b in self.allowed(temp)]

    def move_legal(self, temp: str, b1: Bank, b2: Bank) -> bool:
        if b1 == b2:
            return True
        if Bank.C in (b1, b2):
            if temp not in self.const_temps:
                return False
            if b2 is Bank.C:
                return True  # discarding a constant is always possible
            return b2 in (Bank.A, Bank.B)  # loading a constant
        return self.costs.legal(b1, b2)

    def move_cost(self, temp: str, b1: Bank, b2: Bank) -> float:
        from repro.alloc.remat import immed_cost

        if b1 == b2:
            return 0.0
        if b2 is Bank.C:
            return 0.0  # discard
        if b1 is Bank.C:
            return float(immed_cost(self.const_temps[temp]))
        return self.costs.cost(b1, b2)


def build_model(
    graph: FlowGraph, options: ModelOptions | None = None, tracer=None
) -> AllocModel:
    options = options or ModelOptions()
    tracer = ensure(tracer)
    with tracer.span("model") as sp:
        points = graph.points()
        live = liveness.analyze(graph)
        sets = build_instr_sets(graph, points)
        candidates = pruning.candidate_banks(graph, options.prune_banks)
        costs = pruning.build_move_costs(
            options.mv_cost, options.ld_cost, options.st_cost
        )
        weights = frequency.point_weights(graph)
        reps = clone_groups(sets)

        from repro.alloc.remat import const_temps_of

        am = AllocModel(
            Model("ixp-alloc"),
            graph,
            points,
            live,
            sets,
            candidates,
            costs,
            weights,
            options,
            reps,
            const_temps=const_temps_of(graph) if options.remat_constants else {},
        )
        _build_location_vars(am)
        _build_operand_constraints(am)
        _build_k_constraints(am)
        _build_color_constraints(am)
        _build_clone_constraints(am)
        _build_spare_register_constraints(am)
        _build_objective(am)
        if sp:
            stats = am.model.stats()
            # Section 8 pruning: candidate (temp, bank) slots kept vs the
            # unpruned 7-banks-per-temp baseline.
            full_slots = 7 * len(candidates.banks)
            sp.add(
                variables=stats["variables"],
                constraints=stats["constraints"],
                nonzeros=am.model.nonzeros(),
                objective_terms=stats["objective_terms"],
                points=points.count,
                temps=len(candidates.banks),
                candidate_slots=candidates.total_bank_slots,
                candidate_slots_full=full_slots,
                candidate_slots_pruned=full_slots - candidates.total_bank_slots,
                **sets.figure6_stats(),
            )
    return am


# -- location variables ------------------------------------------------------


def _build_location_vars(am: AllocModel) -> None:
    m = am.model
    before = m.family("Before")
    after = m.family("After")
    move = m.family("Move")
    am.before, am.after, am.move = before, after, move

    for p, v in sorted(am.live.exists):
        banks = sorted(am.allowed(v), key=lambda b: b.value)
        if not banks:
            raise AllocError(f"temp '{v}' has no candidate banks")
        if p in am.sets.no_move_points:
            # No moves here: Before and After are the same variable.
            vars_ = [before[(p, v, b)] for b in banks]
            for b, var in zip(banks, vars_):
                after.index[(p, v, b)] = var
            m.add_sum_eq(vars_, 1, "one-place")
            continue
        for b1 in banks:
            row = []
            for b2 in banks:
                if not am.move_legal(v, b1, b2):
                    continue
                row.append(move[(p, v, b1, b2)])
            # Before[p,v,b1] = sum over destinations of Move
            expr = {var: 1.0 for var in row}
            expr[before[(p, v, b1)]] = -1.0
            m.add(expr, "==", 0, "in-before")
        for b2 in banks:
            col = []
            for b1 in banks:
                key = (p, v, b1, b2)
                if key in move:
                    col.append(move[key])
            expr = {var: 1.0 for var in col}
            expr[after[(p, v, b2)]] = -1.0
            m.add(expr, "==", 0, "in-after")
        m.add_sum_eq([before[(p, v, b)] for b in banks], 1, "one-place")

    # Constant temporaries start the program parked in the C bank
    # (Section 12: they are "loaded" by moves out of C).
    if am.const_temps:
        entry_point = am.points.entry(am.graph.entry)
        for v in sorted(am.const_temps):
            var = before.get((entry_point, v, Bank.C))
            if var is not None:
                m.add({var: 1.0}, "==", 1, "Const.start")

    # Copy propagation: location carried across instructions and edges.
    for p1, p2, v in sorted(am.live.copies):
        for b in sorted(am.allowed(v), key=lambda b: b.value):
            a_var = after.get((p1, v, b))
            b_var = before.get((p2, v, b))
            if a_var is None or b_var is None:
                # The variable does not exist at one endpoint (e.g. the
                # copy crosses a point the temp is not tracked at);
                # force the existing side to zero for this bank.
                continue
            m.add({a_var: 1.0, b_var: -1.0}, "==", 0, "copy")


def _sum_eq_one(am: AllocModel, fam, p: int, v: str, banks, note: str) -> None:
    m = am.model
    vars_ = []
    for b in banks:
        if b in am.allowed(v):
            vars_.append(fam[(p, v, b)])
    if not vars_:
        raise AllocError(
            f"temp '{v}' cannot satisfy {note}: candidates "
            f"{sorted(b.value for b in am.allowed(v))} exclude "
            f"{[b.value for b in banks]}"
        )
    m.add_sum_eq(vars_, 1, note)


# -- operand / result constraints ------------------------------------------------


def _build_operand_constraints(am: AllocModel) -> None:
    m = am.model
    before, after = am.before, am.after

    for p1, p2, v in am.sets.def_abw:
        _sum_eq_one(am, before, p2, v, ALU_OUT, "DefABW")
    for p1, p2, v in am.sets.def_ab:
        _sum_eq_one(am, before, p2, v, GPR, "DefAB")
    for p1, p2, v in am.sets.use_reg1:
        _sum_eq_one(am, after, p1, v, ALU_IN, "UseReg1")
    for p1, p2, v in am.sets.use_addr:
        _sum_eq_one(am, after, p1, v, GPR, "UseAddr")

    for p1, p2, x, y in am.sets.arith:
        _sum_eq_one(am, after, p1, x, ALU_IN, "Arith.x")
        _sum_eq_one(am, after, p1, y, ALU_IN, "Arith.y")
        # x and y cannot come from the same bank...
        for b in ALU_IN:
            if b in am.allowed(x) and b in am.allowed(y):
                m.add(
                    {after[(p1, x, b)]: 1.0, after[(p1, y, b)]: 1.0},
                    "<=",
                    1,
                    "Arith.same-bank",
                )
        # ...and not both from transfer banks.
        for bx, by in ((Bank.L, Bank.LD), (Bank.LD, Bank.L)):
            if bx in am.allowed(x) and by in am.allowed(y):
                m.add(
                    {after[(p1, x, bx)]: 1.0, after[(p1, y, by)]: 1.0},
                    "<=",
                    1,
                    "Arith.xfer-mix",
                )

    for bank, aggregates, fam_side in (
        (Bank.L, am.sets.def_l, "def"),
        (Bank.LD, am.sets.def_ld, "def"),
        (Bank.S, am.sets.use_s, "use"),
        (Bank.SD, am.sets.use_sd, "use"),
    ):
        for p1, p2, names in aggregates:
            for v in names:
                if fam_side == "def":
                    _sum_eq_one(am, before, p2, v, (bank,), f"Def{bank}")
                else:
                    _sum_eq_one(am, after, p1, v, (bank,), f"Use{bank}")

    for p1, p2, d, s in am.sets.same_reg:
        # hash: src read from S, dst lands in L.
        _sum_eq_one(am, after, p1, s, (Bank.S,), "SameReg.src")
        _sum_eq_one(am, before, p2, d, (Bank.L,), "SameReg.dst")


# -- K constraints (A/B occupancy) ------------------------------------------------


def _group_members_at(am: AllocModel, p: int) -> dict[str, list[str]]:
    members: dict[str, list[str]] = {}
    for q, v in am.live.exists:
        if q == p and v in am.clone_rep:
            members.setdefault(am.clone_rep[v], []).append(v)
    return members


def _build_k_constraints(am: AllocModel) -> None:
    """A ≤ 15 / B ≤ 16, counting each clone set once (Section 10)."""
    m = am.model
    clone_before = m.family("cloneBefore")
    clone_after = m.family("cloneAfter")
    capacities = {Bank.A: 15, Bank.B: 16}

    exists_by_point: dict[int, list[str]] = {}
    for p, v in am.live.exists:
        exists_by_point.setdefault(p, []).append(v)

    for p, temps in sorted(exists_by_point.items()):
        groups: dict[str, list[str]] = {}
        singles: list[str] = []
        for v in sorted(temps):
            rep = am.clone_rep.get(v)
            if rep is None:
                singles.append(v)
            else:
                groups.setdefault(rep, []).append(v)
        for bank, capacity in capacities.items():
            for fam, side in ((am.before, clone_before), (am.after, clone_after)):
                if fam is am.after and p in am.sets.no_move_points:
                    continue  # After == Before there
                expr: dict[int, float] = {}
                for v in singles:
                    if bank in am.allowed(v):
                        expr[fam[(p, v, bank)]] = 1.0
                for rep, members in groups.items():
                    in_bank = [v for v in members if bank in am.allowed(v)]
                    if not in_bank:
                        continue
                    if len(in_bank) == 1:
                        expr[fam[(p, in_bank[0], bank)]] = 1.0
                        continue
                    witness = side[(p, rep, bank.value)]
                    # witness >= each member; witness <= sum of members
                    total: dict[int, float] = {witness: -1.0}
                    for v in in_bank:
                        member = fam[(p, v, bank)]
                        m.add(
                            {witness: 1.0, member: -1.0},
                            ">=",
                            0,
                            "cloneCount.lower",
                        )
                        total[member] = 1.0
                    m.add(total, ">=", 0, "cloneCount.upper")
                    expr[witness] = 1.0
                if len(expr) > capacity:
                    m.add(expr, "<=", capacity, f"K.{bank}")


# -- coloring ---------------------------------------------------------------------


def _aggregate_positions(am: AllocModel) -> dict[tuple[str, Bank], tuple[int, int]]:
    """For each aggregate member: (index within aggregate, aggregate size).

    SSA/SSU guarantee one read/write position per temp, so this map is
    well defined (conflicting positions would make coloring infeasible —
    exactly what Sections 9-10 argue).
    """
    out: dict[tuple[str, Bank], tuple[int, int]] = {}
    for bank, aggregates in (
        (Bank.L, am.sets.def_l),
        (Bank.LD, am.sets.def_ld),
        (Bank.S, am.sets.use_s),
        (Bank.SD, am.sets.use_sd),
    ):
        for _, _, names in aggregates:
            for k, v in enumerate(names):
                key = (v, bank)
                if key in out and out[key] != (k, len(names)):
                    raise AllocError(
                        f"temp '{v}' used at conflicting aggregate "
                        f"positions in bank {bank}; program is not in "
                        "SSA/SSU form"
                    )
                out[key] = (k, len(names))
    return out


def _build_color_constraints(am: AllocModel) -> None:
    m = am.model
    color = m.family("Color")
    am.color = color
    positions = _aggregate_positions(am)

    colorable: list[tuple[str, Bank]] = []
    for v in am.graph.temps():
        for b in am.colorable_banks(v):
            colorable.append((v, b))

    # A color must exist for a temporary that can live in a transfer bank.
    for v, b in colorable:
        m.add_sum_eq(
            [color[(v, b, r)] for r in range(XFER_SIZE)], 1, "Color.exists"
        )

    # Redundant position constraints (speed): member k of an aggregate of
    # size n can only have colors k .. 8-n+k.
    if am.options.redundant_position_constraints:
        for (v, b), (k, n) in positions.items():
            for r in range(XFER_SIZE):
                if r < k or r > XFER_SIZE - n + k:
                    m.add({color[(v, b, r)]: 1.0}, "==", 0, "Color.position")

    # Aggregate adjacency: consecutive members get consecutive colors.
    for bank, aggregates in (
        (Bank.L, am.sets.def_l),
        (Bank.LD, am.sets.def_ld),
        (Bank.S, am.sets.use_s),
        (Bank.SD, am.sets.use_sd),
    ):
        for _, _, names in aggregates:
            for v1, v2 in zip(names, names[1:]):
                for r in range(XFER_SIZE):
                    if r + 1 < XFER_SIZE:
                        m.add(
                            {
                                color[(v1, bank, r)]: 1.0,
                                color[(v2, bank, r + 1)]: -1.0,
                            },
                            "==",
                            0,
                            "Color.adjacent",
                        )
                    else:
                        m.add(
                            {color[(v1, bank, r)]: 1.0},
                            "==",
                            0,
                            "Color.adjacent-end",
                        )

    # Same register number across banks (hash etc., Section 9).
    for _, _, d, s in am.sets.same_reg:
        for r in range(XFER_SIZE):
            m.add(
                {color[(d, Bank.L, r)]: 1.0, color[(s, Bank.S, r)]: -1.0},
                "==",
                0,
                "SameReg.color",
            )

    _build_interference_constraints(am, colorable)


def _shared_live_points(am: AllocModel, v1: str, v2: str) -> list[int]:
    points_v1 = {p for p, v in am.live.exists if v == v1}
    points_v2 = {p for p, v in am.live.exists if v == v2}
    return sorted(points_v1 & points_v2)


def _build_interference_constraints(am: AllocModel, colorable) -> None:
    """Interfering temporaries simultaneously in one transfer bank must
    not share a color (Section 9)."""
    m = am.model
    color = am.color
    pairs = liveness.interference_pairs(am.live, am.clone_rep)
    colorable_set = set(colorable)
    both = m.family("BothIn")

    # Cache exists-points per temp for speed.
    points_of: dict[str, set[int]] = {}
    for p, v in am.live.exists:
        points_of.setdefault(v, set()).add(p)

    for v1, v2 in sorted(pairs):
        for b in XFER:
            if (v1, b) not in colorable_set or (v2, b) not in colorable_set:
                continue
            shared = sorted(points_of[v1] & points_of[v2])
            if not shared:
                continue
            if am.options.interference_encoding == "direct":
                for p in shared:
                    for fam in (am.before, am.after):
                        if fam is am.after and p in am.sets.no_move_points:
                            continue
                        k1 = fam.get((p, v1, b))
                        k2 = fam.get((p, v2, b))
                        if k1 is None or k2 is None:
                            continue
                        for r in range(XFER_SIZE):
                            m.add(
                                {
                                    k1: 1.0,
                                    k2: 1.0,
                                    color[(v1, b, r)]: 1.0,
                                    color[(v2, b, r)]: 1.0,
                                },
                                "<=",
                                3,
                                "Interfere.direct",
                            )
                continue
            # Compact encoding: one witness for "both in bank b at some
            # shared point".
            witness = both[(v1, v2, b.value)]
            for p in shared:
                for fam in (am.before, am.after):
                    if fam is am.after and p in am.sets.no_move_points:
                        continue
                    k1 = fam.get((p, v1, b))
                    k2 = fam.get((p, v2, b))
                    if k1 is None or k2 is None:
                        continue
                    m.add(
                        {k1: 1.0, k2: 1.0, witness: -1.0},
                        "<=",
                        1,
                        "Interfere.witness",
                    )
            for r in range(XFER_SIZE):
                m.add(
                    {
                        color[(v1, b, r)]: 1.0,
                        color[(v2, b, r)]: 1.0,
                        witness: 1.0,
                    },
                    "<=",
                    2,
                    "Interfere.color",
                )


# -- clones ------------------------------------------------------------------------


def _build_clone_constraints(am: AllocModel) -> None:
    m = am.model
    for p1, p2, d, s in am.sets.clones:
        banks = sorted(am.allowed(d) | am.allowed(s), key=lambda b: b.value)
        for b in banks:
            b_var = am.before.get((p2, d, b))
            a_var = am.after.get((p1, s, b))
            if b_var is None and a_var is None:
                continue
            expr: dict[int, float] = {}
            if b_var is not None:
                expr[b_var] = 1.0
            if a_var is not None:
                expr[a_var] = expr.get(a_var, 0.0) - 1.0
            m.add(expr, "==", 0, "Clone.location")
        # Color agreement where the clone starts in a transfer bank.
        for b in XFER:
            b_var = am.before.get((p2, d, b))
            if b_var is None:
                continue
            if b not in am.colorable_banks(d) or b not in am.colorable_banks(s):
                continue
            for r in range(XFER_SIZE):
                cd = am.color[(d, b, r)]
                cs = am.color[(s, b, r)]
                m.add(
                    {cd: 1.0, cs: -1.0, b_var: 1.0}, "<=", 1, "Clone.color"
                )
                m.add(
                    {cs: 1.0, cd: -1.0, b_var: 1.0}, "<=", 1, "Clone.color"
                )


# -- spare registers for spills in L and S ---------------------------------------------


def _spill_moves_needing_spare(
    am: AllocModel, p: int, v: str
) -> dict[Bank, list[int]]:
    """Moves at point p of temp v that transiently need a register in
    S (store path) or L (load path)."""
    out: dict[Bank, list[int]] = {Bank.S: [], Bank.L: []}
    if p in am.sets.no_move_points:
        return out
    banks = am.allowed(v)
    for b1 in banks:
        for b2 in banks:
            if b1 == b2:
                continue
            key = (p, v, b1, b2)
            var = am.move.get(key)
            if var is None:
                continue
            # Store path passes through S when the source can feed the
            # ALU and the value must reach memory (M) or come back (L).
            if b1 in (Bank.A, Bank.B, Bank.L, Bank.LD) and b2 in (Bank.M, Bank.L):
                out[Bank.S].append(var)
            # Load path passes through L when pulling out of M to a
            # non-L destination.
            if b1 is Bank.M and b2 is not Bank.L:
                out[Bank.L].append(var)
    return out


def _build_spare_register_constraints(am: AllocModel) -> None:
    """colorAvail / needsSpill for banks L and S (Section 9)."""
    m = am.model
    occupied = m.family("colorAvail")
    needs_spill = m.family("needsSpill")

    exists_by_point: dict[int, list[str]] = {}
    for p, v in am.live.exists:
        exists_by_point.setdefault(p, []).append(v)

    for p, temps in sorted(exists_by_point.items()):
        for bank in (Bank.L, Bank.S):
            occupants = [
                v for v in sorted(temps) if bank in am.colorable_banks(v)
            ]
            spare_movers: list[int] = []
            for v in sorted(temps):
                spare_movers.extend(
                    _spill_moves_needing_spare(am, p, v)[bank]
                )
            if not spare_movers:
                continue  # no spare needed at p: skip the whole family
            ns = needs_spill[(p, bank.value)]
            for var in spare_movers:
                m.add({ns: 1.0, var: -1.0}, ">=", 0, "needsSpill.lower")
            if am.options.tighten_needs_spill:
                expr = {var: 1.0 for var in spare_movers}
                expr[ns] = -1.0
                m.add(expr, ">=", 0, "needsSpill.upper")
            if not occupants:
                continue
            row = []
            for r in range(XFER_SIZE):
                occ = occupied[(p, bank.value, r)]
                row.append(occ)
                for v in occupants:
                    b_var = am.before.get((p, v, bank))
                    if b_var is None:
                        continue
                    m.add(
                        {
                            am.color[(v, bank, r)]: 1.0,
                            b_var: 1.0,
                            occ: -1.0,
                        },
                        "<=",
                        1,
                        "colorAvail",
                    )
            expr = {var: 1.0 for var in row}
            expr[ns] = 1.0
            m.add(expr, "<=", XFER_SIZE, "K.xfer")


# -- objective -------------------------------------------------------------------------


def _build_objective(am: AllocModel) -> None:
    m = am.model
    clone_move = m.family("cloneMove")
    coeffs: dict[int, float] = {}

    # Group moves: charge once per (point, group, b1, b2).
    group_movers: dict[tuple[int, str, Bank, Bank], list[int]] = {}

    for (p, v, b1, b2), var in am.move.items():
        if b1 == b2:
            continue
        weight = am.weights[p]
        cost = am.move_cost(v, b1, b2)
        if b1 is Bank.B:
            cost *= am.options.a_bank_bias
        rep = am.clone_rep.get(v)
        if rep is None:
            coeffs[var] = coeffs.get(var, 0.0) + weight * cost
        else:
            group_movers.setdefault((p, rep, b1, b2), []).append(var)

    for (p, rep, b1, b2), vars_ in sorted(
        group_movers.items(), key=lambda kv: (kv[0][0], kv[0][1], kv[0][2].value, kv[0][3].value)
    ):
        weight = am.weights[p]
        cost = am.move_cost(rep, b1, b2) if rep in am.const_temps else am.costs.cost(b1, b2)
        if b1 is Bank.B:
            cost *= am.options.a_bank_bias
        if len(vars_) == 1:
            coeffs[vars_[0]] = coeffs.get(vars_[0], 0.0) + weight * cost
            continue
        witness = clone_move[(p, rep, b1.value, b2.value)]
        for var in vars_:
            m.add({witness: 1.0, var: -1.0}, ">=", 0, "cloneMove")
        coeffs[witness] = coeffs.get(witness, 0.0) + weight * cost

    m.minimize(coeffs)


# -- solution summary ------------------------------------------------------------------


@dataclass
class AllocSolution:
    """Decoded high-level facts of an ILP solution."""

    banks_before: dict[tuple[int, str], Bank]
    banks_after: dict[tuple[int, str], Bank]
    moves: list[tuple[int, str, Bank, Bank]]
    colors: dict[tuple[str, Bank], int]
    spills: int
    move_count: int


def extract_solution(am: AllocModel, solution) -> AllocSolution:
    banks_before: dict[tuple[int, str], Bank] = {}
    banks_after: dict[tuple[int, str], Bank] = {}
    for (p, v, b), var in am.before.items():
        if solution.is_one(var):
            banks_before[(p, v)] = b
    for (p, v, b), var in am.after.items():
        if solution.is_one(var):
            banks_after[(p, v)] = b
    moves = []
    spills = 0
    for (p, v, b1, b2), var in am.move.items():
        if b1 != b2 and solution.is_one(var):
            moves.append((p, v, b1, b2))
            if b2 is Bank.M:
                spills += 1
    colors = {}
    for (v, b, r), var in am.color.items():
        if solution.is_one(var):
            colors[(v, b)] = r
    return AllocSolution(
        banks_before, banks_after, sorted(moves), colors, spills, len(moves)
    )
