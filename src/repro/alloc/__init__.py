"""The paper's register allocator (Sections 5-10) and companions.

- :mod:`repro.alloc.liveness` — Exists/Copy set construction (§5.2),
- :mod:`repro.alloc.frequency` — static frequency estimation (§7),
- :mod:`repro.alloc.pruning` — the §8 variable-count reduction,
- :mod:`repro.alloc.ilpmodel` — the ILP model (§5, §6, §9, §10),
- :mod:`repro.alloc.decode` — ILP solution → physical flowgraph,
- :mod:`repro.alloc.abcolor` — A/B graph coloring with coalescing (§9),
- :mod:`repro.alloc.verify` — independent legality checker,
- :mod:`repro.alloc.baseline` — heuristic comparator allocator,
- :mod:`repro.alloc.remat` — the §12 constant-rematerialization extension.
"""

from repro.alloc.allocator import AllocOptions, AllocResult, allocate

__all__ = ["AllocOptions", "AllocResult", "allocate"]
