"""Heuristic baseline allocator (the non-ILP comparator).

This models what a conventional compiler (or careful hand assembly
without global planning — the paper's "state of the art ... (a very
quirky) assembly") does on the IXP:

- every value loaded from memory is *drained* out of the transfer bank
  into a general-purpose register immediately after the read;
- every value stored to memory is *staged* into a write-transfer
  register immediately before the write;
- transfer registers are always used from index 0 upward (no global
  planning of aggregate placement — legal because everything drains
  immediately, but it costs a move per aggregate member);
- general registers are assigned by greedy graph coloring over A and B;
  when the 31 available GPRs run out, the highest-degree temporaries are
  spilled to scratch.

The interesting comparison against the ILP allocator is the number of
register-register moves and spills: the ILP keeps values *in* transfer
banks across their uses whenever the datapaths allow, the baseline
cannot.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import AllocError
from repro.ixp import isa
from repro.ixp.banks import Bank, READ_BANK, WRITE_BANK
from repro.ixp.flowgraph import Block, FlowGraph
from repro.alloc import liveness

#: GPR colors: A0..A14 plus B0..B15 (A15 stays the spare, as in the ILP).
_GPR_COLORS = [(Bank.A, i) for i in range(15)] + [
    (Bank.B, i) for i in range(16)
]


@dataclass
class BaselineResult:
    physical: FlowGraph | None
    moves: int
    spills: int
    drained_reads: int
    staged_writes: int
    stats: dict = field(default_factory=dict)


def allocate_baseline(graph: FlowGraph) -> BaselineResult:
    """Allocate ``graph`` with the drain/stage heuristic."""
    staged, moves, drains, stages = _stage_transfers(graph)
    coloring, spills = _color_gprs(staged)
    physical = _rewrite(staged, coloring) if spills == 0 else None
    return BaselineResult(
        physical=physical,
        moves=moves,
        spills=spills,
        drained_reads=drains,
        staged_writes=stages,
    )


def _stage_transfers(graph: FlowGraph):
    """Insert drain/stage moves around memory, halting at a new graph.

    Transfer-register placement after this pass is trivial: member k of
    every aggregate sits at index k, hash uses index 7.
    """
    new_blocks: dict[str, Block] = {}
    moves = 0
    drains = 0
    stages = 0
    counter = [0]

    def fresh(prefix: str) -> isa.Temp:
        counter[0] += 1
        return isa.Temp(f"{prefix}%{counter[0]}")

    # Map: xfer temp name -> PhysReg, fixed at creation.
    xfer_assignment: dict[str, isa.PhysReg] = {}

    for label, block in graph.blocks.items():
        out: list[isa.Instr] = []
        for instr in block.instrs:
            if isinstance(instr, isa.MemOp) and instr.direction == "read":
                bank = READ_BANK[instr.space]
                landing = []
                for k, reg in enumerate(instr.regs):
                    t = fresh("xin")
                    xfer_assignment[t.name] = isa.PhysReg(bank, k)
                    landing.append(t)
                out.append(
                    isa.MemOp(instr.space, "read", instr.addr, tuple(landing))
                )
                for t, reg in zip(landing, instr.regs):
                    out.append(isa.Move(reg, t))
                    moves += 1
                    drains += 1
            elif isinstance(instr, isa.MemOp):
                bank = WRITE_BANK[instr.space]
                staged_regs = []
                for k, reg in enumerate(instr.regs):
                    t = fresh("xout")
                    xfer_assignment[t.name] = isa.PhysReg(bank, k)
                    out.append(isa.Move(t, reg))
                    moves += 1
                    stages += 1
                    staged_regs.append(t)
                out.append(
                    isa.MemOp(
                        instr.space, "write", instr.addr, tuple(staged_regs)
                    )
                )
            elif isinstance(instr, isa.HashInstr):
                src_t = fresh("xout")
                dst_t = fresh("xin")
                xfer_assignment[src_t.name] = isa.PhysReg(Bank.S, 7)
                xfer_assignment[dst_t.name] = isa.PhysReg(Bank.L, 7)
                out.append(isa.Move(src_t, instr.src))
                out.append(isa.HashInstr(dst_t, src_t))
                out.append(isa.Move(instr.dst, dst_t))
                moves += 2
            elif isinstance(instr, isa.Clone):
                out.append(isa.Move(instr.dst, instr.src))
                moves += 1
            else:
                out.append(instr)
        new_blocks[label] = Block(label, out)

    staged = FlowGraph(graph.entry, new_blocks, graph.inputs)
    staged.xfer_assignment = xfer_assignment  # type: ignore[attr-defined]
    return staged, moves, drains, stages


def _color_gprs(graph: FlowGraph):
    """Greedy-color the non-transfer temps over A/B; count failures.

    Besides liveness interference, the two register operands of one ALU
    instruction must come from *different* banks (Figure 1), which the
    coloring honours with bank-difference edges.
    """
    xfer = getattr(graph, "xfer_assignment", {})
    info = liveness.analyze(graph)
    neighbors: dict[str, set[str]] = {}
    for live in info.live_at.values():
        gpr_live = [v for v in live if v not in xfer]
        for v in gpr_live:
            neighbors.setdefault(v, set()).update(
                w for w in gpr_live if w != v
            )
    for temp in graph.temps():
        if temp not in xfer:
            neighbors.setdefault(temp, set())

    # A definition writes its register even when the result is dead (a
    # drained-but-unused memory word, for instance), so the destination
    # interferes with everything live across the instruction — liveness
    # sets alone would give a dead destination an empty range and let
    # the coloring overlap it with a live value it then clobbers.
    for label, block in graph.blocks.items():
        live = set(info.live_exit[label])
        for instr in reversed(block.instrs):
            defs = {r.name for r in instr.defs() if isinstance(r, isa.Temp)}
            uses = {r.name for r in instr.uses() if isinstance(r, isa.Temp)}
            for dst in defs:
                if dst in xfer:
                    continue
                for w in live:
                    if w == dst or w in xfer:
                        continue
                    neighbors.setdefault(dst, set()).add(w)
                    neighbors.setdefault(w, set()).add(dst)
            live = (live - defs) | uses

    # Every input occupies a register at program entry — including ones
    # the program never reads, whose live range is otherwise empty.  They
    # interfere pairwise and with everything live into the entry block;
    # without these edges the coloring can overlap a dead input with a
    # live one, and whoever preloads the input registers clobbers it.
    entry_live = set(info.live_entry.get(graph.entry, set()))
    gpr_inputs = [v for v in graph.inputs if v not in xfer]
    for v in gpr_inputs:
        others = {
            w
            for w in (set(gpr_inputs) | entry_live)
            if w != v and w not in xfer
        }
        neighbors.setdefault(v, set()).update(others)
        for w in others:
            neighbors.setdefault(w, set()).add(v)

    diff_bank: dict[str, set[str]] = {}
    for _, _, instr in graph.instructions():
        operands = [
            r.name
            for r in instr.uses()
            if isinstance(r, isa.Temp) and r.name not in xfer
        ]
        if isinstance(instr, (isa.Alu, isa.BrCmp)) and len(operands) == 2:
            a, b = operands
            if a != b:
                diff_bank.setdefault(a, set()).add(b)
                diff_bank.setdefault(b, set()).add(a)

    order = sorted(neighbors, key=lambda v: (-len(neighbors[v]), v))
    coloring: dict[str, isa.PhysReg] = {}
    spills = 0
    for temp in order:
        taken = {
            (coloring[w].bank, coloring[w].index)
            for w in neighbors[temp]
            if w in coloring
        }
        banned_banks = {
            coloring[w].bank
            for w in diff_bank.get(temp, ())
            if w in coloring
        }
        for bank, index in _GPR_COLORS:
            if bank in banned_banks:
                continue
            if (bank, index) not in taken:
                coloring[temp] = isa.PhysReg(bank, index)
                break
        else:
            spills += 1
    coloring.update({name: reg for name, reg in xfer.items()})
    return coloring, spills


def _rewrite(graph: FlowGraph, coloring: dict[str, isa.PhysReg]) -> FlowGraph:
    def phys(reg):
        if isinstance(reg, isa.Temp):
            try:
                return coloring[reg.name]
            except KeyError:
                raise AllocError(f"baseline: no register for {reg}") from None
        return reg

    new_blocks = {}
    for label, block in graph.blocks.items():
        instrs = []
        for instr in block.instrs:
            mapped = instr.map_regs(phys)
            if isinstance(mapped, isa.Move) and mapped.dst == mapped.src:
                continue
            instrs.append(mapped)
        new_blocks[label] = Block(label, instrs)
    physical = FlowGraph(graph.entry, new_blocks, graph.inputs)
    physical.validate()
    return physical


def baseline_input_locations(
    graph: FlowGraph, result: BaselineResult
) -> dict[str, tuple]:
    """Input temp → physical location, mirroring the ILP decode result."""
    if result.physical is None:
        return {}
    # Inputs keep whatever GPR the coloring gave them.
    coloring: dict[str, isa.PhysReg] = {}
    # Recover the coloring by re-running (cheap for our sizes).
    staged, _, _, _ = _stage_transfers(graph)
    colors, _ = _color_gprs(staged)
    for name in graph.inputs:
        reg = colors.get(name)
        if reg is not None:
            coloring[name] = reg
    return {name: ("reg", reg) for name, reg in coloring.items()}
