"""Static execution-frequency estimation (paper Section 7).

"For each point we compute a static frequency estimation based on loop
nesting and branch probabilities using the Dempster-Shafer theory to
combine probabilities.  (Our own variation of the Wu-Larus frequency
estimation can cope with irreducible flowgraphs.)"

We implement branch-prediction heuristics in the style of Ball-Larus /
Wu-Larus, combined with Dempster-Shafer evidence combination, and obtain
block frequencies by fixpoint propagation — which converges on arbitrary
(including irreducible) flowgraphs because every cycle's probability
product is bounded below 1.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.ixp import isa
from repro.ixp.flowgraph import FlowGraph

#: Probability that a loop back edge is taken (Wu-Larus LBH: 88%).
LOOP_BRANCH_PROB = 0.88
#: Probability that a pointer/equality guard fails (Wu-Larus OH: 84% for
#: `ne`, i.e. comparisons against a constant are usually unequal).
OPCODE_EQ_PROB = 0.16
#: Iterations of the frequency fixpoint.
MAX_ITERATIONS = 200


def dempster_shafer(p1: float, p2: float) -> float:
    """Combine two probability estimates for the same event (Section 7).

    This is the two-hypothesis Dempster-Shafer combination rule used by
    Wu and Larus to merge independent branch heuristics.
    """
    denominator = p1 * p2 + (1.0 - p1) * (1.0 - p2)
    if denominator == 0.0:
        return 0.5
    return p1 * p2 / denominator


def _back_edges(graph: FlowGraph) -> set[tuple[str, str]]:
    """Edges (u, v) where v is an ancestor of u in the DFS tree."""
    color: dict[str, int] = {}
    back: set[tuple[str, str]] = set()

    def dfs(root: str) -> None:
        stack: list[tuple[str, iter]] = [(root, iter(graph.blocks[root].successors()))]
        color[root] = 1
        while stack:
            node, it = stack[-1]
            advanced = False
            for succ in it:
                if color.get(succ, 0) == 0:
                    color[succ] = 1
                    stack.append((succ, iter(graph.blocks[succ].successors())))
                    advanced = True
                    break
                if color.get(succ) == 1:
                    back.add((node, succ))
            if not advanced:
                color[node] = 2
                stack.pop()

    dfs(graph.entry)
    for label in graph.blocks:
        if color.get(label, 0) == 0:
            dfs(label)
    return back


def _scc_ids(graph: FlowGraph) -> dict[str, int]:
    """Strongly connected component id per block (iterative Tarjan)."""
    index: dict[str, int] = {}
    lowlink: dict[str, int] = {}
    on_stack: set[str] = set()
    stack: list[str] = []
    component: dict[str, int] = {}
    counter = [0]
    comp_id = [0]

    def connect(root: str) -> None:
        work = [(root, iter(graph.blocks[root].successors()))]
        index[root] = lowlink[root] = counter[0]
        counter[0] += 1
        stack.append(root)
        on_stack.add(root)
        while work:
            node, it = work[-1]
            advanced = False
            for succ in it:
                if succ not in index:
                    index[succ] = lowlink[succ] = counter[0]
                    counter[0] += 1
                    stack.append(succ)
                    on_stack.add(succ)
                    work.append((succ, iter(graph.blocks[succ].successors())))
                    advanced = True
                    break
                if succ in on_stack:
                    lowlink[node] = min(lowlink[node], index[succ])
            if advanced:
                continue
            work.pop()
            if work:
                parent = work[-1][0]
                lowlink[parent] = min(lowlink[parent], lowlink[node])
            if lowlink[node] == index[node]:
                while True:
                    member = stack.pop()
                    on_stack.discard(member)
                    component[member] = comp_id[0]
                    if member == node:
                        break
                comp_id[0] += 1

    for label in graph.blocks:
        if label not in index:
            connect(label)
    return component


def branch_probabilities(graph: FlowGraph) -> dict[tuple[str, str], float]:
    """Taken-probability for each CFG edge."""
    back = _back_edges(graph)
    scc = _scc_ids(graph)
    scc_sizes: dict[int, int] = {}
    for cid in scc.values():
        scc_sizes[cid] = scc_sizes.get(cid, 0) + 1

    def stays_in_loop(src: str, dst: str) -> bool:
        # The edge continues a loop if both ends are in one non-trivial
        # SCC (the branch can eventually be reached again).
        if scc[src] != scc[dst]:
            return False
        if scc_sizes[scc[src]] > 1:
            return True
        return src == dst  # self loop

    probs: dict[tuple[str, str], float] = {}
    for label, block in graph.blocks.items():
        succs = block.successors()
        if len(succs) <= 1:
            for succ in succs:
                probs[(label, succ)] = 1.0
            continue
        then_t, else_t = succs
        if then_t == else_t:
            # Degenerate conditional: both arms reach the same block, so
            # the edge is taken with certainty (writing p and 1-p into
            # one dict slot would otherwise lose half the flow — or,
            # with the duplicate predecessor, double it).
            probs[(label, then_t)] = 1.0
            continue
        # Collect heuristic evidence for "then edge taken".
        estimates: list[float] = []
        then_back = (label, then_t) in back or stays_in_loop(label, then_t)
        else_back = (label, else_t) in back or stays_in_loop(label, else_t)
        if then_back and not else_back:
            estimates.append(LOOP_BRANCH_PROB)
        elif else_back and not then_back:
            estimates.append(1.0 - LOOP_BRANCH_PROB)
        term = block.terminator
        if isinstance(term, isa.BrCmp) and isinstance(term.b, isa.Imm):
            if term.cmp == "eq":
                estimates.append(OPCODE_EQ_PROB)
            elif term.cmp == "ne":
                estimates.append(1.0 - OPCODE_EQ_PROB)
        p = 0.5
        for estimate in estimates:
            p = dempster_shafer(p, estimate) if p != 0.5 else estimate
        p = min(max(p, 0.01), 0.99)
        probs[(label, then_t)] = p
        probs[(label, else_t)] = 1.0 - p
    return probs


def block_frequencies(graph: FlowGraph) -> dict[str, float]:
    """Expected executions of each block per program run."""
    probs = branch_probabilities(graph)
    order = graph.block_order()
    preds: dict[str, list[str]] = {label: [] for label in graph.blocks}
    for label, block in graph.blocks.items():
        # Dedupe: a conditional with both arms on one block contributes
        # a single edge (whose probability already sums the arms).
        for succ in set(block.successors()):
            preds[succ].append(label)
    freq = {label: 0.0 for label in graph.blocks}
    freq[graph.entry] = 1.0
    for _ in range(MAX_ITERATIONS):
        delta = 0.0
        for label in order:
            if label == graph.entry:
                value = 1.0
            else:
                value = 0.0
            for pred in preds[label]:
                value += freq[pred] * probs.get((pred, label), 0.0)
            if label == graph.entry:
                pass
            delta = max(delta, abs(value - freq[label]))
            freq[label] = value
        if delta < 1e-9:
            break
    return freq


@dataclass
class PointWeights:
    """weight{P} of the objective function: per-point frequencies."""

    weights: dict[int, float]

    def __getitem__(self, point: int) -> float:
        return self.weights.get(point, 1.0)


def point_weights(graph: FlowGraph) -> PointWeights:
    freq = block_frequencies(graph)
    points = graph.points()
    weights: dict[int, float] = {}
    for label, block in graph.blocks.items():
        f = max(freq[label], 1e-6)
        for index in range(len(block.instrs)):
            weights[points.before(label, index)] = f
        weights[points.exit(label)] = f
    return PointWeights(weights)
