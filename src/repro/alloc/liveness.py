"""Liveness analysis over IXP flowgraphs; builds Exists and Copy.

Paper Section 5.2: for any temporary v live at a point p, (p, v) ∈
Exists; additionally, a result that is immediately dead still *exists* at
the point right after its defining instruction (it occupies a register
for an instant).  (p1, p2, v) ∈ Copy whenever v is live and carried
unchanged from p1 to p2 — including across control-flow edges, which is
how locations propagate along branches.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.ixp import isa
from repro.ixp.flowgraph import FlowGraph, PointMap


def _temp_names(regs: list[isa.Reg]) -> set[str]:
    return {r.name for r in regs if isinstance(r, isa.Temp)}


@dataclass
class Liveness:
    graph: FlowGraph
    points: PointMap
    #: live temporaries at each program point id
    live_at: dict[int, set[str]] = field(default_factory=dict)
    #: (point, temp) pairs — the paper's Exists set
    exists: set[tuple[int, str]] = field(default_factory=set)
    #: (p1, p2, temp) — the paper's Copy set
    copies: set[tuple[int, int, str]] = field(default_factory=set)
    live_entry: dict[str, set[str]] = field(default_factory=dict)
    live_exit: dict[str, set[str]] = field(default_factory=dict)

    def exists_at(self, point: int) -> set[str]:
        return {v for (p, v) in self.exists if p == point}


def analyze(graph: FlowGraph) -> Liveness:
    points = graph.points()
    info = Liveness(graph, points)

    # Block-level fixpoint.
    gen: dict[str, set[str]] = {}
    kill: dict[str, set[str]] = {}
    for label, block in graph.blocks.items():
        g: set[str] = set()
        k: set[str] = set()
        for instr in block.instrs:
            g |= _temp_names(instr.uses()) - k
            k |= _temp_names(instr.defs())
        gen[label], kill[label] = g, k
        info.live_entry[label] = set()
        info.live_exit[label] = set()

    changed = True
    while changed:
        changed = False
        for label in reversed(graph.block_order()):
            block = graph.blocks[label]
            out: set[str] = set()
            for succ in block.successors():
                out |= info.live_entry[succ]
            new_in = gen[label] | (out - kill[label])
            if out != info.live_exit[label] or new_in != info.live_entry[label]:
                info.live_exit[label] = out
                info.live_entry[label] = new_in
                changed = True

    # Per-point liveness and the Exists / Copy sets.
    for label in graph.block_order():
        block = graph.blocks[label]
        live = set(info.live_exit[label])
        info.live_at[points.exit(label)] = set(live)
        for index in range(len(block.instrs) - 1, -1, -1):
            instr = block.instrs[index]
            defs = _temp_names(instr.defs())
            uses = _temp_names(instr.uses())
            after = set(live)
            live = (live - defs) | uses
            info.live_at[points.before(label, index)] = set(live)
            p1 = points.before(label, index)
            p2 = points.after(label, index)
            # Exists: everything live, plus immediately-dead results.
            for v in live:
                info.exists.add((p1, v))
            for v in after | defs:
                info.exists.add((p2, v))
            # Copy: carried unchanged across the instruction.
            for v in live & after - defs:
                info.copies.add((p1, p2, v))

    # Copy across control-flow edges: the point after a branch connects
    # to all points at the targets (Section 5.2).
    for label, block in graph.blocks.items():
        exit_p = points.exit(label)
        for succ in block.successors():
            entry_p = points.entry(succ)
            for v in info.live_entry[succ]:
                info.copies.add((exit_p, entry_p, v))

    return info


def interference_pairs(
    info: Liveness, same_clone: dict[str, str] | None = None
) -> set[tuple[str, str]]:
    """Pairs of temporaries simultaneously live at some point.

    ``same_clone`` maps each temp to its clone-group representative;
    temps of one group never interfere (paper Section 10).
    """
    same_clone = same_clone or {}
    pairs: set[tuple[str, str]] = set()
    for live in info.live_at.values():
        ordered = sorted(live)
        for i, v1 in enumerate(ordered):
            for v2 in ordered[i + 1 :]:
                if same_clone.get(v1, v1) == same_clone.get(v2, v2):
                    continue
                pairs.add((v1, v2))
    return pairs
