"""Independent verification of allocated code.

Three layers of checking:

1. **Solution replay** — :func:`check_solution` re-derives the paper's
   constraint families (one place only, copy propagation, operand/result
   banks, K capacities, aggregate adjacency, SameReg, clone location
   agreement) directly from the flowgraph and asserts the extracted ILP
   solution satisfies each one — independently of the model builder that
   produced the constraints.
2. **Static datapaths** — the simulator's physical mode traps every
   Figure 1 violation (ALU bank legality, aggregate adjacency,
   transfer-bank isolation, hash SameReg, register bounds).
3. **Dynamic equivalence** — :func:`check_equivalence` runs the virtual
   (pre-allocation) and physical (post-allocation) graphs on the same
   inputs and memory image and requires identical halt values and memory
   contents (ignoring the reserved spill region).

Together these make the ILP model, the decoder and the A/B coloring
mutually accountable.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import SimulatorError
from repro.ixp.banks import Bank
from repro.ixp.flowgraph import FlowGraph
from repro.ixp.machine import Machine
from repro.ixp.memory import MemorySystem


@dataclass
class EquivalenceReport:
    ok: bool
    virtual_results: list
    physical_results: list
    detail: str = ""


def _run(
    graph: FlowGraph,
    physical: bool,
    inputs: dict,
    memory: MemorySystem,
    iterations: int = 1,
) -> list:
    def provider(tid: int, iteration: int):
        if iteration >= iterations:
            return None
        return dict(inputs)

    machine = Machine(
        graph,
        memory=memory,
        threads=1,
        physical=physical,
        input_provider=provider,
    )
    result = machine.run()
    return [values for _, values in result.results]


def check_equivalence(
    virtual: FlowGraph,
    physical: FlowGraph,
    virtual_inputs: dict[str, int],
    input_locations: dict[str, tuple],
    memory_image: dict[str, list[tuple[int, list[int]]]] | None = None,
    spill_region: tuple[int, int] | None = None,
    iterations: int = 1,
) -> EquivalenceReport:
    """Run both graphs and compare results and memory.

    ``memory_image`` maps space name to (addr, words) preload chunks.
    ``spill_region`` is a scratch (start, length) window excluded from
    the comparison (the physical code's spill slots live there).
    """
    mem_v = MemorySystem.create()
    mem_p = MemorySystem.create()
    for mem in (mem_v, mem_p):
        for space, chunks in (memory_image or {}).items():
            for addr, words in chunks:
                mem[space].load_words(addr, words)

    physical_inputs: dict = {}
    for name, value in virtual_inputs.items():
        loc = input_locations.get(name)
        if loc is None:
            continue  # unused input
        kind, where = loc
        if kind == "reg":
            physical_inputs[(where.bank, where.index)] = value
        else:
            mem_p["scratch"].load_words(where, [value])

    try:
        virtual_out = _run(virtual, False, virtual_inputs, mem_v, iterations)
        physical_out = _run(physical, True, physical_inputs, mem_p, iterations)
    except SimulatorError as exc:
        return EquivalenceReport(False, [], [], f"simulator trap: {exc}")

    if virtual_out != physical_out:
        return EquivalenceReport(
            False,
            virtual_out,
            physical_out,
            "halt values differ",
        )

    for space in ("sram", "sdram", "scratch"):
        words_v = dict(mem_v[space].words)
        words_p = dict(mem_p[space].words)
        if space == "scratch" and spill_region is not None:
            lo, hi = spill_region[0], spill_region[0] + spill_region[1]
            words_p = {a: w for a, w in words_p.items() if not lo <= a < hi}
        # Ignore zero-valued cells (reads return 0 for untouched cells).
        words_v = {a: w for a, w in words_v.items() if w != 0}
        words_p = {a: w for a, w in words_p.items() if w != 0}
        if words_v != words_p:
            return EquivalenceReport(
                False,
                virtual_out,
                physical_out,
                f"{space} contents differ",
            )
    return EquivalenceReport(True, virtual_out, physical_out)


# --------------------------------------------------------------------------
# Layer 1: replay the paper's constraints against an extracted solution
# --------------------------------------------------------------------------


@dataclass
class SolutionReport:
    violations: list[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.violations

    def add(self, message: str) -> None:
        self.violations.append(message)


def check_solution(am, solution) -> SolutionReport:
    """Replay Sections 5-10 constraint families against a solution.

    ``am`` is the :class:`repro.alloc.ilpmodel.AllocModel` and
    ``solution`` the :class:`repro.alloc.ilpmodel.AllocSolution`
    extracted from the solver output.  The checks re-derive every rule
    from the flowgraph itself, so a bug in the model builder cannot hide
    in both places.
    """
    report = SolutionReport()
    before = solution.banks_before
    after = solution.banks_after
    live = am.live

    # In one place only: every existing (point, temp) has exactly one
    # Before bank and one After bank.
    for p, v in sorted(live.exists):
        if (p, v) not in before:
            report.add(f"no Before bank for {v} at point {p}")
        if (p, v) not in after:
            report.add(f"no After bank for {v} at point {p}")

    # Copy propagation: carried temporaries keep their location.
    for p1, p2, v in sorted(live.copies):
        a = after.get((p1, v))
        b = before.get((p2, v))
        if a is not None and b is not None and a != b:
            report.add(f"copy broken: {v} is {a} after {p1}, {b} before {p2}")

    sets = am.sets
    alu_in = {Bank.A, Bank.B, Bank.L, Bank.LD}
    alu_out = {Bank.A, Bank.B, Bank.S, Bank.SD}

    for p1, p2, v in sets.def_abw:
        bank = before.get((p2, v))
        if bank not in alu_out:
            report.add(f"DefABW: {v} defined into {bank} at {p2}")
    for p1, p2, v in sets.def_ab:
        if before.get((p2, v)) not in (Bank.A, Bank.B):
            report.add(f"DefAB: {v} defined into {before.get((p2, v))}")
    for p1, p2, v in sets.use_reg1:
        if after.get((p1, v)) not in alu_in:
            report.add(f"UseReg1: {v} read from {after.get((p1, v))} at {p1}")
    for p1, p2, v in sets.use_addr:
        if after.get((p1, v)) not in (Bank.A, Bank.B):
            report.add(f"UseAddr: {v} addresses from {after.get((p1, v))}")
    for p1, p2, x, y in sets.arith:
        bx, by = after.get((p1, x)), after.get((p1, y))
        if bx not in alu_in or by not in alu_in:
            report.add(f"Arith: {x}/{y} in {bx}/{by} at {p1}")
        elif bx == by:
            report.add(f"Arith: both operands {x},{y} in {bx} at {p1}")
        elif {bx, by} == {Bank.L, Bank.LD}:
            report.add(f"Arith: both operands in transfer banks at {p1}")

    # Aggregates: correct bank and adjacent ascending colors.
    for bank, aggregates, side in (
        (Bank.L, sets.def_l, "def"),
        (Bank.LD, sets.def_ld, "def"),
        (Bank.S, sets.use_s, "use"),
        (Bank.SD, sets.use_sd, "use"),
    ):
        for p1, p2, names in aggregates:
            colors = []
            for v in names:
                location = (
                    before.get((p2, v)) if side == "def" else after.get((p1, v))
                )
                if location is not bank:
                    report.add(f"aggregate member {v} in {location}, not {bank}")
                color = solution.colors.get((v, bank))
                if color is None:
                    report.add(f"aggregate member {v} has no {bank} color")
                else:
                    colors.append(color)
            if colors and colors != list(
                range(colors[0], colors[0] + len(colors))
            ):
                report.add(f"aggregate {names} colors not adjacent: {colors}")

    # SameReg (hash): equal register numbers across L and S.
    for p1, p2, d, s in sets.same_reg:
        cd = solution.colors.get((d, Bank.L))
        cs = solution.colors.get((s, Bank.S))
        if cd != cs:
            report.add(f"SameReg: hash {d}/{s} colors {cd}/{cs}")

    # Clones agree on location (and transfer color) at the clone point.
    for p1, p2, d, s in sets.clones:
        bd = before.get((p2, d))
        bs = after.get((p1, s))
        if bd != bs:
            report.add(f"clone {d}={s}: banks {bd}/{bs} at clone point")
        elif bd in (Bank.L, Bank.S, Bank.LD, Bank.SD):
            if solution.colors.get((d, bd)) != solution.colors.get((s, bd)):
                report.add(f"clone {d}={s}: colors differ in {bd}")

    # K capacities per point, counting clone groups once.
    exists_by_point: dict[int, list[str]] = {}
    for p, v in live.exists:
        exists_by_point.setdefault(p, []).append(v)
    capacities = {Bank.A: 15, Bank.B: 16, Bank.L: 8, Bank.S: 8, Bank.LD: 8, Bank.SD: 8}
    for p, temps in exists_by_point.items():
        for table, name in ((before, "before"), (after, "after")):
            for bank, capacity in capacities.items():
                occupants = {
                    am.clone_rep.get(v, v)
                    for v in temps
                    if table.get((p, v)) is bank
                }
                if bank in (Bank.L, Bank.S, Bank.LD, Bank.SD):
                    # Occupancy is by register number in transfer banks.
                    registers = {
                        solution.colors.get((v, bank))
                        for v in temps
                        if table.get((p, v)) is bank
                    } - {None}
                    if len(registers) > capacity:
                        report.add(
                            f"K: {len(registers)} registers of {bank} "
                            f"{name} point {p}"
                        )
                elif len(occupants) > capacity:
                    report.add(
                        f"K: {len(occupants)} temps in {bank} {name} "
                        f"point {p} (cap {capacity})"
                    )
    return report
