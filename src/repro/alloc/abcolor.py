"""Register assignment within the A and B banks (paper Section 9).

"In the work of Appel and George the program generated from the results
of integer-linear programming satisfied the K constraints, and subsequent
coloring phases were used to assign registers using a variation of the
Park and Moon optimistic coalescing.  We use the same approach for the A
and B bank..."

The ILP fixes *which bank* every temporary occupies at every point and
guarantees at most 15 (A) / 16 (B) simultaneous occupants; this phase
picks register *numbers*.  Like the transfer-bank ``Color`` variables,
assignments are point-independent: one register per (temporary, bank).

Coalescing, in Park-Moon optimistic style:

1. mandatory merges — clone-set members resident in one bank share a
   register (they are counted once by the K constraints);
2. aggressive merges — ``move`` instructions whose source and destination
   sit in the same bank are coalesced when the merged nodes do not
   interfere, making the move a no-op that the decoder deletes;
3. color greedily in max-degree-first order; if an aggressive merge makes
   the graph uncolorable, undo it (optimism) and retry.

Register A15 is reserved as the spare for parallel-copy cycles and spill
addressing, which is why the ILP's K constraint for A is 15 (Section 6).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import AllocError
from repro.ixp import isa
from repro.ixp.banks import Bank
from repro.ixp.flowgraph import FlowGraph

#: Colors usable per bank; A15 is the reserved spare.
AVAILABLE = {Bank.A: list(range(15)), Bank.B: list(range(16))}
SPARE_A = 15


@dataclass
class AbAssignment:
    """(temp, bank) → register index for the A and B banks."""

    colors: dict[tuple[str, Bank], int]
    coalesced_moves: int = 0

    def reg(self, temp: str, bank: Bank) -> int:
        return self.colors[(temp, bank)]


@dataclass
class _Node:
    temps: set[str]
    bank: Bank
    points: set[int] = field(default_factory=set)


def assign_ab_registers(
    graph: FlowGraph,
    banks_before: dict[tuple[int, str], Bank],
    banks_after: dict[tuple[int, str], Bank],
    clone_rep: dict[str, str],
) -> AbAssignment:
    """Color the A/B residencies implied by the ILP solution."""
    residency: dict[tuple[str, Bank], set[int]] = {}
    for (p, v), b in list(banks_before.items()) + list(banks_after.items()):
        if b in (Bank.A, Bank.B):
            residency.setdefault((v, b), set()).add(p)

    # Union-find over (temp, bank) nodes.
    parent: dict[tuple[str, Bank], tuple[str, Bank]] = {
        key: key for key in residency
    }

    def find(x):
        while parent[x] != x:
            parent[x] = parent[parent[x]]
            x = parent[x]
        return x

    def union(x, y) -> None:
        root_x, root_y = find(x), find(y)
        if root_x != root_y:
            parent[root_x] = root_y

    # 1. Mandatory: clone-set members in the same bank share a register.
    by_group: dict[tuple[str, Bank], list[tuple[str, Bank]]] = {}
    for v, b in residency:
        rep = clone_rep.get(v)
        if rep is not None:
            by_group.setdefault((rep, b), []).append((v, b))
    for members in by_group.values():
        for other in members[1:]:
            union(members[0], other)

    def merged_points(root) -> set[int]:
        out: set[int] = set()
        for key, pts in residency.items():
            if find(key) == root:
                out |= pts
        return out

    def interferes(root_x, root_y) -> bool:
        return bool(merged_points(root_x) & merged_points(root_y))

    # 2. Aggressive: coalesce same-bank moves.  Source and destination of
    # a move may overlap at the move's own two points (they hold the same
    # value there); overlap anywhere else is real interference.
    candidate_merges: list[
        tuple[tuple[str, Bank], tuple[str, Bank], frozenset[int]]
    ] = []
    points = graph.points()
    for label, index, instr in graph.instructions():
        if not isinstance(instr, isa.Move):
            continue
        if not isinstance(instr.dst, isa.Temp) or not isinstance(
            instr.src, isa.Temp
        ):
            continue
        p1 = points.before(label, index)
        p2 = points.after(label, index)
        src_bank = banks_after.get((p1, instr.src.name))
        dst_bank = banks_before.get((p2, instr.dst.name))
        if src_bank is None or dst_bank is None or src_bank != dst_bank:
            continue
        if src_bank not in (Bank.A, Bank.B):
            continue
        key_src = (instr.src.name, src_bank)
        key_dst = (instr.dst.name, dst_bank)
        if key_src in residency and key_dst in residency:
            candidate_merges.append((key_src, key_dst, frozenset((p1, p2))))

    # Points at which two roots may legitimately overlap: the union of
    # the connecting moves' own points (copies make the values equal).
    allowed_overlap: dict[frozenset, set[int]] = {}

    applied: list[tuple] = []
    for key_src, key_dst, move_pts in candidate_merges:
        root_s, root_d = find(key_src), find(key_dst)
        if root_s == root_d:
            applied.append((key_src, key_dst))
            continue
        pair = frozenset((root_s, root_d))
        allowed = allowed_overlap.get(pair, set()) | set(move_pts)
        overlap = merged_points(root_s) & merged_points(root_d)
        if overlap - allowed:
            allowed_overlap[pair] = allowed
            continue
        union(key_src, key_dst)
        merged_root = find(key_src)
        # Carry allowed-overlap credit into the merged node.
        for other_pair, pts in list(allowed_overlap.items()):
            if root_s in other_pair or root_d in other_pair:
                remaining = (other_pair - {root_s, root_d}) | {merged_root}
                if len(remaining) == 2:
                    key = frozenset(remaining)
                    allowed_overlap[key] = allowed_overlap.get(key, set()) | pts
        applied.append((key_src, key_dst))

    # 3. Color, optimistically undoing aggressive merges on failure.
    while True:
        coloring = _try_color(residency, find)
        if coloring is not None:
            colors = {
                key: coloring[find(key)] for key in residency
            }
            return AbAssignment(colors, coalesced_moves=len(applied))
        if not applied:
            raise AllocError(
                "A/B coloring failed despite K constraints; this "
                "indicates a bug in the ILP model"
            )
        # Undo all aggressive merges (simple but effective optimism).
        parent = {key: key for key in residency}
        for members in by_group.values():
            for other in members[1:]:
                union(members[0], other)
        applied = []


def _try_color(residency, find) -> dict | None:
    roots: dict[tuple[str, Bank], set[int]] = {}
    for key, pts in residency.items():
        root = find(key)
        roots.setdefault(root, set()).update(pts)
    order = sorted(
        roots, key=lambda r: (-len(roots[r]), r[0], r[1].value)
    )
    coloring: dict[tuple[str, Bank], int] = {}
    for root in order:
        bank = root[1]
        taken = {
            coloring[other]
            for other in coloring
            if other[1] == bank and roots[other] & roots[root]
        }
        for color in AVAILABLE[bank]:
            if color not in taken:
                coloring[root] = color
                break
        else:
            return None
    return coloring
