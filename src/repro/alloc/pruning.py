"""Static analysis reducing ILP model size (paper Section 8).

"A million variables": with 7 banks there are 49 Move variables per live
temporary per point.  The fix is a per-temporary *candidate bank* set
derived from how the temporary is defined and used:

- only temporaries defined by SDRAM reads can ever be in LD;
- only operands of SDRAM writes can ever be in SD;
- only operands of SRAM/scratch writes (or the hash source) can be in S;
- only results of SRAM/scratch reads (or the hash result, or reloads) can
  be in L;
- A, B, and the spill space M are candidates for everything.

Ruling out these banks means spills go directly {L,A,B} → M and reloads
M → {L,A,B}, which the paper notes is no loss in practice.  This module
also derives the inter-bank move cost table by shortest path over the
primitive datapaths (ALU pass, scratch store, scratch load), reproducing
the composite costs of Section 7 (e.g. A→M = move+store, A→L =
move+store+load).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.ixp import isa
from repro.ixp.banks import Bank, READ_BANK, WRITE_BANK
from repro.ixp.flowgraph import FlowGraph

INFINITE = float("inf")


@dataclass(frozen=True)
class MoveCosts:
    """Shortest-path inter-bank move costs (in mvC/ldC/stC units)."""

    mv: float
    ld: float
    st: float
    table: dict[tuple[Bank, Bank], float]

    def cost(self, src: Bank, dst: Bank) -> float:
        if src == dst:
            return 0.0
        return self.table.get((src, dst), INFINITE)

    def legal(self, src: Bank, dst: Bank) -> bool:
        return self.cost(src, dst) < INFINITE


def build_move_costs(mv: float = 1.0, ld: float = 200.0, st: float = 200.0) -> MoveCosts:
    """Floyd-Warshall over the primitive datapath edges.

    Primitive edges:
      {A,B,L,LD} → {A,B,S,SD}   (ALU pass, cost mv)
      S → M                     (scratch store, cost st)
      SD → M                    (spill via SDRAM store, cost st)
      M → L                     (scratch load, cost ld)

    LD is only reachable through an SDRAM read, never by a move, so no
    edge produces it.
    """
    banks = [Bank.A, Bank.B, Bank.L, Bank.S, Bank.LD, Bank.SD, Bank.M]
    dist: dict[tuple[Bank, Bank], float] = {}
    for src in (Bank.A, Bank.B, Bank.L, Bank.LD):
        for dst in (Bank.A, Bank.B, Bank.S, Bank.SD):
            if src != dst:
                dist[(src, dst)] = mv
    dist[(Bank.S, Bank.M)] = st
    dist[(Bank.SD, Bank.M)] = st
    dist[(Bank.M, Bank.L)] = ld
    for mid in banks:
        for src in banks:
            for dst in banks:
                if src == dst:
                    continue
                through = dist.get((src, mid), INFINITE) + dist.get(
                    (mid, dst), INFINITE
                )
                if through < dist.get((src, dst), INFINITE):
                    dist[(src, dst)] = through
    return MoveCosts(mv, ld, st, dist)


@dataclass
class Candidates:
    """Per-temporary candidate banks, plus required banks at def/use."""

    banks: dict[str, frozenset[Bank]]
    #: statistics for the pruning ablation
    total_bank_slots: int = 0

    def of(self, temp: str) -> frozenset[Bank]:
        return self.banks.get(temp, frozenset(_ALL_BANKS))


_ALL_BANKS = (Bank.A, Bank.B, Bank.L, Bank.S, Bank.LD, Bank.SD, Bank.M)


def candidate_banks(graph: FlowGraph, enabled: bool = True) -> Candidates:
    """Compute the Section 8 candidate sets (or all banks if disabled)."""
    if not enabled:
        banks = {t: frozenset(_ALL_BANKS) for t in graph.temps()}
        return Candidates(banks, sum(len(b) for b in banks.values()))

    needs: dict[str, set[Bank]] = {
        temp: {Bank.A, Bank.B, Bank.M} for temp in graph.temps()
    }

    def mark(reg: isa.Reg, bank: Bank) -> None:
        if isinstance(reg, isa.Temp):
            needs[reg.name].add(bank)

    for _, _, instr in graph.instructions():
        if isinstance(instr, isa.MemOp):
            bank = (
                READ_BANK[instr.space]
                if instr.direction == "read"
                else WRITE_BANK[instr.space]
            )
            for reg in instr.regs:
                mark(reg, bank)
        elif isinstance(instr, isa.HashInstr):
            mark(instr.dst, Bank.L)
            mark(instr.src, Bank.S)
        elif isinstance(instr, isa.Clone):
            # A clone can stand wherever its source can; unify below.
            pass

    # Clone groups share candidate sets (a clone starts in its source's
    # register and the source may satisfy any of the clone's uses).
    changed = True
    clone_pairs = [
        (instr.dst.name, instr.src.name)
        for _, _, instr in graph.instructions()
        if isinstance(instr, isa.Clone)
        and isinstance(instr.dst, isa.Temp)
        and isinstance(instr.src, isa.Temp)
    ]
    while changed:
        changed = False
        for dst, src in clone_pairs:
            merged = needs[dst] | needs[src]
            if merged != needs[dst] or merged != needs[src]:
                needs[dst] = set(merged)
                needs[src] = set(merged)
                changed = True

    banks = {temp: frozenset(b) for temp, b in needs.items()}
    return Candidates(banks, sum(len(b) for b in banks.values()))
