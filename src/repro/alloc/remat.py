"""Constant rematerialization — the paper's Section 12 extension.

"We treat every individual constant as a temporary and invent a virtual
register bank C.  C has unlimited capacity and can hold constants (but
nothing else).  A move to C represents the operation of discarding a
constant from a physical register; it has zero cost.  A move from C
represents the load operation of the corresponding constant; its cost
depends on the value of the constant."

(The paper had the AMPL model for this but "did not find the time to
complete the rest of the compiler infrastructure"; here the loop is
closed.)

Mechanics:

1. :func:`lift_constants` rewrites a selected flowgraph: ``immed``
   instructions whose value is shared (or loop-resident) are deleted and
   their uses renamed to one canonical *constant temporary* per value,
   recorded in ``graph.const_temps``.  Constants feeding memory-write
   aggregates or the hash unit keep their private ``immed`` (their
   registers are position-constrained).
2. The ILP model (``ModelOptions.remat_constants``) gives constant
   temporaries the candidate banks {C, A, B}; they start in C at the
   program entry; C→A/B moves cost the ``immed`` latency for the value
   (1 for 16-bit constants, 2 otherwise), moves into C are free, and C
   occupies no register, so the solver decides where loading pays off.
3. Decode turns C→bank moves back into ``immed`` instructions and drops
   moves into C.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.ixp import isa
from repro.ixp.flowgraph import Block, FlowGraph


def immed_cost(value: int) -> int:
    """Instruction count of loading ``value`` (paper: 1 or 2)."""
    return 1 if 0 <= value < (1 << 16) else 2


@dataclass
class RematStats:
    constants_lifted: int = 0
    immeds_removed: int = 0
    immeds_kept: int = 0


def lift_constants(graph: FlowGraph) -> tuple[FlowGraph, RematStats]:
    """Canonicalize immed-defined constants into C-bank temporaries.

    Returns a new graph whose ``const_temps`` attribute maps the
    canonical temporary names to their values.
    """
    stats = RematStats()

    # Temps whose registers are position-constrained must keep private
    # definitions (aggregate members, hash operands).
    pinned: set[str] = set()
    for _, _, instr in graph.instructions():
        if isinstance(instr, isa.MemOp):
            for reg in instr.regs:
                if isinstance(reg, isa.Temp):
                    pinned.add(reg.name)
        elif isinstance(instr, isa.HashInstr):
            for reg in (instr.src, instr.dst):
                if isinstance(reg, isa.Temp):
                    pinned.add(reg.name)

    # A temp can be canonicalized only if immed is its sole definition.
    def_count: dict[str, int] = {}
    for _, _, instr in graph.instructions():
        for reg in instr.defs():
            if isinstance(reg, isa.Temp):
                def_count[reg.name] = def_count.get(reg.name, 0) + 1

    rename: dict[str, str] = {}
    const_temps: dict[str, int] = {}
    new_blocks: dict[str, Block] = {}
    for label, block in graph.blocks.items():
        instrs: list[isa.Instr] = []
        for instr in block.instrs:
            if (
                isinstance(instr, isa.Immed)
                and isinstance(instr.dst, isa.Temp)
                and instr.dst.name not in pinned
                and def_count.get(instr.dst.name, 0) == 1
            ):
                canonical = f"const.{instr.value:#x}"
                if canonical not in const_temps:
                    const_temps[canonical] = instr.value
                    stats.constants_lifted += 1
                rename[instr.dst.name] = canonical
                stats.immeds_removed += 1
                continue
            if isinstance(instr, isa.Immed):
                stats.immeds_kept += 1
            instrs.append(instr)
        new_blocks[label] = Block(label, instrs)

    def map_reg(reg):
        if isinstance(reg, isa.Temp) and reg.name in rename:
            return isa.Temp(rename[reg.name])
        return reg

    for block in new_blocks.values():
        block.instrs = [instr.map_regs(map_reg) for instr in block.instrs]

    lifted = FlowGraph(graph.entry, new_blocks, graph.inputs)
    lifted.const_temps = const_temps  # type: ignore[attr-defined]
    lifted.validate()
    return lifted, stats


def const_temps_of(graph: FlowGraph) -> dict[str, int]:
    return getattr(graph, "const_temps", {})
