"""Top-level allocator driver: model → solve → color → decode.

Also implements the paper's *two-phase* variant (Section 11): a first
solve with an objective that merely detects whether spills are needed at
all; when none are (the common case — Figure 7 reports zero spills for
all three applications), the model is rebuilt without the M bank, which
eliminates many variables and constraints involving memory and solves
much faster (the paper reports 9s for AES vs 35.9s one-shot).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

from repro.errors import AllocError
from repro.ixp.banks import Bank
from repro.ixp.flowgraph import FlowGraph
from repro.ilp.solve import SolveOptions, solve_model
from repro.trace import ensure
from repro.alloc import abcolor, decode as decode_mod
from repro.alloc.ilpmodel import (
    AllocModel,
    AllocSolution,
    ModelOptions,
    build_model,
    extract_solution,
)


@dataclass
class AllocOptions:
    model: ModelOptions = field(default_factory=ModelOptions)
    solve: SolveOptions = field(default_factory=SolveOptions)
    two_phase: bool = False
    spill_base: int = decode_mod.SPILL_BASE


@dataclass
class AllocResult:
    physical: FlowGraph
    alloc: AllocSolution
    ab: abcolor.AbAssignment
    decoded: decode_mod.DecodeResult
    model: AllocModel
    #: Figure 7 numbers.
    variables: int
    constraints: int
    objective_terms: int
    root_seconds: float
    integer_seconds: float
    moves: int
    spills: int
    status: str
    two_phase_seconds: float | None = None

    def figure7_row(self) -> dict[str, float]:
        return {
            "root_time_s": round(self.root_seconds, 3),
            "integer_time_s": round(self.integer_seconds, 3),
            "variables_k": round(self.variables / 1000, 1),
            "constraints_k": round(self.constraints / 1000, 1),
            "objective_terms_k": round(self.objective_terms / 1000, 1),
            "moves": self.moves,
            "spills": self.spills,
        }


def allocate(
    graph: FlowGraph, options: AllocOptions | None = None, tracer=None
) -> AllocResult:
    """Run the paper's ILP-based allocation pipeline on a flowgraph."""
    options = options or AllocOptions()
    tracer = ensure(tracer)
    if options.model.remat_constants:
        from repro.alloc.remat import lift_constants

        graph, _ = lift_constants(graph)
    if options.two_phase:
        return _allocate_two_phase(graph, options, tracer)
    am = build_model(graph, options.model, tracer)
    solution = solve_model(am.model, options.solve, tracer)
    if solution.status == "infeasible":
        raise AllocError("allocation ILP is infeasible")
    return _finish(graph, am, solution, options)


def _finish(graph, am, solution, options, two_phase_seconds=None) -> AllocResult:
    alloc = extract_solution(am, solution)
    ab = abcolor.assign_ab_registers(
        graph, alloc.banks_before, alloc.banks_after, am.clone_rep
    )
    decoded = decode_mod.decode(am, alloc, ab, options.spill_base)
    stats = am.model.stats()
    return AllocResult(
        physical=decoded.graph,
        alloc=alloc,
        ab=ab,
        decoded=decoded,
        model=am,
        variables=stats["variables"],
        constraints=stats["constraints"],
        objective_terms=stats["objective_terms"],
        root_seconds=solution.root_relaxation_seconds,
        integer_seconds=solution.integer_seconds,
        moves=alloc.move_count,
        spills=alloc.spills,
        status=solution.status,
        two_phase_seconds=two_phase_seconds,
    )


def _allocate_two_phase(
    graph: FlowGraph, options: AllocOptions, tracer
) -> AllocResult:
    """Phase 1: are spills needed at all?  Phase 2: solve without M."""
    start = time.perf_counter()
    am1 = build_model(graph, options.model, tracer)
    # Replace the objective: one unit per move into the M bank.
    am1.model.objective = {}
    spill_obj = {}
    for (p, v, b1, b2), var in am1.move.items():
        if b2 is Bank.M and b1 is not Bank.M:
            spill_obj[var] = 1.0
    am1.model.minimize(spill_obj)
    phase1 = solve_model(am1.model, options.solve, tracer)
    phase1_seconds = time.perf_counter() - start
    if phase1.status == "infeasible":
        raise AllocError("allocation ILP is infeasible (phase 1)")
    needs_spills = phase1.objective > 0.5

    from dataclasses import replace

    model_opts = replace(options.model, allow_spill=needs_spills)
    am2 = build_model(graph, model_opts, tracer)
    solution = solve_model(am2.model, options.solve, tracer)
    if solution.status == "infeasible":
        raise AllocError("allocation ILP is infeasible (phase 2)")
    return _finish(graph, am2, solution, options, two_phase_seconds=phase1_seconds)
