"""Top-level allocator driver: model → solve → color → decode.

Also implements the paper's *two-phase* variant (Section 11): a first
solve with an objective that merely detects whether spills are needed at
all; when none are (the common case — Figure 7 reports zero spills for
all three applications), the model is rebuilt without the M bank, which
eliminates many variables and constraints involving memory and solves
much faster (the paper reports 9s for AES vs 35.9s one-shot).

Solver robustness is graceful degradation rather than an exception: the
chain ``highs`` → ``bnb`` → the heuristic graph-coloring allocator
(:mod:`repro.alloc.baseline`) is walked with per-stage time budgets, so
a solver timeout, numerical failure, or crash downgrades to a feasible
(if less optimal) allocation.  Every downgrade records a ``fallback``
trace span carrying the stage it moved to and the reason.  Genuinely
infeasible models still raise :class:`AllocError` — no solver can help
there, and the ablation suites depend on the diagnosis.
"""

from __future__ import annotations

import math
import time
from dataclasses import dataclass, field, replace

from repro.errors import AllocError
from repro.ixp.banks import Bank
from repro.ixp.flowgraph import FlowGraph
from repro.ilp.solve import SolveOptions, solve_model
from repro.trace import ensure
from repro.alloc import abcolor, decode as decode_mod
from repro.alloc.ilpmodel import (
    AllocModel,
    AllocSolution,
    ModelOptions,
    build_model,
    extract_solution,
)


@dataclass
class AllocOptions:
    model: ModelOptions = field(default_factory=ModelOptions)
    solve: SolveOptions = field(default_factory=SolveOptions)
    two_phase: bool = False
    spill_base: int = decode_mod.SPILL_BASE
    #: Degrade gracefully (``highs`` → ``bnb`` → baseline coloring) when
    #: a solver times out without an incumbent, fails numerically, or
    #: crashes.  Infeasible models raise regardless.
    fallback: bool = True
    #: Time budget (seconds) for the ``bnb`` retry stage of the chain.
    fallback_time_limit: float | None = 60.0


@dataclass
class AllocResult:
    physical: FlowGraph
    alloc: AllocSolution | None
    ab: abcolor.AbAssignment | None
    decoded: decode_mod.DecodeResult
    model: AllocModel | None
    #: Figure 7 numbers.
    variables: int
    constraints: int
    objective_terms: int
    root_seconds: float
    integer_seconds: float
    moves: int
    spills: int
    status: str
    two_phase_seconds: float | None = None
    #: Which fallback stage produced this result (``"bnb"`` /
    #: ``"baseline"``), or None when the primary solver succeeded.
    fallback: str | None = None

    def figure7_row(self) -> dict[str, float]:
        return {
            "root_time_s": round(self.root_seconds, 3),
            "integer_time_s": round(self.integer_seconds, 3),
            "variables_k": round(self.variables / 1000, 1),
            "constraints_k": round(self.constraints / 1000, 1),
            "objective_terms_k": round(self.objective_terms / 1000, 1),
            "moves": self.moves,
            "spills": self.spills,
        }


def _usable(solution) -> bool:
    """An optimal solve, or a timeout that still carries an incumbent."""
    if solution is None:
        return False
    if solution.status == "optimal":
        return True
    return solution.status == "timeout" and math.isfinite(solution.objective)


def _solve_chain(model, options: AllocOptions, tracer, phase: str = ""):
    """Solve ``model`` through the engine chain.

    Returns ``(solution, fallback)`` where ``fallback`` is ``"bnb"``
    when the retry stage produced the answer.  Returns ``(None, None)``
    when every engine stage failed (the caller then degrades to the
    baseline allocator or raises).  Infeasibility raises immediately.
    """
    suffix = f" ({phase})" if phase else ""

    def run(solve_options):
        try:
            return solve_model(model, solve_options, tracer), None
        except Exception as exc:  # solver crash = failed stage, not fatal
            return None, f"{type(exc).__name__}: {exc}"

    solution, crash = run(options.solve)
    if solution is not None and solution.status == "infeasible":
        raise AllocError(f"allocation ILP is infeasible{suffix}")
    if _usable(solution):
        return solution, None
    reason = crash if crash else f"status={solution.status}"
    # No point retrying bnb when it was the primary engine — or when the
    # portfolio already raced it against highs and both lost.
    if not options.fallback or options.solve.engine in ("bnb", "portfolio"):
        return None, reason
    retry_options = replace(
        options.solve, engine="bnb", time_limit=options.fallback_time_limit
    )
    with tracer.span("fallback", stage="bnb", reason=reason):
        retry, crash = run(retry_options)
    if retry is not None and retry.status == "infeasible":
        raise AllocError(f"allocation ILP is infeasible{suffix}")
    if _usable(retry):
        return retry, "bnb"
    return None, crash if crash else f"status={retry.status}"


def allocate(
    graph: FlowGraph,
    options: AllocOptions | None = None,
    tracer=None,
    prebuilt: AllocModel | None = None,
) -> AllocResult:
    """Run the paper's ILP-based allocation pipeline on a flowgraph.

    ``prebuilt`` reuses an :class:`AllocModel` already built from the
    *same graph and model options* (the caller's responsibility — the
    fuzz oracle shares one model across its solver-engine configs).  It
    is ignored for the two-phase and rematerialization variants, which
    transform the graph or mutate the model's objective.
    """
    options = options or AllocOptions()
    tracer = ensure(tracer)
    if options.model.remat_constants:
        from repro.alloc.remat import lift_constants

        graph, _ = lift_constants(graph)
        prebuilt = None
    if options.two_phase:
        return _allocate_two_phase(graph, options, tracer)
    am = prebuilt if prebuilt is not None else build_model(
        graph, options.model, tracer
    )
    solution, downgraded = _solve_chain(am.model, options, tracer)
    if solution is None:
        return _degrade_to_baseline(graph, options, tracer, downgraded)
    return _finish(graph, am, solution, options, fallback=downgraded)


def _degrade_to_baseline(
    graph: FlowGraph, options: AllocOptions, tracer, reason
) -> AllocResult:
    """Last stage of the chain: the heuristic drain/stage allocator.

    Feasible whenever greedy coloring finds registers for every temp;
    when even that spills (or fallback is disabled) there is nothing
    left to degrade to and the allocator raises.
    """
    if not options.fallback:
        raise AllocError(f"allocation solver failed: {reason}")
    from repro.alloc.baseline import allocate_baseline, baseline_input_locations

    start = time.perf_counter()
    with tracer.span("fallback", stage="baseline", reason=str(reason)) as sp:
        result = allocate_baseline(graph)
        if sp:
            sp.add(moves=result.moves, spills=result.spills)
    if result.physical is None:
        raise AllocError(
            f"allocation solver failed ({reason}) and the baseline "
            f"allocator spilled {result.spills} temporaries"
        )
    decoded = decode_mod.DecodeResult(
        graph=result.physical,
        input_locations=baseline_input_locations(graph, result),
        spill_slots={},
    )
    return AllocResult(
        physical=result.physical,
        alloc=None,
        ab=None,
        decoded=decoded,
        model=None,
        variables=0,
        constraints=0,
        objective_terms=0,
        root_seconds=0.0,
        integer_seconds=time.perf_counter() - start,
        moves=result.moves,
        spills=result.spills,
        status="baseline",
        fallback="baseline",
    )


def _finish(
    graph, am, solution, options, two_phase_seconds=None, fallback=None
) -> AllocResult:
    alloc = extract_solution(am, solution)
    ab = abcolor.assign_ab_registers(
        graph, alloc.banks_before, alloc.banks_after, am.clone_rep
    )
    decoded = decode_mod.decode(am, alloc, ab, options.spill_base)
    stats = am.model.stats()
    return AllocResult(
        physical=decoded.graph,
        alloc=alloc,
        ab=ab,
        decoded=decoded,
        model=am,
        variables=stats["variables"],
        constraints=stats["constraints"],
        objective_terms=stats["objective_terms"],
        root_seconds=solution.root_relaxation_seconds,
        integer_seconds=solution.integer_seconds,
        moves=alloc.move_count,
        spills=alloc.spills,
        status=solution.status,
        two_phase_seconds=two_phase_seconds,
        fallback=fallback,
    )


def _allocate_two_phase(
    graph: FlowGraph, options: AllocOptions, tracer
) -> AllocResult:
    """Phase 1: are spills needed at all?  Phase 2: solve without M."""
    start = time.perf_counter()
    am1 = build_model(graph, options.model, tracer)
    # Replace the objective: one unit per move into the M bank.
    am1.model.objective = {}
    spill_obj = {}
    for (p, v, b1, b2), var in am1.move.items():
        if b2 is Bank.M and b1 is not Bank.M:
            spill_obj[var] = 1.0
    am1.model.minimize(spill_obj)
    phase1, downgraded1 = _solve_chain(am1.model, options, tracer, "phase 1")
    phase1_seconds = time.perf_counter() - start
    if phase1 is None:
        return _degrade_to_baseline(graph, options, tracer, downgraded1)
    needs_spills = phase1.objective > 0.5

    model_opts = replace(options.model, allow_spill=needs_spills)
    am2 = build_model(graph, model_opts, tracer)
    solution, downgraded2 = _solve_chain(am2.model, options, tracer, "phase 2")
    if solution is None:
        return _degrade_to_baseline(graph, options, tracer, downgraded2)
    return _finish(
        graph,
        am2,
        solution,
        options,
        two_phase_seconds=phase1_seconds,
        fallback=downgraded2,
    )
