"""Compiler diagnostics.

All user-facing failures raised by the Nova compiler derive from
:class:`NovaError` and carry a :class:`SourceSpan` when one is known, so
that drivers can render ``file:line:col`` diagnostics.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class SourcePos:
    """A position in Nova source text (1-based line, 1-based column)."""

    line: int
    col: int

    def __str__(self) -> str:
        return f"{self.line}:{self.col}"


@dataclass(frozen=True)
class SourceSpan:
    """A contiguous region of Nova source text."""

    start: SourcePos
    end: SourcePos
    filename: str = "<nova>"

    def __str__(self) -> str:
        return f"{self.filename}:{self.start}"

    @staticmethod
    def unknown() -> "SourceSpan":
        return SourceSpan(SourcePos(0, 0), SourcePos(0, 0), "<unknown>")


class NovaError(Exception):
    """Base class for all diagnostics produced while compiling Nova."""

    def __init__(self, message: str, span: SourceSpan | None = None):
        self.message = message
        self.span = span
        super().__init__(str(self))

    def __str__(self) -> str:
        if self.span is not None:
            return f"{self.span}: {self.message}"
        return self.message


class LexError(NovaError):
    """Malformed token in the source text."""


class ParseError(NovaError):
    """The token stream does not form a valid Nova program."""


class LayoutError(NovaError):
    """Ill-formed layout definition or layout expression."""


class TypeError_(NovaError):
    """Nova type error (named with a trailing underscore to avoid
    shadowing the Python builtin)."""


class CpsError(NovaError):
    """Internal invariant violation in the CPS middle end."""


class SelectError(NovaError):
    """Instruction selection could not map a CPS construct to the IXP."""


class AllocError(NovaError):
    """The allocator failed (infeasible model, resource exhaustion)."""


class SimulatorError(NovaError):
    """The IXP simulator trapped (illegal access, bad register, ...)."""
