"""``repro.cache`` — content-addressed compile cache.

A compilation is a pure function of the source text and the option
dataclasses (``CompileOptions`` → ``AllocOptions`` → ``ModelOptions`` /
``SolveOptions``), so its artifact can be keyed by a stable hash of
exactly those inputs.  The cache stores one pickled
:class:`repro.compiler.Compilation` per key under a two-level directory
fan-out (``ab/cdef....pkl``), written atomically (temp file + rename) so
concurrent pool workers never observe a half-written entry.

Robustness rules:

- any unreadable entry — truncated pickle, wrong format version, key
  mismatch from a hash collision — is *invalidated* (deleted) and
  treated as a miss, never an exception;
- entries never embed a tracer or the (huge, reconstructible) raw ILP
  model (see :meth:`repro.compiler.Compilation.slim`);
- hits, misses, writes and invalidations are counted on the cache and
  surfaced as ``cache.lookup`` / ``cache.store`` spans on the supplied
  :class:`repro.trace.Tracer`.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import os
import pickle
import tempfile
from pathlib import Path

from repro.compiler import Compilation, CompileOptions, compile_nova
from repro.trace import ensure

#: Bumped whenever the pickled artifact layout changes incompatibly;
#: part of every key, so stale formats read as misses, not errors.
CACHE_FORMAT = 1


def _plain(value, path: str = "options"):
    """Reduce an options object to JSON-serializable plain data.

    Dataclass fields declared with ``metadata={"fingerprint": False}``
    are runtime-only plumbing (e.g. the warm-start hint directory on
    :class:`repro.ilp.solve.SolveOptions`) and are excluded, so setting
    them never changes a cache key.

    A value outside the plain-data vocabulary raises :class:`TypeError`
    naming the offending field: the old ``repr(value)`` fallback embedded
    memory addresses for arbitrary objects (``<object at 0x7f...>``),
    which silently turned every lookup into a cross-process miss.
    """
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        return {
            f.name: _plain(getattr(value, f.name), f"{path}.{f.name}")
            for f in dataclasses.fields(value)
            if f.metadata.get("fingerprint", True)
        }
    if isinstance(value, (list, tuple)):
        return [_plain(item, f"{path}[{i}]") for i, item in enumerate(value)]
    if isinstance(value, dict):
        return {
            str(k): _plain(v, f"{path}.{k}") for k, v in sorted(value.items())
        }
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    raise TypeError(
        f"cannot fingerprint option field {path}: {type(value).__name__} is "
        f"not plain data (its repr may embed memory addresses, which would "
        f"make every cache lookup a miss across processes)"
    )


def options_fingerprint(options: CompileOptions) -> str:
    """Canonical JSON rendering of the whole options tree."""
    return json.dumps(_plain(options), sort_keys=True, separators=(",", ":"))


def frontend_fingerprint(options: CompileOptions) -> str:
    """Fingerprint of only the options the pre-allocation pipeline sees.

    Two option points with equal front-end fingerprints compile to the
    same virtual flowgraph (allocator knobs are excluded), so the fuzz
    oracle can re-run just the allocator on a shared
    :class:`repro.compiler.Compilation`.
    """
    plain = _plain(options)
    plain.pop("alloc", None)
    plain.pop("run_allocator", None)
    return json.dumps(plain, sort_keys=True, separators=(",", ":"))


def cache_key(source: str, options: CompileOptions) -> str:
    """Stable content hash of (format, options, source)."""
    digest = hashlib.sha256()
    digest.update(f"novac-cache-v{CACHE_FORMAT}\n".encode())
    digest.update(options_fingerprint(options).encode())
    digest.update(b"\n")
    digest.update(source.encode())
    return digest.hexdigest()


@dataclasses.dataclass
class CacheStats:
    hits: int = 0
    misses: int = 0
    writes: int = 0
    #: unreadable entries deleted and treated as misses
    invalidations: int = 0

    def as_dict(self) -> dict[str, int]:
        return dataclasses.asdict(self)


class CompileCache:
    """Content-addressed store of pickled :class:`Compilation` artifacts."""

    def __init__(self, root: str | Path, tracer=None):
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)
        self.tracer = ensure(tracer)
        self.stats = CacheStats()

    def path_for(self, key: str) -> Path:
        return self.root / key[:2] / f"{key[2:]}.pkl"

    # -- lookup --------------------------------------------------------------

    def get(
        self, source: str, options: CompileOptions | None = None
    ) -> Compilation | None:
        """The cached compilation for (source, options), or None on miss.

        A corrupt or mismatched entry is deleted and reported as a miss.
        """
        options = options or CompileOptions()
        key = cache_key(source, options)
        with self.tracer.span("cache.lookup", key=key[:12]) as sp:
            result = self._load(key)
            if result is None:
                self.stats.misses += 1
            else:
                self.stats.hits += 1
            if sp:
                sp.add(outcome="hit" if result is not None else "miss")
        return result

    def _load(self, key: str) -> Compilation | None:
        path = self.path_for(key)
        try:
            with open(path, "rb") as handle:
                entry = pickle.load(handle)
        except FileNotFoundError:
            return None
        except Exception:
            self._invalidate(path)
            return None
        if (
            not isinstance(entry, dict)
            or entry.get("format") != CACHE_FORMAT
            or entry.get("key") != key
            or not isinstance(entry.get("compilation"), Compilation)
        ):
            self._invalidate(path)
            return None
        return entry["compilation"]

    def _invalidate(self, path: Path) -> None:
        self.stats.invalidations += 1
        with self.tracer.span("cache.invalidate", path=path.name):
            try:
                path.unlink()
            except OSError:
                pass

    # -- store ---------------------------------------------------------------

    def put(
        self,
        source: str,
        options: CompileOptions | None,
        compilation: Compilation,
    ) -> str:
        """Store an artifact; returns its key.  Atomic against readers."""
        options = options or CompileOptions()
        key = cache_key(source, options)
        path = self.path_for(key)
        entry = {
            "format": CACHE_FORMAT,
            "key": key,
            "compilation": compilation.slim(),
        }
        with self.tracer.span("cache.store", key=key[:12]) as sp:
            path.parent.mkdir(parents=True, exist_ok=True)
            fd, tmp = tempfile.mkstemp(dir=path.parent, suffix=".tmp")
            try:
                with os.fdopen(fd, "wb") as handle:
                    pickle.dump(entry, handle, protocol=pickle.HIGHEST_PROTOCOL)
                os.replace(tmp, path)
            except BaseException:
                try:
                    os.unlink(tmp)
                except OSError:
                    pass
                raise
            self.stats.writes += 1
            if sp:
                sp.add(bytes=path.stat().st_size)
        return key


def cached_compile(
    source: str,
    filename: str = "<nova>",
    options: CompileOptions | None = None,
    cache: CompileCache | None = None,
    tracer=None,
) -> tuple[Compilation, str]:
    """Compile through the cache; returns (compilation, 'hit'|'miss'|'off').

    On a miss the fresh artifact is stored before returning, so the next
    byte-identical compile with the same options hits.
    """
    options = options or CompileOptions()
    if cache is None:
        return compile_nova(source, filename, options, tracer=tracer), "off"
    result = cache.get(source, options)
    if result is not None:
        return result, "hit"
    result = compile_nova(source, filename, options, tracer=tracer)
    cache.put(source, options, result)
    return result, "miss"
