"""End-to-end Nova compiler driver.

Pipeline (paper Section 4):

    parse → typecheck → CPS convert → de-proceduralize (full inlining)
    → CPS optimize → static single use → instruction selection
    → ILP bank assignment + coloring + spills → decode to physical code

Each phase's artifact is kept on the :class:`Compilation` object so tests
and benchmarks can inspect intermediate state, and :func:`compile_nova`
wraps the common path.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field, replace

from repro.nova import ast
from repro.nova.parser import parse_program
from repro.nova.typecheck import TypedProgram, typecheck_program
from repro.cps import ir
from repro.cps.convert import CpsProgram, cps_convert
from repro.cps.deproc import FirstOrderProgram, deproceduralize
from repro.cps.optimize import OptimizeResult, optimize
from repro.cps.ssu import SsuStats, check_ssu, to_ssu
from repro.ixp.flowgraph import FlowGraph
from repro.ixp.select import select_instructions
from repro.alloc.allocator import AllocOptions, AllocResult, allocate
from repro.trace import Tracer, ensure


@dataclass
class CompileOptions:
    """Knobs for the end-to-end pipeline."""

    alloc: AllocOptions = field(default_factory=AllocOptions)
    #: Stop after instruction selection (no ILP); the virtual flowgraph
    #: still runs on the simulator and is the semantic reference.
    run_allocator: bool = True
    #: Disable the static-single-use transform (ablation only: programs
    #: with conflicting aggregate positions then have no feasible
    #: coloring, paper Sections 9-10).
    run_ssu: bool = True
    optimizer_rounds: int = 12


@dataclass
class SourceStats:
    """Static program statistics (paper Figure 5)."""

    line_count: int
    layouts: int
    packs: int
    unpacks: int
    raises: int
    handles: int

    @staticmethod
    def of(source: str, program: ast.Program) -> "SourceStats":
        counts = {"pack": 0, "unpack": 0, "raise": 0, "handle": 0}

        def walk(node: object) -> None:
            if isinstance(node, ast.PackExpr):
                counts["pack"] += 1
            elif isinstance(node, ast.UnpackExpr):
                counts["unpack"] += 1
            elif isinstance(node, ast.RaiseExpr):
                counts["raise"] += 1
            elif isinstance(node, ast.TryExpr):
                counts["handle"] += len(node.handlers)
            for name in vars(node) if hasattr(node, "__dict__") else ():
                child = getattr(node, name)
                items = child if isinstance(child, list) else [child]
                for item in items:
                    if isinstance(item, tuple):
                        for part in item:
                            if isinstance(part, (ast.Expr, ast.Handler)):
                                walk(part)
                    elif isinstance(item, ast.FunStmt):
                        walk(item.decl.body)
                    elif isinstance(
                        item,
                        (
                            ast.Expr,
                            ast.Handler,
                            ast.LetStmt,
                            ast.AssignStmt,
                            ast.ExprStmt,
                        ),
                    ):
                        walk(item)

        for fun in program.funs:
            walk(fun.body)
        return SourceStats(
            line_count=len(source.splitlines()),
            layouts=len(program.layouts),
            packs=counts["pack"],
            unpacks=counts["unpack"],
            raises=counts["raise"],
            handles=counts["handle"],
        )


@dataclass
class Compilation:
    """All artifacts of one compiler run."""

    source: str
    program: ast.Program
    typed: TypedProgram
    cps: CpsProgram
    first_order: FirstOrderProgram
    opt_result: OptimizeResult
    ssu: FirstOrderProgram
    ssu_stats: SsuStats
    flowgraph: FlowGraph
    alloc: AllocResult | None
    source_stats: SourceStats
    phase_seconds: dict[str, float]
    #: the tracer the compile recorded spans on, when one was supplied
    #: (``None`` for untraced compiles; see :mod:`repro.trace`).
    trace: Tracer | None = None

    @property
    def physical(self) -> FlowGraph:
        assert self.alloc is not None, "allocator was not run"
        return self.alloc.physical

    @property
    def input_temps(self) -> tuple[str, ...]:
        return self.first_order.params

    def inputs_by_name(self) -> dict[str, list[str]]:
        """Entry-function source parameter names → flattened input temps."""
        return self.cps.param_names[self.cps.entry]

    def without_trace(self) -> "Compilation":
        """A copy safe to pickle across processes or into the cache.

        The tracer belongs to the compiling process (its spans are
        merged into the driver's tracer separately); a cached or
        pool-returned artifact carries everything else.
        """
        if self.trace is None:
            return self
        return replace(self, trace=None)

    def slim(self) -> "Compilation":
        """The artifact form: no tracer, no raw ILP model.

        The :class:`repro.alloc.ilpmodel.AllocModel` dwarfs everything
        else in the pickle (11 MB vs 0.3 MB for AES) and its summary
        numbers already live on :class:`AllocResult` as plain ints, so
        cache entries and pool-returned results drop it; recompile
        without the cache to inspect the model itself.
        """
        stripped = self.without_trace()
        if stripped.alloc is None or stripped.alloc.model is None:
            return stripped
        return replace(stripped, alloc=replace(stripped.alloc, model=None))

    def make_inputs(self, **values: int | list[int]) -> dict[str, int]:
        """Build a virtual-machine input dict from source parameter names.

        A multi-word parameter (tuple/record) takes a list of words.
        """
        mapping = self.inputs_by_name()
        out: dict[str, int] = {}
        for name, value in values.items():
            temps = mapping[name]
            words = value if isinstance(value, list) else [value]
            if len(words) != len(temps):
                raise ValueError(
                    f"parameter '{name}' has {len(temps)} words, got "
                    f"{len(words)}"
                )
            for temp, word in zip(temps, words):
                out[temp] = word
        return out


class Compiler:
    """Staged compiler; reusable across programs.

    When ``tracer`` is a live :class:`repro.trace.Tracer`, each phase
    records a span carrying its wall time and IR-size counters (plus the
    ILP model/solve sub-spans under ``allocate``); with the default null
    tracer the only per-phase cost is the ``perf_counter`` pair that
    also feeds :attr:`Compilation.phase_seconds`.
    """

    def __init__(
        self, options: CompileOptions | None = None, tracer: Tracer | None = None
    ):
        self.options = options or CompileOptions()
        self.tracer = ensure(tracer)

    def compile(self, source: str, filename: str = "<nova>") -> Compilation:
        tracer = self.tracer
        times: dict[str, float] = {}

        def timed(name: str, fn):
            with tracer.span(name) as sp:
                start = time.perf_counter()
                result = fn()
                times[name] = time.perf_counter() - start
            return result, sp

        program, sp_parse = timed(
            "parse", lambda: parse_program(source, filename)
        )
        typed, sp = timed("typecheck", lambda: typecheck_program(program))
        if sp:
            sp.add(funs=len(program.funs), layouts=len(program.layouts))
        cps, sp = timed("cps", lambda: cps_convert(typed))
        if sp:
            sp.add(
                funs=len(cps.funs),
                term_nodes=sum(ir.term_size(f.body) for f in cps.funs.values()),
            )
        first_order, sp = timed("deproc", lambda: deproceduralize(cps))
        if sp:
            sp.add(term_nodes=ir.term_size(first_order.term))
        opt, sp = timed(
            "optimize",
            lambda: optimize(first_order.term, self.options.optimizer_rounds),
        )
        if sp:
            sp.add(
                rounds=opt.stats.rounds,
                simplifications=opt.stats.total(),
                term_nodes=ir.term_size(opt.term),
            )
        optimized = FirstOrderProgram(
            first_order.params, opt.term, first_order.gensym
        )
        if self.options.run_ssu:
            (pair, sp) = timed("ssu", lambda: to_ssu(optimized))
            ssu, ssu_stats = pair
            assert check_ssu(ssu.term), "SSU transform failed its own invariant"
            if sp:
                sp.add(
                    clones_inserted=ssu_stats.clones_inserted,
                    writes_rewritten=ssu_stats.writes_rewritten,
                    term_nodes=ir.term_size(ssu.term),
                )
        else:
            ssu, ssu_stats = optimized, SsuStats()
        graph, sp = timed("select", lambda: select_instructions(ssu))
        if sp:
            sp.add(
                instructions=graph.num_instructions(),
                blocks=len(graph.blocks),
                temps=len(graph.temps()),
            )
        alloc = None
        if self.options.run_allocator:
            alloc, sp = timed(
                "allocate", lambda: allocate(graph, self.options.alloc, tracer)
            )
            if sp:
                sp.add(
                    variables=alloc.variables,
                    constraints=alloc.constraints,
                    objective_terms=alloc.objective_terms,
                    root_relaxation_seconds=alloc.root_seconds,
                    integer_seconds=alloc.integer_seconds,
                    moves=alloc.moves,
                    spills=alloc.spills,
                    status=alloc.status,
                )
        source_stats = SourceStats.of(source, program)
        if sp_parse:
            sp_parse.add(
                lines=source_stats.line_count,
                layouts=source_stats.layouts,
                packs=source_stats.packs,
                unpacks=source_stats.unpacks,
                raises=source_stats.raises,
                handles=source_stats.handles,
            )
        return Compilation(
            source=source,
            program=program,
            typed=typed,
            cps=cps,
            first_order=first_order,
            opt_result=opt,
            ssu=ssu,
            ssu_stats=ssu_stats,
            flowgraph=graph,
            alloc=alloc,
            source_stats=source_stats,
            phase_seconds=times,
            trace=tracer if tracer.enabled else None,
        )


def compile_nova(
    source: str,
    filename: str = "<nova>",
    options: CompileOptions | None = None,
    tracer: Tracer | None = None,
) -> Compilation:
    """Compile Nova source text through the whole pipeline."""
    return Compiler(options, tracer).compile(source, filename)
