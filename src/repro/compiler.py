"""End-to-end Nova compiler driver.

Pipeline (paper Section 4):

    parse → typecheck → CPS convert → de-proceduralize (full inlining)
    → CPS optimize → static single use → instruction selection
    → ILP bank assignment + coloring + spills → decode to physical code

Each phase's artifact is kept on the :class:`Compilation` object so tests
and benchmarks can inspect intermediate state, and :func:`compile_nova`
wraps the common path.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field, replace

from repro.nova import ast
from repro.nova.parser import parse_program
from repro.nova.typecheck import TypedProgram, typecheck_program
from repro.cps import ir
from repro.cps.convert import CpsProgram, cps_convert
from repro.cps.deproc import FirstOrderProgram, deproceduralize
from repro.cps.optimize import OptimizeResult, optimize
from repro.cps.ssu import SsuStats, check_ssu, to_ssu
from repro.ixp.flowgraph import FlowGraph
from repro.ixp.select import select_instructions
from repro.alloc.allocator import AllocOptions, AllocResult, allocate
from repro.trace import Tracer, ensure


@dataclass
class CompileOptions:
    """Knobs for the end-to-end pipeline."""

    alloc: AllocOptions = field(default_factory=AllocOptions)
    #: Stop after instruction selection (no ILP); the virtual flowgraph
    #: still runs on the simulator and is the semantic reference.
    run_allocator: bool = True
    #: Disable the static-single-use transform (ablation only: programs
    #: with conflicting aggregate positions then have no feasible
    #: coloring, paper Sections 9-10).
    run_ssu: bool = True
    optimizer_rounds: int = 12


@dataclass
class SourceStats:
    """Static program statistics (paper Figure 5)."""

    line_count: int
    layouts: int
    packs: int
    unpacks: int
    raises: int
    handles: int

    @staticmethod
    def of(source: str, program: ast.Program) -> "SourceStats":
        counts = {"pack": 0, "unpack": 0, "raise": 0, "handle": 0}

        def walk(node: object) -> None:
            if isinstance(node, ast.PackExpr):
                counts["pack"] += 1
            elif isinstance(node, ast.UnpackExpr):
                counts["unpack"] += 1
            elif isinstance(node, ast.RaiseExpr):
                counts["raise"] += 1
            elif isinstance(node, ast.TryExpr):
                counts["handle"] += len(node.handlers)
            for name in vars(node) if hasattr(node, "__dict__") else ():
                child = getattr(node, name)
                items = child if isinstance(child, list) else [child]
                for item in items:
                    if isinstance(item, tuple):
                        for part in item:
                            if isinstance(part, (ast.Expr, ast.Handler)):
                                walk(part)
                    elif isinstance(item, ast.FunStmt):
                        walk(item.decl.body)
                    elif isinstance(
                        item,
                        (
                            ast.Expr,
                            ast.Handler,
                            ast.LetStmt,
                            ast.AssignStmt,
                            ast.ExprStmt,
                        ),
                    ):
                        walk(item)

        for fun in program.funs:
            walk(fun.body)
        return SourceStats(
            line_count=len(source.splitlines()),
            layouts=len(program.layouts),
            packs=counts["pack"],
            unpacks=counts["unpack"],
            raises=counts["raise"],
            handles=counts["handle"],
        )


@dataclass
class Compilation:
    """All artifacts of one compiler run."""

    source: str
    program: ast.Program
    typed: TypedProgram
    cps: CpsProgram
    first_order: FirstOrderProgram
    opt_result: OptimizeResult
    ssu: FirstOrderProgram
    ssu_stats: SsuStats
    flowgraph: FlowGraph
    alloc: AllocResult | None
    source_stats: SourceStats
    phase_seconds: dict[str, float]
    #: the tracer the compile recorded spans on, when one was supplied
    #: (``None`` for untraced compiles; see :mod:`repro.trace`).
    trace: Tracer | None = None

    @property
    def physical(self) -> FlowGraph:
        assert self.alloc is not None, "allocator was not run"
        return self.alloc.physical

    @property
    def input_temps(self) -> tuple[str, ...]:
        return self.first_order.params

    def inputs_by_name(self) -> dict[str, list[str]]:
        """Entry-function source parameter names → flattened input temps."""
        return self.cps.param_names[self.cps.entry]

    def without_trace(self) -> "Compilation":
        """A copy safe to pickle across processes or into the cache.

        The tracer belongs to the compiling process (its spans are
        merged into the driver's tracer separately); a cached or
        pool-returned artifact carries everything else.
        """
        if self.trace is None:
            return self
        return replace(self, trace=None)

    def slim(self) -> "Compilation":
        """The artifact form: no tracer, no raw ILP model.

        The :class:`repro.alloc.ilpmodel.AllocModel` dwarfs everything
        else in the pickle (11 MB vs 0.3 MB for AES) and its summary
        numbers already live on :class:`AllocResult` as plain ints, so
        cache entries and pool-returned results drop it; recompile
        without the cache to inspect the model itself.
        """
        stripped = self.without_trace()
        if stripped.alloc is None or stripped.alloc.model is None:
            return stripped
        return replace(stripped, alloc=replace(stripped.alloc, model=None))

    def make_inputs(self, **values: int | list[int]) -> dict[str, int]:
        """Build a virtual-machine input dict from source parameter names.

        A multi-word parameter (tuple/record) takes a list of words.
        """
        mapping = self.inputs_by_name()
        out: dict[str, int] = {}
        for name, value in values.items():
            temps = mapping[name]
            words = value if isinstance(value, list) else [value]
            if len(words) != len(temps):
                raise ValueError(
                    f"parameter '{name}' has {len(temps)} words, got "
                    f"{len(words)}"
                )
            for temp, word in zip(temps, words):
                out[temp] = word
        return out


@dataclass
class FrontEnd:
    """The option-independent prefix of the pipeline.

    parse → typecheck → CPS convert → de-proceduralize depend on the
    source alone, not on :class:`CompileOptions`, so one ``FrontEnd``
    can feed several back-end runs (the fuzz oracle compiles every seed
    under six option points).  The CPS IR is functional and the gensym
    is cloned per back-end run, so sharing is observationally identical
    to compiling from scratch.
    """

    source: str
    filename: str
    program: ast.Program
    typed: TypedProgram
    cps: CpsProgram
    first_order: FirstOrderProgram
    source_stats: SourceStats
    phase_seconds: dict[str, float]


def _timed(tracer, times: dict[str, float], name: str, fn):
    with tracer.span(name) as sp:
        start = time.perf_counter()
        result = fn()
        times[name] = time.perf_counter() - start
    return result, sp


def parse_front(
    source: str, filename: str = "<nova>", tracer: Tracer | None = None
) -> FrontEnd:
    """Run the option-independent front half of the pipeline."""
    tracer = ensure(tracer)
    times: dict[str, float] = {}
    program, sp_parse = _timed(
        tracer, times, "parse", lambda: parse_program(source, filename)
    )
    source_stats = SourceStats.of(source, program)
    if sp_parse:
        sp_parse.add(
            lines=source_stats.line_count,
            layouts=source_stats.layouts,
            packs=source_stats.packs,
            unpacks=source_stats.unpacks,
            raises=source_stats.raises,
            handles=source_stats.handles,
        )
    typed, sp = _timed(
        tracer, times, "typecheck", lambda: typecheck_program(program)
    )
    if sp:
        sp.add(funs=len(program.funs), layouts=len(program.layouts))
    cps, sp = _timed(tracer, times, "cps", lambda: cps_convert(typed))
    if sp:
        sp.add(
            funs=len(cps.funs),
            term_nodes=sum(ir.term_size(f.body) for f in cps.funs.values()),
        )
    first_order, sp = _timed(
        tracer, times, "deproc", lambda: deproceduralize(cps)
    )
    if sp:
        sp.add(term_nodes=ir.term_size(first_order.term))
    return FrontEnd(
        source=source,
        filename=filename,
        program=program,
        typed=typed,
        cps=cps,
        first_order=first_order,
        source_stats=source_stats,
        phase_seconds=times,
    )


def compile_from_front(
    front: FrontEnd,
    options: CompileOptions | None = None,
    tracer: Tracer | None = None,
) -> Compilation:
    """Run the option-dependent back half over a parsed front end.

    ``front`` is not consumed: the shared IR is never mutated and fresh
    names come from a cloned gensym, so repeated calls with different
    options each behave like a full :func:`compile_nova`.
    """
    options = options or CompileOptions()
    tracer = ensure(tracer)
    times = dict(front.phase_seconds)
    first_order = FirstOrderProgram(
        front.first_order.params,
        front.first_order.term,
        front.first_order.gensym.clone(),
    )
    opt, sp = _timed(
        tracer,
        times,
        "optimize",
        lambda: optimize(first_order.term, options.optimizer_rounds),
    )
    if sp:
        sp.add(
            rounds=opt.stats.rounds,
            simplifications=opt.stats.total(),
            term_nodes=ir.term_size(opt.term),
        )
    optimized = FirstOrderProgram(
        first_order.params, opt.term, first_order.gensym
    )
    if options.run_ssu:
        pair, sp = _timed(tracer, times, "ssu", lambda: to_ssu(optimized))
        ssu, ssu_stats = pair
        assert check_ssu(ssu.term), "SSU transform failed its own invariant"
        if sp:
            sp.add(
                clones_inserted=ssu_stats.clones_inserted,
                writes_rewritten=ssu_stats.writes_rewritten,
                term_nodes=ir.term_size(ssu.term),
            )
    else:
        ssu, ssu_stats = optimized, SsuStats()
    graph, sp = _timed(tracer, times, "select", lambda: select_instructions(ssu))
    if sp:
        sp.add(
            instructions=graph.num_instructions(),
            blocks=len(graph.blocks),
            temps=len(graph.temps()),
        )
    alloc = None
    if options.run_allocator:
        alloc, sp = _timed(
            tracer,
            times,
            "allocate",
            lambda: allocate(graph, options.alloc, tracer),
        )
        if sp:
            _add_alloc_counters(sp, alloc)
    return Compilation(
        source=front.source,
        program=front.program,
        typed=front.typed,
        cps=front.cps,
        first_order=first_order,
        opt_result=opt,
        ssu=ssu,
        ssu_stats=ssu_stats,
        flowgraph=graph,
        alloc=alloc,
        source_stats=front.source_stats,
        phase_seconds=times,
        trace=tracer if tracer.enabled else None,
    )


def _add_alloc_counters(sp, alloc: AllocResult) -> None:
    sp.add(
        variables=alloc.variables,
        constraints=alloc.constraints,
        objective_terms=alloc.objective_terms,
        root_relaxation_seconds=alloc.root_seconds,
        integer_seconds=alloc.integer_seconds,
        moves=alloc.moves,
        spills=alloc.spills,
        status=alloc.status,
    )


def allocate_compilation(
    comp: Compilation,
    options: CompileOptions,
    tracer: Tracer | None = None,
    prebuilt=None,
) -> Compilation:
    """Re-run only the allocator over an existing virtual compilation.

    For option points that differ solely in :class:`AllocOptions` (the
    fuzz oracle's three allocator configs share one front end and one
    virtual flowgraph), this skips every phase up to and including
    instruction selection.  ``prebuilt`` optionally passes an already
    built :class:`repro.alloc.ilpmodel.AllocModel` for the same graph
    and model options through to :func:`repro.alloc.allocator.allocate`.
    """
    tracer = ensure(tracer)
    times = dict(comp.phase_seconds)
    alloc, sp = _timed(
        tracer,
        times,
        "allocate",
        lambda: allocate(
            comp.flowgraph, options.alloc, tracer, prebuilt=prebuilt
        ),
    )
    if sp:
        _add_alloc_counters(sp, alloc)
    return replace(
        comp,
        alloc=alloc,
        phase_seconds=times,
        trace=tracer if tracer.enabled else None,
    )


class Compiler:
    """Staged compiler; reusable across programs.

    When ``tracer`` is a live :class:`repro.trace.Tracer`, each phase
    records a span carrying its wall time and IR-size counters (plus the
    ILP model/solve sub-spans under ``allocate``); with the default null
    tracer the only per-phase cost is the ``perf_counter`` pair that
    also feeds :attr:`Compilation.phase_seconds`.
    """

    def __init__(
        self, options: CompileOptions | None = None, tracer: Tracer | None = None
    ):
        self.options = options or CompileOptions()
        self.tracer = ensure(tracer)

    def compile(self, source: str, filename: str = "<nova>") -> Compilation:
        front = parse_front(source, filename, self.tracer)
        return compile_from_front(front, self.options, self.tracer)


def compile_nova(
    source: str,
    filename: str = "<nova>",
    options: CompileOptions | None = None,
    tracer: Tracer | None = None,
) -> Compilation:
    """Compile Nova source text through the whole pipeline."""
    return Compiler(options, tracer).compile(source, filename)
