"""End-to-end Nova compiler driver.

Pipeline (paper Section 4):

    parse → typecheck → CPS convert → de-proceduralize (full inlining)
    → CPS optimize → static single use → instruction selection
    → ILP bank assignment + coloring + spills → decode to physical code

Each phase's artifact is kept on the :class:`Compilation` object so tests
and benchmarks can inspect intermediate state, and :func:`compile_nova`
wraps the common path.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

from repro.nova import ast
from repro.nova.parser import parse_program
from repro.nova.typecheck import TypedProgram, typecheck_program
from repro.cps import ir
from repro.cps.convert import CpsProgram, cps_convert
from repro.cps.deproc import FirstOrderProgram, deproceduralize
from repro.cps.optimize import OptimizeResult, optimize
from repro.cps.ssu import SsuStats, check_ssu, to_ssu
from repro.ixp.flowgraph import FlowGraph
from repro.ixp.select import select_instructions
from repro.alloc.allocator import AllocOptions, AllocResult, allocate


@dataclass
class CompileOptions:
    """Knobs for the end-to-end pipeline."""

    alloc: AllocOptions = field(default_factory=AllocOptions)
    #: Stop after instruction selection (no ILP); the virtual flowgraph
    #: still runs on the simulator and is the semantic reference.
    run_allocator: bool = True
    #: Disable the static-single-use transform (ablation only: programs
    #: with conflicting aggregate positions then have no feasible
    #: coloring, paper Sections 9-10).
    run_ssu: bool = True
    optimizer_rounds: int = 12


@dataclass
class SourceStats:
    """Static program statistics (paper Figure 5)."""

    line_count: int
    layouts: int
    packs: int
    unpacks: int
    raises: int
    handles: int

    @staticmethod
    def of(source: str, program: ast.Program) -> "SourceStats":
        counts = {"pack": 0, "unpack": 0, "raise": 0, "handle": 0}

        def walk(node: object) -> None:
            if isinstance(node, ast.PackExpr):
                counts["pack"] += 1
            elif isinstance(node, ast.UnpackExpr):
                counts["unpack"] += 1
            elif isinstance(node, ast.RaiseExpr):
                counts["raise"] += 1
            elif isinstance(node, ast.TryExpr):
                counts["handle"] += len(node.handlers)
            for name in vars(node) if hasattr(node, "__dict__") else ():
                child = getattr(node, name)
                items = child if isinstance(child, list) else [child]
                for item in items:
                    if isinstance(item, tuple):
                        for part in item:
                            if isinstance(part, (ast.Expr, ast.Handler)):
                                walk(part)
                    elif isinstance(item, ast.FunStmt):
                        walk(item.decl.body)
                    elif isinstance(
                        item,
                        (
                            ast.Expr,
                            ast.Handler,
                            ast.LetStmt,
                            ast.AssignStmt,
                            ast.ExprStmt,
                        ),
                    ):
                        walk(item)

        for fun in program.funs:
            walk(fun.body)
        return SourceStats(
            line_count=len(source.splitlines()),
            layouts=len(program.layouts),
            packs=counts["pack"],
            unpacks=counts["unpack"],
            raises=counts["raise"],
            handles=counts["handle"],
        )


@dataclass
class Compilation:
    """All artifacts of one compiler run."""

    source: str
    program: ast.Program
    typed: TypedProgram
    cps: CpsProgram
    first_order: FirstOrderProgram
    opt_result: OptimizeResult
    ssu: FirstOrderProgram
    ssu_stats: SsuStats
    flowgraph: FlowGraph
    alloc: AllocResult | None
    source_stats: SourceStats
    phase_seconds: dict[str, float]

    @property
    def physical(self) -> FlowGraph:
        assert self.alloc is not None, "allocator was not run"
        return self.alloc.physical

    @property
    def input_temps(self) -> tuple[str, ...]:
        return self.first_order.params

    def inputs_by_name(self) -> dict[str, list[str]]:
        """Entry-function source parameter names → flattened input temps."""
        return self.cps.param_names[self.cps.entry]

    def make_inputs(self, **values: int | list[int]) -> dict[str, int]:
        """Build a virtual-machine input dict from source parameter names.

        A multi-word parameter (tuple/record) takes a list of words.
        """
        mapping = self.inputs_by_name()
        out: dict[str, int] = {}
        for name, value in values.items():
            temps = mapping[name]
            words = value if isinstance(value, list) else [value]
            if len(words) != len(temps):
                raise ValueError(
                    f"parameter '{name}' has {len(temps)} words, got "
                    f"{len(words)}"
                )
            for temp, word in zip(temps, words):
                out[temp] = word
        return out


class Compiler:
    """Staged compiler; reusable across programs."""

    def __init__(self, options: CompileOptions | None = None):
        self.options = options or CompileOptions()

    def compile(self, source: str, filename: str = "<nova>") -> Compilation:
        times: dict[str, float] = {}

        def timed(name: str, fn):
            start = time.perf_counter()
            result = fn()
            times[name] = time.perf_counter() - start
            return result

        program = timed("parse", lambda: parse_program(source, filename))
        typed = timed("typecheck", lambda: typecheck_program(program))
        cps = timed("cps", lambda: cps_convert(typed))
        first_order = timed("deproc", lambda: deproceduralize(cps))
        opt = timed(
            "optimize",
            lambda: optimize(first_order.term, self.options.optimizer_rounds),
        )
        optimized = FirstOrderProgram(
            first_order.params, opt.term, first_order.gensym
        )
        if self.options.run_ssu:
            ssu, ssu_stats = timed("ssu", lambda: to_ssu(optimized))
            assert check_ssu(ssu.term), "SSU transform failed its own invariant"
        else:
            ssu, ssu_stats = optimized, SsuStats()
        graph = timed("select", lambda: select_instructions(ssu))
        alloc = None
        if self.options.run_allocator:
            alloc = timed("allocate", lambda: allocate(graph, self.options.alloc))
        return Compilation(
            source=source,
            program=program,
            typed=typed,
            cps=cps,
            first_order=first_order,
            opt_result=opt,
            ssu=ssu,
            ssu_stats=ssu_stats,
            flowgraph=graph,
            alloc=alloc,
            source_stats=SourceStats.of(source, program),
            phase_seconds=times,
        )


def compile_nova(
    source: str,
    filename: str = "<nova>",
    options: CompileOptions | None = None,
) -> Compilation:
    """Compile Nova source text through the whole pipeline."""
    return Compiler(options).compile(source, filename)
