"""CPS conversion: typed Nova AST → CPS term (paper Section 4.1).

Key properties established here:

- **Record flattening** — tuples and records exist only at compile time;
  every leaf field becomes its own CPS variable (Section 3.1).
- **SSA for temporaries** — conversion gensyms every binder and turns
  source-level assignment (``x := e``) and loops into continuation
  parameters, so no CPS variable is ever redefined (Section 4.2).
- **Exceptions as continuations** — handler names convert to continuation
  names; ``raise`` is a jump; exceptions passed to functions become
  continuation parameters (Section 3.4).
- **Booleans as control flow** — conditions convert directly to ``If``
  branches; a boolean is materialized as 0/1 only when used as data.
- **pack/unpack lowering** — layout recipes become shift/mask ALU chains;
  fields nobody reads are swept away later by useless-variable/dead-code
  elimination (Section 4.4).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from repro.errors import CpsError
from repro.nova import ast
from repro.nova import layouts as lay
from repro.nova import types as ty
from repro.nova.typecheck import BOTTOM, TypedProgram
from repro.cps import ir
from repro.cps.ir import AppCont, AppFun, Atom, Const, Halt, If, Var


# --------------------------------------------------------------------------
# Compile-time shapes: the flattened representation of Nova values
# --------------------------------------------------------------------------


@dataclass(frozen=True)
class Shape:
    """Compile-time description of how a Nova value is represented."""


@dataclass(frozen=True)
class Leaf(Shape):
    """A word or bool: one atom (register or constant)."""

    atom: Atom


@dataclass(frozen=True)
class UnitShape(Shape):
    pass


@dataclass(frozen=True)
class TupleShape(Shape):
    elems: tuple[Shape, ...]


@dataclass(frozen=True)
class RecordShape(Shape):
    fields: tuple[tuple[str, Shape], ...]

    def field(self, name: str) -> Shape | None:
        for fname, shape in self.fields:
            if fname == name:
                return shape
        return None


@dataclass(frozen=True)
class ExnShape(Shape):
    """An exception value: the name of its handler continuation."""

    cont: str


@dataclass(frozen=True)
class FunShape(Shape):
    """A nested function: its declaration plus the closure environment
    (a scope snapshot) captured where it was declared.  Calls inline the
    body with this environment (Section 3.1: closures need no memory)."""

    decl: object  # ast.FunDecl
    env: tuple  # scope snapshot (tuple of dicts, immutable-ish)


UNIT_SHAPE = UnitShape()


def data_leaves(shape: Shape) -> list[Atom]:
    """The data atoms of a shape in structural order (no exceptions)."""
    if isinstance(shape, Leaf):
        return [shape.atom]
    if isinstance(shape, (UnitShape, ExnShape)):
        return []
    if isinstance(shape, TupleShape):
        out: list[Atom] = []
        for elem in shape.elems:
            out.extend(data_leaves(elem))
        return out
    if isinstance(shape, RecordShape):
        out = []
        for _, sub in shape.fields:
            out.extend(data_leaves(sub))
        return out
    raise CpsError(f"unhandled shape {type(shape).__name__}")


def cont_leaves(shape: Shape) -> list[str]:
    """The exception-continuation names of a shape in structural order."""
    if isinstance(shape, ExnShape):
        return [shape.cont]
    if isinstance(shape, TupleShape):
        out: list[str] = []
        for elem in shape.elems:
            out.extend(cont_leaves(elem))
        return out
    if isinstance(shape, RecordShape):
        out = []
        for _, sub in shape.fields:
            out.extend(cont_leaves(sub))
        return out
    return []


def _shape_path_map(shape: Shape) -> dict[tuple[str, ...], Atom]:
    """Flatten a shape into path → atom (tuple indices as decimal)."""
    out: dict[tuple[str, ...], Atom] = {}

    def walk(s: Shape, prefix: tuple[str, ...]) -> None:
        if isinstance(s, Leaf):
            out[prefix] = s.atom
        elif isinstance(s, TupleShape):
            for i, elem in enumerate(s.elems):
                walk(elem, prefix + (str(i),))
        elif isinstance(s, RecordShape):
            for name, sub in s.fields:
                walk(sub, prefix + (name,))

    walk(shape, ())
    return out


# --------------------------------------------------------------------------
# Assigned-variable analysis (for join/loop parameters)
# --------------------------------------------------------------------------


def assigned_names(node: object) -> set[str]:
    """Names targeted by ``:=`` anywhere inside an AST fragment."""
    out: set[str] = set()

    def walk(n: object) -> None:
        if isinstance(n, ast.AssignStmt):
            out.add(n.name)
            walk(n.value)
        elif isinstance(n, ast.LetStmt):
            walk(n.init)
        elif isinstance(n, ast.ExprStmt):
            walk(n.expr)
        elif isinstance(n, ast.FunStmt):
            walk(n.decl.body)  # runs at call sites within this region
        elif isinstance(n, ast.Block):
            for s in n.stmts:
                walk(s)
            if n.result is not None:
                walk(n.result)
        elif isinstance(n, ast.Handler):
            walk(n.body)
        elif isinstance(n, ast.Expr):
            for name in vars(n):
                child = getattr(n, name)
                if isinstance(child, (ast.Expr, ast.Handler)):
                    walk(child)
                elif isinstance(child, list):
                    for item in child:
                        if isinstance(item, (ast.Expr, ast.Handler)):
                            walk(item)
                        elif isinstance(item, tuple):
                            for part in item:
                                if isinstance(part, ast.Expr):
                                    walk(part)

    walk(node)
    return out


# --------------------------------------------------------------------------
# The converter
# --------------------------------------------------------------------------


@dataclass
class CpsProgram:
    """Result of conversion: one CPS FunDef per Nova function."""

    funs: dict[str, ir.FunDef]
    entry: str
    gensym: ir.Gensym
    #: per function: source parameter name → its flattened data temps
    param_names: dict[str, dict[str, list[str]]] = None  # type: ignore[assignment]
    #: functions compiled with the two-continuation boolean convention
    #: (paper Section 4.1: "functions returning a bool take two return
    #: continuations instead of one")
    bool_returns: frozenset[str] = frozenset()


class _Converter:
    def __init__(self, typed: TypedProgram):
        self.typed = typed
        self.gensym = ir.Gensym()
        self.scopes: list[dict[str, Shape]] = []
        self.bool_returns: frozenset[str] = frozenset()

    # -- environment -------------------------------------------------------

    def push_scope(self) -> None:
        self.scopes.append({})

    def pop_scope(self) -> None:
        self.scopes.pop()

    def bind(self, name: str, shape: Shape) -> None:
        self.scopes[-1][name] = shape

    def lookup(self, name: str) -> Shape:
        for scope in reversed(self.scopes):
            if name in scope:
                return scope[name]
        raise CpsError(f"unbound variable '{name}' during conversion")

    def _try_lookup(self, name: str) -> Shape | None:
        for scope in reversed(self.scopes):
            if name in scope:
                return scope[name]
        return None

    def assign(self, name: str, shape: Shape) -> None:
        for scope in reversed(self.scopes):
            if name in scope:
                scope[name] = shape
                return
        raise CpsError(f"assignment to unbound '{name}' during conversion")

    def snapshot(self) -> list[dict[str, Shape]]:
        return [dict(scope) for scope in self.scopes]

    def restore(self, snap: list[dict[str, Shape]]) -> None:
        self.scopes = [dict(scope) for scope in snap]

    def in_scope(self, name: str) -> bool:
        return any(name in scope for scope in self.scopes)

    # -- shapes from types ----------------------------------------------------

    def fresh_shape(self, t: ty.Type, hint: str) -> tuple[Shape, list[str]]:
        """A shape of fresh variables matching type ``t`` plus the list of
        the fresh names in structural order (used as continuation params).
        """
        names: list[str] = []

        def build(t2: ty.Type) -> Shape:
            if isinstance(t2, (ty.Word, ty.Bool)):
                name = self.gensym.fresh(hint)
                names.append(name)
                return Leaf(Var(name))
            if isinstance(t2, ty.Unit) or t2 == BOTTOM:
                return UNIT_SHAPE
            if isinstance(t2, ty.Tuple):
                return TupleShape(tuple(build(e) for e in t2.elems))
            if isinstance(t2, ty.Record):
                return RecordShape(tuple((n, build(s)) for n, s in t2.fields))
            raise CpsError(f"cannot build runtime shape for type {t2}")

        return build(t), names

    # -- top level ----------------------------------------------------------

    def run(self) -> CpsProgram:
        funs: dict[str, ir.FunDef] = {}
        param_names: dict[str, dict[str, list[str]]] = {}
        entry = (
            "main"
            if any(f.name == "main" for f in self.typed.program.funs)
            else self.typed.program.funs[0].name
        )
        # The two-continuation convention applies to bool-returning
        # functions — except the entry, whose caller is the hardware.
        self.bool_returns = frozenset(
            decl.name
            for decl in self.typed.program.funs
            if self.typed.sigs[decl.name].ret == ty.BOOL
            and decl.name != entry
        )
        for decl in self.typed.program.funs:
            funs[decl.name] = self.convert_fun(decl)
            param_names[decl.name] = self._last_param_names
        return CpsProgram(
            funs, entry, self.gensym, param_names, self.bool_returns
        )

    def convert_fun(self, decl: ast.FunDecl) -> ir.FunDef:
        sig = self.typed.sigs[decl.name]
        self.scopes = []
        self.push_scope()
        data_params: list[str] = []
        cont_params: list[str] = []
        shape = self._bind_param_pattern(decl.param, sig.param, data_params, cont_params)
        del shape
        self._last_param_names = self._source_param_names(decl.param)
        if decl.name in self.bool_returns:
            # Two-continuation convention: the body is converted as
            # control flow, jumping to ret_true / ret_false.
            ret_true = self.gensym.fresh("rett")
            ret_false = self.gensym.fresh("retf")
            body = self.conv_cond(
                decl.body,
                lambda: AppCont(ret_true, ()),
                lambda: AppCont(ret_false, ()),
            )
            self.pop_scope()
            return ir.FunDef(
                decl.name,
                tuple(data_params),
                (ret_true, ret_false, *cont_params),
                body,
            )
        ret_cont = self.gensym.fresh("ret")
        body = self.conv(
            decl.body,
            lambda s: AppCont(ret_cont, tuple(data_leaves(s))),
            tail=True,
        )
        self.pop_scope()
        return ir.FunDef(
            decl.name,
            tuple(data_params),
            (ret_cont, *cont_params),
            body,
        )

    def _source_param_names(self, pat: ast.Pattern) -> dict[str, list[str]]:
        """Source parameter names → their flattened data temps (drivers
        use this to supply program inputs by source name)."""
        out: dict[str, list[str]] = {}

        def walk(p: ast.Pattern) -> None:
            if isinstance(p, ast.VarPat):
                shape = self.lookup(p.name)
                out[p.name] = [
                    atom.name
                    for atom in data_leaves(shape)
                    if isinstance(atom, Var)
                ]
            elif isinstance(p, ast.TuplePat):
                for sub in p.elems:
                    walk(sub)
            elif isinstance(p, ast.RecordPat):
                for _, sub in p.fields:
                    walk(sub)

        walk(pat)
        return out

    def _bind_param_pattern(
        self,
        pat: ast.Pattern,
        t: ty.Type,
        data_params: list[str],
        cont_params: list[str],
    ) -> Shape:
        """Create fresh parameters for a pattern and bind its variables."""

        def build(t2: ty.Type, hint: str) -> Shape:
            if isinstance(t2, (ty.Word, ty.Bool)):
                name = self.gensym.fresh(hint)
                data_params.append(name)
                return Leaf(Var(name))
            if isinstance(t2, ty.Unit):
                return UNIT_SHAPE
            if isinstance(t2, ty.Tuple):
                return TupleShape(tuple(build(e, hint) for e in t2.elems))
            if isinstance(t2, ty.Record):
                return RecordShape(
                    tuple((n, build(s, n)) for n, s in t2.fields)
                )
            if isinstance(t2, ty.Exn):
                name = self.gensym.fresh("exn")
                cont_params.append(name)
                return ExnShape(name)
            if isinstance(t2, ty.Arrow):
                raise CpsError(
                    "function-typed parameters are not supported by this "
                    "back end (pass exceptions instead)"
                )
            raise CpsError(f"unhandled parameter type {t2}")

        shape = build(t, "p")
        self.bind_pattern(pat, shape)
        return shape

    def bind_pattern(self, pat: ast.Pattern, shape: Shape) -> None:
        if isinstance(pat, ast.WildPat):
            return
        if isinstance(pat, ast.VarPat):
            self.bind(pat.name, shape)
            return
        if isinstance(pat, ast.TuplePat):
            if isinstance(shape, UnitShape) and not pat.elems:
                return
            if len(pat.elems) == 1 and not (
                isinstance(shape, TupleShape) and len(shape.elems) == 1
            ):
                # Singleton tuple patterns unwrap (parameter lists).
                self.bind_pattern(pat.elems[0], shape)
                return
            if not isinstance(shape, TupleShape) or len(shape.elems) != len(pat.elems):
                raise CpsError("tuple pattern arity mismatch during conversion")
            for sub, sub_shape in zip(pat.elems, shape.elems):
                self.bind_pattern(sub, sub_shape)
            return
        if isinstance(pat, ast.RecordPat):
            if not isinstance(shape, RecordShape):
                raise CpsError("record pattern over non-record shape")
            for name, sub in pat.fields:
                sub_shape = shape.field(name)
                if sub_shape is None:
                    raise CpsError(f"missing field '{name}' during conversion")
                self.bind_pattern(sub, sub_shape)
            return
        raise CpsError(f"unhandled pattern {type(pat).__name__}")

    # -- expression conversion -------------------------------------------------

    def conv(
        self,
        expr: ast.Expr,
        k: Callable[[Shape], ir.Term],
        tail: bool = False,
    ) -> ir.Term:
        """Convert ``expr``; ``k`` receives the value's shape exactly once
        (or never, if the expression provably diverges)."""
        if isinstance(expr, ast.IntLit):
            return k(Leaf(Const(expr.value)))
        if isinstance(expr, ast.BoolLit):
            return k(Leaf(Const(1 if expr.value else 0)))
        if isinstance(expr, ast.UnitLit):
            return k(UNIT_SHAPE)
        if isinstance(expr, ast.VarRef):
            return k(self.lookup(expr.name))
        if isinstance(expr, ast.TupleExpr):
            return self.conv_list(
                expr.elems, lambda shapes: k(TupleShape(tuple(shapes)))
            )
        if isinstance(expr, ast.RecordExpr):
            names = [n for n, _ in expr.fields]
            exprs = [e for _, e in expr.fields]
            return self.conv_list(
                exprs,
                lambda shapes: k(RecordShape(tuple(zip(names, shapes)))),
            )
        if isinstance(expr, ast.FieldAccess):
            def project(shape: Shape) -> ir.Term:
                if isinstance(shape, RecordShape):
                    sub = shape.field(expr.field_name)
                    if sub is None:
                        raise CpsError(f"no field '{expr.field_name}'")
                    return k(sub)
                if isinstance(shape, TupleShape):
                    return k(shape.elems[int(expr.field_name)])
                raise CpsError("projection from non-aggregate shape")

            return self.conv(expr.base, project)
        if isinstance(expr, ast.UnOp):
            return self.conv_unop(expr, k)
        if isinstance(expr, ast.BinOp):
            return self.conv_binop(expr, k)
        if isinstance(expr, ast.IfExpr):
            return self.conv_if(expr, k, tail)
        if isinstance(expr, ast.WhileExpr):
            return self.conv_while(expr, k)
        if isinstance(expr, ast.Block):
            return self.conv_block(expr, k, tail)
        if isinstance(expr, ast.Call):
            return self.conv_call(expr, k)
        if isinstance(expr, ast.MemRead):
            return self.conv_mem_read(expr, k)
        if isinstance(expr, ast.MemWrite):
            return self.conv_mem_write(expr, k)
        if isinstance(expr, ast.HashOp):
            def do_hash(shape: Shape) -> ir.Term:
                dst = self.gensym.fresh("h")
                return ir.Special(
                    dst, "hash", (self._leaf_atom(shape),), k(Leaf(Var(dst)))
                )

            return self.conv(expr.operand, do_hash)
        if isinstance(expr, ast.CsrOp):
            if expr.value is None:
                dst = self.gensym.fresh("csr")
                return ir.Special(
                    dst, "csr_rd", (Const(expr.number),), k(Leaf(Var(dst)))
                )

            def do_write(shape: Shape) -> ir.Term:
                return ir.Special(
                    None,
                    "csr_wr",
                    (Const(expr.number), self._leaf_atom(shape)),
                    k(UNIT_SHAPE),
                )

            return self.conv(expr.value, do_write)
        if isinstance(expr, ast.CtxSwap):
            return ir.Special(None, "ctx_swap", (), k(UNIT_SHAPE))
        if isinstance(expr, ast.LockOp):
            return ir.Special(
                None, expr.kind, (Const(expr.number),), k(UNIT_SHAPE)
            )
        if isinstance(expr, ast.UnpackExpr):
            return self.conv_unpack(expr, k)
        if isinstance(expr, ast.PackExpr):
            return self.conv_pack(expr, k)
        if isinstance(expr, ast.RaiseExpr):
            return self.conv_raise(expr)
        if isinstance(expr, ast.TryExpr):
            return self.conv_try(expr, k, tail)
        raise CpsError(f"unhandled expression {type(expr).__name__}")

    def conv_list(
        self,
        exprs: list[ast.Expr],
        k: Callable[[list[Shape]], ir.Term],
    ) -> ir.Term:
        shapes: list[Shape] = []

        def step(index: int) -> ir.Term:
            if index == len(exprs):
                return k(shapes)
            return self.conv(
                exprs[index],
                lambda s: (shapes.append(s), step(index + 1))[1],
            )

        return step(0)

    @staticmethod
    def _leaf_atom(shape: Shape) -> Atom:
        if not isinstance(shape, Leaf):
            raise CpsError(f"expected word value, got {type(shape).__name__}")
        return shape.atom

    # -- operators ---------------------------------------------------------

    _PRIM_OF_OP = {
        "+": "add",
        "-": "sub",
        "*": "mul",
        "/": "div",
        "%": "mod",
        "&": "and",
        "|": "or",
        "^": "xor",
        "<<": "shl",
        ">>": "shr",
    }

    _CMP_OF_OP = {
        "==": "eq",
        "!=": "ne",
        "<": "lt",
        "<=": "le",
        ">": "gt",
        ">=": "ge",
    }

    def conv_unop(self, expr: ast.UnOp, k) -> ir.Term:
        if expr.op == "!":
            # Boolean negation: flip 0/1 with xor.
            def flip(shape: Shape) -> ir.Term:
                dst = self.gensym.fresh("b")
                return ir.LetPrim(
                    dst, "xor", (self._leaf_atom(shape), Const(1)), k(Leaf(Var(dst)))
                )

            return self.conv(expr.operand, flip)
        op = "not" if expr.op == "~" else "neg"

        def apply(shape: Shape) -> ir.Term:
            dst = self.gensym.fresh("t")
            return ir.LetPrim(dst, op, (self._leaf_atom(shape),), k(Leaf(Var(dst))))

        return self.conv(expr.operand, apply)

    def conv_binop(self, expr: ast.BinOp, k) -> ir.Term:
        if expr.op in self._PRIM_OF_OP:
            prim = self._PRIM_OF_OP[expr.op]

            def left_done(ls: Shape) -> ir.Term:
                def right_done(rs: Shape) -> ir.Term:
                    dst = self.gensym.fresh("t")
                    return ir.LetPrim(
                        dst,
                        prim,
                        (self._leaf_atom(ls), self._leaf_atom(rs)),
                        k(Leaf(Var(dst))),
                    )

                return self.conv(expr.right, right_done)

            return self.conv(expr.left, left_done)
        # Comparison or boolean connective in value position: materialize
        # 0/1 through a join continuation.
        join = self.gensym.fresh("bj")
        result = self.gensym.fresh("b")
        body = self.conv_cond(
            expr,
            lambda: AppCont(join, (Const(1),)),
            lambda: AppCont(join, (Const(0),)),
        )
        return ir.LetCont(join, (result,), k(Leaf(Var(result))), body)

    def conv_cond(
        self,
        expr: ast.Expr,
        kt: Callable[[], ir.Term],
        kf: Callable[[], ir.Term],
    ) -> ir.Term:
        """Convert a boolean expression as control flow (Section 4.1).

        ``kt``/``kf`` must produce *small* terms (jumps); they may be
        invoked multiple times along different paths.
        """
        if isinstance(expr, ast.BoolLit):
            return kt() if expr.value else kf()
        if isinstance(expr, ast.UnOp) and expr.op == "!":
            return self.conv_cond(expr.operand, kf, kt)
        if isinstance(expr, ast.BinOp) and expr.op == "&&":
            return self.conv_cond(
                expr.left, lambda: self.conv_cond(expr.right, kt, kf), kf
            )
        if isinstance(expr, ast.BinOp) and expr.op == "||":
            return self.conv_cond(
                expr.left, kt, lambda: self.conv_cond(expr.right, kt, kf)
            )
        if isinstance(expr, ast.BinOp) and expr.op in self._CMP_OF_OP:
            cmp = self._CMP_OF_OP[expr.op]
            bool_operands = getattr(expr.left, "ty", None) == ty.BOOL

            def left_done(ls: Shape) -> ir.Term:
                def right_done(rs: Shape) -> ir.Term:
                    return If(
                        cmp,
                        self._leaf_atom(ls),
                        self._leaf_atom(rs),
                        kt(),
                        kf(),
                    )

                return self.conv(expr.right, right_done)

            del bool_operands
            return self.conv(expr.left, left_done)
        if isinstance(expr, ast.Block):
            # A block in condition position (typically a function body):
            # convert the statements, then the result as control flow.
            depth = len(self.scopes)
            self.push_scope()

            def finish(which):
                # kt/kf close over the *caller's* scope: hide the block
                # scopes while they build their jumps, then restore them
                # for the rest of the construction.
                def inner():
                    saved = self.scopes
                    self.scopes = self.scopes[:depth]
                    term = which()
                    self.scopes = saved
                    return term

                return inner

            def step(index: int) -> ir.Term:
                if index == len(expr.stmts):
                    result = expr.result
                    assert result is not None, "bool block lacks a result"
                    return self.conv_cond(result, finish(kt), finish(kf))
                stmt = expr.stmts[index]
                if isinstance(stmt, ast.FunStmt):
                    self.bind(
                        stmt.decl.name,
                        FunShape(stmt.decl, tuple(self.snapshot())),
                    )
                    return step(index + 1)
                if isinstance(stmt, ast.LetStmt):
                    def bound(shape: Shape, index=index, stmt=stmt) -> ir.Term:
                        self.bind_pattern(stmt.pat, shape)
                        return step(index + 1)

                    return self.conv(stmt.init, bound)
                if isinstance(stmt, ast.AssignStmt):
                    def assigned(shape: Shape, index=index, stmt=stmt) -> ir.Term:
                        self.assign(stmt.name, shape)
                        return step(index + 1)

                    return self.conv(stmt.value, assigned)
                return self.conv(stmt.expr, lambda s, index=index: step(index + 1))

            term = step(0)
            del self.scopes[depth:]
            return term
        if (
            isinstance(expr, ast.IfExpr)
            and expr.else_branch is not None
            and not any(
                self.in_scope(n) for n in assigned_names(expr.cond)
            )
        ):
            # A bool-valued if in condition position: keep everything as
            # control flow (this is also what keeps tail recursion in
            # bool functions a loop).  All thunks become named zero-arg
            # continuations so nothing is duplicated.
            kt_name = self.gensym.fresh("kt")
            kf_name = self.gensym.fresh("kf")
            then_name = self.gensym.fresh("kb")
            else_name = self.gensym.fresh("ke")
            snap = self.snapshot()

            def jump(name):
                return lambda: AppCont(name, ())

            self.restore(snap)
            then_term = self.conv_cond(
                expr.then_branch, jump(kt_name), jump(kf_name)
            )
            self.restore(snap)
            else_term = self.conv_cond(
                expr.else_branch, jump(kt_name), jump(kf_name)
            )
            self.restore(snap)
            cond_term = self.conv_cond(
                expr.cond, jump(then_name), jump(else_name)
            )
            self.restore(snap)
            return ir.LetCont(
                kt_name,
                (),
                kt(),
                ir.LetCont(
                    kf_name,
                    (),
                    kf(),
                    ir.LetCont(
                        then_name,
                        (),
                        then_term,
                        ir.LetCont(else_name, (), else_term, cond_term),
                    ),
                ),
            )
        if isinstance(expr, ast.Call) and expr.fn in self.bool_returns:
            # Wire the branch continuations straight into the callee
            # (paper Section 4.1) — no 0/1 ever materializes.
            def with_arg(arg_shape: Shape) -> ir.Term:
                data = tuple(data_leaves(arg_shape))
                exns = tuple(cont_leaves(arg_shape))
                kt_name = self.gensym.fresh("kt")
                kf_name = self.gensym.fresh("kf")
                return ir.LetCont(
                    kt_name,
                    (),
                    kt(),
                    ir.LetCont(
                        kf_name,
                        (),
                        kf(),
                        AppFun(expr.fn, data, (kt_name, kf_name, *exns)),
                    ),
                )

            return self.conv(expr.arg, with_arg)
        # General boolean value: compare against 0.
        return self.conv(
            expr,
            lambda s: If("ne", self._leaf_atom(s), Const(0), kt(), kf()),
        )

    # -- control ---------------------------------------------------------------

    def _changed_leaves(self, names: list[str]) -> list[Atom]:
        out: list[Atom] = []
        for name in names:
            out.extend(data_leaves(self.lookup(name)))
        return out

    def _rebind_changed(self, names: list[str], params: list[str]) -> None:
        """After a join, point each changed variable at its join params."""
        index = 0

        def rebuild(shape: Shape) -> Shape:
            nonlocal index
            if isinstance(shape, Leaf):
                leaf = Leaf(Var(params[index]))
                index += 1
                return leaf
            if isinstance(shape, TupleShape):
                return TupleShape(tuple(rebuild(e) for e in shape.elems))
            if isinstance(shape, RecordShape):
                return RecordShape(
                    tuple((n, rebuild(s)) for n, s in shape.fields)
                )
            return shape

        for name in names:
            self.assign(name, rebuild(self.lookup(name)))

    def conv_if(self, expr: ast.IfExpr, k, tail: bool) -> ir.Term:
        branch_changed = assigned_names(expr.then_branch) | (
            assigned_names(expr.else_branch) if expr.else_branch else set()
        )
        cond_changed = sorted(
            n for n in assigned_names(expr.cond) if self.in_scope(n)
        )
        changed = sorted(
            n
            for n in (branch_changed | set(cond_changed))
            if self.in_scope(n)
        )
        result_t = getattr(expr, "ty", ty.UNIT)
        join = self.gensym.fresh("j")
        result_shape, result_params = self.fresh_shape(
            result_t if result_t != BOTTOM else ty.UNIT, "v"
        )
        snap = self.snapshot()

        # The then/else arms become continuations parameterized over the
        # variables the *condition* may assign, so that conv_cond's thunks
        # are cheap jumps and can be duplicated along &&/|| paths.
        def make_arm(branch_expr: ast.Expr | None) -> tuple[tuple[str, ...], ir.Term]:
            self.restore(snap)
            cparams = [
                self.gensym.fresh(n)
                for n in cond_changed
                for _ in data_leaves(self.lookup(n))
            ]
            self._rebind_changed(cond_changed, cparams)
            if branch_expr is None:
                return tuple(cparams), AppCont(
                    join, tuple(self._changed_leaves(changed))
                )

            def finish(shape: Shape) -> ir.Term:
                args = tuple(data_leaves(shape)) + tuple(
                    self._changed_leaves(changed)
                )
                return AppCont(join, args)

            return tuple(cparams), self.conv(branch_expr, finish, tail)

        then_params, then_body = make_arm(expr.then_branch)
        else_params, else_body = make_arm(expr.else_branch)
        then_cont = self.gensym.fresh("kt")
        else_cont = self.gensym.fresh("kf")

        self.restore(snap)
        body = self.conv_cond(
            expr.cond,
            lambda: AppCont(then_cont, tuple(self._changed_leaves(cond_changed))),
            lambda: AppCont(else_cont, tuple(self._changed_leaves(cond_changed))),
        )
        self.restore(snap)
        changed_params = [
            self.gensym.fresh(n)
            for n in changed
            for _ in data_leaves(self.lookup(n))
        ]
        self._rebind_changed(changed, changed_params)
        return ir.LetCont(
            join,
            tuple(result_params) + tuple(changed_params),
            k(result_shape),
            ir.LetCont(
                then_cont,
                then_params,
                then_body,
                ir.LetCont(else_cont, else_params, else_body, body),
            ),
        )

    def conv_while(self, expr: ast.WhileExpr, k) -> ir.Term:
        changed = sorted(
            name
            for name in (assigned_names(expr.body) | assigned_names(expr.cond))
            if self.in_scope(name)
        )
        loop = self.gensym.fresh("loop")
        done = self.gensym.fresh("done")
        entry_args = tuple(self._changed_leaves(changed))
        loop_params = [
            self.gensym.fresh(n)
            for n in changed
            for _ in data_leaves(self.lookup(n))
        ]
        snap = self.snapshot()
        self._rebind_changed(changed, loop_params)
        loop_snap = self.snapshot()

        # As in conv_if, the loop body and the exit become continuations
        # parameterized over variables the condition may assign, keeping
        # conv_cond's thunks duplicable.
        cond_changed = sorted(
            n for n in assigned_names(expr.cond) if self.in_scope(n)
        )
        body_cont = self.gensym.fresh("kb")
        self.restore(loop_snap)
        body_cparams = [
            self.gensym.fresh(n)
            for n in cond_changed
            for _ in data_leaves(self.lookup(n))
        ]
        self._rebind_changed(cond_changed, body_cparams)

        def after_body(_shape: Shape) -> ir.Term:
            return AppCont(loop, tuple(self._changed_leaves(changed)))

        body_term = self.conv(expr.body, after_body)

        self.restore(loop_snap)
        exit_cparams = [
            self.gensym.fresh(n)
            for n in cond_changed
            for _ in data_leaves(self.lookup(n))
        ]
        self._rebind_changed(cond_changed, exit_cparams)
        exit_args = tuple(self._changed_leaves(changed))
        exit_cont = self.gensym.fresh("ke")

        self.restore(loop_snap)
        cond_term = self.conv_cond(
            expr.cond,
            lambda: AppCont(body_cont, tuple(self._changed_leaves(cond_changed))),
            lambda: AppCont(exit_cont, tuple(self._changed_leaves(cond_changed))),
        )
        loop_body = ir.LetCont(
            body_cont,
            tuple(body_cparams),
            body_term,
            ir.LetCont(
                exit_cont,
                tuple(exit_cparams),
                AppCont(done, exit_args),
                cond_term,
            ),
        )
        self.restore(snap)
        done_params = [
            self.gensym.fresh(n)
            for n in changed
            for _ in data_leaves(self.lookup(n))
        ]
        self._rebind_changed(changed, done_params)
        return ir.LetCont(
            loop,
            tuple(loop_params),
            loop_body,
            ir.LetCont(
                done,
                tuple(done_params),
                k(UNIT_SHAPE),
                AppCont(loop, entry_args),
            ),
            recursive=True,
        )

    def conv_block(self, block: ast.Block, k, tail: bool) -> ir.Term:
        depth = len(self.scopes)
        self.push_scope()

        def pop_and(fn):
            def inner(shape: Shape) -> ir.Term:
                del self.scopes[depth:]
                return fn(shape)

            return inner

        def step(index: int) -> ir.Term:
            if index == len(block.stmts):
                if block.result is None:
                    self.pop_scope()
                    return k(UNIT_SHAPE)
                return self.conv(block.result, pop_and(k), tail)
            stmt = block.stmts[index]
            if isinstance(stmt, ast.FunStmt):
                self.bind(
                    stmt.decl.name,
                    FunShape(stmt.decl, tuple(self.snapshot())),
                )
                return step(index + 1)
            if isinstance(stmt, ast.LetStmt):
                def bound(shape: Shape) -> ir.Term:
                    self.bind_pattern(stmt.pat, shape)
                    return step(index + 1)

                return self.conv(stmt.init, bound)
            if isinstance(stmt, ast.AssignStmt):
                def assigned(shape: Shape) -> ir.Term:
                    self.assign(stmt.name, shape)
                    return step(index + 1)

                return self.conv(stmt.value, assigned)
            # Expression statement; a diverging expression ends the block.
            stmt_ty = getattr(stmt.expr, "ty", ty.UNIT)
            if stmt_ty == BOTTOM:
                term = self.conv(stmt.expr, lambda s: Halt(()))
                self.pop_scope()
                return term
            return self.conv(stmt.expr, lambda s: step(index + 1))

        return step(0)

    # -- calls, exceptions -------------------------------------------------------

    def conv_call(self, expr: ast.Call, k) -> ir.Term:
        # Nested functions shadow top-level ones and inline right here,
        # converting the body under the declaration-site environment.
        local = self._try_lookup(expr.fn)
        if isinstance(local, FunShape):
            def with_arg_nested(arg_shape: Shape) -> ir.Term:
                call_env = self.snapshot()
                self.restore(list(local.env))
                self.push_scope()
                self.bind_pattern(local.decl.param, arg_shape)

                def finish(shape: Shape) -> ir.Term:
                    self.restore(call_env)
                    return k(shape)

                return self.conv(local.decl.body, finish)

            return self.conv(expr.arg, with_arg_nested)

        sig = self.typed.sigs.get(expr.fn)
        if sig is None:
            raise CpsError(f"call to unknown function '{expr.fn}'")

        if expr.fn in self.bool_returns:
            # Two-continuation callee in value position: rejoin on a
            # materialized 0/1 (condition positions go through
            # conv_cond, which wires the continuations directly).
            def with_arg_bool(arg_shape: Shape) -> ir.Term:
                data = tuple(data_leaves(arg_shape))
                exns = tuple(cont_leaves(arg_shape))
                join = self.gensym.fresh("bj")
                value = self.gensym.fresh("b")
                rt = self.gensym.fresh("rt")
                rf = self.gensym.fresh("rf")
                return ir.LetCont(
                    join,
                    (value,),
                    k(Leaf(Var(value))),
                    ir.LetCont(
                        rt,
                        (),
                        AppCont(join, (Const(1),)),
                        ir.LetCont(
                            rf,
                            (),
                            AppCont(join, (Const(0),)),
                            AppFun(expr.fn, data, (rt, rf, *exns)),
                        ),
                    ),
                )

            return self.conv(expr.arg, with_arg_bool)

        def with_arg(arg_shape: Shape) -> ir.Term:
            data = tuple(data_leaves(arg_shape))
            exns = tuple(cont_leaves(arg_shape))
            ret = self.gensym.fresh("r")
            assert sig.ret is not None
            ret_shape, ret_params = self.fresh_shape(
                sig.ret if sig.ret != BOTTOM else ty.UNIT, "rv"
            )
            return ir.LetCont(
                ret,
                tuple(ret_params),
                k(ret_shape),
                AppFun(expr.fn, data, (ret, *exns)),
            )

        return self.conv(expr.arg, with_arg)

    def conv_raise(self, expr: ast.RaiseExpr) -> ir.Term:
        shape = self.lookup(expr.exn)
        if not isinstance(shape, ExnShape):
            raise CpsError(f"'{expr.exn}' is not an exception at conversion")

        def jump(arg_shape: Shape) -> ir.Term:
            return AppCont(shape.cont, tuple(data_leaves(arg_shape)))

        return self.conv(expr.arg, jump)

    def conv_try(self, expr: ast.TryExpr, k, tail: bool) -> ir.Term:
        result_t = getattr(expr, "ty", ty.UNIT)
        join = self.gensym.fresh("j")
        result_shape, result_params = self.fresh_shape(
            result_t if result_t != BOTTOM else ty.UNIT, "v"
        )
        changed = sorted(
            name
            for name in set().union(
                *[assigned_names(h.body) for h in expr.handlers], set()
            )
            if self.in_scope(name)
        )
        snap = self.snapshot()

        def to_join(shape: Shape) -> ir.Term:
            args = tuple(data_leaves(shape)) + tuple(self._changed_leaves(changed))
            return AppCont(join, args)

        # Convert handler bodies (env as of try entry).
        handler_conts: list[tuple[str, tuple[str, ...], ir.Term]] = []
        handler_names: dict[str, str] = {}
        for handler in expr.handlers:
            cont_name = self.gensym.fresh(f"h_{handler.exn}")
            handler_names[handler.exn] = cont_name
            self.restore(snap)
            self.push_scope()
            arg_t = self._handler_arg_type(handler)
            arg_shape, arg_params = self.fresh_shape(arg_t, "x")
            self.bind_pattern(handler.pat, arg_shape)
            hbody = self.conv(handler.body, to_join, tail)
            self.pop_scope()
            handler_conts.append((cont_name, tuple(arg_params), hbody))

        # Convert the try body with handler names in scope.
        self.restore(snap)
        self.push_scope()
        for handler in expr.handlers:
            self.bind(handler.exn, ExnShape(handler_names[handler.exn]))
        body = self.conv(expr.body, to_join, tail)
        self.pop_scope()

        for cont_name, params, hbody in reversed(handler_conts):
            body = ir.LetCont(cont_name, params, hbody, body)

        self.restore(snap)
        changed_params = [
            self.gensym.fresh(n)
            for n in changed
            for _ in data_leaves(self.lookup(n))
        ]
        self._rebind_changed(changed, changed_params)
        return ir.LetCont(
            join,
            tuple(result_params) + tuple(changed_params),
            k(result_shape),
            body,
        )

    def _handler_arg_type(self, handler: ast.Handler) -> ty.Type:
        # Recompute the handler argument type the same way the checker did.
        from repro.nova.typecheck import _Checker

        checker = _Checker(self.typed.program)
        checker.layout_env = self.typed.layout_env
        return checker.pattern_type(handler.pat)

    # -- memory and layouts -------------------------------------------------------

    def conv_mem_read(self, expr: ast.MemRead, k) -> ir.Term:
        count = expr.count or 1

        def with_addr(addr_shape: Shape) -> ir.Term:
            names = tuple(self.gensym.fresh("m") for _ in range(count))
            leaves = tuple(Leaf(Var(n)) for n in names)
            shape: Shape = leaves[0] if count == 1 else TupleShape(leaves)
            return ir.MemRead(
                names, expr.space, self._leaf_atom(addr_shape), k(shape)
            )

        return self.conv(expr.addr, with_addr)

    def conv_mem_write(self, expr: ast.MemWrite, k) -> ir.Term:
        def with_addr(addr_shape: Shape) -> ir.Term:
            addr = self._leaf_atom(addr_shape)

            def with_value(value_shape: Shape) -> ir.Term:
                atoms = tuple(data_leaves(value_shape))
                return ir.MemWrite(expr.space, addr, atoms, k(UNIT_SHAPE))

            return self.conv(expr.value, with_value)

        return self.conv(expr.addr, with_addr)

    def conv_unpack(self, expr: ast.UnpackExpr, k) -> ir.Term:
        layout: lay.Layout = expr.resolved_layout

        def with_packed(shape: Shape) -> ir.Term:
            words = data_leaves(shape)
            prefix: list[ir.Term] = []  # built via nesting below

            path_atoms: dict[tuple[str, ...], Atom] = {}
            chain: list[Callable[[ir.Term], ir.Term]] = []
            for leaf in lay.leaf_fields(layout):
                recipe = lay.extract_recipe(leaf)
                atom, steps = self._emit_extract(words, recipe)
                path_atoms[leaf.path] = atom
                chain.extend(steps)
            result = self._shape_from_type(
                ty.unpacked_type(layout), path_atoms, ()
            )
            term = k(result)
            for step in reversed(chain):
                term = step(term)
            del prefix
            return term

        return self.conv(expr.arg, with_packed)

    def _emit_extract(
        self, words: list[Atom], recipe: lay.ExtractRecipe
    ) -> tuple[Atom, list[Callable[[ir.Term], ir.Term]]]:
        """Plan the ALU ops computing one field; returns (atom, steps)."""
        steps: list[Callable[[ir.Term], ir.Term]] = []

        def emit(op: str, args: tuple[Atom, ...]) -> Atom:
            dst = self.gensym.fresh("f")
            steps.append(
                lambda body, dst=dst, op=op, args=args: ir.LetPrim(
                    dst, op, args, body
                )
            )
            return Var(dst)

        part_atoms: list[Atom] = []
        for part in recipe.parts:
            atom = words[part.index]
            covered = 32 - part.right_shift  # bits surviving the shift
            if part.right_shift:
                atom = emit("shr", (atom, Const(part.right_shift)))
            if part.mask != (1 << covered) - 1:
                atom = emit("and", (atom, Const(part.mask)))
            if part.left_shift:
                atom = emit("shl", (atom, Const(part.left_shift)))
            part_atoms.append(atom)
        result = part_atoms[0]
        for other in part_atoms[1:]:
            result = emit("or", (result, other))
        return result, steps

    def _shape_from_type(
        self,
        t: ty.Type,
        path_atoms: dict[tuple[str, ...], Atom],
        prefix: tuple[str, ...],
    ) -> Shape:
        if isinstance(t, (ty.Word, ty.Bool)):
            return Leaf(path_atoms[prefix])
        if isinstance(t, ty.Unit):
            return UNIT_SHAPE
        if isinstance(t, ty.Tuple):
            return TupleShape(
                tuple(
                    self._shape_from_type(e, path_atoms, prefix + (str(i),))
                    for i, e in enumerate(t.elems)
                )
            )
        if isinstance(t, ty.Record):
            return RecordShape(
                tuple(
                    (n, self._shape_from_type(s, path_atoms, prefix + (n,)))
                    for n, s in t.fields
                )
            )
        raise CpsError(f"unhandled unpacked type {t}")

    def conv_pack(self, expr: ast.PackExpr, k) -> ir.Term:
        layout: lay.Layout = expr.resolved_layout
        chosen: dict[tuple[str, ...], str] = getattr(expr, "chosen_alts", {})
        n_words = lay.packed_words(layout)

        def with_arg(arg_shape: Shape) -> ir.Term:
            values = _shape_path_map(arg_shape)
            steps: list[Callable[[ir.Term], ir.Term]] = []

            def emit(op: str, args: tuple[Atom, ...]) -> Atom:
                dst = self.gensym.fresh("w")
                steps.append(
                    lambda body, dst=dst, op=op, args=args: ir.LetPrim(
                        dst, op, args, body
                    )
                )
                return Var(dst)

            word_atoms: list[Atom] = [Const(0)] * n_words
            for leaf in lay.leaf_fields(layout):
                if not _leaf_selected(leaf.path, chosen):
                    continue
                value = values.get(leaf.path)
                if value is None:
                    raise CpsError(
                        f"pack: missing field {'.'.join(leaf.path)}"
                    )
                for part in lay.deposit_recipe(leaf).parts:
                    atom = value
                    if part.value_shift:
                        atom = emit("shr", (atom, Const(part.value_shift)))
                    # Mask unless the subsequent shift would discard the
                    # high bits anyway; always safe to mask.
                    atom = emit("and", (atom, Const(part.mask)))
                    if part.word_shift:
                        atom = emit("shl", (atom, Const(part.word_shift)))
                    current = word_atoms[part.index]
                    if current == Const(0):
                        word_atoms[part.index] = atom
                    else:
                        word_atoms[part.index] = emit("or", (current, atom))
            shape: Shape = (
                Leaf(word_atoms[0])
                if n_words == 1
                else TupleShape(tuple(Leaf(a) for a in word_atoms))
            )
            term = k(shape)
            for step in reversed(steps):
                term = step(term)
            return term

        return self.conv(expr.arg, with_arg)


def _leaf_selected(
    path: tuple[str, ...], chosen: dict[tuple[str, ...], str]
) -> bool:
    for prefix, alt in chosen.items():
        if path[: len(prefix)] == prefix and len(path) > len(prefix):
            if path[len(prefix)] != alt:
                return False
    return True


def cps_convert(typed: TypedProgram) -> CpsProgram:
    """Convert a type-checked Nova program to CPS."""
    return _Converter(typed).run()
