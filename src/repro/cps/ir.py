"""The CPS intermediate representation (paper Section 4).

All intermediate values are explicitly named; records and tuples have
been flattened away by conversion, so every CPS variable conceptually
corresponds to a single machine register (Section 4.1).  Control is
expressed with second-class continuations: source-level loops, joins,
exceptions and function returns all become :class:`LetCont` /
:class:`AppCont`.

The representation is *functional*: conversion generates a fresh name
for every binder, which directly gives the static single assignment
property the ILP back end relies on (Section 4.2) — CPS "is already
powerful enough to express SSA directly".

Grammar::

    atom ::= Var(x) | Const(n)
    term ::= LetVal(x, atom, body)              -- x = atom (move)
           | LetPrim(x, op, args, body)          -- ALU operation
           | MemRead(xs, space, addr, body)      -- aggregate load
           | MemWrite(space, addr, atoms, body)  -- aggregate store
           | LetClone(x, y, body)                -- SSU clone (Section 10)
           | Special(x?, op, args, body)         -- hash / csr / ctx_swap
           | LetCont(k, params, kbody, body, rec)
           | AppCont(k, atoms)
           | LetFun(fundefs, body)
           | AppFun(f, atoms, cont_names)
           | If(cmp, a, b, then_term, else_term)
           | Halt(atoms)
"""

from __future__ import annotations

import copy
import itertools
from dataclasses import dataclass


# --------------------------------------------------------------------------
# Atoms
# --------------------------------------------------------------------------


@dataclass(frozen=True)
class Atom:
    pass


@dataclass(frozen=True)
class Var(Atom):
    name: str

    def __str__(self) -> str:
        return self.name


@dataclass(frozen=True)
class Const(Atom):
    value: int

    def __str__(self) -> str:
        return str(self.value) if self.value < 1024 else hex(self.value)


# Primitive ALU operations.  These correspond 1:1 to IXP micro-engine ALU
# capabilities (``mul``/``div``/``mod`` expand during selection).
PRIM_OPS = frozenset(
    {
        "add",
        "sub",
        "mul",
        "div",
        "mod",
        "and",
        "or",
        "xor",
        "shl",
        "shr",
        "not",  # bitwise complement (unary)
        "neg",  # arithmetic negation (unary)
    }
)

# Comparison operators for If.
CMP_OPS = frozenset({"eq", "ne", "lt", "le", "gt", "ge"})

CMP_NEGATE = {
    "eq": "ne",
    "ne": "eq",
    "lt": "ge",
    "le": "gt",
    "gt": "le",
    "ge": "lt",
}

CMP_SWAP = {
    "eq": "eq",
    "ne": "ne",
    "lt": "gt",
    "le": "ge",
    "gt": "lt",
    "ge": "le",
}

# Special (non-ALU) operations with their (num_args, has_result).
SPECIAL_OPS = {
    "hash": (1, True),  # hash unit; dst/src share a register number
    "csr_rd": (1, True),  # arg is the csr number as a Const
    "csr_wr": (2, False),  # csr number, value
    "ctx_swap": (0, False),
    "lock": (1, False),  # lock bit number as a Const; spins until held
    "unlock": (1, False),
}

# Special ops without observable side effects (safe to remove when dead).
PURE_SPECIALS = frozenset({"hash"})

MEM_SPACES = ("sram", "sdram", "scratch", "rfifo", "tfifo")


# --------------------------------------------------------------------------
# Terms
# --------------------------------------------------------------------------


@dataclass
class Term:
    pass


@dataclass
class LetVal(Term):
    """``let x = atom in body`` — a move or constant naming."""

    var: str
    atom: Atom
    body: Term


@dataclass
class LetPrim(Term):
    """``let x = op(args) in body`` — one ALU operation."""

    var: str
    op: str
    args: tuple[Atom, ...]
    body: Term


@dataclass
class MemRead(Term):
    """``let (xs...) = space[addr] in body`` — an aggregate load.

    The targets land in adjacent transfer registers (L for sram/scratch,
    LD for sdram): this produces the DefLi / DefLDj sets of the ILP model.
    """

    vars: tuple[str, ...]
    space: str
    addr: Atom
    body: Term


@dataclass
class MemWrite(Term):
    """``space[addr] <- (atoms...) ; body`` — an aggregate store.

    Operands must sit in adjacent write-transfer registers (S / SD):
    the UseSi / UseSDj sets of the ILP model.
    """

    space: str
    addr: Atom
    atoms: tuple[Atom, ...]
    body: Term


@dataclass
class LetClone(Term):
    """``let x = clone(y) in body`` (Section 10).

    Semantically a copy; the ILP model may — but need not — assign x and
    y to the same register, because clones do not interfere.
    """

    var: str
    source: str
    body: Term


@dataclass
class Special(Term):
    """Hash unit / CSR / concurrency operations."""

    var: str | None
    op: str
    args: tuple[Atom, ...]
    body: Term


@dataclass
class LetCont(Term):
    """``letcont k(params) = kbody in body``.

    ``recursive`` marks loop headers (k may appear in kbody).
    """

    name: str
    params: tuple[str, ...]
    kbody: Term
    body: Term
    recursive: bool = False


@dataclass
class AppCont(Term):
    name: str
    args: tuple[Atom, ...]


@dataclass
class FunDef:
    """A CPS function: data parameters plus continuation parameters.

    ``conts`` receives, in order, the return continuation followed by
    any exception continuations the function takes (exceptions are
    continuation-passing, Section 3.4).
    """

    name: str
    params: tuple[str, ...]
    conts: tuple[str, ...]
    body: Term


@dataclass
class LetFun(Term):
    funs: list[FunDef]
    body: Term


@dataclass
class AppFun(Term):
    name: str
    args: tuple[Atom, ...]
    conts: tuple[str, ...]


@dataclass
class If(Term):
    """Two-way branch on a word comparison."""

    cmp: str
    left: Atom
    right: Atom
    then_term: Term
    else_term: Term


@dataclass
class Halt(Term):
    """Program (thread iteration) end, yielding the final atoms."""

    atoms: tuple[Atom, ...]


# --------------------------------------------------------------------------
# Name generation
# --------------------------------------------------------------------------


class Gensym:
    """Fresh-name supply; names carry a hint for readable dumps."""

    def __init__(self, prefix: str = ""):
        self._counter = itertools.count()
        self._prefix = prefix

    def fresh(self, hint: str = "t") -> str:
        return f"{self._prefix}{hint}.{next(self._counter)}"

    def clone(self) -> "Gensym":
        """An independent supply continuing from the same next number.

        Lets one parsed front end feed several back-end runs (different
        optimizer/SSU/allocator options) while each run generates exactly
        the names a from-scratch compile would.
        """
        dup = Gensym(self._prefix)
        dup._counter = copy.copy(self._counter)
        return dup


# --------------------------------------------------------------------------
# Traversal helpers
# --------------------------------------------------------------------------


def term_size(term: Term) -> int:
    """Number of term nodes, counted iteratively (terms nest deeply —
    a recursive count would exceed the interpreter stack on real
    programs).  Reported by the tracing layer as the IR-size counter."""
    count = 0
    stack = [term]
    while stack:
        count += 1
        stack.extend(subterms(stack.pop()))
    return count


def subterms(term: Term) -> list[Term]:
    """Immediate child terms."""
    if isinstance(term, (LetVal, LetPrim, MemRead, MemWrite, LetClone, Special)):
        return [term.body]
    if isinstance(term, LetCont):
        return [term.kbody, term.body]
    if isinstance(term, LetFun):
        return [f.body for f in term.funs] + [term.body]
    if isinstance(term, If):
        return [term.then_term, term.else_term]
    return []


def map_body(term: Term, f) -> Term:
    """Rebuild ``term`` with child terms transformed by ``f``."""
    if isinstance(term, LetVal):
        return LetVal(term.var, term.atom, f(term.body))
    if isinstance(term, LetPrim):
        return LetPrim(term.var, term.op, term.args, f(term.body))
    if isinstance(term, MemRead):
        return MemRead(term.vars, term.space, term.addr, f(term.body))
    if isinstance(term, MemWrite):
        return MemWrite(term.space, term.addr, term.atoms, f(term.body))
    if isinstance(term, LetClone):
        return LetClone(term.var, term.source, f(term.body))
    if isinstance(term, Special):
        return Special(term.var, term.op, term.args, f(term.body))
    if isinstance(term, LetCont):
        return LetCont(term.name, term.params, f(term.kbody), f(term.body), term.recursive)
    if isinstance(term, LetFun):
        funs = [FunDef(g.name, g.params, g.conts, f(g.body)) for g in term.funs]
        return LetFun(funs, f(term.body))
    if isinstance(term, If):
        return If(term.cmp, term.left, term.right, f(term.then_term), f(term.else_term))
    return term


def atoms_used(term: Term) -> list[Atom]:
    """Atoms appearing in the head of ``term`` (not in child terms)."""
    if isinstance(term, LetVal):
        return [term.atom]
    if isinstance(term, LetPrim):
        return list(term.args)
    if isinstance(term, MemRead):
        return [term.addr]
    if isinstance(term, MemWrite):
        return [term.addr, *term.atoms]
    if isinstance(term, LetClone):
        return [Var(term.source)]
    if isinstance(term, Special):
        return list(term.args)
    if isinstance(term, AppCont):
        return list(term.args)
    if isinstance(term, AppFun):
        return list(term.args)
    if isinstance(term, If):
        return [term.left, term.right]
    if isinstance(term, Halt):
        return list(term.atoms)
    return []


def vars_defined(term: Term) -> list[str]:
    """Variables bound by the head of ``term``."""
    if isinstance(term, (LetVal, LetPrim, LetClone)):
        return [term.var]
    if isinstance(term, MemRead):
        return list(term.vars)
    if isinstance(term, Special):
        return [term.var] if term.var is not None else []
    return []


def free_vars(term: Term) -> set[str]:
    """Free CPS variables (data variables, not continuation names)."""
    free: set[str] = set()

    def walk(t: Term, bound: set[str]) -> None:
        for atom in atoms_used(t):
            if isinstance(atom, Var) and atom.name not in bound:
                free.add(atom.name)
        if isinstance(t, LetCont):
            walk(t.kbody, bound | set(t.params))
            walk(t.body, bound)
            return
        if isinstance(t, LetFun):
            for g in t.funs:
                walk(g.body, bound | set(g.params))
            walk(t.body, bound)
            return
        if isinstance(t, If):
            walk(t.then_term, bound)
            walk(t.else_term, bound)
            return
        new_bound = bound | set(vars_defined(t))
        for child in subterms(t):
            walk(child, new_bound)

    walk(term, set())
    return free


def count_occurrences(term: Term) -> dict[str, int]:
    """Number of uses of each variable (data uses only)."""
    counts: dict[str, int] = {}

    def walk(t: Term) -> None:
        for atom in atoms_used(t):
            if isinstance(atom, Var):
                counts[atom.name] = counts.get(atom.name, 0) + 1
        for child in subterms(t):
            walk(child)

    walk(term)
    return counts


def substitute(term: Term, mapping: dict[str, Atom]) -> Term:
    """Capture-avoiding substitution of atoms for variables.

    All binders in our IR are globally unique (conversion gensyms every
    name), so no renaming is required.
    """
    if not mapping:
        return term

    def sub_atom(atom: Atom) -> Atom:
        if isinstance(atom, Var) and atom.name in mapping:
            return mapping[atom.name]
        return atom

    def walk(t: Term) -> Term:
        if isinstance(t, LetVal):
            return LetVal(t.var, sub_atom(t.atom), walk(t.body))
        if isinstance(t, LetPrim):
            return LetPrim(t.var, t.op, tuple(sub_atom(a) for a in t.args), walk(t.body))
        if isinstance(t, MemRead):
            return MemRead(t.vars, t.space, sub_atom(t.addr), walk(t.body))
        if isinstance(t, MemWrite):
            return MemWrite(
                t.space,
                sub_atom(t.addr),
                tuple(sub_atom(a) for a in t.atoms),
                walk(t.body),
            )
        if isinstance(t, LetClone):
            source = sub_atom(Var(t.source))
            if isinstance(source, Const):
                # Cloning a constant degenerates to naming it.
                return LetVal(t.var, source, walk(t.body))
            assert isinstance(source, Var)
            return LetClone(t.var, source.name, walk(t.body))
        if isinstance(t, Special):
            return Special(t.var, t.op, tuple(sub_atom(a) for a in t.args), walk(t.body))
        if isinstance(t, LetCont):
            return LetCont(t.name, t.params, walk(t.kbody), walk(t.body), t.recursive)
        if isinstance(t, AppCont):
            return AppCont(t.name, tuple(sub_atom(a) for a in t.args))
        if isinstance(t, LetFun):
            funs = [FunDef(g.name, g.params, g.conts, walk(g.body)) for g in t.funs]
            return LetFun(funs, walk(t.body))
        if isinstance(t, AppFun):
            return AppFun(t.name, tuple(sub_atom(a) for a in t.args), t.conts)
        if isinstance(t, If):
            return If(
                t.cmp,
                sub_atom(t.left),
                sub_atom(t.right),
                walk(t.then_term),
                walk(t.else_term),
            )
        if isinstance(t, Halt):
            return Halt(tuple(sub_atom(a) for a in t.atoms))
        raise TypeError(f"unhandled term {type(t).__name__}")

    return walk(term)


def substitute_conts(term: Term, mapping: dict[str, str]) -> Term:
    """Rename free continuation names (used when inlining functions)."""
    if not mapping:
        return term

    def walk(t: Term) -> Term:
        if isinstance(t, LetCont):
            # Our binders are globally unique, so no capture is possible.
            return LetCont(t.name, t.params, walk(t.kbody), walk(t.body), t.recursive)
        if isinstance(t, AppCont):
            return AppCont(mapping.get(t.name, t.name), t.args)
        if isinstance(t, AppFun):
            return AppFun(
                t.name, t.args, tuple(mapping.get(c, c) for c in t.conts)
            )
        if isinstance(t, LetFun):
            funs = [FunDef(g.name, g.params, g.conts, walk(g.body)) for g in t.funs]
            return LetFun(funs, walk(t.body))
        return map_body(t, walk)

    return walk(term)


def rename_binders(term: Term, gensym: Gensym) -> Term:
    """Alpha-rename every binder (used when duplicating code at inlining)."""
    var_map: dict[str, Atom] = {}
    cont_map: dict[str, str] = {}

    def fresh_var(name: str) -> str:
        new = gensym.fresh(name.split(".")[0])
        var_map[name] = Var(new)
        return new

    def fresh_cont(name: str) -> str:
        new = gensym.fresh(name.split(".")[0])
        cont_map[name] = new
        return new

    def sub_atom(atom: Atom) -> Atom:
        if isinstance(atom, Var):
            return var_map.get(atom.name, atom)
        return atom

    def walk(t: Term) -> Term:
        if isinstance(t, LetVal):
            atom = sub_atom(t.atom)
            return LetVal(fresh_var(t.var), atom, walk(t.body))
        if isinstance(t, LetPrim):
            args = tuple(sub_atom(a) for a in t.args)
            return LetPrim(fresh_var(t.var), t.op, args, walk(t.body))
        if isinstance(t, MemRead):
            addr = sub_atom(t.addr)
            new_vars = tuple(fresh_var(v) for v in t.vars)
            return MemRead(new_vars, t.space, addr, walk(t.body))
        if isinstance(t, MemWrite):
            return MemWrite(
                t.space,
                sub_atom(t.addr),
                tuple(sub_atom(a) for a in t.atoms),
                walk(t.body),
            )
        if isinstance(t, LetClone):
            source = sub_atom(Var(t.source))
            assert isinstance(source, Var)
            return LetClone(fresh_var(t.var), source.name, walk(t.body))
        if isinstance(t, Special):
            args = tuple(sub_atom(a) for a in t.args)
            var = fresh_var(t.var) if t.var is not None else None
            return Special(var, t.op, args, walk(t.body))
        if isinstance(t, LetCont):
            name = fresh_cont(t.name)
            params = tuple(fresh_var(p) for p in t.params)
            return LetCont(name, params, walk(t.kbody), walk(t.body), t.recursive)
        if isinstance(t, AppCont):
            return AppCont(
                cont_map.get(t.name, t.name),
                tuple(sub_atom(a) for a in t.args),
            )
        if isinstance(t, LetFun):
            funs = []
            for g in t.funs:
                fresh_cont(g.name)
            for g in t.funs:
                params = tuple(fresh_var(p) for p in g.params)
                conts = tuple(fresh_cont(c) for c in g.conts)
                funs.append(FunDef(cont_map[g.name], params, conts, walk(g.body)))
            return LetFun(funs, walk(t.body))
        if isinstance(t, AppFun):
            return AppFun(
                cont_map.get(t.name, t.name),
                tuple(sub_atom(a) for a in t.args),
                tuple(cont_map.get(c, c) for c in t.conts),
            )
        if isinstance(t, If):
            return If(
                t.cmp,
                sub_atom(t.left),
                sub_atom(t.right),
                walk(t.then_term),
                walk(t.else_term),
            )
        if isinstance(t, Halt):
            return Halt(tuple(sub_atom(a) for a in t.atoms))
        raise TypeError(f"unhandled term {type(t).__name__}")

    return walk(term)


# --------------------------------------------------------------------------
# Pretty printing and validation
# --------------------------------------------------------------------------


def pretty(term: Term, indent: int = 0) -> str:
    """Readable multi-line rendering of a CPS term."""
    pad = "  " * indent
    if isinstance(term, LetVal):
        return f"{pad}let {term.var} = {term.atom}\n" + pretty(term.body, indent)
    if isinstance(term, LetPrim):
        args = ", ".join(str(a) for a in term.args)
        return f"{pad}let {term.var} = {term.op}({args})\n" + pretty(term.body, indent)
    if isinstance(term, MemRead):
        vs = ", ".join(term.vars)
        return f"{pad}let ({vs}) = {term.space}[{term.addr}]\n" + pretty(
            term.body, indent
        )
    if isinstance(term, MemWrite):
        vs = ", ".join(str(a) for a in term.atoms)
        return f"{pad}{term.space}[{term.addr}] <- ({vs})\n" + pretty(term.body, indent)
    if isinstance(term, LetClone):
        return f"{pad}let {term.var} = clone({term.source})\n" + pretty(
            term.body, indent
        )
    if isinstance(term, Special):
        args = ", ".join(str(a) for a in term.args)
        lhs = f"let {term.var} = " if term.var else ""
        return f"{pad}{lhs}{term.op}({args})\n" + pretty(term.body, indent)
    if isinstance(term, LetCont):
        rec = " rec" if term.recursive else ""
        params = ", ".join(term.params)
        header = f"{pad}letcont{rec} {term.name}({params}) =\n"
        return (
            header
            + pretty(term.kbody, indent + 1)
            + f"{pad}in\n"
            + pretty(term.body, indent)
        )
    if isinstance(term, AppCont):
        args = ", ".join(str(a) for a in term.args)
        return f"{pad}{term.name}({args})\n"
    if isinstance(term, LetFun):
        out = []
        for g in term.funs:
            params = ", ".join(g.params)
            conts = ", ".join(g.conts)
            out.append(f"{pad}letfun {g.name}({params}; {conts}) =\n")
            out.append(pretty(g.body, indent + 1))
        out.append(f"{pad}in\n")
        out.append(pretty(term.body, indent))
        return "".join(out)
    if isinstance(term, AppFun):
        args = ", ".join(str(a) for a in term.args)
        conts = ", ".join(term.conts)
        return f"{pad}{term.name}({args}; {conts})\n"
    if isinstance(term, If):
        return (
            f"{pad}if {term.left} {term.cmp} {term.right} then\n"
            + pretty(term.then_term, indent + 1)
            + f"{pad}else\n"
            + pretty(term.else_term, indent + 1)
        )
    if isinstance(term, Halt):
        args = ", ".join(str(a) for a in term.atoms)
        return f"{pad}halt({args})\n"
    return f"{pad}<??? {type(term).__name__}>\n"


def check_unique_binders(term: Term) -> None:
    """Assert the global-uniqueness invariant for binders (SSA property)."""
    seen: set[str] = set()

    def walk(t: Term) -> None:
        for v in vars_defined(t):
            if v in seen:
                raise AssertionError(f"binder '{v}' bound twice")
            seen.add(v)
        if isinstance(t, LetCont):
            for p in t.params:
                if p in seen:
                    raise AssertionError(f"parameter '{p}' bound twice")
                seen.add(p)
        if isinstance(t, LetFun):
            for g in t.funs:
                for p in g.params:
                    if p in seen:
                        raise AssertionError(f"parameter '{p}' bound twice")
                    seen.add(p)
        for child in subterms(t):
            walk(child)

    walk(term)


def term_size(term: Term) -> int:
    """Number of term nodes (a rough instruction-count proxy)."""
    return 1 + sum(term_size(child) for child in subterms(term))
