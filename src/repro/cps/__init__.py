"""CPS middle end: IR, conversion, optimizer, de-proceduralization, SSU."""

from repro.cps.ir import (
    AppCont,
    AppFun,
    Atom,
    Const,
    FunDef,
    Halt,
    If,
    LetClone,
    LetCont,
    LetFun,
    LetPrim,
    LetVal,
    MemRead,
    MemWrite,
    Special,
    Term,
    Var,
)
from repro.cps.convert import cps_convert
from repro.cps.optimize import optimize
from repro.cps.deproc import deproceduralize
from repro.cps.ssu import to_ssu

__all__ = [
    "AppCont",
    "AppFun",
    "Atom",
    "Const",
    "FunDef",
    "Halt",
    "If",
    "LetClone",
    "LetCont",
    "LetFun",
    "LetPrim",
    "LetVal",
    "MemRead",
    "MemWrite",
    "Special",
    "Term",
    "Var",
    "cps_convert",
    "optimize",
    "deproceduralize",
    "to_ssu",
]
