"""Static single use (SSU) transform (paper Sections 4.5 and 10).

SSA guarantees that no variable is the target of two different memory
*reads*; the dual problem arises for memory *writes*: two stores placing
the same variable at different aggregate positions would impose
contradictory transfer-register colors.  SSU restores solvability: after
this pass, any use of a variable as a memory-write operand is the *only*
use of that variable in the whole program.

The transform inserts ``clone`` instructions right after the original
definition.  A clone is semantically a copy, but the ILP model treats
clones specially (they do not interfere with each other, and a set of
mutual clones moving together is counted once), so a clone only becomes a
physical copy when the solver decides the duplication pays for itself.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.cps import ir
from repro.cps.deproc import FirstOrderProgram
from repro.cps.ir import Var


@dataclass
class SsuStats:
    clones_inserted: int = 0
    writes_rewritten: int = 0


def to_ssu(prog: FirstOrderProgram) -> tuple[FirstOrderProgram, SsuStats]:
    """Bring a first-order program into static single use form."""
    term = prog.term
    gensym = prog.gensym
    stats = SsuStats()
    uses = ir.count_occurrences(term)

    # Plan: for every memory-write operand position holding a variable
    # with more than one total use, allocate a clone dedicated to that
    # position.  clone_plan maps the original variable to the clones that
    # must be created right after its definition.
    clone_plan: dict[str, list[str]] = {}

    def rewrite_writes(t: ir.Term) -> ir.Term:
        if isinstance(t, ir.MemWrite):
            new_atoms: list[ir.Atom] = []
            rewrote = False
            for atom in t.atoms:
                if isinstance(atom, Var) and uses.get(atom.name, 0) > 1:
                    clone = gensym.fresh(f"{atom.name.split('.')[0]}_c")
                    clone_plan.setdefault(atom.name, []).append(clone)
                    new_atoms.append(Var(clone))
                    rewrote = True
                else:
                    new_atoms.append(atom)
            if rewrote:
                stats.writes_rewritten += 1
            return ir.MemWrite(
                t.space, t.addr, tuple(new_atoms), rewrite_writes(t.body)
            )
        if isinstance(t, ir.LetCont):
            return ir.LetCont(
                t.name,
                t.params,
                rewrite_writes(t.kbody),
                rewrite_writes(t.body),
                t.recursive,
            )
        if isinstance(t, ir.If):
            return ir.If(
                t.cmp,
                t.left,
                t.right,
                rewrite_writes(t.then_term),
                rewrite_writes(t.else_term),
            )
        return ir.map_body(t, rewrite_writes)

    term = rewrite_writes(term)

    def clones_for(names: list[str], body: ir.Term) -> ir.Term:
        for name in names:
            for clone in clone_plan.get(name, ()):
                body = ir.LetClone(clone, name, body)
                stats.clones_inserted += 1
        return body

    def insert_clones(t: ir.Term) -> ir.Term:
        defined = ir.vars_defined(t)
        if isinstance(t, ir.LetCont):
            kbody = clones_for(list(t.params), insert_clones(t.kbody))
            return ir.LetCont(t.name, t.params, kbody, insert_clones(t.body), t.recursive)
        if isinstance(t, ir.If):
            return ir.If(
                t.cmp,
                t.left,
                t.right,
                insert_clones(t.then_term),
                insert_clones(t.else_term),
            )
        rebuilt = ir.map_body(t, insert_clones)
        if defined:
            rebuilt = ir.map_body(
                rebuilt, lambda body, d=defined: clones_for(list(d), body)
            )
        return rebuilt

    term = insert_clones(term)
    term = clones_for(list(prog.params), term)
    ir.check_unique_binders(term)
    return FirstOrderProgram(prog.params, term, gensym), stats


def check_ssu(term: ir.Term) -> bool:
    """Verify the SSU property: each memory-write operand variable has
    exactly one use in the whole program."""
    uses = ir.count_occurrences(term)
    ok = [True]

    def walk(t: ir.Term) -> None:
        if isinstance(t, ir.MemWrite):
            for atom in t.atoms:
                if isinstance(atom, Var) and uses.get(atom.name, 0) != 1:
                    ok[0] = False
        for child in ir.subterms(t):
            walk(child)

    walk(term)
    return ok[0]
