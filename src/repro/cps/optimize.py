"""CPS optimization passes (paper Section 4.4).

Implemented, mirroring the paper's list:

- constant folding and global constant/copy propagation (with local value
  numbering, which subsumes "local value propagation"),
- eta reduction of continuations,
- simple contractions: inlining of called-once continuations (function
  inlining proper happens in :mod:`repro.cps.deproc`),
- useless-variable elimination and dead-code elimination,
- trimming of memory reads (dead leading/trailing aggregate members are
  cut off, shrinking the transfer-register footprint),
- useless/invariant continuation-parameter elimination (this is what
  makes flattened records and ``unpack`` free when fields are unused),
- branch simplification (constant conditions, identical arms).

All passes operate on the first-order (post-deproceduralization) program;
they preserve the unique-binder/SSA invariant.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.cps import ir
from repro.cps.ir import AppCont, Const, Halt, If, Var

WORD_MASK = 0xFFFFFFFF


def _fold(op: str, values: list[int]) -> int | None:
    """Evaluate a primitive over constants; must match the simulator."""
    if op == "add":
        return (values[0] + values[1]) & WORD_MASK
    if op == "sub":
        return (values[0] - values[1]) & WORD_MASK
    if op == "mul":
        return (values[0] * values[1]) & WORD_MASK
    if op == "div":
        return None if values[1] == 0 else (values[0] // values[1]) & WORD_MASK
    if op == "mod":
        return None if values[1] == 0 else (values[0] % values[1]) & WORD_MASK
    if op == "and":
        return values[0] & values[1]
    if op == "or":
        return values[0] | values[1]
    if op == "xor":
        return values[0] ^ values[1]
    if op == "shl":
        return (values[0] << (values[1] & 31)) & WORD_MASK
    if op == "shr":
        return (values[0] & WORD_MASK) >> (values[1] & 31)
    if op == "not":
        return ~values[0] & WORD_MASK
    if op == "neg":
        return -values[0] & WORD_MASK
    return None


def _cmp(op: str, a: int, b: int) -> bool:
    if op == "eq":
        return a == b
    if op == "ne":
        return a != b
    if op == "lt":
        return a < b
    if op == "le":
        return a <= b
    if op == "gt":
        return a > b
    if op == "ge":
        return a >= b
    raise ValueError(op)


@dataclass
class OptStats:
    """Counts of simplifications performed (reported by the driver)."""

    folded: int = 0
    copies_propagated: int = 0
    cse_hits: int = 0
    dead_removed: int = 0
    reads_trimmed: int = 0
    conts_inlined: int = 0
    conts_eta: int = 0
    params_pruned: int = 0
    branches_simplified: int = 0
    rounds: int = 0

    def total(self) -> int:
        return (
            self.folded
            + self.copies_propagated
            + self.cse_hits
            + self.dead_removed
            + self.reads_trimmed
            + self.conts_inlined
            + self.conts_eta
            + self.params_pruned
            + self.branches_simplified
        )


# --------------------------------------------------------------------------
# Pass 1: constant folding + copy propagation + local value numbering
# --------------------------------------------------------------------------


def simplify(term: ir.Term, stats: OptStats) -> ir.Term:
    def resolve(atom: ir.Atom, env: dict[str, ir.Atom]) -> ir.Atom:
        while isinstance(atom, Var) and atom.name in env:
            atom = env[atom.name]
        return atom

    def walk(
        t: ir.Term,
        env: dict[str, ir.Atom],
        value_numbers: dict[tuple, str],
    ) -> ir.Term:
        if isinstance(t, ir.LetVal):
            atom = resolve(t.atom, env)
            env = dict(env)
            env[t.var] = atom
            stats.copies_propagated += 1
            return walk(t.body, env, value_numbers)
        if isinstance(t, ir.LetPrim):
            args = tuple(resolve(a, env) for a in t.args)
            folded = _try_fold(t.op, args, stats)
            if folded is not None:
                env = dict(env)
                env[t.var] = folded
                return walk(t.body, env, value_numbers)
            key = (t.op, args)
            if key in value_numbers:
                env = dict(env)
                env[t.var] = Var(value_numbers[key])
                stats.cse_hits += 1
                return walk(t.body, env, value_numbers)
            value_numbers = dict(value_numbers)
            value_numbers[key] = t.var
            return ir.LetPrim(t.var, t.op, args, walk(t.body, env, value_numbers))
        if isinstance(t, ir.MemRead):
            addr = resolve(t.addr, env)
            return ir.MemRead(t.vars, t.space, addr, walk(t.body, env, value_numbers))
        if isinstance(t, ir.MemWrite):
            addr = resolve(t.addr, env)
            atoms = tuple(resolve(a, env) for a in t.atoms)
            return ir.MemWrite(t.space, addr, atoms, walk(t.body, env, value_numbers))
        if isinstance(t, ir.LetClone):
            source = resolve(Var(t.source), env)
            if isinstance(source, Const):
                env = dict(env)
                env[t.var] = source
                stats.copies_propagated += 1
                return walk(t.body, env, value_numbers)
            return ir.LetClone(
                t.var, source.name, walk(t.body, env, value_numbers)
            )
        if isinstance(t, ir.Special):
            args = tuple(resolve(a, env) for a in t.args)
            return ir.Special(t.var, t.op, args, walk(t.body, env, value_numbers))
        if isinstance(t, ir.LetCont):
            # Lexical scope is dominance in CPS, so env and value numbers
            # remain valid inside the continuation body.
            return ir.LetCont(
                t.name,
                t.params,
                walk(t.kbody, env, value_numbers),
                walk(t.body, env, value_numbers),
                t.recursive,
            )
        if isinstance(t, AppCont):
            return AppCont(t.name, tuple(resolve(a, env) for a in t.args))
        if isinstance(t, If):
            left = resolve(t.left, env)
            right = resolve(t.right, env)
            if isinstance(left, Const) and isinstance(right, Const):
                stats.branches_simplified += 1
                chosen = (
                    t.then_term if _cmp(t.cmp, left.value, right.value) else t.else_term
                )
                return walk(chosen, env, value_numbers)
            return If(
                t.cmp,
                left,
                right,
                walk(t.then_term, env, value_numbers),
                walk(t.else_term, env, value_numbers),
            )
        if isinstance(t, Halt):
            return Halt(tuple(resolve(a, env) for a in t.atoms))
        raise TypeError(f"unhandled term {type(t).__name__}")

    return walk(term, {}, {})


def _try_fold(op: str, args: tuple[ir.Atom, ...], stats: OptStats) -> ir.Atom | None:
    """Return a replacement atom if the primitive simplifies away."""
    if all(isinstance(a, Const) for a in args):
        value = _fold(op, [a.value for a in args])  # type: ignore[union-attr]
        if value is not None:
            stats.folded += 1
            return Const(value)
        return None
    if len(args) != 2:
        return None
    a, b = args
    # Algebraic identities (word semantics).
    if isinstance(b, Const):
        if b.value == 0 and op in ("add", "sub", "or", "xor", "shl", "shr"):
            stats.folded += 1
            return a
        if b.value == 0 and op in ("and", "mul"):
            stats.folded += 1
            return Const(0)
        if b.value == WORD_MASK and op == "and":
            stats.folded += 1
            return a
        if b.value == 1 and op in ("mul", "div"):
            stats.folded += 1
            return a
    if isinstance(a, Const):
        if a.value == 0 and op in ("add", "or", "xor"):
            stats.folded += 1
            return b
        if a.value == 0 and op in ("and", "mul", "shl", "shr"):
            stats.folded += 1
            return Const(0)
        if a.value == WORD_MASK and op == "and":
            stats.folded += 1
            return b
    if op == "xor" and a == b:
        stats.folded += 1
        return Const(0)
    if op == "sub" and a == b:
        stats.folded += 1
        return Const(0)
    if op in ("and", "or") and a == b:
        stats.folded += 1
        return a
    return None


# --------------------------------------------------------------------------
# Pass 2: dead-code / useless-variable elimination + memory-read trimming
# --------------------------------------------------------------------------


def eliminate_dead(term: ir.Term, stats: OptStats) -> ir.Term:
    counts = ir.count_occurrences(term)
    cont_uses = _count_cont_uses(term)

    def walk(t: ir.Term) -> ir.Term:
        if isinstance(t, ir.LetVal) and counts.get(t.var, 0) == 0:
            stats.dead_removed += 1
            return walk(t.body)
        if isinstance(t, ir.LetPrim) and counts.get(t.var, 0) == 0:
            stats.dead_removed += 1
            return walk(t.body)
        if isinstance(t, ir.LetClone) and counts.get(t.var, 0) == 0:
            stats.dead_removed += 1
            return walk(t.body)
        if (
            isinstance(t, ir.Special)
            and t.op in ir.PURE_SPECIALS
            and (t.var is None or counts.get(t.var, 0) == 0)
        ):
            stats.dead_removed += 1
            return walk(t.body)
        if isinstance(t, ir.MemRead):
            return walk_mem_read(t)
        if isinstance(t, ir.LetCont) and cont_uses.get(t.name, 0) == 0:
            stats.dead_removed += 1
            return walk(t.body)
        return ir.map_body(t, walk)

    def walk_mem_read(t: ir.MemRead) -> ir.Term:
        live = [counts.get(v, 0) > 0 for v in t.vars]
        if not any(live):
            stats.reads_trimmed += 1
            return walk(t.body)
        step = 2 if t.space == "sdram" else 1
        lead = 0
        while lead + step <= len(t.vars) and not any(live[lead : lead + step]):
            lead += step
        trail = len(t.vars)
        while trail - step >= lead and not any(live[trail - step : trail]):
            trail -= step
        if lead == 0 and trail == len(t.vars):
            return ir.MemRead(t.vars, t.space, t.addr, walk(t.body))
        stats.reads_trimmed += 1
        new_vars = t.vars[lead:trail]
        addr = t.addr
        if lead:
            if isinstance(addr, Const):
                addr = Const((addr.value + lead) & WORD_MASK)
            else:
                # Folding the offset needs a named addition; introduce it.
                bump = f"{t.vars[lead]}.addr"
                body = ir.MemRead(new_vars, t.space, Var(bump), walk(t.body))
                return ir.LetPrim(bump, "add", (addr, Const(lead)), body)
        return ir.MemRead(new_vars, t.space, addr, walk(t.body))

    return walk(term)


def _count_cont_uses(term: ir.Term) -> dict[str, int]:
    counts: dict[str, int] = {}

    def walk(t: ir.Term) -> None:
        if isinstance(t, AppCont):
            counts[t.name] = counts.get(t.name, 0) + 1
        for child in ir.subterms(t):
            walk(child)

    walk(term)
    return counts


# --------------------------------------------------------------------------
# Pass 3: continuation simplification (eta, beta for called-once, params)
# --------------------------------------------------------------------------


def simplify_conts(term: ir.Term, stats: OptStats) -> ir.Term:
    term = _eta_reduce(term, stats)
    term = _prune_params(term, stats)
    term = _inline_called_once(term, stats)
    return term


def _eta_reduce(term: ir.Term, stats: OptStats) -> ir.Term:
    """``letcont k(xs) = j(xs)`` — replace k by j everywhere.

    Works in two phases (collect, then rewrite) because a jump to k may
    occur *before* k's definition in tree order (loop exits)."""
    mapping: dict[str, str] = {}

    def collect(t: ir.Term) -> None:
        if isinstance(t, ir.LetCont):
            if (
                isinstance(t.kbody, AppCont)
                and t.kbody.name != t.name
                and tuple(t.kbody.args) == tuple(Var(p) for p in t.params)
            ):
                mapping[t.name] = t.kbody.name
        for child in ir.subterms(t):
            collect(child)

    collect(term)

    # Resolve chains, dropping any cycles (mutually-eta continuations
    # are dead loops; leave them for DCE).
    resolved: dict[str, str] = {}
    for name in list(mapping):
        seen = {name}
        target = mapping[name]
        while target in mapping:
            if target in seen:
                target = None
                break
            seen.add(target)
            target = mapping[target]
        if target is None:
            continue
        resolved[name] = target
    if not resolved:
        return term
    stats.conts_eta += len(resolved)

    def walk(t: ir.Term) -> ir.Term:
        if isinstance(t, ir.LetCont):
            if t.name in resolved:
                return walk(t.body)
            return ir.LetCont(t.name, t.params, walk(t.kbody), walk(t.body), t.recursive)
        if isinstance(t, AppCont):
            return AppCont(resolved.get(t.name, t.name), t.args)
        if isinstance(t, ir.AppFun):
            return ir.AppFun(
                t.name, t.args, tuple(resolved.get(c, c) for c in t.conts)
            )
        if isinstance(t, If):
            return If(t.cmp, t.left, t.right, walk(t.then_term), walk(t.else_term))
        return ir.map_body(t, walk)

    return walk(term)


def eta_reduce_conts(term: ir.Term) -> ir.Term:
    """Public eta reduction (used by deproc so that tail self-calls pass
    the *same* return continuation and hit the instantiation memo)."""
    return _eta_reduce(term, OptStats())


def _collect_cont_calls(term: ir.Term) -> dict[str, list[AppCont]]:
    calls: dict[str, list[AppCont]] = {}

    def walk(t: ir.Term) -> None:
        if isinstance(t, AppCont):
            calls.setdefault(t.name, []).append(t)
        for child in ir.subterms(t):
            walk(child)

    walk(term)
    return calls


def _prune_params(term: ir.Term, stats: OptStats) -> ir.Term:
    """Drop unused and invariant continuation parameters.

    A parameter is *invariant* if every call passes the same atom (a
    recursive call may also pass the parameter itself); it is then
    substituted away.  This is what removes the conservative join/loop
    parameters created by conversion and the unused fields of unpacked
    records.
    """
    calls = _collect_cont_calls(term)
    defs: dict[str, ir.LetCont] = {}

    def collect(t: ir.Term) -> None:
        if isinstance(t, ir.LetCont):
            defs[t.name] = t
        for child in ir.subterms(t):
            collect(child)

    collect(term)

    keep: dict[str, list[bool]] = {}
    substitution: dict[str, ir.Atom] = {}
    counts = ir.count_occurrences(term)
    for name, let in defs.items():
        sites = calls.get(name, [])
        flags: list[bool] = []
        for index, param in enumerate(let.params):
            used = counts.get(param, 0) > 0
            if not used:
                flags.append(False)
                stats.params_pruned += 1
                continue
            invariant: ir.Atom | None = None
            ok = bool(sites)
            for site in sites:
                if index >= len(site.args):
                    ok = False
                    break
                arg = site.args[index]
                if arg == Var(param):
                    continue  # self-carry on a back edge
                if isinstance(arg, Var) and arg.name in substitution:
                    arg = substitution[arg.name]
                if invariant is None:
                    invariant = arg
                elif invariant != arg:
                    ok = False
                    break
            if ok and invariant is not None and _in_scope_everywhere(invariant):
                substitution[param] = invariant
                flags.append(False)
                stats.params_pruned += 1
            else:
                flags.append(True)
        keep[name] = flags

    # Resolve substitution chains (x -> y -> z) before applying:
    # ir.substitute is one simultaneous pass, so an unresolved chain
    # would rewrite uses of x into a parameter y that this very pass is
    # deleting.  A chain that loops back on itself means the parameters
    # only forward each other; keep those instead of substituting.
    param_slot = {
        param: (name, index)
        for name, let in defs.items()
        for index, param in enumerate(let.params)
    }
    for param in list(substitution):
        atom: ir.Atom | None = substitution[param]
        seen = {param}
        while isinstance(atom, Var) and atom.name in substitution:
            if atom.name in seen:
                atom = None
                break
            seen.add(atom.name)
            atom = substitution[atom.name]
        if atom is None or atom == Var(param):
            del substitution[param]
            name, index = param_slot[param]
            keep[name][index] = True
            stats.params_pruned -= 1
        else:
            substitution[param] = atom

    if all(all(f) for f in keep.values()) and not substitution:
        return term

    def walk(t: ir.Term) -> ir.Term:
        if isinstance(t, ir.LetCont):
            flags = keep.get(t.name)
            params = (
                tuple(p for p, f in zip(t.params, flags) if f)
                if flags
                else t.params
            )
            return ir.LetCont(t.name, params, walk(t.kbody), walk(t.body), t.recursive)
        if isinstance(t, AppCont):
            flags = keep.get(t.name)
            if flags and len(flags) == len(t.args):
                args = tuple(a for a, f in zip(t.args, flags) if f)
                return AppCont(t.name, args)
            return t
        if isinstance(t, If):
            return If(t.cmp, t.left, t.right, walk(t.then_term), walk(t.else_term))
        return ir.map_body(t, walk)

    return ir.substitute(walk(term), substitution)


def _in_scope_everywhere(atom: ir.Atom) -> bool:
    # Constants are trivially safe.  Variables are safe too: an invariant
    # variable is passed at *every* call site, so its definition dominates
    # every jump to the continuation, and downstream phases (liveness,
    # flowgraph construction) are dataflow-based rather than tree-scoped.
    return True


def _inline_called_once(term: ir.Term, stats: OptStats) -> ir.Term:
    calls = _count_cont_uses(term)

    def walk(t: ir.Term) -> ir.Term:
        if isinstance(t, ir.LetCont) and not t.recursive and calls.get(t.name, 0) == 1:
            kbody = t.kbody
            body = walk(t.body)
            inlined = [False]

            def splice(u: ir.Term) -> ir.Term:
                if isinstance(u, AppCont) and u.name == t.name:
                    inlined[0] = True
                    mapping = {
                        p: a for p, a in zip(t.params, u.args)
                    }
                    return walk(ir.substitute(kbody, mapping))
                if isinstance(u, ir.LetCont):
                    return ir.LetCont(
                        u.name, u.params, splice(u.kbody), splice(u.body), u.recursive
                    )
                if isinstance(u, If):
                    return If(
                        u.cmp, u.left, u.right, splice(u.then_term), splice(u.else_term)
                    )
                return ir.map_body(u, splice)

            new_body = splice(body)
            if inlined[0]:
                stats.conts_inlined += 1
                return new_body
            # The single call site sits inside kbody itself (dead loop);
            # keep the letcont, DCE will handle it if truly dead.
            return ir.LetCont(t.name, t.params, walk(kbody), new_body, t.recursive)
        if isinstance(t, ir.LetCont):
            return ir.LetCont(t.name, t.params, walk(t.kbody), walk(t.body), t.recursive)
        if isinstance(t, If):
            return If(t.cmp, t.left, t.right, walk(t.then_term), walk(t.else_term))
        return ir.map_body(t, walk)

    return walk(term)


# --------------------------------------------------------------------------
# Driver
# --------------------------------------------------------------------------


@dataclass
class OptimizeResult:
    term: ir.Term
    stats: OptStats = field(default_factory=OptStats)


def optimize(term: ir.Term, max_rounds: int = 12) -> OptimizeResult:
    """Run all passes to a fixpoint (bounded by ``max_rounds``)."""
    stats = OptStats()
    for _ in range(max_rounds):
        before = stats.total()
        term = simplify(term, stats)
        term = simplify_conts(term, stats)
        term = eliminate_dead(term, stats)
        stats.rounds += 1
        if stats.total() == before:
            break
    ir.check_unique_binders(term)
    return OptimizeResult(term, stats)
