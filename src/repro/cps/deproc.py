"""De-proceduralization (paper Section 4.3).

The ILP back end handles one flowgraph, not general interprocedural
allocation, so the compiler "fully inlines all procedure calls in
non-tail position".  Recursive *tail* calls do not need inlining: Nova's
type system restricts recursion to tail position, and a tail call is just
a goto (Section 3.4) — so a (mutually) recursive function instantiated at
a call site becomes a *recursive continuation*.

The algorithm walks the entry function's body; each ``AppFun(f, args,
conts)`` is replaced by a jump to a continuation holding ``f``'s body.
Instantiations are memoized per (function, continuation-vector), so
recursive tail calls (which pass the same continuations) hit the memo and
become back edges; non-tail calls have a fresh return continuation and
therefore produce a fresh inlined copy.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import CpsError
from repro.cps import ir
from repro.cps.convert import CpsProgram

# Backstop against pathological programs that keep manufacturing fresh
# continuation vectors through recursion.
MAX_INSTANCES = 20_000


@dataclass
class FirstOrderProgram:
    """A whole program as one continuation-only CPS term.

    ``params`` are the entry function's data parameters (the program's
    inputs, e.g. the packet base address); the term ends in
    :class:`repro.cps.ir.Halt` carrying the entry function's results.
    """

    params: tuple[str, ...]
    term: ir.Term
    gensym: ir.Gensym


def deproceduralize(prog: CpsProgram) -> FirstOrderProgram:
    """Inline every function call, yielding a first-order CPS program."""
    from repro.cps.optimize import eta_reduce_conts

    gensym = prog.gensym
    # Eta-reduce first so that a tail call's freshly-wrapped return
    # continuation collapses onto the caller's own continuation; only
    # then do recursive tail calls carry identical continuation vectors
    # and hit the instantiation memo (becoming loops instead of
    # unbounded inlining).
    prog = CpsProgram(
        {
            name: ir.FunDef(
                f.name, f.params, f.conts, eta_reduce_conts(f.body)
            )
            for name, f in prog.funs.items()
        },
        prog.entry,
        prog.gensym,
        prog.param_names,
    )
    entry = prog.funs[prog.entry]
    if len(entry.conts) != 1:
        raise CpsError(
            f"entry function '{prog.entry}' must not take exception "
            "parameters"
        )
    instances = [0]

    def instantiate(
        fun: ir.FunDef, conts: tuple[str, ...]
    ) -> tuple[tuple[str, ...], ir.Term]:
        """Fresh copy of ``fun``'s body wired to the given continuations."""
        instances[0] += 1
        if instances[0] > MAX_INSTANCES:
            raise CpsError(
                "inlining exploded (more than "
                f"{MAX_INSTANCES} instantiations); is a recursive call "
                "passing ever-fresh handlers?"
            )
        if len(conts) != len(fun.conts):
            raise CpsError(
                f"call to '{fun.name}' passes {len(conts)} continuations, "
                f"expected {len(fun.conts)}"
            )
        body = ir.substitute_conts(fun.body, dict(zip(fun.conts, conts)))
        fresh_params = tuple(gensym.fresh(p.split(".")[0]) for p in fun.params)
        body = ir.substitute(
            body,
            {p: ir.Var(fp) for p, fp in zip(fun.params, fresh_params)},
        )
        body = ir.rename_binders(body, gensym)
        return fresh_params, body

    def walk(term: ir.Term, memo: dict[tuple[str, tuple[str, ...]], str]) -> ir.Term:
        if isinstance(term, ir.AppFun):
            key = (term.name, term.conts)
            if key in memo:
                return ir.AppCont(memo[key], term.args)
            fun = prog.funs.get(term.name)
            if fun is None:
                raise CpsError(f"call to unknown function '{term.name}'")
            cont_name = gensym.fresh(f"fn_{term.name}")
            inner_memo = dict(memo)
            inner_memo[key] = cont_name
            params, body = instantiate(fun, term.conts)
            kbody = walk(body, inner_memo)
            return ir.LetCont(
                cont_name,
                params,
                kbody,
                ir.AppCont(cont_name, term.args),
                recursive=True,
            )
        if isinstance(term, ir.LetFun):
            raise CpsError("nested function definitions are not supported")
        if isinstance(term, ir.LetCont):
            return ir.LetCont(
                term.name,
                term.params,
                walk(term.kbody, memo),
                walk(term.body, memo),
                term.recursive,
            )
        if isinstance(term, ir.If):
            return ir.If(
                term.cmp,
                term.left,
                term.right,
                walk(term.then_term, memo),
                walk(term.else_term, memo),
            )
        return ir.map_body(term, lambda t: walk(t, memo))

    ret_cont = entry.conts[0]
    body = walk(entry.body, {})
    body = _halt_on(body, ret_cont)
    _assert_first_order(body)
    return FirstOrderProgram(entry.params, body, gensym)


def _halt_on(term: ir.Term, ret_cont: str) -> ir.Term:
    """Turn jumps to the entry's return continuation into Halt."""

    def walk(t: ir.Term) -> ir.Term:
        if isinstance(t, ir.AppCont) and t.name == ret_cont:
            return ir.Halt(t.args)
        if isinstance(t, ir.LetCont):
            return ir.LetCont(t.name, t.params, walk(t.kbody), walk(t.body), t.recursive)
        if isinstance(t, ir.If):
            return ir.If(t.cmp, t.left, t.right, walk(t.then_term), walk(t.else_term))
        return ir.map_body(t, walk)

    return walk(term)


def _assert_first_order(term: ir.Term) -> None:
    if isinstance(term, (ir.AppFun, ir.LetFun)):
        raise CpsError("de-proceduralization left a function construct")
    for child in ir.subterms(term):
        _assert_first_order(child)
