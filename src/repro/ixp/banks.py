"""Register banks and datapaths of the IXP1200 micro-engine (paper Fig 1).

Per thread context there are:

- ``A`` and ``B`` — general purpose banks (16 registers each),
- ``L`` — SRAM/scratch *read* transfer registers (8),
- ``S`` — SRAM/scratch *write* transfer registers (8),
- ``LD`` — SDRAM read transfer registers (8),
- ``SD`` — SDRAM write transfer registers (8),
- ``M`` — on-chip scratch memory, modeled as a bank of unlimited
  capacity; moving a value to/from M is a spill/reload through S/L.

Datapath restrictions (Section 1):

- ALU inputs come from L, LD, A or B, but each of A, B, and {L, LD} can
  supply at most one operand (and not both operands from transfer banks).
- ALU results go to A, B, S or SD.
- There is no direct path between registers of the same transfer bank,
  and values in S/SD can only get anywhere else by going through memory.
"""

from __future__ import annotations

import enum


class Bank(enum.Enum):
    A = "A"
    B = "B"
    L = "L"  # SRAM/scratch read transfer
    S = "S"  # SRAM/scratch write transfer
    LD = "LD"  # SDRAM read transfer
    SD = "SD"  # SDRAM write transfer
    M = "M"  # scratch memory (spill space)
    C = "C"  # virtual constant bank (rematerialization extension, §12)

    def __str__(self) -> str:
        return self.value

    # Enum's default __hash__ is a Python-level function; register-file
    # dict keys are ``(Bank, index)`` tuples hashed on every simulated
    # register access, which makes it one of the hottest calls in a
    # physical-mode run.  Members are singletons and enum equality is
    # identity, so the C-level identity hash is semantically identical.
    __hash__ = object.__hash__


#: Transfer banks (paper: XBank).
XFER_BANKS = (Bank.L, Bank.LD, Bank.S, Bank.SD)

#: General banks participating in the ILP model (paper: GBank = {A, B, M}).
GP_BANKS = (Bank.A, Bank.B, Bank.M)

#: Banks a temporary can physically live in (no C unless remat is on).
REAL_BANKS = (Bank.A, Bank.B, Bank.M, *XFER_BANKS)

#: Number of registers per bank per thread context.  The ILP leaves one
#: spare register in A for breaking parallel-copy cycles during
#: optimistic coalescing (paper Section 6), hence the K constraint uses
#: 15 for A; the *physical* size is 16.
BANK_SIZES = {
    Bank.A: 16,
    Bank.B: 16,
    Bank.L: 8,
    Bank.S: 8,
    Bank.LD: 8,
    Bank.SD: 8,
}

#: K-constraint capacities used by the ILP model.
K_CAPACITY = {Bank.A: 15, Bank.B: 16}

#: Number of transfer registers (XRegs := 0..7).
XFER_SIZE = 8

#: Banks that may feed an ALU operand.
ALU_INPUT_BANKS = frozenset({Bank.A, Bank.B, Bank.L, Bank.LD})

#: Banks that may receive an ALU result.
ALU_OUTPUT_BANKS = frozenset({Bank.A, Bank.B, Bank.S, Bank.SD})

#: Destination bank of aggregate reads per memory space.  The receive
#: FIFO drains through the SRAM-side read transfer registers.
READ_BANK = {"sram": Bank.L, "scratch": Bank.L, "sdram": Bank.LD, "rfifo": Bank.L}

#: Source bank of aggregate writes per memory space; the transmit FIFO
#: fills from the SRAM-side write transfer registers.
WRITE_BANK = {"sram": Bank.S, "scratch": Bank.S, "sdram": Bank.SD, "tfifo": Bank.S}


def legal_move(src: Bank, dst: Bank) -> bool:
    """Whether a direct register-register move src → dst exists.

    Moves are ALU passes, so the source must be a legal ALU input and the
    destination a legal ALU output.  Moves within one transfer bank do
    not exist (paper: "no direct path from any register in a transfer
    bank to another register in the same transfer bank"), but src == dst
    is the trivial stay-put "move" of the ILP model.
    """
    if src == dst:
        return src is not Bank.M  # staying in scratch is fine too, but
        # M→M is represented as no move at all; treat as legal identity.
    if src is Bank.M or dst is Bank.M:
        # Spill/reload path; goes through S (store) or L (load) and is
        # expanded by the decoder, legal from/to any ALU-reachable bank.
        return True
    return src in ALU_INPUT_BANKS and dst in ALU_OUTPUT_BANKS


def move_cost_terms(src: Bank, dst: Bank, mv: int, ld: int, st: int) -> int:
    """Cost of realizing a move src → dst (paper Section 7).

    A register-register move costs ``mv``.  Spilling to M costs a move
    plus a store; reloading costs a move plus a load.
    """
    if src == dst:
        return 0
    if dst is Bank.M:
        return mv + st
    if src is Bank.M:
        return mv + ld
    return mv
