"""Instruction selection: first-order CPS → IXP flowgraph.

Continuations become basic blocks; jumps with arguments become a
sequentialized parallel copy followed by a branch.  Constants that do not
fit an inline immediate are materialized with ``immed`` right before use
(the future-work C-bank rematerialization extension instead exposes them
to the register allocator, see :mod:`repro.alloc.remat`).

Multiplication, division and modulus have no IXP1200 ALU support; they
are selected only for constant powers of two (shift/mask) or small
constant multipliers (shift-add decomposition).
"""

from __future__ import annotations

from repro.errors import SelectError
from repro.cps import ir
from repro.cps.deproc import FirstOrderProgram
from repro.ixp import isa
from repro.ixp.flowgraph import Block, FlowGraph

_CMP_FLIP = {"eq": "eq", "ne": "ne", "lt": "gt", "le": "ge", "gt": "lt", "ge": "le"}


def select_instructions(prog: FirstOrderProgram) -> FlowGraph:
    """Lower an optimized, SSU-form CPS program to an IXP flowgraph."""
    return _Selector(prog).run()


class _Selector:
    def __init__(self, prog: FirstOrderProgram):
        self.prog = prog
        self.gensym = prog.gensym
        self.blocks: dict[str, Block] = {}
        self.cont_params: dict[str, tuple[str, ...]] = {}

    def run(self) -> FlowGraph:
        # Pre-register every continuation signature: CPS allows forward
        # references (a loop body jumping to the exit continuation that
        # is bound in the loop's lexical body).
        def register(term: ir.Term) -> None:
            if isinstance(term, ir.LetCont):
                self.cont_params[term.name] = term.params
            for child in ir.subterms(term):
                register(child)

        register(self.prog.term)
        entry = Block("entry")
        self.blocks[entry.label] = entry
        self.select(self.prog.term, entry.instrs)
        graph = FlowGraph("entry", self.blocks, tuple(self.prog.params))
        graph.validate()
        simplify_graph(graph)
        return graph

    # -- operand helpers ------------------------------------------------------

    def _reg(self, atom: ir.Atom, out: list[isa.Instr]) -> isa.Temp:
        """Force an atom into a register, materializing constants."""
        if isinstance(atom, ir.Var):
            return isa.Temp(atom.name)
        assert isinstance(atom, ir.Const)
        temp = isa.Temp(self.gensym.fresh("c"))
        out.append(isa.Immed(temp, atom.value))
        return temp

    def _operand(
        self, atom: ir.Atom, out: list[isa.Instr], imm_ok: bool
    ) -> isa.Temp | isa.Imm:
        if isinstance(atom, ir.Const) and imm_ok and 0 <= atom.value <= isa.MAX_INLINE_IMM:
            return isa.Imm(atom.value)
        return self._reg(atom, out)

    # -- term selection ----------------------------------------------------------

    def select(self, term: ir.Term, out: list[isa.Instr]) -> None:
        while True:
            if isinstance(term, ir.LetVal):
                if isinstance(term.atom, ir.Const):
                    out.append(isa.Immed(isa.Temp(term.var), term.atom.value))
                else:
                    out.append(isa.Move(isa.Temp(term.var), isa.Temp(term.atom.name)))
                term = term.body
                continue
            if isinstance(term, ir.LetPrim):
                self.select_prim(term, out)
                term = term.body
                continue
            if isinstance(term, ir.MemRead):
                addr = self._reg(term.addr, out)
                regs = tuple(isa.Temp(v) for v in term.vars)
                out.append(isa.MemOp(term.space, "read", addr, regs))
                term = term.body
                continue
            if isinstance(term, ir.MemWrite):
                addr = self._reg(term.addr, out)
                regs = tuple(self._reg(a, out) for a in term.atoms)
                out.append(isa.MemOp(term.space, "write", addr, regs))
                term = term.body
                continue
            if isinstance(term, ir.LetClone):
                out.append(isa.Clone(isa.Temp(term.var), isa.Temp(term.source)))
                term = term.body
                continue
            if isinstance(term, ir.Special):
                self.select_special(term, out)
                term = term.body
                continue
            if isinstance(term, ir.LetCont):
                self.cont_params[term.name] = term.params
                block = Block(term.name)
                self.blocks[term.name] = block
                self.select(term.kbody, block.instrs)
                term = term.body
                continue
            if isinstance(term, ir.AppCont):
                self.emit_jump(term.name, term.args, out)
                return
            if isinstance(term, ir.If):
                self.select_branch(term, out)
                return
            if isinstance(term, ir.Halt):
                results = tuple(
                    self._operand(a, out, imm_ok=True) for a in term.atoms
                )
                out.append(isa.HaltInstr(results))
                return
            raise SelectError(f"unhandled CPS term {type(term).__name__}")

    def select_prim(self, term: ir.LetPrim, out: list[isa.Instr]) -> None:
        dst = isa.Temp(term.var)
        op = term.op
        args = term.args
        if op in ("not", "neg"):
            a = self._reg(args[0], out)
            out.append(isa.Alu(dst, op, a))
            return
        if op in ("shl", "shr"):
            a = self._reg(args[0], out)
            amount = args[1]
            if isinstance(amount, ir.Const):
                out.append(isa.Alu(dst, op, a, isa.Imm(amount.value & 31)))
            else:
                out.append(isa.Alu(dst, op, a, self._reg(amount, out)))
            return
        if op in ("mul", "div", "mod"):
            self.select_muldiv(dst, op, args, out)
            return
        if op not in isa.ALU_OPS:
            raise SelectError(f"unknown primitive '{op}'")
        # Commutative ops prefer the immediate on the B side.
        a, b = args
        if isinstance(a, ir.Const) and op in ("add", "and", "or", "xor"):
            a, b = b, a
        ra = self._reg(a, out)
        rb = self._operand(b, out, imm_ok=True)
        if ra == rb:
            # The two ALU read ports cannot fetch the same register;
            # rewrite x op x (the optimizer folds most of these away).
            if op == "add":
                out.append(isa.Alu(dst, "shl", ra, isa.Imm(1)))
            elif op in ("and", "or"):
                out.append(isa.Move(dst, ra))
            elif op in ("sub", "xor"):
                out.append(isa.Immed(dst, 0))
            else:
                raise SelectError(f"'{op}' with identical operands")
            return
        out.append(isa.Alu(dst, op, ra, rb))

    def select_muldiv(
        self,
        dst: isa.Temp,
        op: str,
        args: tuple[ir.Atom, ...],
        out: list[isa.Instr],
    ) -> None:
        """Expand mul/div/mod — the IXP1200 ALU has none of them."""
        a, b = args
        if op == "mul" and isinstance(a, ir.Const):
            a, b = b, a
        if not isinstance(b, ir.Const):
            raise SelectError(
                f"'{op}' by a non-constant has no IXP1200 expansion"
            )
        value = b.value
        if op == "mul":
            self._expand_mul(dst, a, value, out)
            return
        if value == 0:
            raise SelectError(f"'{op}' by zero")
        if value & (value - 1):
            raise SelectError(
                f"'{op}' by non-power-of-two constant {value} is not "
                "supported on the IXP1200"
            )
        shift = value.bit_length() - 1
        ra = self._reg(a, out)
        if op == "div":
            out.append(isa.Alu(dst, "shr", ra, isa.Imm(shift)))
        else:  # mod
            mask = value - 1
            out.append(
                isa.Alu(dst, "and", ra, self._operand(ir.Const(mask), out, True))
            )

    def _expand_mul(
        self, dst: isa.Temp, a: ir.Atom, value: int, out: list[isa.Instr]
    ) -> None:
        """Shift-add decomposition for constant multipliers."""
        if value == 0:
            out.append(isa.Immed(dst, 0))
            return
        ra = self._reg(a, out)
        if value == 1:
            out.append(isa.Move(dst, ra))
            return
        bits = [i for i in range(32) if value & (1 << i)]
        if len(bits) > 4:
            raise SelectError(
                f"multiplication by {value} expands to more than 4 "
                "shift-adds; restructure the program"
            )
        if len(bits) == 1:
            out.append(isa.Alu(dst, "shl", ra, isa.Imm(bits[0])))
            return
        partials: list[isa.Temp] = []
        for bit in bits:
            if bit == 0:
                partials.append(ra)
                continue
            t = isa.Temp(self.gensym.fresh("mul"))
            out.append(isa.Alu(t, "shl", ra, isa.Imm(bit)))
            partials.append(t)
        acc = partials[0]
        for index, part in enumerate(partials[1:]):
            is_last = index == len(partials) - 2
            t = dst if is_last else isa.Temp(self.gensym.fresh("mul"))
            out.append(isa.Alu(t, "add", acc, part))
            acc = t

    def select_special(self, term: ir.Special, out: list[isa.Instr]) -> None:
        if term.op == "hash":
            src = self._reg(term.args[0], out)
            assert term.var is not None
            out.append(isa.HashInstr(isa.Temp(term.var), src))
            return
        if term.op == "csr_rd":
            number = term.args[0]
            assert isinstance(number, ir.Const) and term.var is not None
            out.append(isa.CsrRd(isa.Temp(term.var), number.value))
            return
        if term.op == "csr_wr":
            number, value = term.args
            assert isinstance(number, ir.Const)
            out.append(isa.CsrWr(number.value, self._reg(value, out)))
            return
        if term.op == "ctx_swap":
            out.append(isa.CtxArb())
            return
        if term.op in ("lock", "unlock"):
            number = term.args[0]
            assert isinstance(number, ir.Const)
            out.append(isa.LockInstr(term.op, number.value))
            return
        raise SelectError(f"unknown special op '{term.op}'")

    def emit_jump(
        self, cont: str, args: tuple[ir.Atom, ...], out: list[isa.Instr]
    ) -> None:
        params = self.cont_params.get(cont)
        if params is None:
            raise SelectError(f"jump to unknown continuation '{cont}'")
        if len(params) != len(args):
            raise SelectError(
                f"jump to '{cont}' passes {len(args)} args for "
                f"{len(params)} params"
            )
        self.emit_parallel_copy(list(params), list(args), out)
        out.append(isa.Br(cont))

    def emit_parallel_copy(
        self, dests: list[str], srcs: list[ir.Atom], out: list[isa.Instr]
    ) -> None:
        """``dests := srcs`` simultaneously, with cycle breaking.

        Constants are deferred to the end (they cannot be overwritten);
        register moves are ordered so no pending source is clobbered,
        with one scratch temp per cycle.
        """
        pending: dict[str, str] = {}
        const_moves: list[tuple[str, int]] = []
        for dst, src in zip(dests, srcs):
            if isinstance(src, ir.Const):
                const_moves.append((dst, src.value))
            elif src.name != dst:
                pending[dst] = src.name

        while pending:
            ready = [
                dst for dst in pending if dst not in pending.values()
            ]
            if ready:
                for dst in ready:
                    out.append(isa.Move(isa.Temp(dst), isa.Temp(pending[dst])))
                    del pending[dst]
                continue
            # Pure cycle: break it with a temporary.
            dst = next(iter(pending))
            temp = self.gensym.fresh("cyc")
            out.append(isa.Move(isa.Temp(temp), isa.Temp(dst)))
            for d, s in pending.items():
                if s == dst:
                    pending[d] = temp
        for dst, value in const_moves:
            out.append(isa.Immed(isa.Temp(dst), value))

    def select_branch(self, term: ir.If, out: list[isa.Instr]) -> None:
        cmp = term.cmp
        left, right = term.left, term.right
        if isinstance(left, ir.Const) and not isinstance(right, ir.Const):
            left, right = right, left
            cmp = _CMP_FLIP[cmp]
        ra = self._reg(left, out)
        rb = self._operand(right, out, imm_ok=True)

        def arm(sub: ir.Term) -> str:
            if isinstance(sub, ir.AppCont) and not sub.args:
                return sub.name
            label = self.gensym.fresh("bb")
            block = Block(label)
            self.blocks[label] = block
            self.select(sub, block.instrs)
            return label

        if ra == rb:
            # Comparing a register with itself: the branch is constant.
            taken = cmp in ("eq", "le", "ge")
            out.append(isa.Br(arm(term.then_term if taken else term.else_term)))
            return
        then_label = arm(term.then_term)
        else_label = arm(term.else_term)
        out.append(isa.BrCmp(cmp, ra, rb, then_label, else_label))


# --------------------------------------------------------------------------
# Post-selection graph cleanup
# --------------------------------------------------------------------------


def simplify_graph(graph: FlowGraph) -> None:
    """Thread trivial jumps, merge straight-line blocks, drop dead code."""
    changed = True
    while changed:
        changed = _thread_jumps(graph) | _drop_unreachable(graph)
        changed |= _merge_straightline(graph)
    graph.validate()


def _thread_jumps(graph: FlowGraph) -> bool:
    """Redirect branches whose target block is a single ``br``."""
    trivial: dict[str, str] = {}
    for label, block in graph.blocks.items():
        if len(block.instrs) == 1 and isinstance(block.terminator, isa.Br):
            trivial[label] = block.terminator.target

    def resolve(label: str) -> str:
        seen = set()
        while label in trivial and label not in seen:
            seen.add(label)
            label = trivial[label]
        return label

    changed = False
    for block in graph.blocks.values():
        term = block.terminator
        if isinstance(term, isa.Br):
            target = resolve(term.target)
            if target != term.target:
                block.instrs[-1] = isa.Br(target)
                changed = True
        elif isinstance(term, isa.BrCmp):
            then_t = resolve(term.then_target)
            else_t = resolve(term.else_target)
            if then_t != term.then_target or else_t != term.else_target:
                block.instrs[-1] = isa.BrCmp(
                    term.cmp, term.a, term.b, then_t, else_t
                )
                changed = True
    return changed


def _drop_unreachable(graph: FlowGraph) -> bool:
    reachable: set[str] = set()
    stack = [graph.entry]
    while stack:
        label = stack.pop()
        if label in reachable:
            continue
        reachable.add(label)
        stack.extend(graph.blocks[label].successors())
    dead = set(graph.blocks) - reachable
    for label in dead:
        del graph.blocks[label]
    return bool(dead)


def _merge_straightline(graph: FlowGraph) -> bool:
    """Merge a block into its unique predecessor when possible."""
    preds = graph.predecessors()
    changed = False
    for label in list(graph.blocks):
        if label == graph.entry or label not in graph.blocks:
            continue
        pred_list = preds.get(label, [])
        if len(pred_list) != 1:
            continue
        pred = pred_list[0]
        if pred == label or pred not in graph.blocks:
            continue
        pred_block = graph.blocks[pred]
        if not isinstance(pred_block.terminator, isa.Br):
            continue
        assert pred_block.terminator.target == label
        pred_block.instrs.pop()
        pred_block.instrs.extend(graph.blocks[label].instrs)
        del graph.blocks[label]
        preds = graph.predecessors()
        changed = True
    return changed
