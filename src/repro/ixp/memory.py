"""Memory system model: SRAM, SDRAM and on-chip scratch.

All spaces are word-addressed (32-bit words).  SDRAM transfers move an
even number of words starting at an even word address (the paper's 8-byte
alignment restriction, Section 1.1); SRAM/scratch transfers are 4-byte
(one word) aligned by construction.

Latencies approximate the IXP1200 (in micro-engine cycles).  Each space
services one outstanding aggregate transfer at a time, so threads
hammering one space contend — the effect the paper mentions for the AES
tables living in SRAM ("all tables reside in SRAM memory, resulting in
contention").
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import SimulatorError

#: Issue-to-data latencies per space, in cycles.
LATENCY = {"scratch": 12, "sram": 16, "sdram": 24, "rfifo": 10, "tfifo": 10}

#: Additional cycles per word transferred beyond the first.
PER_WORD = {"scratch": 1, "sram": 1, "sdram": 1, "rfifo": 1, "tfifo": 1}

#: Cycles the unit's request pipeline is occupied per transfer (the
#: units accept a new request every few cycles even though each takes
#: LATENCY cycles to complete — requests from different threads overlap).
OCCUPANCY = {"scratch": 2, "sram": 2, "sdram": 4, "rfifo": 2, "tfifo": 2}

#: Default sizes (in words).  The receive/transmit FIFOs are 16 elements
#: of 16 words (64 bytes) each, as on the IXP1200.
DEFAULT_SIZES = {
    "scratch": 1024,
    "sram": 256 * 1024,
    "sdram": 2 * 1024 * 1024,
    "rfifo": 16 * 16,
    "tfifo": 16 * 16,
}

WORD_MASK = 0xFFFFFFFF


@dataclass(slots=True)
class MemorySpace:
    """One word-addressed memory with a single service port.

    Slotted: ``busy_until``/``reads``/``words`` and the cached timing
    constants are touched once per simulated memory reference on every
    tier's hot path.
    """

    name: str
    size: int
    words: dict[int, int] = field(default_factory=dict)
    #: Cycle at which the current in-flight transfer completes.
    busy_until: int = 0
    #: Counters for reporting.
    reads: int = 0
    writes: int = 0
    #: timing constants resolved once in ``__post_init__``.
    _latency: int | None = field(init=False, repr=False, compare=False, default=None)
    _per_word: int = field(init=False, repr=False, compare=False, default=1)
    _occupancy: int | None = field(init=False, repr=False, compare=False, default=None)
    _is_sdram: bool = field(init=False, repr=False, compare=False, default=False)

    def __post_init__(self) -> None:
        # read()/issue() run once per simulated memory reference — the
        # hottest calls shared by every simulator tier — so the per-space
        # timing constants are resolved once here instead of through
        # name-keyed dict lookups per access.  Unknown space names keep
        # working (custom test spaces): they just take the slow path.
        self._latency = LATENCY.get(self.name)
        self._per_word = PER_WORD.get(self.name, 1)
        self._occupancy = OCCUPANCY.get(self.name)
        self._is_sdram = self.name == "sdram"

    def _check(self, addr: int, count: int) -> None:
        if addr < 0 or addr + count > self.size:
            raise SimulatorError(
                f"{self.name} access out of range: addr={addr} count={count} "
                f"size={self.size}"
            )
        if self.name == "sdram":
            if addr % 2 or count % 2:
                raise SimulatorError(
                    f"sdram transfers need 8-byte alignment: addr={addr} "
                    f"count={count}"
                )

    def read(self, addr: int, count: int) -> list[int]:
        if (
            addr < 0
            or addr + count > self.size
            or (self._is_sdram and (addr % 2 or count % 2))
        ):
            self._check(addr, count)  # raises the precise error
        self.reads += 1
        words_get = self.words.get
        return [words_get(addr + i, 0) for i in range(count)]

    def write(self, addr: int, values: list[int]) -> None:
        count = len(values)
        if (
            addr < 0
            or addr + count > self.size
            or (self._is_sdram and (addr % 2 or count % 2))
        ):
            self._check(addr, count)
        self.writes += 1
        words = self.words
        for i, value in enumerate(values):
            words[addr + i] = value & WORD_MASK

    def transfer_time(self, count: int) -> int:
        latency = self._latency
        if latency is None:
            latency = LATENCY[self.name]
        return latency + self._per_word * max(0, count - 1)

    def issue(self, now: int, count: int) -> int:
        """Queue one transfer; returns its completion time.

        The unit is *pipelined*: it accepts a request every
        ``OCCUPANCY`` cycles (plus per-word time) while each request
        still takes the full ``LATENCY`` to return data, so requests
        from different threads overlap — contention shows up as queueing
        on the acceptance rate, not as serialized latencies.
        """
        busy = self.busy_until
        start = now if now >= busy else busy
        occupancy = self._occupancy
        latency = self._latency
        if occupancy is None or latency is None:
            occupancy = OCCUPANCY[self.name]
            latency = LATENCY[self.name]
        extra = self._per_word * (count - 1) if count > 1 else 0
        self.busy_until = start + occupancy + extra
        return start + latency + extra

    def load_words(self, addr: int, values: list[int]) -> None:
        """Back-door initialization (no cycle cost, no alignment checks)."""
        for i, value in enumerate(values):
            if addr + i >= self.size:
                raise SimulatorError(f"{self.name} preload out of range")
            self.words[addr + i] = value & WORD_MASK

    def dump_words(self, addr: int, count: int) -> list[int]:
        """Back-door inspection (no cycle cost)."""
        return [self.words.get(addr + i, 0) for i in range(count)]


@dataclass
class ScratchRing:
    """A bounded ring queue over a reserved region of one memory space.

    Models the scratch rings line cards use between the receive unit,
    worker micro-engines and the transmit unit: a circular buffer of
    single-word entries with two control words.  The region layout is

    ==========  =======================================
    ``base``      head counter (dequeues so far, mod 2^32)
    ``base+1``    tail counter (enqueues so far, mod 2^32)
    ``base+2+i``  data slot ``i`` (``0 <= i < capacity``)
    ==========  =======================================

    so ring state is part of the ordinary memory image (goldens and
    parity tests compare it word for word).  Every enqueue/dequeue is
    one single-word transfer through the backing space's service port
    (:meth:`MemorySpace.issue`), so ring traffic contends with ordinary
    scratch accesses exactly like any other reference.

    ``try_enqueue``/``try_dequeue`` never block: a full/empty ring
    returns ``None`` and the *caller* decides between dropping (tail
    drop at the receive unit) and retrying (a worker spinning — the
    simulator's ``ring.enq``/``ring.deq`` instructions do this).
    """

    name: str
    space: MemorySpace
    base: int
    capacity: int
    head: int = 0
    tail: int = 0
    #: deepest occupancy ever observed (after an enqueue).
    high_water: int = 0
    enqueues: int = 0
    dequeues: int = 0

    def __post_init__(self) -> None:
        if self.capacity <= 0:
            raise SimulatorError(f"ring '{self.name}': capacity must be > 0")
        if self.base < 0 or self.base + 2 + self.capacity > self.space.size:
            raise SimulatorError(
                f"ring '{self.name}' region [{self.base}, "
                f"{self.base + 2 + self.capacity}) does not fit in "
                f"{self.space.name} (size {self.space.size})"
            )
        self._sync_control()

    def depth(self) -> int:
        return self.tail - self.head

    @property
    def full(self) -> bool:
        return self.depth() >= self.capacity

    @property
    def empty(self) -> bool:
        return self.depth() == 0

    def _sync_control(self) -> None:
        self.space.words[self.base] = self.head & WORD_MASK
        self.space.words[self.base + 1] = self.tail & WORD_MASK

    def try_enqueue(self, now: int, value: int) -> int | None:
        """Push ``value``; returns the transfer's completion cycle, or
        ``None`` (and no side effects, no port traffic) when full."""
        if self.full:
            return None
        slot = self.base + 2 + (self.tail % self.capacity)
        finish = self.space.issue(now, 1)
        self.space.write(slot, [value])
        self.tail += 1
        self.enqueues += 1
        self.high_water = max(self.high_water, self.depth())
        self._sync_control()
        return finish

    def try_dequeue(self, now: int) -> tuple[int, int] | None:
        """Pop the oldest entry; returns ``(value, completion cycle)``,
        or ``None`` (no side effects) when empty."""
        if self.empty:
            return None
        slot = self.base + 2 + (self.head % self.capacity)
        finish = self.space.issue(now, 1)
        [value] = self.space.read(slot, 1)
        self.head += 1
        self.dequeues += 1
        self._sync_control()
        return value, finish

    def snapshot(self) -> list[int]:
        """Current contents, oldest first (no cycle cost)."""
        return [
            self.space.words.get(
                self.base + 2 + (index % self.capacity), 0
            )
            for index in range(self.head, self.tail)
        ]


@dataclass
class RingGroup:
    """A bank of same-capacity rings laid out contiguously in one space.

    The whole-chip streaming topology gives every micro-engine its own
    RX ring (the dispatch stage steers packets by flow hash); this
    groups the per-engine rings behind one handle with aggregate
    accounting, while each member stays an ordinary named
    :class:`ScratchRing` (``<name>0``, ``<name>1``, …) addressable by
    the ``ring.enq``/``ring.deq`` instructions and visible in the
    memory image like any other ring.
    """

    name: str
    rings: list[ScratchRing]

    def __len__(self) -> int:
        return len(self.rings)

    def __iter__(self):
        return iter(self.rings)

    def __getitem__(self, index: int) -> ScratchRing:
        return self.rings[index]

    @property
    def capacity(self) -> int:
        return self.rings[0].capacity if self.rings else 0

    @property
    def high_water(self) -> int:
        """Deepest occupancy any member ring ever reached."""
        return max((ring.high_water for ring in self.rings), default=0)

    def high_waters(self) -> list[int]:
        return [ring.high_water for ring in self.rings]

    def depths(self) -> list[int]:
        return [ring.depth() for ring in self.rings]

    @property
    def enqueues(self) -> int:
        return sum(ring.enqueues for ring in self.rings)

    @property
    def dequeues(self) -> int:
        return sum(ring.dequeues for ring in self.rings)


@dataclass
class MemorySystem:
    spaces: dict[str, MemorySpace]
    #: named ring queues layered over reserved regions of the spaces.
    rings: dict[str, ScratchRing] = field(default_factory=dict)

    @staticmethod
    def create(sizes: dict[str, int] | None = None) -> "MemorySystem":
        sizes = {**DEFAULT_SIZES, **(sizes or {})}
        return MemorySystem(
            {name: MemorySpace(name, size) for name, size in sizes.items()}
        )

    def __getitem__(self, name: str) -> MemorySpace:
        try:
            return self.spaces[name]
        except KeyError:
            raise SimulatorError(f"unknown memory space '{name}'") from None

    def add_ring(
        self, name: str, base: int, capacity: int, space: str = "scratch"
    ) -> ScratchRing:
        """Reserve a ring region; ``name`` is the handle ring ops use."""
        if name in self.rings:
            raise SimulatorError(f"ring '{name}' already exists")
        ring = ScratchRing(name, self[space], base, capacity)
        self.rings[name] = ring
        return ring

    def add_ring_group(
        self,
        name: str,
        base: int,
        capacity: int,
        count: int,
        space: str = "scratch",
    ) -> RingGroup:
        """Reserve ``count`` rings of ``capacity`` laid out back to back
        from ``base``; member ``i`` registers as ring ``f"{name}{i}"``."""
        if count <= 0:
            raise SimulatorError(f"ring group '{name}': count must be > 0")
        stride = 2 + capacity
        return RingGroup(
            name,
            [
                self.add_ring(f"{name}{i}", base + i * stride, capacity, space)
                for i in range(count)
            ],
        )

    def ring(self, name: str) -> ScratchRing:
        try:
            return self.rings[name]
        except KeyError:
            raise SimulatorError(f"unknown ring '{name}'") from None
