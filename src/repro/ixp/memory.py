"""Memory system model: SRAM, SDRAM and on-chip scratch.

All spaces are word-addressed (32-bit words).  SDRAM transfers move an
even number of words starting at an even word address (the paper's 8-byte
alignment restriction, Section 1.1); SRAM/scratch transfers are 4-byte
(one word) aligned by construction.

Latencies approximate the IXP1200 (in micro-engine cycles).  Each space
services one outstanding aggregate transfer at a time, so threads
hammering one space contend — the effect the paper mentions for the AES
tables living in SRAM ("all tables reside in SRAM memory, resulting in
contention").
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import SimulatorError

#: Issue-to-data latencies per space, in cycles.
LATENCY = {"scratch": 12, "sram": 16, "sdram": 24, "rfifo": 10, "tfifo": 10}

#: Additional cycles per word transferred beyond the first.
PER_WORD = {"scratch": 1, "sram": 1, "sdram": 1, "rfifo": 1, "tfifo": 1}

#: Cycles the unit's request pipeline is occupied per transfer (the
#: units accept a new request every few cycles even though each takes
#: LATENCY cycles to complete — requests from different threads overlap).
OCCUPANCY = {"scratch": 2, "sram": 2, "sdram": 4, "rfifo": 2, "tfifo": 2}

#: Default sizes (in words).  The receive/transmit FIFOs are 16 elements
#: of 16 words (64 bytes) each, as on the IXP1200.
DEFAULT_SIZES = {
    "scratch": 1024,
    "sram": 256 * 1024,
    "sdram": 2 * 1024 * 1024,
    "rfifo": 16 * 16,
    "tfifo": 16 * 16,
}

WORD_MASK = 0xFFFFFFFF


@dataclass
class MemorySpace:
    """One word-addressed memory with a single service port."""

    name: str
    size: int
    words: dict[int, int] = field(default_factory=dict)
    #: Cycle at which the current in-flight transfer completes.
    busy_until: int = 0
    #: Counters for reporting.
    reads: int = 0
    writes: int = 0

    def _check(self, addr: int, count: int) -> None:
        if addr < 0 or addr + count > self.size:
            raise SimulatorError(
                f"{self.name} access out of range: addr={addr} count={count} "
                f"size={self.size}"
            )
        if self.name == "sdram":
            if addr % 2 or count % 2:
                raise SimulatorError(
                    f"sdram transfers need 8-byte alignment: addr={addr} "
                    f"count={count}"
                )

    def read(self, addr: int, count: int) -> list[int]:
        self._check(addr, count)
        self.reads += 1
        return [self.words.get(addr + i, 0) for i in range(count)]

    def write(self, addr: int, values: list[int]) -> None:
        self._check(addr, len(values))
        self.writes += 1
        for i, value in enumerate(values):
            self.words[addr + i] = value & WORD_MASK

    def transfer_time(self, count: int) -> int:
        return LATENCY[self.name] + PER_WORD[self.name] * max(0, count - 1)

    def issue(self, now: int, count: int) -> int:
        """Queue one transfer; returns its completion time.

        The unit is *pipelined*: it accepts a request every
        ``OCCUPANCY`` cycles (plus per-word time) while each request
        still takes the full ``LATENCY`` to return data, so requests
        from different threads overlap — contention shows up as queueing
        on the acceptance rate, not as serialized latencies.
        """
        start = max(now, self.busy_until)
        occupancy = OCCUPANCY[self.name] + PER_WORD[self.name] * max(
            0, count - 1
        )
        self.busy_until = start + occupancy
        return start + self.transfer_time(count)

    def load_words(self, addr: int, values: list[int]) -> None:
        """Back-door initialization (no cycle cost, no alignment checks)."""
        for i, value in enumerate(values):
            if addr + i >= self.size:
                raise SimulatorError(f"{self.name} preload out of range")
            self.words[addr + i] = value & WORD_MASK

    def dump_words(self, addr: int, count: int) -> list[int]:
        """Back-door inspection (no cycle cost)."""
        return [self.words.get(addr + i, 0) for i in range(count)]


@dataclass
class MemorySystem:
    spaces: dict[str, MemorySpace]

    @staticmethod
    def create(sizes: dict[str, int] | None = None) -> "MemorySystem":
        sizes = {**DEFAULT_SIZES, **(sizes or {})}
        return MemorySystem(
            {name: MemorySpace(name, size) for name, size in sizes.items()}
        )

    def __getitem__(self, name: str) -> MemorySpace:
        try:
            return self.spaces[name]
        except KeyError:
            raise SimulatorError(f"unknown memory space '{name}'") from None
