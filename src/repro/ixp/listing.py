"""IXP-style assembly listings.

Renders allocated flowgraphs in the micro-engine assembler's surface
syntax (the "very quirky assembly" the paper mentions), which makes the
compiler's output directly comparable with hand-written IXP code:

    alu[a1, a0, +, b0]
    sram[read, $xfer0, addr, 0, 4], ctx_swap
    br!=0[label#]

This is a faithful *listing* (one line per instruction, real mnemonic
shapes), not an encoder — there is no binary instruction store to load.
"""

from __future__ import annotations

from repro.errors import NovaError
from repro.ixp import isa
from repro.ixp.banks import Bank
from repro.ixp.flowgraph import FlowGraph

_ALU_MNEMONIC = {
    "add": "+",
    "sub": "-",
    "and": "&",
    "or": "|",
    "xor": "^",
    "shl": "<<",
    "shr": ">>",
    "not": "~",
    "neg": "-",
}

_XFER_PREFIX = {
    Bank.L: "$",
    Bank.S: "$",
    Bank.LD: "$$",
    Bank.SD: "$$",
}

_CMP_BRANCH = {
    "eq": "br=0",
    "ne": "br!=0",
    "lt": "br<0",
    "le": "br<=0",
    "gt": "br>0",
    "ge": "br>=0",
}


def operand(reg) -> str:
    """Assembler spelling of one operand."""
    if isinstance(reg, isa.Imm):
        return str(reg.value)
    if isinstance(reg, isa.PhysReg):
        if reg.bank in (Bank.A, Bank.B):
            return f"{reg.bank.value.lower()}{reg.index}"
        prefix = _XFER_PREFIX.get(reg.bank, "$")
        return f"{prefix}xfer{reg.index}"
    if isinstance(reg, isa.Temp):
        return reg.name
    raise NovaError(f"cannot render operand {reg!r}")


def render_instr(instr: isa.Instr) -> str:
    if isinstance(instr, isa.Alu):
        if instr.b is None:
            return (
                f"alu[{operand(instr.dst)}, --, "
                f"{_ALU_MNEMONIC[instr.op]}, {operand(instr.a)}]"
            )
        if instr.op in ("shl", "shr"):
            return (
                f"alu_shf[{operand(instr.dst)}, --, B, "
                f"{operand(instr.a)}, {_ALU_MNEMONIC[instr.op]}"
                f"{operand(instr.b)}]"
            )
        return (
            f"alu[{operand(instr.dst)}, {operand(instr.a)}, "
            f"{_ALU_MNEMONIC[instr.op]}, {operand(instr.b)}]"
        )
    if isinstance(instr, isa.Immed):
        if 0 <= instr.value < (1 << 16):
            return f"immed[{operand(instr.dst)}, {instr.value:#x}]"
        return (
            f"immed_w0[{operand(instr.dst)}, {instr.value & 0xFFFF:#x}] ; "
            f"immed_w1[{operand(instr.dst)}, {instr.value >> 16:#x}]"
        )
    if isinstance(instr, isa.Move):
        return f"alu[{operand(instr.dst)}, --, B, {operand(instr.src)}]"
    if isinstance(instr, isa.Clone):
        return f"; clone {operand(instr.dst)} <- {operand(instr.src)}"
    if isinstance(instr, isa.MemOp):
        first = operand(instr.regs[0])
        return (
            f"{instr.space}[{instr.direction}, {first}, "
            f"{operand(instr.addr)}, 0, {len(instr.regs)}], ctx_swap"
        )
    if isinstance(instr, isa.RingOp):
        if instr.kind == "enq":
            return f"scratch[put_ring, {operand(instr.reg)}, {instr.ring}], ctx_swap"
        return f"scratch[get_ring, {operand(instr.reg)}, {instr.ring}], ctx_swap"
    if isinstance(instr, isa.HashInstr):
        return f"hash1_48[{operand(instr.src)}], ctx_swap"
    if isinstance(instr, isa.CsrRd):
        return f"csr[read, {operand(instr.dst)}, csr_{instr.csr}]"
    if isinstance(instr, isa.CsrWr):
        return f"csr[write, {operand(instr.src)}, csr_{instr.csr}]"
    if isinstance(instr, isa.CtxArb):
        return "ctx_arb[voluntary]"
    if isinstance(instr, isa.LockInstr):
        if instr.kind == "lock":
            return f"br_inp_state[thread_lock_{instr.number}#], lock"
        return f"fast_wr[0, inter_thd_sig_{instr.number}]"
    if isinstance(instr, isa.Br):
        return f"br[{instr.target}#]"
    if isinstance(instr, isa.BrCmp):
        mnemonic = _CMP_BRANCH[instr.cmp]
        return (
            f"alu[--, {operand(instr.a)}, -, {operand(instr.b)}] ; "
            f"{mnemonic}[{instr.then_target}#], defer[1] ; "
            f"br[{instr.else_target}#]"
        )
    if isinstance(instr, isa.HaltInstr):
        rs = ", ".join(operand(r) for r in instr.results)
        return f"ctx_arb[kill] ; halt({rs})"
    raise NovaError(f"cannot render instruction {instr!r}")


def render_listing(graph: FlowGraph, title: str = "") -> str:
    """Full assembler-style listing of a flowgraph."""
    lines: list[str] = []
    if title:
        lines.append(f"; {title}")
        lines.append(";")
    for label in graph.block_order():
        lines.append(f"{label}#:")
        for instr in graph.blocks[label].instrs:
            lines.append(f"    {render_instr(instr)}")
    return "\n".join(lines) + "\n"
