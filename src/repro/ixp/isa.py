"""IXP1200 micro-engine instructions (the back end's machine IR).

Instructions exist in two register modes:

- **virtual**: operands are :class:`Temp` (CPS temporaries) — the form
  produced by instruction selection and consumed by the ILP allocator;
- **physical**: operands are :class:`PhysReg` — the form produced by the
  allocator's decode phase and executed by the simulator.

The instruction set models what the paper's back end needs: ALU
operations with the A/B/L/LD input restrictions, aggregate SRAM / SDRAM /
scratch transfers through the transfer banks, the hash unit (whose source
and destination share one register *number* in different banks — the
SameReg constraint), CSR access, context arbitration, and the ``clone``
pseudo-instruction of the SSU form.
"""

from __future__ import annotations

import sys
from dataclasses import dataclass, field

from repro.ixp.banks import Bank

# ALU operations supported natively (mul/div/mod were expanded away).
ALU_OPS = frozenset(
    {"add", "sub", "and", "or", "xor", "shl", "shr", "not", "neg"}
)

CMP_OPS = frozenset({"eq", "ne", "lt", "le", "gt", "ge"})

#: Largest value an instruction can carry as an inline immediate; bigger
#: constants need an ``immed`` (or the C-bank rematerialization
#: extension).
MAX_INLINE_IMM = 255


# --------------------------------------------------------------------------
# Operands
# --------------------------------------------------------------------------


@dataclass(frozen=True, slots=True)
class Operand:
    pass


@dataclass(frozen=True, slots=True)
class Temp(Operand):
    """A virtual register (CPS temporary).

    Names are interned: temporaries are dict keys throughout the
    allocator and the simulator's register file, and interning makes
    those lookups pointer-comparison fast.
    """

    name: str

    def __post_init__(self) -> None:
        object.__setattr__(self, "name", sys.intern(self.name))

    def __str__(self) -> str:
        return self.name


@dataclass(frozen=True, slots=True)
class Imm(Operand):
    """An inline immediate."""

    value: int

    def __str__(self) -> str:
        return f"#{self.value}"


@dataclass(frozen=True, slots=True)
class PhysReg(Operand):
    """A physical register: bank plus index."""

    bank: Bank
    index: int

    def __str__(self) -> str:
        return f"{self.bank}{self.index}"


Reg = Temp | PhysReg


# --------------------------------------------------------------------------
# Instructions
# --------------------------------------------------------------------------


@dataclass
class Instr:
    """Base instruction; subclasses define uses/defs via the fields."""

    def defs(self) -> list[Reg]:
        return []

    def uses(self) -> list[Reg]:
        return []

    def map_regs(self, f) -> "Instr":
        """Rebuild with every register operand transformed by ``f``."""
        raise NotImplementedError


def _map_op(f, op: Operand | None) -> Operand | None:
    if op is None or isinstance(op, Imm):
        return op
    return f(op)


@dataclass
class Alu(Instr):
    """``dst = a op b`` — one ALU operation.

    ``b`` may be an immediate (shift counts always are); unary ops
    (``not``, ``neg``) leave ``b`` None.  Datapath legality (at most one
    operand per bank, not both operands in transfer banks, dst in
    A/B/S/SD) is enforced by the allocator and checked by the verifier.
    """

    dst: Reg
    op: str
    a: Reg | Imm
    b: Reg | Imm | None = None

    def defs(self) -> list[Reg]:
        return [self.dst]

    def uses(self) -> list[Reg]:
        return [x for x in (self.a, self.b) if x is not None and not isinstance(x, Imm)]

    def map_regs(self, f) -> "Alu":
        return Alu(f(self.dst), self.op, _map_op(f, self.a), _map_op(f, self.b))

    def __str__(self) -> str:
        if self.b is None:
            return f"{self.dst} = {self.op} {self.a}"
        return f"{self.dst} = {self.a} {self.op} {self.b}"


@dataclass
class Immed(Instr):
    """``dst = constant`` — load an arbitrary 32-bit constant.

    Costs 1 instruction for values fitting 16 bits, 2 otherwise (the
    IXP builds wide constants with immed/immed_w1); the cycle model
    charges accordingly.
    """

    dst: Reg
    value: int

    def defs(self) -> list[Reg]:
        return [self.dst]

    def map_regs(self, f) -> "Immed":
        return Immed(f(self.dst), self.value)

    def __str__(self) -> str:
        return f"{self.dst} = immed {self.value:#x}"


@dataclass
class Move(Instr):
    """Register-register move (an ALU pass)."""

    dst: Reg
    src: Reg

    def defs(self) -> list[Reg]:
        return [self.dst]

    def uses(self) -> list[Reg]:
        return [self.src]

    def map_regs(self, f) -> "Move":
        return Move(f(self.dst), f(self.src))

    def __str__(self) -> str:
        return f"{self.dst} = {self.src}"


@dataclass
class Clone(Instr):
    """SSU pseudo-instruction: dst is a clone of src (paper Section 10).

    Immediately after the clone both names denote the same register; the
    allocator decides whether a physical copy is ever materialized.
    """

    dst: Reg
    src: Reg

    def defs(self) -> list[Reg]:
        return [self.dst]

    def uses(self) -> list[Reg]:
        return [self.src]

    def map_regs(self, f) -> "Clone":
        return Clone(f(self.dst), f(self.src))

    def __str__(self) -> str:
        return f"{self.dst} = clone {self.src}"


@dataclass
class MemOp(Instr):
    """Aggregate memory transfer.

    ``read``: ``regs`` receive ``len(regs)`` consecutive words starting
    at word address ``addr`` — they must be *adjacent* transfer registers
    in L (sram/scratch) or LD (sdram).  ``write``: symmetric, through S /
    SD.  SDRAM transfers move an even number of words and need an even
    word address (8-byte alignment).
    """

    space: str  # 'sram' | 'sdram' | 'scratch'
    direction: str  # 'read' | 'write'
    addr: Reg
    regs: tuple[Reg, ...]

    def defs(self) -> list[Reg]:
        return list(self.regs) if self.direction == "read" else []

    def uses(self) -> list[Reg]:
        used = [self.addr]
        if self.direction == "write":
            used.extend(self.regs)
        return used

    def map_regs(self, f) -> "MemOp":
        return MemOp(
            self.space,
            self.direction,
            f(self.addr),
            tuple(f(r) for r in self.regs),
        )

    def __str__(self) -> str:
        regs = ", ".join(str(r) for r in self.regs)
        if self.direction == "read":
            return f"({regs}) = {self.space}[{self.addr}]"
        return f"{self.space}[{self.addr}] <- ({regs})"


@dataclass
class RingOp(Instr):
    """Bounded-ring access (``repro.ixp.memory.ScratchRing``).

    ``enq`` pushes ``reg`` (a register or an inline immediate) onto the
    named ring; ``deq`` pops the oldest entry into ``reg``.  Both are
    single-word transfers through the ring's backing space port (issue
    1 cycle, then the thread sleeps until the data moves); a full ring
    (``enq``) or empty ring (``deq``) makes the thread spin-retry the
    instruction — the backpressure primitive of the streaming runtime.
    """

    kind: str  # 'enq' | 'deq'
    ring: str  # ring name registered on the MemorySystem
    reg: Reg | Imm

    def defs(self) -> list[Reg]:
        if self.kind == "deq" and not isinstance(self.reg, Imm):
            return [self.reg]
        return []

    def uses(self) -> list[Reg]:
        if self.kind == "enq" and not isinstance(self.reg, Imm):
            return [self.reg]
        return []

    def map_regs(self, f) -> "RingOp":
        return RingOp(self.kind, self.ring, _map_op(f, self.reg))

    def __str__(self) -> str:
        if self.kind == "enq":
            return f"ring[{self.ring}] <- {self.reg}"
        return f"{self.reg} = ring[{self.ring}]"


@dataclass
class HashInstr(Instr):
    """Hash unit: dst (in L) and src (in S) share one register number."""

    dst: Reg
    src: Reg

    def defs(self) -> list[Reg]:
        return [self.dst]

    def uses(self) -> list[Reg]:
        return [self.src]

    def map_regs(self, f) -> "HashInstr":
        return HashInstr(f(self.dst), f(self.src))

    def __str__(self) -> str:
        return f"{self.dst} = hash {self.src}"


@dataclass
class CsrRd(Instr):
    dst: Reg
    csr: int

    def defs(self) -> list[Reg]:
        return [self.dst]

    def map_regs(self, f) -> "CsrRd":
        return CsrRd(f(self.dst), self.csr)

    def __str__(self) -> str:
        return f"{self.dst} = csr[{self.csr}]"


@dataclass
class CsrWr(Instr):
    csr: int
    src: Reg

    def uses(self) -> list[Reg]:
        return [self.src]

    def map_regs(self, f) -> "CsrWr":
        return CsrWr(self.csr, f(self.src))

    def __str__(self) -> str:
        return f"csr[{self.csr}] = {self.src}"


@dataclass
class CtxArb(Instr):
    """Voluntary context swap (yield to another thread)."""

    def map_regs(self, f) -> "CtxArb":
        return self

    def __str__(self) -> str:
        return "ctx_arb"


@dataclass
class LockInstr(Instr):
    """Mutual exclusion on one of the inter-thread lock bits.

    ``lock``: acquire (the thread yields and retries while another
    context holds the bit); ``unlock``: release (traps if the thread is
    not the holder).
    """

    kind: str  # 'lock' | 'unlock'
    number: int

    def map_regs(self, f) -> "LockInstr":
        return self

    def __str__(self) -> str:
        return f"{self.kind}[{self.number}]"


@dataclass
class Br(Instr):
    """Unconditional branch — always the last instruction of its block."""

    target: str

    def map_regs(self, f) -> "Br":
        return self

    def __str__(self) -> str:
        return f"br {self.target}"


@dataclass
class BrCmp(Instr):
    """Compare-and-branch: ``if (a cmp b) goto then_target else
    else_target``.  ``b`` may be a small immediate."""

    cmp: str
    a: Reg | Imm
    b: Reg | Imm
    then_target: str
    else_target: str

    def uses(self) -> list[Reg]:
        return [x for x in (self.a, self.b) if not isinstance(x, Imm)]

    def map_regs(self, f) -> "BrCmp":
        return BrCmp(
            self.cmp,
            _map_op(f, self.a),
            _map_op(f, self.b),
            self.then_target,
            self.else_target,
        )

    def __str__(self) -> str:
        return (
            f"if {self.a} {self.cmp} {self.b} br {self.then_target} "
            f"else {self.else_target}"
        )


@dataclass
class HaltInstr(Instr):
    """End of the program (one thread iteration); yields result values."""

    results: tuple[Reg | Imm, ...] = field(default_factory=tuple)

    def uses(self) -> list[Reg]:
        return [r for r in self.results if not isinstance(r, Imm)]

    def map_regs(self, f) -> "HaltInstr":
        return HaltInstr(tuple(_map_op(f, r) for r in self.results))

    def __str__(self) -> str:
        rs = ", ".join(str(r) for r in self.results)
        return f"halt ({rs})"


TERMINATORS = (Br, BrCmp, HaltInstr)
