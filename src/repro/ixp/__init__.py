"""IXP1200 target: banks, instruction set, flowgraph, selection, simulator."""

from repro.ixp.banks import Bank, BANK_SIZES, XFER_BANKS, GP_BANKS
from repro.ixp.isa import (
    Alu,
    Br,
    BrCmp,
    Clone,
    CsrRd,
    CsrWr,
    CtxArb,
    HaltInstr,
    HashInstr,
    Imm,
    Immed,
    Instr,
    MemOp,
    Move,
    Operand,
    PhysReg,
    Temp,
)
from repro.ixp.flowgraph import Block, FlowGraph
from repro.ixp.select import select_instructions

__all__ = [
    "Bank",
    "BANK_SIZES",
    "XFER_BANKS",
    "GP_BANKS",
    "Alu",
    "Br",
    "BrCmp",
    "Clone",
    "CsrRd",
    "CsrWr",
    "CtxArb",
    "HaltInstr",
    "HashInstr",
    "Imm",
    "Immed",
    "Instr",
    "MemOp",
    "Move",
    "Operand",
    "PhysReg",
    "Temp",
    "Block",
    "FlowGraph",
    "select_instructions",
]
