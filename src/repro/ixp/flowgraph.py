"""Flowgraphs of IXP instructions with explicit program points.

The ILP model of the paper is expressed over *program points*: "Each
instruction of the program's original flowgraph is located between two
such points.  A branch instruction is followed by a single point that is
connected to all points at the targets of the branch" (Section 5.2).

A :class:`FlowGraph` is a set of labeled basic blocks; every instruction
``i`` in block ``b`` sits between points ``point_before(b, i)`` and
``point_after(b, i)``.  Points are materialized as dense integer ids so
that the allocator's sets (Exists, Copy, ...) can be built cheaply.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.ixp import isa


@dataclass
class Block:
    label: str
    instrs: list[isa.Instr] = field(default_factory=list)

    @property
    def terminator(self) -> isa.Instr:
        return self.instrs[-1]

    def successors(self) -> list[str]:
        term = self.terminator
        if isinstance(term, isa.Br):
            return [term.target]
        if isinstance(term, isa.BrCmp):
            # then before else: the order matters only for display.
            return [term.then_target, term.else_target]
        return []


@dataclass
class FlowGraph:
    """Basic blocks plus the program-point numbering used by the ILP."""

    entry: str
    blocks: dict[str, Block]
    inputs: tuple[str, ...] = ()  # program input temporaries (live at entry)

    # -- structure -----------------------------------------------------------

    def block_order(self) -> list[str]:
        """Reverse-post-order from the entry (stable, deterministic).

        Iterative DFS (an explicit stack of block iterators) so deep
        chains of blocks — fuzz-generated or unrolled programs — cannot
        hit the Python recursion limit.  The emitted order is identical
        to the natural recursive formulation.
        """
        seen: set[str] = set()
        order: list[str] = []
        if self.entry in self.blocks:
            seen.add(self.entry)
            stack = [(self.entry, iter(self.blocks[self.entry].successors()))]
            while stack:
                label, succs = stack[-1]
                for succ in succs:
                    if succ not in seen and succ in self.blocks:
                        seen.add(succ)
                        stack.append(
                            (succ, iter(self.blocks[succ].successors()))
                        )
                        break
                else:
                    order.append(label)
                    stack.pop()
        order.reverse()
        # Unreachable blocks (should not exist) go last for completeness.
        for label in self.blocks:
            if label not in seen:
                order.append(label)
        return order

    def predecessors(self) -> dict[str, list[str]]:
        preds: dict[str, list[str]] = {label: [] for label in self.blocks}
        for label, block in self.blocks.items():
            for succ in block.successors():
                preds[succ].append(label)
        return preds

    def instructions(self) -> list[tuple[str, int, isa.Instr]]:
        """All instructions as (block label, index, instruction)."""
        out = []
        for label in self.block_order():
            for index, instr in enumerate(self.blocks[label].instrs):
                out.append((label, index, instr))
        return out

    def num_instructions(self) -> int:
        return sum(len(b.instrs) for b in self.blocks.values())

    # -- program points ---------------------------------------------------------

    def points(self) -> "PointMap":
        return PointMap(self)

    # -- misc ----------------------------------------------------------------

    def temps(self) -> list[str]:
        """All virtual registers appearing in the graph, sorted."""
        names: set[str] = set()
        for block in self.blocks.values():
            for instr in block.instrs:
                for reg in instr.defs() + instr.uses():
                    if isinstance(reg, isa.Temp):
                        names.add(reg.name)
        names.update(self.inputs)
        return sorted(names)

    def pretty(self) -> str:
        lines = []
        for label in self.block_order():
            lines.append(f"{label}:")
            for instr in self.blocks[label].instrs:
                lines.append(f"    {instr}")
        return "\n".join(lines) + "\n"

    def validate(self) -> None:
        """Check basic well-formedness: terminators, branch targets."""
        for label, block in self.blocks.items():
            if not block.instrs:
                raise ValueError(f"block {label} is empty")
            if not isinstance(block.terminator, isa.TERMINATORS):
                raise ValueError(f"block {label} lacks a terminator")
            for index, instr in enumerate(block.instrs[:-1]):
                if isinstance(instr, isa.TERMINATORS):
                    raise ValueError(
                        f"terminator mid-block in {label} at {index}"
                    )
            for succ in block.successors():
                if succ not in self.blocks:
                    raise ValueError(f"branch to unknown block {succ}")


class PointMap:
    """Dense numbering of program points.

    Within a block of n instructions there are n+1 points.  The point
    after a terminator is the same single point that connects to all
    branch targets; an edge to a successor block identifies that point
    with the successor's entry point for liveness purposes, but the
    *point objects* remain distinct and the Copy set records the
    connection (paper Section 5.2).
    """

    def __init__(self, graph: FlowGraph):
        self.graph = graph
        self._before: dict[tuple[str, int], int] = {}
        self._count = 0
        self._block_points: dict[str, tuple[int, int]] = {}
        for label in graph.block_order():
            block = graph.blocks[label]
            first = self._count
            for index in range(len(block.instrs)):
                self._before[(label, index)] = self._count
                self._count += 1
            # the point after the last instruction
            self._block_points[label] = (first, self._count)
            self._count += 1

    @property
    def count(self) -> int:
        return self._count

    def before(self, label: str, index: int) -> int:
        return self._before[(label, index)]

    def after(self, label: str, index: int) -> int:
        block = self.graph.blocks[label]
        if index + 1 < len(block.instrs):
            return self._before[(label, index + 1)]
        return self._block_points[label][1]

    def entry(self, label: str) -> int:
        return self._block_points[label][0]

    def exit(self, label: str) -> int:
        return self._block_points[label][1]

    def edges(self) -> list[tuple[int, int]]:
        """Point-graph edges: exit point of a block → entry point of each
        successor (intra-block edges are implicit in before/after)."""
        out = []
        for label, block in self.graph.blocks.items():
            for succ in block.successors():
                out.append((self.exit(label), self.entry(succ)))
        return out
